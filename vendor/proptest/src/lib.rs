//! A vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace must build with no network access, so this crate
//! re-implements exactly the subset of the proptest API its tests use:
//! [`Strategy`] with `prop_map`/`prop_recursive`, integer-range and
//! tuple strategies, [`any`], [`Just`], `prop::sample::select`,
//! `prop::collection::vec`, the `proptest!`/`prop_oneof!` macros and
//! the `prop_assert*` family.
//!
//! Differences from the real crate: generation is deterministic (the
//! RNG is seeded from the test name, so every run explores the same
//! cases) and failing inputs are not shrunk — the failing case index
//! is printed instead so a failure can be re-run under a debugger.
//! Set `PROPTEST_CASES` to override the per-test case count.

use std::cell::Cell;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Runner configuration: how many cases each `proptest!` test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// The effective case count (`PROPTEST_CASES` overrides).
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded for one test case.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounding; uniform enough for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator. The object-safe core of the API.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` generates leaves and `branch`
    /// builds one level from an inner strategy. `depth` bounds the
    /// recursion; the other two parameters (target size hints in the
    /// real crate) are accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(RecursiveInner<Self::Value>) -> S,
    {
        let shared = Rc::new(RecursiveShared {
            base: Box::new(self),
            branch: std::cell::OnceCell::new(),
            depth_limit: depth.max(1),
            depth: Cell::new(0),
        });
        let built = branch(RecursiveInner(Rc::clone(&shared)));
        shared
            .branch
            .set(Box::new(built))
            .unwrap_or_else(|_| unreachable!("branch set once"));
        Recursive(shared)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

struct RecursiveShared<V> {
    base: Box<dyn Strategy<Value = V>>,
    branch: std::cell::OnceCell<Box<dyn Strategy<Value = V>>>,
    depth_limit: u32,
    depth: Cell<u32>,
}

impl<V> RecursiveShared<V> {
    fn generate(&self, rng: &mut TestRng) -> V {
        let d = self.depth.get();
        // Past the limit, or probabilistically as depth grows, take a leaf
        // so generation terminates.
        if d >= self.depth_limit || rng.below(self.depth_limit as u64 + 1) <= d as u64 {
            return self.base.generate(rng);
        }
        self.depth.set(d + 1);
        let v = self.branch.get().expect("branch built").generate(rng);
        self.depth.set(d);
        v
    }
}

/// The strategy returned by [`Strategy::prop_recursive`].
pub struct Recursive<V>(Rc<RecursiveShared<V>>);

impl<V> Strategy for Recursive<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// The inner handle passed to a `prop_recursive` branch closure.
pub struct RecursiveInner<V>(Rc<RecursiveShared<V>>);

impl<V> Clone for RecursiveInner<V> {
    fn clone(&self) -> Self {
        RecursiveInner(Rc::clone(&self.0))
    }
}

impl<V> Strategy for RecursiveInner<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

impl<V> Strategy for Rc<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Equal-weight choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Rc<dyn Strategy<Value = V>>>,
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Build a [`Union`] (used by `prop_oneof!`).
pub fn union<V>(arms: Vec<Rc<dyn Strategy<Value = V>>>) -> Union<V> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    Union { arms }
}

/// Erase a strategy's concrete type (used by `prop_oneof!`).
pub fn rc_strategy<S: Strategy + 'static>(s: S) -> Rc<dyn Strategy<Value = S::Value>> {
    Rc::new(s)
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }

        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the whole domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (`any::<u16>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! tuple_strategies {
    ($(($($s:ident/$v:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A/a)
    (A/a, B/b)
    (A/a, B/b, C/c)
    (A/a, B/b, C/c, D/d)
    (A/a, B/b, C/c, D/d, E/e)
    (A/a, B/b, C/c, D/d, E/e, F/f)
}

/// `prop::…` module tree, mirroring the real crate's prelude layout.
pub mod prop {
    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Uniform choice from a non-empty vector.
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }

        /// Strategy choosing uniformly from `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select() needs options");
            Select(options)
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for vectors with lengths drawn from a range.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Vectors of `element` with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Stable hash of a test name, used to seed its case stream.
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Boolean assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Equal-weight choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::rc_strategy($arm)),+])
    };
}

/// Define property tests. Each test runs its body once per generated
/// case; panics (from the `prop_assert*` macros or anywhere else) fail
/// the test with the case index in the message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @config ($cfg) $($rest)* }
    };
    (@config ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                for case in 0..cases as u64 {
                    let mut rng =
                        $crate::TestRng::new($crate::seed_for(stringify!($name), case));
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let run = std::panic::AssertUnwindSafe(|| { $body });
                    if let Err(panic) = std::panic::catch_unwind(run) {
                        eprintln!(
                            "proptest {}: failing case {case} of {cases} \
                             (deterministic; re-run reproduces it)",
                            stringify!($name),
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (10u16..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-5i16..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        let strat = prop::collection::vec(any::<u16>(), 0..16);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn oneof_and_select_cover_all_arms() {
        let strat = prop_oneof![Just(1u8), Just(2u8), 3u8..4];
        let mut rng = TestRng::new(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let sel = prop::sample::select(vec!['x', 'y']);
        let mut seen_x = false;
        let mut seen_y = false;
        for _ in 0..100 {
            match sel.generate(&mut rng) {
                'x' => seen_x = true,
                _ => seen_y = true,
            }
        }
        assert!(seen_x && seen_y);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = any::<u8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::new(3);
        let mut max = 0;
        for _ in 0..500 {
            let t = strat.generate(&mut rng);
            max = max.max(depth(&t));
        }
        assert!(max >= 1, "recursion never taken");
        assert!(max <= 5, "depth limit exceeded: {max}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_patterns((a, b) in (0u8..10, 0u8..10), v in prop::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(v.len() < 4, true);
            prop_assert_ne!(a as u16 + 256, b as u16);
        }
    }
}
