//! A vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace must build with no network access; the bench targets
//! only use `Criterion::bench_function` + `Bencher::iter`, so this
//! crate provides exactly that: a warm-up, an adaptive iteration count
//! targeting a fixed measurement window, and a `name  time: […]` line
//! per benchmark. Statistical analysis, plotting and CLI filtering are
//! intentionally out of scope.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings and result sink.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(400),
        }
    }
}

/// One benchmark's timing summary.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Iterations measured.
    pub iterations: u64,
}

impl Criterion {
    /// Override the per-benchmark measurement window.
    pub fn measurement_time(mut self, window: Duration) -> Criterion {
        self.measurement_time = window;
        self
    }

    /// Run one benchmark and print its mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let summary = run_bench(self.measurement_time, &mut f);
        println!(
            "{name:<40} time: [{} /iter over {} iters]",
            format_duration(summary.mean),
            summary.iterations
        );
        self
    }

    /// Run one benchmark and return its summary without printing
    /// (used by harnesses that post-process timings, e.g. `--json`).
    pub fn measure_function<F>(&mut self, f: &mut F) -> Summary
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self.measurement_time, f)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(window: Duration, f: &mut F) -> Summary {
    // Warm-up and calibration pass: one timed iteration decides how
    // many iterations fit the measurement window.
    let mut b = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let target = (window.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut b = Bencher {
        iterations: target,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    Summary {
        mean: b.elapsed / b.iterations.max(1) as u32,
        iterations: b.iterations,
    }
}

/// Handed to the benchmark closure; times the inner loop.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it the harness-chosen number of times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Group benchmark functions under one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let summary =
            c.measure_function(&mut |b: &mut Bencher| b.iter(|| black_box(1u64.wrapping_add(2))));
        assert!(summary.iterations >= 1);
        assert!(summary.mean <= Duration::from_millis(5));
    }

    #[test]
    fn formats_scales() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
