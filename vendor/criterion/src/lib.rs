//! A vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace must build with no network access; the bench targets
//! only use `Criterion::bench_function` + `Bencher::iter`, so this
//! crate provides exactly that: a warm-up, an adaptive iteration count
//! targeting a fixed measurement window, and a `name  time: […]` line
//! per benchmark. Statistical analysis, plotting and CLI filtering are
//! intentionally out of scope.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings and result sink.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(400),
        }
    }
}

/// One benchmark's timing summary.
///
/// The measurement window is split into samples (batches of
/// iterations); `min` and `median` are per-iteration times across
/// those samples, so a single noisy sample (a context switch, a page
/// fault storm) shows up as a mean/median gap instead of silently
/// skewing the only number reported.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Mean wall-clock time per iteration, across all samples.
    pub mean: Duration,
    /// Fastest sample's per-iteration time (least-noise estimate).
    pub min: Duration,
    /// Median sample's per-iteration time (noise-robust estimate).
    pub median: Duration,
    /// Iterations measured (across all samples, excluding warm-up).
    pub iterations: u64,
}

impl Criterion {
    /// Override the per-benchmark measurement window.
    pub fn measurement_time(mut self, window: Duration) -> Criterion {
        self.measurement_time = window;
        self
    }

    /// Run one benchmark and print its mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let summary = run_bench(self.measurement_time, &mut f);
        println!(
            "{name:<40} time: [min {} / med {} / mean {} per iter over {} iters]",
            format_duration(summary.min),
            format_duration(summary.median),
            format_duration(summary.mean),
            summary.iterations
        );
        self
    }

    /// Run one benchmark and return its summary without printing
    /// (used by harnesses that post-process timings, e.g. `--json`).
    pub fn measure_function<F>(&mut self, f: &mut F) -> Summary
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self.measurement_time, f)
    }
}

/// Samples the measurement window is split into (when the routine is
/// fast enough to fit that many batches).
const SAMPLES: u64 = 10;

fn run_bench<F: FnMut(&mut Bencher)>(window: Duration, f: &mut F) -> Summary {
    // Calibration: one timed iteration decides how many iterations
    // fit the measurement window.
    let mut b = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let target = (window.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    // Warm-up: a slice of the target, discarded. The calibration
    // iteration above ran cold (allocator, caches, branch
    // predictors); measuring only after a warm-up pass keeps the
    // first measured sample comparable to the rest.
    let mut b = Bencher {
        iterations: (target / SAMPLES).max(1),
        elapsed: Duration::ZERO,
    };
    f(&mut b);

    // Measurement: up to SAMPLES batches, each timed separately so
    // min/median over batches are available alongside the mean.
    let per_sample = (target / SAMPLES).max(1);
    let samples = (target / per_sample).max(1);
    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples as usize);
    let mut total = Duration::ZERO;
    let mut iterations = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iterations: per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed / per_sample.max(1) as u32);
        total += b.elapsed;
        iterations += per_sample;
    }
    per_iter.sort_unstable();
    Summary {
        mean: total / iterations.max(1) as u32,
        min: per_iter[0],
        median: per_iter[per_iter.len() / 2],
        iterations,
    }
}

/// Handed to the benchmark closure; times the inner loop.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it the harness-chosen number of times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Group benchmark functions under one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let summary =
            c.measure_function(&mut |b: &mut Bencher| b.iter(|| black_box(1u64.wrapping_add(2))));
        assert!(summary.iterations >= 1);
        assert!(summary.mean <= Duration::from_millis(5));
    }

    #[test]
    fn sample_stats_are_ordered() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let summary = c.measure_function(&mut |b: &mut Bencher| {
            b.iter(|| black_box((0..100u64).sum::<u64>()))
        });
        assert!(summary.min <= summary.median, "min beyond median");
        // The mean sits somewhere within the sample spread.
        assert!(summary.min <= summary.mean);
        assert!(summary.min > Duration::ZERO);
    }

    #[test]
    fn formats_scales() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
