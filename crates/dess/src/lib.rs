//! # dess — discrete-event simulation substrate
//!
//! Foundation for every simulator in the SNAP/LE reproduction:
//!
//! * [`time`] — picosecond-resolution simulated time. Asynchronous (QDI)
//!   hardware has no clock, so all latencies in the SNAP/LE model are real
//!   time quantities (gate delays scaled by supply voltage), not cycle
//!   counts; picoseconds are fine-grained enough for an 18-gate-delay
//!   wake-up at 1.8 V (2.5 ns) and wide enough (u64) for days of
//!   simulated node lifetime.
//! * [`calendar`] — a deterministic pending-event calendar with stable
//!   FIFO ordering for simultaneous events.
//! * [`wake`] — a re-keyable indexed heap of per-entity wake instants,
//!   the backbone of the event-driven network scheduler.
//! * [`rng`] — small deterministic generators: a 16-bit Galois LFSR
//!   mirroring SNAP's `rand` hardware and a SplitMix64 for workload
//!   generation.
//!
//! ## Example
//!
//! ```
//! use dess::{Calendar, SimDuration, SimTime};
//!
//! let mut cal = Calendar::new();
//! cal.schedule(SimTime::ZERO + SimDuration::from_ns(5), "b");
//! cal.schedule(SimTime::ZERO + SimDuration::from_ns(2), "a");
//! let (t, ev) = cal.pop().unwrap();
//! assert_eq!((t.as_ns(), ev), (2.0, "a"));
//! ```

#![warn(missing_docs)]

pub mod calendar;
pub mod rng;
pub mod time;
pub mod wake;

pub use calendar::Calendar;
pub use rng::{Lfsr16, SplitMix64};
pub use time::{SimDuration, SimTime};
pub use wake::WakeQueue;
