//! A re-keyable wake calendar for entity scheduling.
//!
//! [`Calendar`](crate::Calendar) is a plain pending-event queue: entries
//! are immutable once scheduled. An event-driven network simulator needs
//! something stronger for its *nodes*: each node has at most one "next
//! activity" instant, and that instant moves every time the node runs a
//! handler, schedules or cancels a timer, or receives a delivery.
//! [`WakeQueue`] is an indexed binary min-heap over small-integer keys
//! (node indices) supporting `set` (insert or re-key, both directions),
//! `remove`, `peek` and `pop` in `O(log n)`.
//!
//! Determinism: entries order by `(time, key)`, so two runs of the same
//! simulation pop identical sequences regardless of the insertion or
//! re-key history. There is no FIFO sequence number — a key has at most
//! one entry, and the key itself is the stable tie-break.

use crate::time::SimTime;

/// Sentinel position for "key not in the heap".
const ABSENT: usize = usize::MAX;

/// An indexed min-heap of `(SimTime, key)` entries, at most one entry
/// per key, with `O(log n)` re-keying.
///
/// # Example
///
/// ```
/// use dess::{SimTime, WakeQueue};
///
/// let mut q = WakeQueue::new();
/// q.set(0, SimTime::from_ps(30));
/// q.set(1, SimTime::from_ps(10));
/// q.set(0, SimTime::from_ps(5)); // re-key (decrease)
/// assert_eq!(q.peek(), Some((SimTime::from_ps(5), 0)));
/// q.remove(1);
/// assert_eq!(q.pop(), Some((SimTime::from_ps(5), 0)));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct WakeQueue {
    /// Keys, heap-ordered by `(time[key], key)`.
    heap: Vec<usize>,
    /// `pos[key]` = index into `heap`, or [`ABSENT`].
    pos: Vec<usize>,
    /// `time[key]` = scheduled instant (valid while the key is present).
    time: Vec<SimTime>,
}

impl WakeQueue {
    /// An empty queue.
    pub fn new() -> WakeQueue {
        WakeQueue::default()
    }

    /// An empty queue with room for keys `0..keys` pre-allocated.
    pub fn with_keys(keys: usize) -> WakeQueue {
        WakeQueue {
            heap: Vec::with_capacity(keys),
            pos: vec![ABSENT; keys],
            time: vec![SimTime::ZERO; keys],
        }
    }

    /// Number of scheduled keys.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` when `key` currently has an entry.
    pub fn contains(&self, key: usize) -> bool {
        self.pos.get(key).is_some_and(|&p| p != ABSENT)
    }

    /// The scheduled instant for `key`, if present.
    pub fn time_of(&self, key: usize) -> Option<SimTime> {
        if self.contains(key) {
            Some(self.time[key])
        } else {
            None
        }
    }

    /// The earliest entry without removing it.
    pub fn peek(&self) -> Option<(SimTime, usize)> {
        self.heap.first().map(|&k| (self.time[k], k))
    }

    /// Remove and return the earliest entry.
    pub fn pop(&mut self) -> Option<(SimTime, usize)> {
        let &key = self.heap.first()?;
        let at = self.time[key];
        self.remove(key);
        Some((at, key))
    }

    /// Schedule `key` at `at`, inserting it or moving its existing entry
    /// (either direction). Grows the key space as needed.
    pub fn set(&mut self, key: usize, at: SimTime) {
        if key >= self.pos.len() {
            self.pos.resize(key + 1, ABSENT);
            self.time.resize(key + 1, SimTime::ZERO);
        }
        self.time[key] = at;
        let p = self.pos[key];
        if p == ABSENT {
            self.pos[key] = self.heap.len();
            self.heap.push(key);
            self.sift_up(self.heap.len() - 1);
        } else {
            // Re-key in place: one of these is a no-op.
            let p = self.sift_up(p);
            self.sift_down(p);
        }
    }

    /// Remove `key`'s entry, if any.
    pub fn remove(&mut self, key: usize) {
        let Some(&p) = self.pos.get(key) else {
            return;
        };
        if p == ABSENT {
            return;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(p, last);
        self.pos[self.heap[p]] = p;
        self.heap.pop();
        self.pos[key] = ABSENT;
        if p < self.heap.len() {
            let p = self.sift_up(p);
            self.sift_down(p);
        }
    }

    /// Drop every entry (the key space stays allocated).
    pub fn clear(&mut self) {
        for &k in &self.heap {
            self.pos[k] = ABSENT;
        }
        self.heap.clear();
    }

    /// `(time, key)` order: earlier time first, lower key on ties.
    fn before(&self, a: usize, b: usize) -> bool {
        (self.time[a], a) < (self.time[b], b)
    }

    fn sift_up(&mut self, mut i: usize) -> usize {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.before(self.heap[i], self.heap[parent]) {
                self.heap.swap(i, parent);
                self.pos[self.heap[i]] = i;
                self.pos[self.heap[parent]] = parent;
                i = parent;
            } else {
                break;
            }
        }
        i
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let mut best = i;
            for child in [2 * i + 1, 2 * i + 2] {
                if child < self.heap.len() && self.before(self.heap[child], self.heap[best]) {
                    best = child;
                }
            }
            if best == i {
                break;
            }
            self.heap.swap(i, best);
            self.pos[self.heap[i]] = i;
            self.pos[self.heap[best]] = best;
            i = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(n: u64) -> SimTime {
        SimTime::from_ps(n)
    }

    #[test]
    fn pops_in_time_then_key_order() {
        let mut q = WakeQueue::new();
        q.set(3, ps(20));
        q.set(1, ps(10));
        q.set(2, ps(10));
        q.set(0, ps(30));
        let order: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, k)| (t.as_ps(), k))).collect();
        assert_eq!(order, vec![(10, 1), (10, 2), (20, 3), (30, 0)]);
    }

    #[test]
    fn rekey_moves_both_directions() {
        let mut q = WakeQueue::new();
        for k in 0..8 {
            q.set(k, ps(100 + k as u64));
        }
        q.set(7, ps(1)); // decrease-key to the front
        assert_eq!(q.peek(), Some((ps(1), 7)));
        q.set(7, ps(1_000)); // increase-key to the back
        assert_eq!(q.peek(), Some((ps(100), 0)));
        assert_eq!(q.time_of(7), Some(ps(1_000)));
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn remove_keeps_heap_consistent() {
        let mut q = WakeQueue::new();
        for k in 0..16 {
            q.set(k, ps((k as u64 * 7) % 13));
        }
        q.remove(0);
        q.remove(15);
        q.remove(9);
        q.remove(9); // double-remove is a no-op
        assert!(!q.contains(9));
        let mut last = None;
        let mut n = 0;
        while let Some((t, k)) = q.pop() {
            if let Some(prev) = last {
                assert!(prev <= (t, k), "heap order violated");
            }
            last = Some((t, k));
            n += 1;
        }
        assert_eq!(n, 13);
    }

    #[test]
    fn set_is_idempotent_per_key() {
        let mut q = WakeQueue::with_keys(4);
        q.set(2, ps(5));
        q.set(2, ps(5));
        q.set(2, ps(9));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((ps(9), 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn clear_and_unknown_key_queries() {
        let mut q = WakeQueue::new();
        q.set(1, ps(4));
        q.clear();
        assert!(q.is_empty());
        assert!(!q.contains(99));
        assert_eq!(q.time_of(99), None);
        q.remove(99); // out-of-range remove is a no-op
        q.set(1, ps(6)); // reusable after clear
        assert_eq!(q.peek(), Some((ps(6), 1)));
    }

    #[test]
    fn randomized_against_reference() {
        // Mirror every operation into a naive Vec-based model and
        // compare pop sequences.
        let mut q = WakeQueue::new();
        let mut model: Vec<Option<SimTime>> = vec![None; 32];
        let mut state = 0x1234_5678_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..2_000 {
            let key = (next() % 32) as usize;
            match next() % 3 {
                0 | 1 => {
                    let t = ps(next() % 50);
                    q.set(key, t);
                    model[key] = Some(t);
                }
                _ => {
                    q.remove(key);
                    model[key] = None;
                }
            }
        }
        let mut expect: Vec<(SimTime, usize)> = model
            .iter()
            .enumerate()
            .filter_map(|(k, t)| t.map(|t| (t, k)))
            .collect();
        expect.sort();
        let got: Vec<(SimTime, usize)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(got, expect);
    }
}
