//! The pending-event calendar.
//!
//! A deterministic priority queue of `(SimTime, E)` pairs. Events
//! scheduled for the same instant pop in insertion (FIFO) order, which
//! keeps multi-node network simulations reproducible run-to-run.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic pending-event calendar.
///
/// # Example
///
/// ```
/// use dess::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::from_ps(10), 'x');
/// cal.schedule(SimTime::from_ps(10), 'y'); // same instant: FIFO
/// assert_eq!(cal.pop().map(|(_, e)| e), Some('x'));
/// assert_eq!(cal.pop().map(|(_, e)| e), Some('y'));
/// ```
pub struct Calendar<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Calendar<E> {
    /// An empty calendar.
    pub fn new() -> Calendar<E> {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Remove and return the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Remove pending events matching a predicate (linear scan; used for
    /// cancellations). Returns how many were removed.
    pub fn cancel_where<F: FnMut(&E) -> bool>(&mut self, mut pred: F) -> usize {
        let before = self.heap.len();
        let kept: Vec<Entry<E>> = self.heap.drain().filter(|e| !pred(&e.event)).collect();
        self.heap.extend(kept);
        before - self.heap.len()
    }

    /// All pending events in pop order, without disturbing the calendar.
    ///
    /// Re-`schedule`-ing the returned entries into an empty calendar, in
    /// order, reproduces the exact pop sequence: entries come out sorted
    /// by `(time, seq)`, and a fresh calendar assigns ascending sequence
    /// numbers, so same-instant FIFO order is preserved even though the
    /// absolute sequence counters differ. This is the calendar half of
    /// the snapshot/restore bit-identity argument.
    pub fn snapshot_entries(&self) -> Vec<(SimTime, E)>
    where
        E: Clone,
    {
        let mut entries: Vec<(SimTime, u64, E)> = self
            .heap
            .iter()
            .map(|e| (e.at, e.seq, e.event.clone()))
            .collect();
        entries.sort_by_key(|&(at, seq, _)| (at, seq));
        entries.into_iter().map(|(at, _, e)| (at, e)).collect()
    }
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Calendar::new()
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for Calendar<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Calendar")
            .field("pending", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        for (t, e) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            cal.schedule(SimTime::from_ps(t), e);
        }
        let order: Vec<char> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::from_ps(42);
        for i in 0..100 {
            cal.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_ps(7), ());
        assert_eq!(cal.peek_time(), Some(SimTime::from_ps(7)));
        assert_eq!(cal.len(), 1);
        assert!(!cal.is_empty());
        cal.pop();
        assert_eq!(cal.peek_time(), None);
        assert!(cal.is_empty());
    }

    #[test]
    fn cancel_where_removes_matching() {
        let mut cal = Calendar::new();
        for i in 0..10 {
            cal.schedule(SimTime::from_ps(i), i);
        }
        let removed = cal.cancel_where(|&e| e % 2 == 0);
        assert_eq!(removed, 5);
        let order: Vec<u64> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn clear_empties() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::ZERO + SimDuration::from_ns(1), 1);
        cal.clear();
        assert!(cal.is_empty());
    }

    #[test]
    fn snapshot_entries_reproduce_pop_order() {
        let mut cal = Calendar::new();
        let t = SimTime::from_ps(5);
        cal.schedule(SimTime::from_ps(9), 'z');
        cal.schedule(t, 'a');
        cal.schedule(t, 'b');
        cal.pop(); // consume 'a'; survivors keep their relative order
        cal.schedule(t, 'c');
        let entries = cal.snapshot_entries();
        assert_eq!(
            entries,
            vec![(t, 'b'), (t, 'c'), (SimTime::from_ps(9), 'z')]
        );
        // Restoring into a fresh calendar pops identically.
        let mut restored = Calendar::new();
        for (at, e) in entries {
            restored.schedule(at, e);
        }
        let a: Vec<char> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        let b: Vec<char> = std::iter::from_fn(|| restored.pop().map(|(_, e)| e)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn fifo_holds_after_interleaved_pops() {
        let mut cal = Calendar::new();
        let t = SimTime::from_ps(5);
        cal.schedule(t, 1);
        cal.schedule(t, 2);
        assert_eq!(cal.pop().unwrap().1, 1);
        cal.schedule(t, 3);
        assert_eq!(cal.pop().unwrap().1, 2);
        assert_eq!(cal.pop().unwrap().1, 3);
    }
}
