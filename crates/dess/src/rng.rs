//! Deterministic random-number generators.
//!
//! * [`Lfsr16`] models SNAP's pseudo-random-number hardware: the paper
//!   (§3.1) lists a linear-feedback shift register among the execution
//!   units, driven by the `rand`/`seed` instructions. We use the standard
//!   16-bit maximal-length Galois LFSR (taps 16, 14, 13, 11 — polynomial
//!   `0xB400`), which cycles through all 65535 non-zero states.
//! * [`SplitMix64`] is a tiny, high-quality 64-bit generator used by
//!   workload generators and tests where we need independence from the
//!   modelled hardware.

/// The 16-bit Galois LFSR behind SNAP's `rand` instruction.
///
/// # Example
///
/// ```
/// use dess::Lfsr16;
///
/// let mut lfsr = Lfsr16::new(0xACE1);
/// let a = lfsr.next_word();
/// let b = lfsr.next_word();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lfsr16 {
    state: u16,
}

/// Feedback polynomial for the maximal-length 16-bit Galois LFSR.
const LFSR_TAPS: u16 = 0xB400;

impl Lfsr16 {
    /// Create an LFSR with the given seed.
    ///
    /// A zero seed would lock the register (the all-zero state is a fixed
    /// point), so the hardware maps it to 1; we do the same.
    pub fn new(seed: u16) -> Lfsr16 {
        Lfsr16 {
            state: if seed == 0 { 1 } else { seed },
        }
    }

    /// Re-seed the register (the `seed` instruction).
    pub fn seed(&mut self, seed: u16) {
        self.state = if seed == 0 { 1 } else { seed };
    }

    /// Advance one bit-step of the Galois LFSR.
    pub fn step(&mut self) -> u16 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb == 1 {
            self.state ^= LFSR_TAPS;
        }
        self.state
    }

    /// Produce the next 16-bit pseudo-random word (the `rand`
    /// instruction): sixteen bit-steps.
    pub fn next_word(&mut self) -> u16 {
        for _ in 0..15 {
            self.step();
        }
        self.step()
    }

    /// Current register state.
    pub fn state(&self) -> u16 {
        self.state
    }
}

impl Default for Lfsr16 {
    /// The power-on seed used by the simulator (`0xACE1`, a conventional
    /// LFSR example seed).
    fn default() -> Lfsr16 {
        Lfsr16::new(0xACE1)
    }
}

/// SplitMix64: a fast, well-distributed 64-bit generator for workload
/// synthesis and tests.
///
/// # Example
///
/// ```
/// use dess::SplitMix64;
///
/// let mut rng = SplitMix64::new(7);
/// let x = rng.next_u64();
/// let y = rng.next_u64();
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 16-bit value (for SNAP operand generation).
    pub fn next_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift reduction; bias is negligible for our bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Current generator state. `SplitMix64::new(rng.state())` resumes
    /// the exact sequence — `new` stores the seed verbatim, so state
    /// and seed share a representation (used by snapshot/restore).
    pub fn state(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn lfsr_is_maximal_length() {
        let mut lfsr = Lfsr16::new(1);
        let mut seen = HashSet::new();
        for _ in 0..65_535 {
            assert!(seen.insert(lfsr.step()), "LFSR state repeated early");
        }
        // After the full period we are back at the starting state.
        assert_eq!(lfsr.state(), 1);
    }

    #[test]
    fn lfsr_never_reaches_zero() {
        let mut lfsr = Lfsr16::new(0xACE1);
        for _ in 0..70_000 {
            assert_ne!(lfsr.step(), 0);
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let lfsr = Lfsr16::new(0);
        assert_eq!(lfsr.state(), 1);
        let mut l2 = Lfsr16::new(5);
        l2.seed(0);
        assert_eq!(l2.state(), 1);
    }

    #[test]
    fn lfsr_is_deterministic() {
        let mut a = Lfsr16::new(0xBEEF);
        let mut b = Lfsr16::new(0xBEEF);
        for _ in 0..100 {
            assert_eq!(a.next_word(), b.next_word());
        }
    }

    #[test]
    fn splitmix_distribution_sanity() {
        let mut rng = SplitMix64::new(42);
        let mut buckets = [0u32; 16];
        for _ in 0..16_000 {
            buckets[(rng.next_u16() >> 12) as usize] += 1;
        }
        for (i, &count) in buckets.iter().enumerate() {
            assert!((700..1300).contains(&count), "bucket {i} skewed: {count}");
        }
    }

    #[test]
    fn next_below_is_in_range() {
        let mut rng = SplitMix64::new(9);
        for bound in [1u64, 2, 7, 100, 65_536] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn splitmix_state_resumes_sequence() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..13 {
            rng.next_u64();
        }
        let mut resumed = SplitMix64::new(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut rng = SplitMix64::new(1234);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
