//! Picosecond-resolution simulated time.
//!
//! [`SimTime`] is an absolute instant since simulation start; a
//! [`SimDuration`] is the (non-negative) span between instants. Both wrap
//! a `u64` count of picoseconds, giving ~213 days of range — far beyond
//! any experiment in the paper — while still resolving single gate delays
//! (≈139 ps at 1.8 V).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

const PS_PER_NS: u64 = 1_000;
const PS_PER_US: u64 = 1_000_000;
const PS_PER_MS: u64 = 1_000_000_000;
const PS_PER_S: u64 = 1_000_000_000_000;

/// An absolute instant of simulated time, in picoseconds since start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative span of simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// An instant from a raw picosecond count.
    pub const fn from_ps(ps: u64) -> SimTime {
        SimTime(ps)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// This instant in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// This instant in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// This instant in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "since() called with a later instant ({} > {})",
            earlier,
            self
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is after `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A span from a raw picosecond count.
    pub const fn from_ps(ps: u64) -> SimDuration {
        SimDuration(ps)
    }

    /// A span of whole nanoseconds.
    pub const fn from_ns(ns: u64) -> SimDuration {
        SimDuration(ns * PS_PER_NS)
    }

    /// A span of whole microseconds.
    pub const fn from_us(us: u64) -> SimDuration {
        SimDuration(us * PS_PER_US)
    }

    /// A span of whole milliseconds.
    pub const fn from_ms(ms: u64) -> SimDuration {
        SimDuration(ms * PS_PER_MS)
    }

    /// A span of whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * PS_PER_S)
    }

    /// A span from fractional nanoseconds, rounded to the nearest
    /// picosecond. Used for voltage-scaled gate delays (e.g. 138.9 ps).
    pub fn from_ns_f64(ns: f64) -> SimDuration {
        assert!(
            ns >= 0.0 && ns.is_finite(),
            "duration must be finite and non-negative"
        );
        SimDuration((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This span in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// This span in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// This span in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// This span in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// `true` when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("simulated duration overflow"),
        )
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("negative simulated duration"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .expect("simulated duration overflow"),
        )
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: f64) -> SimDuration {
        assert!(
            rhs >= 0.0 && rhs.is_finite(),
            "duration scale must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

/// Shared pretty-printer: picks the largest unit that keeps the value ≥ 1.
macro_rules! fmt_time_body {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let ps = self.0;
            if ps >= PS_PER_S {
                write!(f, "{:.3}s", ps as f64 / PS_PER_S as f64)
            } else if ps >= PS_PER_MS {
                write!(f, "{:.3}ms", ps as f64 / PS_PER_MS as f64)
            } else if ps >= PS_PER_US {
                write!(f, "{:.3}us", ps as f64 / PS_PER_US as f64)
            } else if ps >= PS_PER_NS {
                write!(f, "{:.3}ns", ps as f64 / PS_PER_NS as f64)
            } else {
                write!(f, "{}ps", ps)
            }
        }
    };
}

impl fmt::Display for SimTime {
    fmt_time_body!();
}

impl fmt::Display for SimDuration {
    fmt_time_body!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(SimDuration::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimDuration::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimDuration::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs(1).as_ps(), 1_000_000_000_000);
        assert_eq!(SimDuration::from_ns_f64(2.5).as_ps(), 2_500);
        assert!((SimDuration::from_ms(3).as_us() - 3_000.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_ns(10);
        let u = t + SimDuration::from_ns(5);
        assert_eq!((u - t).as_ps(), 5_000);
        assert_eq!(u.since(t), SimDuration::from_ns(5));
        assert_eq!(t.saturating_since(u), SimDuration::ZERO);
        assert_eq!(SimDuration::from_ns(4) * 3, SimDuration::from_ns(12));
        assert_eq!(SimDuration::from_ns(12) / 4, SimDuration::from_ns(3));
        assert_eq!(SimDuration::from_ns(10) * 0.5, SimDuration::from_ns(5));
        let total: SimDuration = (1..=3).map(SimDuration::from_ns).sum();
        assert_eq!(total, SimDuration::from_ns(6));
    }

    #[test]
    #[should_panic(expected = "later instant")]
    fn since_panics_on_reversed_order() {
        let t = SimTime::from_ps(5);
        let _ = SimTime::ZERO.since(t);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_ps(512).to_string(), "512ps");
        assert_eq!(SimDuration::from_ns(2).to_string(), "2.000ns");
        assert_eq!(SimDuration::from_us(833).to_string(), "833.000us");
        assert_eq!(SimDuration::from_ms(65).to_string(), "65.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_ps(1_500).to_string(), "1.500ns");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ps(1) < SimTime::from_ps(2));
        assert!(SimDuration::from_ns(1) < SimDuration::from_us(1));
    }
}
