//! Property tests for the pending-event calendar: it must behave
//! exactly like a stable sort by (time, insertion order).

use dess::{Calendar, SimTime};
use proptest::prelude::*;

proptest! {
    /// Popping everything yields a stable sort of the scheduled events.
    #[test]
    fn calendar_is_a_stable_priority_queue(times in prop::collection::vec(0u64..50, 0..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::from_ps(t), i);
        }
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_by_key(|&(t, i)| (t, i)); // stable by construction
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| cal.pop().map(|(t, e)| (t.as_ps(), e))).collect();
        prop_assert_eq!(got, expect);
    }

    /// Interleaved schedule/pop never pops out of order relative to the
    /// remaining set.
    #[test]
    fn interleaved_operations_stay_ordered(ops in prop::collection::vec((any::<bool>(), 0u64..100), 1..200)) {
        let mut cal = Calendar::new();
        let mut seq = 0usize;
        let mut last_popped: Option<u64> = None;
        for (push, t) in ops {
            if push || cal.is_empty() {
                // Scheduling into the past relative to pops is allowed by
                // the structure (the *simulator* guards causality), so
                // clamp test inputs to the last popped time.
                let t = t.max(last_popped.unwrap_or(0));
                cal.schedule(SimTime::from_ps(t), seq);
                seq += 1;
            } else {
                let (t, _) = cal.pop().unwrap();
                if let Some(prev) = last_popped {
                    prop_assert!(t.as_ps() >= prev);
                }
                last_popped = Some(t.as_ps());
            }
        }
    }

    /// cancel_where removes exactly the matching events and preserves
    /// the order of the rest.
    #[test]
    fn cancel_where_preserves_order(times in prop::collection::vec(0u64..50, 0..100)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::from_ps(t), i);
        }
        let removed = cal.cancel_where(|&i| i % 3 == 0);
        let expected_removed = times.iter().enumerate().filter(|(i, _)| i % 3 == 0).count();
        prop_assert_eq!(removed, expected_removed);
        let mut expect: Vec<(u64, usize)> = times
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(i, &t)| (t, i))
            .collect();
        expect.sort_by_key(|&(t, i)| (t, i));
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| cal.pop().map(|(t, e)| (t.as_ps(), e))).collect();
        prop_assert_eq!(got, expect);
    }
}
