//! Architectural registers.
//!
//! SNAP names sixteen registers `r0`–`r15`, but only fifteen are physical:
//! `r15` is the register-mapped port to the message coprocessor. An
//! instruction that *reads* `r15` pops the head of the coprocessor's
//! outgoing FIFO; an instruction that *writes* `r15` pushes onto the
//! coprocessor's incoming FIFO (paper §3.3).

use std::fmt;

/// Number of physical general-purpose registers (`r0`–`r14`).
pub const NUM_PHYSICAL_REGS: usize = 15;

/// An architectural register name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    /// The message-coprocessor FIFO port (not a physical register).
    R15,
}

impl Reg {
    /// The register-mapped message-coprocessor port.
    pub const MSG_PORT: Reg = Reg::R15;

    /// All sixteen architectural register names, in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Construct a register from its 4-bit index.
    ///
    /// Returns `None` if `index > 15`.
    pub fn from_index(index: u8) -> Option<Reg> {
        Reg::ALL.get(index as usize).copied()
    }

    /// Construct a register from the low four bits of `index`, ignoring the
    /// rest. Used by the binary decoder, where the field is exactly 4 bits.
    pub fn from_index_truncated(index: u16) -> Reg {
        Reg::ALL[(index & 0xf) as usize]
    }

    /// The 4-bit register index (0–15).
    pub fn index(self) -> u8 {
        self as u8
    }

    /// `true` for `r15`, the message-coprocessor port.
    pub fn is_msg_port(self) -> bool {
        self == Reg::R15
    }

    /// Parse an assembly register name such as `r7` or `R7`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseRegError`] when the name is not `r0`–`r15`.
    pub fn parse(name: &str) -> Result<Reg, ParseRegError> {
        let rest = name
            .strip_prefix('r')
            .or_else(|| name.strip_prefix('R'))
            .ok_or_else(|| ParseRegError {
                name: name.to_owned(),
            })?;
        let index: u8 = rest.parse().map_err(|_| ParseRegError {
            name: name.to_owned(),
        })?;
        Reg::from_index(index).ok_or_else(|| ParseRegError {
            name: name.to_owned(),
        })
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

impl std::str::FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Reg::parse(s)
    }
}

/// Error returned when a string is not a valid register name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    name: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid register name `{}` (expected r0..r15)",
            self.name
        )
    }
}

impl std::error::Error for ParseRegError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in 0..16u8 {
            let r = Reg::from_index(i).unwrap();
            assert_eq!(r.index(), i);
        }
        assert_eq!(Reg::from_index(16), None);
    }

    #[test]
    fn truncated_masks_high_bits() {
        assert_eq!(Reg::from_index_truncated(0x35), Reg::R5);
        assert_eq!(Reg::from_index_truncated(0xf), Reg::R15);
    }

    #[test]
    fn only_r15_is_msg_port() {
        for r in Reg::ALL {
            assert_eq!(r.is_msg_port(), r == Reg::R15, "{r}");
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        for r in Reg::ALL {
            assert_eq!(Reg::parse(&r.to_string()).unwrap(), r);
        }
        assert_eq!(Reg::parse("R12").unwrap(), Reg::R12);
    }

    #[test]
    fn parse_rejects_bad_names() {
        for bad in ["r16", "r-1", "x3", "", "r", "r1x"] {
            assert!(Reg::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
