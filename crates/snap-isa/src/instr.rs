//! Instruction definitions and classification.
//!
//! The SNAP ISA (paper §3.4) groups into five categories:
//!
//! 1. standard RISC instructions (arithmetic, logic, shifts, jumps,
//!    branches, per-bank memory access, add/sub-with-carry),
//! 2. timer-coprocessor instructions (`schedhi`, `schedlo`, `cancel`),
//! 3. message-coprocessor communication (implicit, via `r15`),
//! 4. network-protocol instructions (`bfs`, `rand`, `seed`),
//! 5. event-driven execution instructions (`done`, `setaddr`).
//!
//! ## Binary encoding
//!
//! The paper does not publish encodings; ours uses a fixed field layout
//! for the first word —
//!
//! ```text
//!  15      12 11       8 7        4 3        0
//! +----------+----------+----------+----------+
//! |  opcode  |    rd    |    rs    |    fn    |
//! +----------+----------+----------+----------+
//! ```
//!
//! — and two-word instructions carry a full 16-bit immediate in the
//! following word (immediate operands, memory offsets, branch/jump
//! targets, `bfs` masks). Two-word instructions take two cycles, exactly
//! as in the paper.
//!
//! | opcode | group |
//! |--------|-------------------------------|
//! | `0x0`  | ALU register–register         |
//! | `0x1`  | shift by register             |
//! | `0x2`  | ALU immediate (two-word)      |
//! | `0x3`  | shift by 4-bit immediate      |
//! | `0x4`  | DMEM load/store (two-word)    |
//! | `0x5`  | IMEM load/store (two-word)    |
//! | `0x6`  | conditional branch (two-word) |
//! | `0x7`  | jumps (`jmp`/`jal` two-word; `jr`/`jalr` one-word) |
//! | `0x8`  | timer coprocessor             |
//! | `0x9`  | network protocol (`bfs` two-word; `rand`/`seed` one-word) |
//! | `0xa`  | event-driven execution        |

use crate::reg::Reg;
use crate::{Addr, Word};
use std::fmt;

/// Register–register ALU operations (`opcode 0x0`). All are one-word and
/// destructive: `rd = rd op rs` (unary forms compute `rd = op rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `rd = rd + rs`; sets the carry flag.
    Add,
    /// `rd = rd + rs + carry`; sets the carry flag (multi-precision adds).
    Addc,
    /// `rd = rd - rs`; sets the carry flag (borrow).
    Sub,
    /// `rd = rd - rs - carry`; sets the carry flag (multi-precision subs).
    Subc,
    /// `rd = rd & rs`.
    And,
    /// `rd = rd | rs`.
    Or,
    /// `rd = rd ^ rs`.
    Xor,
    /// `rd = !rs` (bitwise complement of `rs`).
    Not,
    /// `rd = rs`.
    Mov,
    /// `rd = -rs` (two's-complement negate).
    Neg,
    /// `rd = (rd <s rs) ? 1 : 0` (signed compare).
    Slt,
    /// `rd = (rd <u rs) ? 1 : 0` (unsigned compare).
    Sltu,
}

impl AluOp {
    /// All register-ALU operations.
    pub const ALL: [AluOp; 12] = [
        AluOp::Add,
        AluOp::Addc,
        AluOp::Sub,
        AluOp::Subc,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Not,
        AluOp::Mov,
        AluOp::Neg,
        AluOp::Slt,
        AluOp::Sltu,
    ];

    /// The 4-bit function code for this operation.
    pub fn fn_code(self) -> u16 {
        self as u16
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Addc => "addc",
            AluOp::Sub => "sub",
            AluOp::Subc => "subc",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Not => "not",
            AluOp::Mov => "mov",
            AluOp::Neg => "neg",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }

    /// `true` for logic operations (reported separately in Fig. 4).
    pub fn is_logical(self) -> bool {
        matches!(self, AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Not)
    }
}

/// ALU-immediate operations (`opcode 0x2`, two-word): `rd = rd op imm`
/// (`li` loads the immediate directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// `rd = rd + imm`; sets carry.
    Addi,
    /// `rd = rd - imm`; sets carry (borrow).
    Subi,
    /// `rd = rd & imm`.
    Andi,
    /// `rd = rd | imm`.
    Ori,
    /// `rd = rd ^ imm`.
    Xori,
    /// `rd = imm` (load 16-bit immediate).
    Li,
    /// `rd = (rd <s imm) ? 1 : 0`.
    Slti,
    /// `rd = (rd <u imm) ? 1 : 0`.
    Sltiu,
}

impl AluImmOp {
    /// All immediate-ALU operations.
    pub const ALL: [AluImmOp; 8] = [
        AluImmOp::Addi,
        AluImmOp::Subi,
        AluImmOp::Andi,
        AluImmOp::Ori,
        AluImmOp::Xori,
        AluImmOp::Li,
        AluImmOp::Slti,
        AluImmOp::Sltiu,
    ];

    /// The 4-bit function code (mirrors the register form where one exists).
    pub fn fn_code(self) -> u16 {
        match self {
            AluImmOp::Addi => 0,
            AluImmOp::Subi => 2,
            AluImmOp::Andi => 4,
            AluImmOp::Ori => 5,
            AluImmOp::Xori => 6,
            AluImmOp::Li => 8,
            AluImmOp::Slti => 10,
            AluImmOp::Sltiu => 11,
        }
    }

    pub(crate) fn from_fn_code(code: u16) -> Option<AluImmOp> {
        AluImmOp::ALL.into_iter().find(|op| op.fn_code() == code)
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Subi => "subi",
            AluImmOp::Andi => "andi",
            AluImmOp::Ori => "ori",
            AluImmOp::Xori => "xori",
            AluImmOp::Li => "li",
            AluImmOp::Slti => "slti",
            AluImmOp::Sltiu => "sltiu",
        }
    }

    /// `true` for logic operations (reported separately in Fig. 4).
    pub fn is_logical(self) -> bool {
        matches!(self, AluImmOp::Andi | AluImmOp::Ori | AluImmOp::Xori)
    }
}

/// Shift operations, shared between register (`opcode 0x1`) and immediate
/// (`opcode 0x3`) forms. Both forms are one-word instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// Shift left logical.
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Rotate left (used by the CRC inner loops of the radio stack).
    Rol,
    /// Rotate right.
    Ror,
}

impl ShiftOp {
    /// All shift operations.
    pub const ALL: [ShiftOp; 5] = [
        ShiftOp::Sll,
        ShiftOp::Srl,
        ShiftOp::Sra,
        ShiftOp::Rol,
        ShiftOp::Ror,
    ];

    /// The 4-bit function code.
    pub fn fn_code(self) -> u16 {
        self as u16
    }

    /// The register-form assembly mnemonic (`sll`); the immediate form
    /// appends `i` (`slli`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Sll => "sll",
            ShiftOp::Srl => "srl",
            ShiftOp::Sra => "sra",
            ShiftOp::Rol => "rol",
            ShiftOp::Ror => "ror",
        }
    }

    /// The immediate-form mnemonic (`slli`, `srli`, ...).
    pub fn imm_mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Sll => "slli",
            ShiftOp::Srl => "srli",
            ShiftOp::Sra => "srai",
            ShiftOp::Rol => "roli",
            ShiftOp::Ror => "rori",
        }
    }
}

/// Branch conditions (`opcode 0x6`, two-word with absolute word target).
///
/// `Eqz`/`Nez` test a single register; their `rb` operand is canonically
/// `r0` and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Taken when `ra == rb`.
    Eq,
    /// Taken when `ra != rb`.
    Ne,
    /// Taken when `ra <s rb` (signed).
    Lt,
    /// Taken when `ra >=s rb` (signed).
    Ge,
    /// Taken when `ra <u rb` (unsigned).
    Ltu,
    /// Taken when `ra >=u rb` (unsigned).
    Geu,
    /// Taken when `ra == 0`.
    Eqz,
    /// Taken when `ra != 0`.
    Nez,
}

impl BranchCond {
    /// All branch conditions.
    pub const ALL: [BranchCond; 8] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
        BranchCond::Eqz,
        BranchCond::Nez,
    ];

    /// The 4-bit function code.
    pub fn fn_code(self) -> u16 {
        self as u16
    }

    /// The assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
            BranchCond::Eqz => "beqz",
            BranchCond::Nez => "bnez",
        }
    }

    /// `true` when the condition only inspects `ra` (`beqz`, `bnez`).
    pub fn is_unary(self) -> bool {
        matches!(self, BranchCond::Eqz | BranchCond::Nez)
    }

    /// Evaluate the condition on two operand values.
    pub fn eval(self, a: Word, b: Word) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i16) < (b as i16),
            BranchCond::Ge => (a as i16) >= (b as i16),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
            BranchCond::Eqz => a == 0,
            BranchCond::Nez => a != 0,
        }
    }
}

/// A decoded SNAP instruction.
///
/// See the [module documentation](self) for the binary encoding. Two-word
/// instructions ([`Instruction::is_two_word`]) cost an extra fetch cycle
/// and an extra IMEM word of energy, exactly the distinction the paper's
/// Fig. 4 draws between one-word, two-word and memory instruction classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Register–register ALU operation: `rd = rd op rs`.
    AluReg {
        /// The operation.
        op: AluOp,
        /// Destination (and first source) register.
        rd: Reg,
        /// Second source register.
        rs: Reg,
    },
    /// ALU-immediate operation (two-word): `rd = rd op imm`.
    AluImm {
        /// The operation.
        op: AluImmOp,
        /// Destination (and source) register.
        rd: Reg,
        /// 16-bit immediate operand.
        imm: Word,
    },
    /// Shift by register: `rd = rd shift (rs & 15)`.
    ShiftReg {
        /// The shift kind.
        op: ShiftOp,
        /// Destination (and source) register.
        rd: Reg,
        /// Register holding the shift amount (only the low 4 bits used).
        rs: Reg,
    },
    /// Shift by 4-bit immediate: `rd = rd shift amount`.
    ShiftImm {
        /// The shift kind.
        op: ShiftOp,
        /// Destination (and source) register.
        rd: Reg,
        /// Shift amount, 0–15.
        amount: u8,
    },
    /// DMEM load (two-word): `rd = DMEM[base + offset]`.
    Load {
        /// Destination register.
        rd: Reg,
        /// Base-address register.
        base: Reg,
        /// Word offset added to the base.
        offset: Word,
    },
    /// DMEM store (two-word): `DMEM[base + offset] = rs`.
    Store {
        /// Register holding the value to store.
        rs: Reg,
        /// Base-address register.
        base: Reg,
        /// Word offset added to the base.
        offset: Word,
    },
    /// IMEM load (two-word): `rd = IMEM[base + offset]`. Lets programs
    /// inspect their own code.
    ImemLoad {
        /// Destination register.
        rd: Reg,
        /// Base-address register.
        base: Reg,
        /// Word offset added to the base.
        offset: Word,
    },
    /// IMEM store (two-word): `IMEM[base + offset] = rs`. Self-modifying
    /// code / over-the-radio bootstrapping (paper §3.1).
    ImemStore {
        /// Register holding the value to store.
        rs: Reg,
        /// Base-address register.
        base: Reg,
        /// Word offset added to the base.
        offset: Word,
    },
    /// Conditional branch to an absolute word address (two-word).
    Branch {
        /// The condition.
        cond: BranchCond,
        /// First operand register.
        ra: Reg,
        /// Second operand register (canonically `r0` for `beqz`/`bnez`).
        rb: Reg,
        /// Absolute IMEM word address of the branch target.
        target: Addr,
    },
    /// Unconditional jump to an absolute word address (two-word).
    Jmp {
        /// Absolute IMEM word address of the target.
        target: Addr,
    },
    /// Jump-and-link (two-word): `rd = return address; pc = target`.
    Jal {
        /// Register receiving the return (word) address.
        rd: Reg,
        /// Absolute IMEM word address of the target.
        target: Addr,
    },
    /// Jump to register (one-word): `pc = rs`.
    Jr {
        /// Register holding the target word address.
        rs: Reg,
    },
    /// Jump-and-link register (one-word): `rd = return address; pc = rs`.
    Jalr {
        /// Register receiving the return (word) address.
        rd: Reg,
        /// Register holding the target word address.
        rs: Reg,
    },
    /// `schedhi $tsreg, $val` — set the top 8 bits of a 24-bit timer
    /// register (paper §3.2/§3.4). `rt` holds the timer number, `rv` the
    /// value (low 8 bits used).
    SchedHi {
        /// Register holding the timer number (0–2).
        rt: Reg,
        /// Register holding the high 8 bits of the timeout.
        rv: Reg,
    },
    /// `schedlo $tsreg, $val` — set the low 16 bits of a timer register
    /// and start it decrementing.
    SchedLo {
        /// Register holding the timer number (0–2).
        rt: Reg,
        /// Register holding the low 16 bits of the timeout.
        rv: Reg,
    },
    /// `cancel $tsreg` — cancel a scheduled timer. A cancelled timer still
    /// inserts an event token (paper §3.2 race-avoidance rule).
    Cancel {
        /// Register holding the timer number (0–2).
        rt: Reg,
    },
    /// Bit-field set (two-word): `rd = (rd & !mask) | (rs & mask)`.
    Bfs {
        /// Destination register.
        rd: Reg,
        /// Source register supplying the field bits.
        rs: Reg,
        /// Mask selecting which bits of `rd` are replaced.
        mask: Word,
    },
    /// `rand rd` — next pseudo-random value from the hardware LFSR.
    Rand {
        /// Destination register.
        rd: Reg,
    },
    /// `seed rs` — seed the hardware LFSR.
    Seed {
        /// Register holding the seed value.
        rs: Reg,
    },
    /// `done` — end of handler: fetch stalls until the next event token.
    Done,
    /// `setaddr rev, raddr` — write the event-handler table:
    /// `table[rev & 7] = raddr`.
    SetAddr {
        /// Register holding the event number.
        rev: Reg,
        /// Register holding the handler's word address.
        raddr: Reg,
    },
    /// No operation.
    Nop,
    /// Stop the simulation (simulator extension, not in the paper; used by
    /// standalone test programs that have no more events to wait for).
    Halt,
    /// Post a software event to the core's own event queue (simulator
    /// extension used for TinyOS-style task chaining): event number in
    /// `rn & 7`.
    SwEvent {
        /// Register holding the event number.
        rn: Reg,
    },
}

/// Instruction classes used for energy and timing attribution.
///
/// These mirror the categories of the paper's Fig. 4 ("Arith Reg",
/// "Shift", "Arith Imm", "Logical Imm", loads/stores, ...) plus the
/// coprocessor/event classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstructionClass {
    /// One-word register arithmetic (`add`, `sub`, `slt`, `mov`, ...).
    ArithReg,
    /// One-word register logic (`and`, `or`, `xor`, `not`).
    LogicalReg,
    /// One-word shifts (register or immediate amount).
    Shift,
    /// Two-word immediate arithmetic (`addi`, `li`, `slti`, ...).
    ArithImm,
    /// Two-word immediate logic (`andi`, `ori`, `xori`).
    LogicalImm,
    /// Two-word DMEM load.
    Load,
    /// Two-word DMEM store.
    Store,
    /// Two-word IMEM load.
    ImemLoad,
    /// Two-word IMEM store.
    ImemStore,
    /// Two-word conditional branch.
    Branch,
    /// Jumps (`jmp`/`jal` two-word, `jr`/`jalr` one-word).
    Jump,
    /// Timer-coprocessor instructions.
    Timer,
    /// `bfs` bit-field set.
    Bitfield,
    /// `rand` / `seed` LFSR instructions.
    Rand,
    /// Event-driven execution (`done`, `setaddr`, `swev`, `halt`).
    Event,
    /// `nop`.
    Nop,
}

impl InstructionClass {
    /// All classes, in display order.
    pub const ALL: [InstructionClass; 16] = [
        InstructionClass::ArithReg,
        InstructionClass::LogicalReg,
        InstructionClass::Shift,
        InstructionClass::ArithImm,
        InstructionClass::LogicalImm,
        InstructionClass::Load,
        InstructionClass::Store,
        InstructionClass::ImemLoad,
        InstructionClass::ImemStore,
        InstructionClass::Branch,
        InstructionClass::Jump,
        InstructionClass::Timer,
        InstructionClass::Bitfield,
        InstructionClass::Rand,
        InstructionClass::Event,
        InstructionClass::Nop,
    ];

    /// Human-readable label matching the paper's figure captions.
    pub fn label(self) -> &'static str {
        match self {
            InstructionClass::ArithReg => "Arith Reg",
            InstructionClass::LogicalReg => "Logical Reg",
            InstructionClass::Shift => "Shift",
            InstructionClass::ArithImm => "Arith Imm",
            InstructionClass::LogicalImm => "Logical Imm",
            InstructionClass::Load => "Load",
            InstructionClass::Store => "Store",
            InstructionClass::ImemLoad => "IMEM Load",
            InstructionClass::ImemStore => "IMEM Store",
            InstructionClass::Branch => "Branch",
            InstructionClass::Jump => "Jump",
            InstructionClass::Timer => "Timer",
            InstructionClass::Bitfield => "Bitfield",
            InstructionClass::Rand => "Rand",
            InstructionClass::Event => "Event",
            InstructionClass::Nop => "Nop",
        }
    }
}

impl fmt::Display for InstructionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The binary form of an instruction: one or two 16-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EncodedWords {
    first: Word,
    second: Option<Word>,
}

impl EncodedWords {
    /// A one-word encoding.
    pub fn one(first: Word) -> EncodedWords {
        EncodedWords {
            first,
            second: None,
        }
    }

    /// A two-word encoding.
    pub fn two(first: Word, second: Word) -> EncodedWords {
        EncodedWords {
            first,
            second: Some(second),
        }
    }

    /// The first (or only) instruction word.
    pub fn first(&self) -> Word {
        self.first
    }

    /// The immediate word, if this is a two-word instruction.
    pub fn second(&self) -> Option<Word> {
        self.second
    }

    /// Number of words (1 or 2).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        if self.second.is_some() {
            2
        } else {
            1
        }
    }

    /// Iterate over the words in memory order.
    pub fn iter(&self) -> impl Iterator<Item = Word> + '_ {
        std::iter::once(self.first).chain(self.second)
    }
}

impl IntoIterator for EncodedWords {
    type Item = Word;
    type IntoIter = std::iter::Chain<std::iter::Once<Word>, std::option::IntoIter<Word>>;

    fn into_iter(self) -> Self::IntoIter {
        std::iter::once(self.first).chain(self.second)
    }
}

impl Instruction {
    /// The energy/timing class of this instruction (Fig. 4 categories).
    pub fn class(&self) -> InstructionClass {
        match self {
            Instruction::AluReg { op: AluOp::Mov, .. } => InstructionClass::ArithReg,
            Instruction::AluReg { op, .. } if op.is_logical() => InstructionClass::LogicalReg,
            Instruction::AluReg { .. } => InstructionClass::ArithReg,
            Instruction::AluImm { op, .. } if op.is_logical() => InstructionClass::LogicalImm,
            Instruction::AluImm { .. } => InstructionClass::ArithImm,
            Instruction::ShiftReg { .. } | Instruction::ShiftImm { .. } => InstructionClass::Shift,
            Instruction::Load { .. } => InstructionClass::Load,
            Instruction::Store { .. } => InstructionClass::Store,
            Instruction::ImemLoad { .. } => InstructionClass::ImemLoad,
            Instruction::ImemStore { .. } => InstructionClass::ImemStore,
            Instruction::Branch { .. } => InstructionClass::Branch,
            Instruction::Jmp { .. }
            | Instruction::Jal { .. }
            | Instruction::Jr { .. }
            | Instruction::Jalr { .. } => InstructionClass::Jump,
            Instruction::SchedHi { .. }
            | Instruction::SchedLo { .. }
            | Instruction::Cancel { .. } => InstructionClass::Timer,
            Instruction::Bfs { .. } => InstructionClass::Bitfield,
            Instruction::Rand { .. } | Instruction::Seed { .. } => InstructionClass::Rand,
            Instruction::Done
            | Instruction::SetAddr { .. }
            | Instruction::Halt
            | Instruction::SwEvent { .. } => InstructionClass::Event,
            Instruction::Nop => InstructionClass::Nop,
        }
    }

    /// Number of 16-bit IMEM words this instruction occupies (1 or 2).
    pub fn word_count(&self) -> usize {
        if self.is_two_word() {
            2
        } else {
            1
        }
    }

    /// `true` when the instruction carries a 16-bit immediate word.
    pub fn is_two_word(&self) -> bool {
        matches!(
            self,
            Instruction::AluImm { .. }
                | Instruction::Load { .. }
                | Instruction::Store { .. }
                | Instruction::ImemLoad { .. }
                | Instruction::ImemStore { .. }
                | Instruction::Branch { .. }
                | Instruction::Jmp { .. }
                | Instruction::Jal { .. }
                | Instruction::Bfs { .. }
        )
    }

    /// `true` when execution performs a DMEM access.
    pub fn accesses_dmem(&self) -> bool {
        matches!(self, Instruction::Load { .. } | Instruction::Store { .. })
    }

    /// `true` when execution performs a *data* access to IMEM (beyond
    /// instruction fetch).
    pub fn accesses_imem_data(&self) -> bool {
        matches!(
            self,
            Instruction::ImemLoad { .. } | Instruction::ImemStore { .. }
        )
    }

    /// Registers read by this instruction, in operand order.
    ///
    /// Used by the core to detect reads of the `r15` message port. Note
    /// that destructive ALU/shift destination registers are also sources.
    pub fn source_regs(&self) -> Vec<Reg> {
        match *self {
            Instruction::AluReg {
                op: AluOp::Mov | AluOp::Not | AluOp::Neg,
                rs,
                ..
            } => vec![rs],
            Instruction::AluReg { rd, rs, .. } => vec![rd, rs],
            Instruction::AluImm {
                op: AluImmOp::Li, ..
            } => vec![],
            Instruction::AluImm { rd, .. } => vec![rd],
            Instruction::ShiftReg { rd, rs, .. } => vec![rd, rs],
            Instruction::ShiftImm { rd, .. } => vec![rd],
            Instruction::Load { base, .. } => vec![base],
            Instruction::Store { rs, base, .. } => vec![rs, base],
            Instruction::ImemLoad { base, .. } => vec![base],
            Instruction::ImemStore { rs, base, .. } => vec![rs, base],
            Instruction::Branch { cond, ra, rb, .. } => {
                if cond.is_unary() {
                    vec![ra]
                } else {
                    vec![ra, rb]
                }
            }
            Instruction::Jmp { .. } => vec![],
            Instruction::Jal { .. } => vec![],
            Instruction::Jr { rs } => vec![rs],
            Instruction::Jalr { rs, .. } => vec![rs],
            Instruction::SchedHi { rt, rv } | Instruction::SchedLo { rt, rv } => vec![rt, rv],
            Instruction::Cancel { rt } => vec![rt],
            Instruction::Bfs { rd, rs, .. } => vec![rd, rs],
            Instruction::Rand { .. } => vec![],
            Instruction::Seed { rs } => vec![rs],
            Instruction::Done | Instruction::Nop | Instruction::Halt => vec![],
            Instruction::SetAddr { rev, raddr } => vec![rev, raddr],
            Instruction::SwEvent { rn } => vec![rn],
        }
    }

    /// Register written by this instruction, if any.
    pub fn dest_reg(&self) -> Option<Reg> {
        match *self {
            Instruction::AluReg { rd, .. }
            | Instruction::AluImm { rd, .. }
            | Instruction::ShiftReg { rd, .. }
            | Instruction::ShiftImm { rd, .. }
            | Instruction::Load { rd, .. }
            | Instruction::ImemLoad { rd, .. }
            | Instruction::Jal { rd, .. }
            | Instruction::Jalr { rd, .. }
            | Instruction::Bfs { rd, .. }
            | Instruction::Rand { rd } => Some(rd),
            _ => None,
        }
    }

    /// `true` when this instruction reads the `r15` message port (popping
    /// the message coprocessor's outgoing FIFO).
    pub fn reads_msg_port(&self) -> bool {
        self.source_regs().contains(&Reg::MSG_PORT)
    }

    /// `true` when this instruction writes the `r15` message port (pushing
    /// onto the message coprocessor's incoming FIFO).
    pub fn writes_msg_port(&self) -> bool {
        self.dest_reg() == Some(Reg::MSG_PORT)
    }

    /// The assembly mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::AluReg { op, .. } => op.mnemonic(),
            Instruction::AluImm { op, .. } => op.mnemonic(),
            Instruction::ShiftReg { op, .. } => op.mnemonic(),
            Instruction::ShiftImm { op, .. } => op.imm_mnemonic(),
            Instruction::Load { .. } => "lw",
            Instruction::Store { .. } => "sw",
            Instruction::ImemLoad { .. } => "ilw",
            Instruction::ImemStore { .. } => "isw",
            Instruction::Branch { cond, .. } => cond.mnemonic(),
            Instruction::Jmp { .. } => "jmp",
            Instruction::Jal { .. } => "jal",
            Instruction::Jr { .. } => "jr",
            Instruction::Jalr { .. } => "jalr",
            Instruction::SchedHi { .. } => "schedhi",
            Instruction::SchedLo { .. } => "schedlo",
            Instruction::Cancel { .. } => "cancel",
            Instruction::Bfs { .. } => "bfs",
            Instruction::Rand { .. } => "rand",
            Instruction::Seed { .. } => "seed",
            Instruction::Done => "done",
            Instruction::SetAddr { .. } => "setaddr",
            Instruction::Nop => "nop",
            Instruction::Halt => "halt",
            Instruction::SwEvent { .. } => "swev",
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.mnemonic();
        match *self {
            Instruction::AluReg { rd, rs, .. } | Instruction::ShiftReg { rd, rs, .. } => {
                write!(f, "{m} {rd}, {rs}")
            }
            Instruction::AluImm { rd, imm, .. } => write!(f, "{m} {rd}, {imm:#x}"),
            Instruction::ShiftImm { rd, amount, .. } => write!(f, "{m} {rd}, {amount}"),
            Instruction::Load { rd, base, offset } | Instruction::ImemLoad { rd, base, offset } => {
                write!(f, "{m} {rd}, {offset:#x}({base})")
            }
            Instruction::Store { rs, base, offset }
            | Instruction::ImemStore { rs, base, offset } => {
                write!(f, "{m} {rs}, {offset:#x}({base})")
            }
            Instruction::Branch {
                cond,
                ra,
                rb,
                target,
            } => {
                if cond.is_unary() {
                    write!(f, "{m} {ra}, {target:#x}")
                } else {
                    write!(f, "{m} {ra}, {rb}, {target:#x}")
                }
            }
            Instruction::Jmp { target } => write!(f, "{m} {target:#x}"),
            Instruction::Jal { rd, target } => write!(f, "{m} {rd}, {target:#x}"),
            Instruction::Jr { rs } => write!(f, "{m} {rs}"),
            Instruction::Jalr { rd, rs } => write!(f, "{m} {rd}, {rs}"),
            Instruction::SchedHi { rt, rv } | Instruction::SchedLo { rt, rv } => {
                write!(f, "{m} {rt}, {rv}")
            }
            Instruction::Cancel { rt } => write!(f, "{m} {rt}"),
            Instruction::Bfs { rd, rs, mask } => write!(f, "{m} {rd}, {rs}, {mask:#x}"),
            Instruction::Rand { rd } => write!(f, "{m} {rd}"),
            Instruction::Seed { rs } => write!(f, "{m} {rs}"),
            Instruction::SetAddr { rev, raddr } => write!(f, "{m} {rev}, {raddr}"),
            Instruction::Done | Instruction::Nop | Instruction::Halt => f.write_str(m),
            Instruction::SwEvent { rn } => write!(f, "{m} {rn}"),
        }
    }
}
