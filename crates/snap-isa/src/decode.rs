//! Binary decoding: 16-bit words → [`Instruction`].

use crate::encode::{event_fn, jump_fn, mem_fn, net_fn, opcode, timer_fn};
use crate::instr::{AluImmOp, AluOp, BranchCond, Instruction, ShiftOp};
use crate::reg::Reg;
use crate::{DecodeError, Word};

impl Instruction {
    /// Decode an instruction from its first word and (for two-word
    /// instructions) the following word.
    ///
    /// # Errors
    ///
    /// * [`DecodeError::IllegalInstruction`] — unassigned opcode/function.
    /// * [`DecodeError::MissingImmediate`] — `first` starts a two-word
    ///   instruction but `second` is `None`.
    pub fn decode(first: Word, second: Option<Word>) -> Result<Instruction, DecodeError> {
        let op = first >> 12;
        let rd = Reg::from_index_truncated(first >> 8);
        let rs = Reg::from_index_truncated(first >> 4);
        let func = first & 0xf;
        let illegal = || DecodeError::IllegalInstruction { word: first };
        let imm = || -> Result<Word, DecodeError> {
            second.ok_or(DecodeError::MissingImmediate { word: first })
        };

        match op {
            opcode::ALU_REG => {
                let alu = *AluOp::ALL.get(func as usize).ok_or_else(illegal)?;
                Ok(Instruction::AluReg { op: alu, rd, rs })
            }
            opcode::SHIFT_REG => {
                let sh = *ShiftOp::ALL.get(func as usize).ok_or_else(illegal)?;
                Ok(Instruction::ShiftReg { op: sh, rd, rs })
            }
            opcode::ALU_IMM => {
                let alu = AluImmOp::from_fn_code(func).ok_or_else(illegal)?;
                Ok(Instruction::AluImm {
                    op: alu,
                    rd,
                    imm: imm()?,
                })
            }
            opcode::SHIFT_IMM => {
                let sh = *ShiftOp::ALL.get(func as usize).ok_or_else(illegal)?;
                let amount = ((first >> 4) & 0xf) as u8;
                Ok(Instruction::ShiftImm { op: sh, rd, amount })
            }
            opcode::DMEM => match func {
                mem_fn::LOAD => Ok(Instruction::Load {
                    rd,
                    base: rs,
                    offset: imm()?,
                }),
                mem_fn::STORE => Ok(Instruction::Store {
                    rs: rd,
                    base: rs,
                    offset: imm()?,
                }),
                _ => Err(illegal()),
            },
            opcode::IMEM => match func {
                mem_fn::LOAD => Ok(Instruction::ImemLoad {
                    rd,
                    base: rs,
                    offset: imm()?,
                }),
                mem_fn::STORE => Ok(Instruction::ImemStore {
                    rs: rd,
                    base: rs,
                    offset: imm()?,
                }),
                _ => Err(illegal()),
            },
            opcode::BRANCH => {
                let cond = *BranchCond::ALL.get(func as usize).ok_or_else(illegal)?;
                let rb = if cond.is_unary() { Reg::R0 } else { rs };
                Ok(Instruction::Branch {
                    cond,
                    ra: rd,
                    rb,
                    target: imm()?,
                })
            }
            opcode::JUMP => match func {
                jump_fn::JMP => Ok(Instruction::Jmp { target: imm()? }),
                jump_fn::JAL => Ok(Instruction::Jal { rd, target: imm()? }),
                jump_fn::JR => Ok(Instruction::Jr { rs }),
                jump_fn::JALR => Ok(Instruction::Jalr { rd, rs }),
                _ => Err(illegal()),
            },
            opcode::TIMER => match func {
                timer_fn::SCHEDHI => Ok(Instruction::SchedHi { rt: rd, rv: rs }),
                timer_fn::SCHEDLO => Ok(Instruction::SchedLo { rt: rd, rv: rs }),
                timer_fn::CANCEL => Ok(Instruction::Cancel { rt: rd }),
                _ => Err(illegal()),
            },
            opcode::NET => match func {
                net_fn::BFS => Ok(Instruction::Bfs {
                    rd,
                    rs,
                    mask: imm()?,
                }),
                net_fn::RAND => Ok(Instruction::Rand { rd }),
                net_fn::SEED => Ok(Instruction::Seed { rs }),
                _ => Err(illegal()),
            },
            opcode::EVENT => match func {
                event_fn::DONE => Ok(Instruction::Done),
                event_fn::SETADDR => Ok(Instruction::SetAddr { rev: rd, raddr: rs }),
                event_fn::NOP => Ok(Instruction::Nop),
                event_fn::HALT => Ok(Instruction::Halt),
                event_fn::SWEV => Ok(Instruction::SwEvent { rn: rd }),
                _ => Err(illegal()),
            },
            _ => Err(illegal()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::EncodedWords;

    /// A representative instance of every instruction variant.
    pub(crate) fn sample_instructions() -> Vec<Instruction> {
        let mut v = Vec::new();
        for op in AluOp::ALL {
            v.push(Instruction::AluReg {
                op,
                rd: Reg::R3,
                rs: Reg::R7,
            });
        }
        for op in AluImmOp::ALL {
            v.push(Instruction::AluImm {
                op,
                rd: Reg::R12,
                imm: 0xbeef,
            });
        }
        for op in ShiftOp::ALL {
            v.push(Instruction::ShiftReg {
                op,
                rd: Reg::R1,
                rs: Reg::R2,
            });
            v.push(Instruction::ShiftImm {
                op,
                rd: Reg::R1,
                amount: 9,
            });
        }
        v.push(Instruction::Load {
            rd: Reg::R4,
            base: Reg::R5,
            offset: 0x10,
        });
        v.push(Instruction::Store {
            rs: Reg::R4,
            base: Reg::R5,
            offset: 0x11,
        });
        v.push(Instruction::ImemLoad {
            rd: Reg::R4,
            base: Reg::R5,
            offset: 0x12,
        });
        v.push(Instruction::ImemStore {
            rs: Reg::R4,
            base: Reg::R5,
            offset: 0x13,
        });
        for cond in BranchCond::ALL {
            let rb = if cond.is_unary() { Reg::R0 } else { Reg::R9 };
            v.push(Instruction::Branch {
                cond,
                ra: Reg::R8,
                rb,
                target: 0x123,
            });
        }
        v.push(Instruction::Jmp { target: 0x200 });
        v.push(Instruction::Jal {
            rd: Reg::R14,
            target: 0x201,
        });
        v.push(Instruction::Jr { rs: Reg::R14 });
        v.push(Instruction::Jalr {
            rd: Reg::R14,
            rs: Reg::R6,
        });
        v.push(Instruction::SchedHi {
            rt: Reg::R1,
            rv: Reg::R2,
        });
        v.push(Instruction::SchedLo {
            rt: Reg::R1,
            rv: Reg::R2,
        });
        v.push(Instruction::Cancel { rt: Reg::R1 });
        v.push(Instruction::Bfs {
            rd: Reg::R2,
            rs: Reg::R3,
            mask: 0x0ff0,
        });
        v.push(Instruction::Rand { rd: Reg::R10 });
        v.push(Instruction::Seed { rs: Reg::R10 });
        v.push(Instruction::Done);
        v.push(Instruction::SetAddr {
            rev: Reg::R1,
            raddr: Reg::R2,
        });
        v.push(Instruction::Nop);
        v.push(Instruction::Halt);
        v.push(Instruction::SwEvent { rn: Reg::R3 });
        v
    }

    #[test]
    fn encode_decode_round_trip_all_variants() {
        for ins in sample_instructions() {
            let w = ins.encode();
            let back = Instruction::decode(w.first(), w.second())
                .unwrap_or_else(|e| panic!("decoding {ins}: {e}"));
            assert_eq!(back, ins, "round trip of {ins}");
        }
    }

    #[test]
    fn word_count_matches_encoding() {
        for ins in sample_instructions() {
            assert_eq!(ins.encode().len(), ins.word_count(), "{ins}");
            assert_eq!(ins.is_two_word(), ins.word_count() == 2, "{ins}");
        }
    }

    #[test]
    fn first_word_two_word_predicate_agrees() {
        for ins in sample_instructions() {
            let w = ins.encode();
            assert_eq!(
                Instruction::first_word_is_two_word(w.first()),
                ins.is_two_word(),
                "{ins}"
            );
        }
    }

    #[test]
    fn two_word_without_immediate_is_error() {
        let w = Instruction::Jmp { target: 5 }.encode();
        assert_eq!(
            Instruction::decode(w.first(), None),
            Err(DecodeError::MissingImmediate { word: w.first() })
        );
    }

    #[test]
    fn illegal_opcodes_are_rejected() {
        // Opcodes 0xb..=0xf are unassigned.
        for op in 0xbu16..=0xf {
            let word = op << 12;
            assert_eq!(
                Instruction::decode(word, Some(0)),
                Err(DecodeError::IllegalInstruction { word })
            );
        }
        // Unassigned function codes inside assigned groups.
        for word in [
            0x000c_u16, 0x1005, 0x2001, 0x4002, 0x5003, 0x7004, 0x8003, 0x9003, 0xa005,
        ] {
            assert_eq!(
                Instruction::decode(word, Some(0)),
                Err(DecodeError::IllegalInstruction { word }),
                "word {word:#06x}"
            );
        }
    }

    #[test]
    fn msg_port_detection() {
        let read = Instruction::AluReg {
            op: AluOp::Mov,
            rd: Reg::R1,
            rs: Reg::R15,
        };
        assert!(read.reads_msg_port());
        assert!(!read.writes_msg_port());

        let write = Instruction::AluReg {
            op: AluOp::Mov,
            rd: Reg::R15,
            rs: Reg::R1,
        };
        assert!(write.writes_msg_port());
        assert!(!write.reads_msg_port());

        // Destructive add reads its destination too.
        let rmw = Instruction::AluReg {
            op: AluOp::Add,
            rd: Reg::R15,
            rs: Reg::R1,
        };
        assert!(rmw.reads_msg_port() && rmw.writes_msg_port());
    }

    #[test]
    fn classes_are_stable() {
        use crate::instr::InstructionClass as C;
        let cases = [
            (
                Instruction::AluReg {
                    op: AluOp::Add,
                    rd: Reg::R1,
                    rs: Reg::R2,
                },
                C::ArithReg,
            ),
            (
                Instruction::AluReg {
                    op: AluOp::And,
                    rd: Reg::R1,
                    rs: Reg::R2,
                },
                C::LogicalReg,
            ),
            (
                Instruction::AluImm {
                    op: AluImmOp::Addi,
                    rd: Reg::R1,
                    imm: 1,
                },
                C::ArithImm,
            ),
            (
                Instruction::AluImm {
                    op: AluImmOp::Ori,
                    rd: Reg::R1,
                    imm: 1,
                },
                C::LogicalImm,
            ),
            (
                Instruction::ShiftImm {
                    op: ShiftOp::Sll,
                    rd: Reg::R1,
                    amount: 1,
                },
                C::Shift,
            ),
            (
                Instruction::Load {
                    rd: Reg::R1,
                    base: Reg::R2,
                    offset: 0,
                },
                C::Load,
            ),
            (
                Instruction::Store {
                    rs: Reg::R1,
                    base: Reg::R2,
                    offset: 0,
                },
                C::Store,
            ),
            (Instruction::Jmp { target: 0 }, C::Jump),
            (Instruction::Done, C::Event),
        ];
        for (ins, class) in cases {
            assert_eq!(ins.class(), class, "{ins}");
        }
    }

    #[test]
    fn display_formats_reasonably() {
        let ins = Instruction::Load {
            rd: Reg::R4,
            base: Reg::R13,
            offset: 0x20,
        };
        assert_eq!(ins.to_string(), "lw r4, 0x20(r13)");
        assert_eq!(Instruction::Done.to_string(), "done");
        assert_eq!(
            Instruction::Branch {
                cond: BranchCond::Eqz,
                ra: Reg::R2,
                rb: Reg::R0,
                target: 0x40
            }
            .to_string(),
            "beqz r2, 0x40"
        );
    }

    #[test]
    fn encoded_words_iterates_in_memory_order() {
        let two = EncodedWords::two(0xaaaa, 0xbbbb);
        assert_eq!(two.into_iter().collect::<Vec<_>>(), vec![0xaaaa, 0xbbbb]);
        let one = EncodedWords::one(0x1234);
        assert_eq!(one.into_iter().collect::<Vec<_>>(), vec![0x1234]);
    }
}

#[cfg(test)]
mod exhaustive {
    use super::*;

    /// Sweep all 65536 possible first words: decoding either succeeds
    /// (and is stable under canonical re-encoding) or reports an
    /// illegal instruction — never panics, never disagrees with the
    /// fetch unit's two-word predicate.
    #[test]
    fn all_first_words_decode_or_reject() {
        let mut legal = 0u32;
        for first in 0..=u16::MAX {
            match Instruction::decode(first, Some(0x1234)) {
                Ok(ins) => {
                    legal += 1;
                    assert_eq!(
                        Instruction::first_word_is_two_word(first),
                        ins.is_two_word(),
                        "{first:#06x}"
                    );
                    let enc = ins.encode();
                    let again = Instruction::decode(enc.first(), enc.second()).unwrap();
                    assert_eq!(again, ins, "{first:#06x}");
                }
                Err(DecodeError::IllegalInstruction { word }) => {
                    assert_eq!(word, first);
                }
                Err(other) => panic!("{first:#06x}: unexpected {other}"),
            }
        }
        // Regression canary on the opcode map: 11 assigned major
        // opcodes with their current function-code subsets.
        assert_eq!(legal, 14_592, "the encoding map changed");
    }

    /// Stronger property over the full 16-bit space: re-encoding a
    /// decoded word is *idempotent canonicalization*. Some legal words
    /// carry don't-care bits that decode masks and encode zeroes
    /// (alias words); for every legal word the canonical form must
    /// decode back to the identical instruction and be a fixpoint of
    /// encode∘decode, and two-word forms must reproduce their
    /// immediate word bit-exactly for several immediate patterns.
    /// This is the assembler/disassembler contract the differential
    /// fuzzer's round-trip tests rely on.
    #[test]
    fn all_words_canonicalize_idempotently() {
        let mut canonical = 0u32;
        let mut aliases = 0u32;
        let mut two_word = 0u32;
        for first in 0..=u16::MAX {
            match Instruction::decode(first, Some(0x0000)) {
                Ok(ins) => {
                    let enc = ins.encode();
                    if enc.first() == first {
                        canonical += 1;
                    } else {
                        aliases += 1;
                    }
                    // The canonical form is stable: same instruction,
                    // and a fixpoint of encode∘decode.
                    let again = Instruction::decode(enc.first(), enc.second())
                        .unwrap_or_else(|e| panic!("{first:#06x}: canonical form illegal: {e}"));
                    assert_eq!(again, ins, "{first:#06x}");
                    let enc2 = again.encode();
                    assert_eq!(enc2.first(), enc.first(), "{first:#06x} not a fixpoint");
                    assert_eq!(enc2.second(), enc.second(), "{first:#06x} not a fixpoint");
                    if ins.is_two_word() {
                        two_word += 1;
                        // The immediate word passes through untouched
                        // for any bit pattern.
                        for second in [0xffff, 0x5a5a, first ^ 0xa5a5] {
                            let v = Instruction::decode(first, Some(second)).unwrap();
                            let e = v.encode();
                            assert_eq!(e.first(), enc.first(), "{first:#06x}");
                            assert_eq!(e.second(), Some(second), "{first:#06x}");
                        }
                    } else {
                        assert_eq!(enc.second(), None, "{first:#06x}");
                    }
                }
                // Legality never depends on the second word.
                Err(_) => {
                    for second in [0xffff, 0x5a5a, first ^ 0xa5a5] {
                        assert!(
                            Instruction::decode(first, Some(second)).is_err(),
                            "{first:#06x}: legality depends on the second word"
                        );
                    }
                }
            }
        }
        assert!(two_word > 0, "sweep never hit a two-word instruction");
        // Canaries alongside the legal-first-word count: the
        // don't-care alias population is part of the encoding map.
        assert_eq!(canonical + aliases, 14_592, "the encoding map changed");
        assert_eq!(aliases, 4_860, "the don't-care bit population changed");
    }
}
