//! Event tokens and the event-handler table layout.
//!
//! All asynchrony in SNAP is funnelled through the hardware event queue
//! (paper §3.1): the timer coprocessor inserts a token when a timer
//! expires or is cancelled, and the message coprocessor inserts a token
//! when a radio word or sensor reading arrives. Each token indexes the
//! event-handler table; the fetch unit starts executing at the handler's
//! address and runs until `done`.

use std::fmt;

/// Number of entries in the event-handler table.
pub const EVENT_TABLE_ENTRIES: usize = 8;

/// The events SNAP/LE responds to.
///
/// Entries 0–2 belong to the three timer registers; the rest belong to the
/// message coprocessor plus one software event (simulator extension used
/// for TinyOS-style task posting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// Timer register 0 expired or was cancelled.
    Timer0,
    /// Timer register 1 expired or was cancelled.
    Timer1,
    /// Timer register 2 expired or was cancelled.
    Timer2,
    /// A 16-bit word arrived from the radio (message coprocessor).
    RadioRx,
    /// The radio finished transmitting the previously queued word.
    RadioTxDone,
    /// A sensor asserted the external-interrupt pin.
    SensorIrq,
    /// A sensor `Query` command completed; the reading is in the `r15`
    /// outgoing FIFO.
    SensorReply,
    /// Software-posted event (`swev` instruction).
    Soft,
}

impl EventKind {
    /// All event kinds in table order.
    pub const ALL: [EventKind; EVENT_TABLE_ENTRIES] = [
        EventKind::Timer0,
        EventKind::Timer1,
        EventKind::Timer2,
        EventKind::RadioRx,
        EventKind::RadioTxDone,
        EventKind::SensorIrq,
        EventKind::SensorReply,
        EventKind::Soft,
    ];

    /// Index into the event-handler table (0–7).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Event kind from a table index.
    ///
    /// Returns `None` if `index >= 8`.
    pub fn from_index(index: usize) -> Option<EventKind> {
        EventKind::ALL.get(index).copied()
    }

    /// The event kind for a timer register number (0–2).
    ///
    /// Returns `None` for numbers ≥ 3.
    pub fn timer(n: u8) -> Option<EventKind> {
        match n {
            0 => Some(EventKind::Timer0),
            1 => Some(EventKind::Timer1),
            2 => Some(EventKind::Timer2),
            _ => None,
        }
    }

    /// `true` for the three timer events.
    pub fn is_timer(self) -> bool {
        matches!(
            self,
            EventKind::Timer0 | EventKind::Timer1 | EventKind::Timer2
        )
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventKind::Timer0 => "timer0",
            EventKind::Timer1 => "timer1",
            EventKind::Timer2 => "timer2",
            EventKind::RadioRx => "radio-rx",
            EventKind::RadioTxDone => "radio-tx-done",
            EventKind::SensorIrq => "sensor-irq",
            EventKind::SensorReply => "sensor-reply",
            EventKind::Soft => "soft",
        };
        f.write_str(s)
    }
}

/// An event token as it sits in the hardware event queue.
///
/// The paper says each token "contains information that indicates which
/// event occurred"; we model that as the [`EventKind`] plus a small
/// payload (e.g. which timer was *cancelled* vs expired is tracked in
/// software per the paper, so the payload carries no such flag — it is
/// used by the simulator for tracing only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken {
    kind: EventKind,
}

impl EventToken {
    /// A token for the given event.
    pub fn new(kind: EventKind) -> EventToken {
        EventToken { kind }
    }

    /// Which event this token signals.
    pub fn kind(self) -> EventKind {
        self.kind
    }

    /// The handler-table index this token selects.
    pub fn table_index(self) -> usize {
        self.kind.index()
    }
}

impl From<EventKind> for EventToken {
    fn from(kind: EventKind) -> EventToken {
        EventToken::new(kind)
    }
}

impl fmt::Display for EventToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event<{}>", self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for (i, kind) in EventKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.index(), i);
            assert_eq!(EventKind::from_index(i), Some(kind));
        }
        assert_eq!(EventKind::from_index(8), None);
    }

    #[test]
    fn timer_events() {
        assert_eq!(EventKind::timer(0), Some(EventKind::Timer0));
        assert_eq!(EventKind::timer(2), Some(EventKind::Timer2));
        assert_eq!(EventKind::timer(3), None);
        for kind in EventKind::ALL {
            assert_eq!(kind.is_timer(), kind.index() < 3, "{kind}");
        }
    }

    #[test]
    fn token_carries_kind() {
        let t = EventToken::from(EventKind::RadioRx);
        assert_eq!(t.kind(), EventKind::RadioRx);
        assert_eq!(t.table_index(), 3);
        assert_eq!(t.to_string(), "event<radio-rx>");
    }
}
