//! Message-coprocessor command words.
//!
//! All communication with the radio and sensors goes through the two
//! 16-bit FIFOs mapped to `r15` (paper §3.3). The core configures the
//! coprocessor by writing *command words*; this module defines their
//! encoding. The paper describes the commands (RX, TX-followed-by-data,
//! Query) without binary values, so we fix a concrete layout:
//!
//! ```text
//!  15   12 11                    0
//! +-------+-----------------------+
//! |  cmd  |       argument        |
//! +-------+-----------------------+
//! ```
//!
//! | cmd   | meaning |
//! |-------|---------|
//! | `0x1` | radio control: arg bit 0 = receiver enable |
//! | `0x2` | transmit: the next word written to `r15` is radio payload |
//! | `0x3` | query sensor number `arg` (reply arrives as a `SensorReply` event) |
//! | `0x4` | drive `arg` onto the output port (LEDs in the Blink benchmarks) |

use crate::Word;
use std::fmt;

const CMD_SHIFT: u16 = 12;
const ARG_MASK: u16 = 0x0fff;

const CMD_RADIO_CTRL: u16 = 0x1;
const CMD_RADIO_TX: u16 = 0x2;
const CMD_QUERY: u16 = 0x3;
const CMD_PORT_WRITE: u16 = 0x4;

/// A decoded message-coprocessor command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgCommand {
    /// Enable the radio receiver; subsequent incoming words raise
    /// `RadioRx` events with the data in the outgoing FIFO.
    RadioRxOn,
    /// Disable the radio (neither receiving nor transmitting).
    RadioOff,
    /// Transmit: the *next* word written to `r15` is sent over the radio;
    /// completion raises a `RadioTxDone` event.
    RadioTx,
    /// Poll sensor `id` (0–4095); the reading is delivered through the
    /// outgoing FIFO with a `SensorReply` event.
    QuerySensor(u16),
    /// Drive a 12-bit value onto the node's output port (LEDs/GPIO).
    PortWrite(u16),
}

impl MsgCommand {
    /// Encode to the 16-bit command word written to `r15`.
    pub fn encode(self) -> Word {
        match self {
            MsgCommand::RadioRxOn => (CMD_RADIO_CTRL << CMD_SHIFT) | 1,
            MsgCommand::RadioOff => CMD_RADIO_CTRL << CMD_SHIFT,
            MsgCommand::RadioTx => CMD_RADIO_TX << CMD_SHIFT,
            MsgCommand::QuerySensor(id) => (CMD_QUERY << CMD_SHIFT) | (id & ARG_MASK),
            MsgCommand::PortWrite(v) => (CMD_PORT_WRITE << CMD_SHIFT) | (v & ARG_MASK),
        }
    }

    /// Decode a word written to `r15` as a command.
    ///
    /// Returns `None` for words outside the command space — the message
    /// coprocessor treats those as protocol errors unless it is expecting
    /// transmit payload.
    pub fn decode(word: Word) -> Option<MsgCommand> {
        let arg = word & ARG_MASK;
        match word >> CMD_SHIFT {
            CMD_RADIO_CTRL => {
                if arg & 1 == 1 {
                    Some(MsgCommand::RadioRxOn)
                } else {
                    Some(MsgCommand::RadioOff)
                }
            }
            CMD_RADIO_TX => Some(MsgCommand::RadioTx),
            CMD_QUERY => Some(MsgCommand::QuerySensor(arg)),
            CMD_PORT_WRITE => Some(MsgCommand::PortWrite(arg)),
            _ => None,
        }
    }
}

impl fmt::Display for MsgCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgCommand::RadioRxOn => f.write_str("radio-rx-on"),
            MsgCommand::RadioOff => f.write_str("radio-off"),
            MsgCommand::RadioTx => f.write_str("radio-tx"),
            MsgCommand::QuerySensor(id) => write!(f, "query-sensor({id})"),
            MsgCommand::PortWrite(v) => write!(f, "port-write({v:#x})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let cmds = [
            MsgCommand::RadioRxOn,
            MsgCommand::RadioOff,
            MsgCommand::RadioTx,
            MsgCommand::QuerySensor(0),
            MsgCommand::QuerySensor(0xfff),
            MsgCommand::PortWrite(0),
            MsgCommand::PortWrite(0xabc),
        ];
        for cmd in cmds {
            assert_eq!(MsgCommand::decode(cmd.encode()), Some(cmd), "{cmd}");
        }
    }

    #[test]
    fn arguments_are_masked_to_12_bits() {
        assert_eq!(
            MsgCommand::QuerySensor(0xffff).encode(),
            MsgCommand::QuerySensor(0xfff).encode()
        );
        assert_eq!(
            MsgCommand::PortWrite(0x1005).encode(),
            MsgCommand::PortWrite(0x005).encode()
        );
    }

    #[test]
    fn non_command_words_decode_to_none() {
        for w in [0x0000u16, 0x0abc, 0x5000, 0xffff, 0x8123] {
            assert_eq!(MsgCommand::decode(w), None, "{w:#06x}");
        }
    }
}
