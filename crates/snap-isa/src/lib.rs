//! # snap-isa — the SNAP instruction-set architecture
//!
//! This crate defines the SNAP ISA from *An Ultra Low-Power Processor for
//! Sensor Networks* (Ekanayake, Kelly, Manohar — ASPLOS 2004): a 16-bit
//! RISC instruction set with extensions for event-driven execution
//! (`done`, `setaddr`), timer scheduling (`schedhi`, `schedlo`, `cancel`),
//! network-protocol support (`bfs`, `rand`, `seed`) and a register-mapped
//! message-coprocessor port (`r15`).
//!
//! The paper does not publish binary encodings, so this crate defines a
//! concrete encoding (documented on [`Instruction`]) that preserves every
//! architectural property the paper relies on: one- and two-word
//! instructions (two-word instructions cost an extra fetch cycle), fifteen
//! physical registers plus the `r15` FIFO port, separate 4 KB instruction
//! and data memories, and an 8-entry event-handler table.
//!
//! ## Example
//!
//! ```
//! use snap_isa::{Instruction, Reg, AluOp};
//!
//! let add = Instruction::AluReg { op: AluOp::Add, rd: Reg::R1, rs: Reg::R2 };
//! let words = add.encode();
//! assert_eq!(words.len(), 1);
//! let back = Instruction::decode(words.first(), None).unwrap();
//! assert_eq!(back, add);
//! ```

#![warn(missing_docs)]

mod decode;
mod encode;
pub mod event;
pub mod instr;
pub mod msgcmd;
pub mod reg;

pub use event::{EventKind, EventToken, EVENT_TABLE_ENTRIES};
pub use instr::{
    AluImmOp, AluOp, BranchCond, EncodedWords, Instruction, InstructionClass, ShiftOp,
};
pub use msgcmd::MsgCommand;
pub use reg::{Reg, NUM_PHYSICAL_REGS};

/// One machine word: the SNAP datapath is 16 bits wide.
pub type Word = u16;

/// A word address into one of the two on-chip memories.
///
/// Both memories are word-addressed; a 4 KB bank holds 2048 words, so any
/// valid address fits in 11 bits.
pub type Addr = u16;

/// Size of each on-chip memory bank (IMEM and DMEM) in 16-bit words.
///
/// The paper specifies two 4 KB banks, i.e. 2048 words each.
pub const MEM_WORDS: usize = 2048;

/// Errors produced when decoding a binary instruction word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The major opcode / function-code combination is not assigned.
    IllegalInstruction {
        /// The offending first instruction word.
        word: Word,
    },
    /// The first word indicates a two-word instruction but no second word
    /// was available (e.g. the instruction sits on the last IMEM word).
    MissingImmediate {
        /// The offending first instruction word.
        word: Word,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::IllegalInstruction { word } => {
                write!(f, "illegal instruction word {word:#06x}")
            }
            DecodeError::MissingImmediate { word } => {
                write!(
                    f,
                    "two-word instruction {word:#06x} is missing its immediate word"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}
