//! Binary encoding: [`Instruction`] → one or two 16-bit words.
//!
//! Every instruction encodes; there is no failure case because all field
//! widths are enforced by the Rust types (`Reg` is 4 bits, shift amounts
//! are masked to 4 bits, immediates are full 16-bit words).

use crate::instr::{EncodedWords, Instruction};
use crate::reg::Reg;
use crate::Word;

/// Major opcode values (bits 15:12 of the first word).
pub(crate) mod opcode {
    pub const ALU_REG: u16 = 0x0;
    pub const SHIFT_REG: u16 = 0x1;
    pub const ALU_IMM: u16 = 0x2;
    pub const SHIFT_IMM: u16 = 0x3;
    pub const DMEM: u16 = 0x4;
    pub const IMEM: u16 = 0x5;
    pub const BRANCH: u16 = 0x6;
    pub const JUMP: u16 = 0x7;
    pub const TIMER: u16 = 0x8;
    pub const NET: u16 = 0x9;
    pub const EVENT: u16 = 0xa;
}

/// Function codes within the `JUMP` group.
pub(crate) mod jump_fn {
    pub const JMP: u16 = 0;
    pub const JAL: u16 = 1;
    pub const JR: u16 = 2;
    pub const JALR: u16 = 3;
}

/// Function codes within the `TIMER` group.
pub(crate) mod timer_fn {
    pub const SCHEDHI: u16 = 0;
    pub const SCHEDLO: u16 = 1;
    pub const CANCEL: u16 = 2;
}

/// Function codes within the `NET` group.
pub(crate) mod net_fn {
    pub const BFS: u16 = 0;
    pub const RAND: u16 = 1;
    pub const SEED: u16 = 2;
}

/// Function codes within the `EVENT` group.
pub(crate) mod event_fn {
    pub const DONE: u16 = 0;
    pub const SETADDR: u16 = 1;
    pub const NOP: u16 = 2;
    pub const HALT: u16 = 3;
    pub const SWEV: u16 = 4;
}

/// Function codes within the memory groups (`DMEM`, `IMEM`).
pub(crate) mod mem_fn {
    pub const LOAD: u16 = 0;
    pub const STORE: u16 = 1;
}

fn word(op: u16, rd: Reg, rs: Reg, func: u16) -> Word {
    debug_assert!(op <= 0xf && func <= 0xf);
    (op << 12) | ((rd.index() as u16) << 8) | ((rs.index() as u16) << 4) | func
}

fn word_raw_rs(op: u16, rd: Reg, rs_field: u16, func: u16) -> Word {
    debug_assert!(op <= 0xf && rs_field <= 0xf && func <= 0xf);
    (op << 12) | ((rd.index() as u16) << 8) | (rs_field << 4) | func
}

impl Instruction {
    /// Encode to one or two 16-bit words.
    pub fn encode(&self) -> EncodedWords {
        use opcode as op;
        match *self {
            Instruction::AluReg { op: alu, rd, rs } => {
                EncodedWords::one(word(op::ALU_REG, rd, rs, alu.fn_code()))
            }
            Instruction::AluImm { op: alu, rd, imm } => {
                EncodedWords::two(word(op::ALU_IMM, rd, Reg::R0, alu.fn_code()), imm)
            }
            Instruction::ShiftReg { op: sh, rd, rs } => {
                EncodedWords::one(word(op::SHIFT_REG, rd, rs, sh.fn_code()))
            }
            Instruction::ShiftImm { op: sh, rd, amount } => EncodedWords::one(word_raw_rs(
                op::SHIFT_IMM,
                rd,
                (amount & 0xf) as u16,
                sh.fn_code(),
            )),
            Instruction::Load { rd, base, offset } => {
                EncodedWords::two(word(op::DMEM, rd, base, mem_fn::LOAD), offset)
            }
            Instruction::Store { rs, base, offset } => {
                EncodedWords::two(word(op::DMEM, rs, base, mem_fn::STORE), offset)
            }
            Instruction::ImemLoad { rd, base, offset } => {
                EncodedWords::two(word(op::IMEM, rd, base, mem_fn::LOAD), offset)
            }
            Instruction::ImemStore { rs, base, offset } => {
                EncodedWords::two(word(op::IMEM, rs, base, mem_fn::STORE), offset)
            }
            Instruction::Branch {
                cond,
                ra,
                rb,
                target,
            } => {
                let rb = if cond.is_unary() { Reg::R0 } else { rb };
                EncodedWords::two(word(op::BRANCH, ra, rb, cond.fn_code()), target)
            }
            Instruction::Jmp { target } => {
                EncodedWords::two(word(op::JUMP, Reg::R0, Reg::R0, jump_fn::JMP), target)
            }
            Instruction::Jal { rd, target } => {
                EncodedWords::two(word(op::JUMP, rd, Reg::R0, jump_fn::JAL), target)
            }
            Instruction::Jr { rs } => EncodedWords::one(word(op::JUMP, Reg::R0, rs, jump_fn::JR)),
            Instruction::Jalr { rd, rs } => {
                EncodedWords::one(word(op::JUMP, rd, rs, jump_fn::JALR))
            }
            Instruction::SchedHi { rt, rv } => {
                EncodedWords::one(word(op::TIMER, rt, rv, timer_fn::SCHEDHI))
            }
            Instruction::SchedLo { rt, rv } => {
                EncodedWords::one(word(op::TIMER, rt, rv, timer_fn::SCHEDLO))
            }
            Instruction::Cancel { rt } => {
                EncodedWords::one(word(op::TIMER, rt, Reg::R0, timer_fn::CANCEL))
            }
            Instruction::Bfs { rd, rs, mask } => {
                EncodedWords::two(word(op::NET, rd, rs, net_fn::BFS), mask)
            }
            Instruction::Rand { rd } => EncodedWords::one(word(op::NET, rd, Reg::R0, net_fn::RAND)),
            Instruction::Seed { rs } => EncodedWords::one(word(op::NET, Reg::R0, rs, net_fn::SEED)),
            Instruction::Done => {
                EncodedWords::one(word(op::EVENT, Reg::R0, Reg::R0, event_fn::DONE))
            }
            Instruction::SetAddr { rev, raddr } => {
                EncodedWords::one(word(op::EVENT, rev, raddr, event_fn::SETADDR))
            }
            Instruction::Nop => EncodedWords::one(word(op::EVENT, Reg::R0, Reg::R0, event_fn::NOP)),
            Instruction::Halt => {
                EncodedWords::one(word(op::EVENT, Reg::R0, Reg::R0, event_fn::HALT))
            }
            Instruction::SwEvent { rn } => {
                EncodedWords::one(word(op::EVENT, rn, Reg::R0, event_fn::SWEV))
            }
        }
    }

    /// Whether a first instruction word indicates a two-word instruction,
    /// without fully decoding it. The fetch unit uses this to know whether
    /// to fetch the immediate word.
    pub fn first_word_is_two_word(first: Word) -> bool {
        let op = first >> 12;
        let func = first & 0xf;
        match op {
            opcode::ALU_IMM | opcode::DMEM | opcode::IMEM | opcode::BRANCH => true,
            opcode::JUMP => func == jump_fn::JMP || func == jump_fn::JAL,
            opcode::NET => func == net_fn::BFS,
            _ => false,
        }
    }
}
