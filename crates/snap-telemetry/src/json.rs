//! A minimal JSON value, writer and parser.
//!
//! The workspace deliberately avoids a JSON dependency (it builds fully
//! offline); every exporter hand-rolls its output. This module is the
//! shared implementation for the telemetry layer: a [`Value`] tree that
//! preserves object key order, a compact and a pretty writer, and a
//! strict parser used by the schema validator (`xtask validate-metrics`)
//! and the trace-format tests.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so reports render in
/// the documented field order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float. Non-finite values serialize as `null` (JSON has no
    /// NaN/Infinity).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Append a field to an object; panics when `self` is not one.
    pub fn set(&mut self, key: &str, value: Value) -> &mut Value {
        match self {
            Value::Obj(fields) => fields.push((key.to_string(), value)),
            _ => panic!("set() on a non-object"),
        }
        self
    }

    /// Object field by key (objects only).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The fields of an object.
    pub fn fields(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn elements(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric view: `Int` or `Float` as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{}` is Rust's shortest round-trip representation
                    // and always valid JSON ("1" for 1.0, never "1e3").
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Value::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1)
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error,
/// including trailing garbage after the document.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {start}"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {start}"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by any of
                            // our writers; map lone surrogates to the
                            // replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| format!("bad number at byte {start}"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let mut v = Value::obj();
        v.set("a", Value::Int(1));
        v.set("b", Value::Float(2.5));
        v.set("c", Value::Str("x\"y\n".to_string()));
        v.set("d", Value::Arr(vec![Value::Null, Value::Bool(true)]));
        let text = v.to_compact();
        assert_eq!(text, r#"{"a":1,"b":2.5,"c":"x\"y\n","d":[null,true]}"#);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn pretty_round_trips() {
        let mut v = Value::obj();
        v.set("nested", {
            let mut o = Value::obj();
            o.set("k", Value::Arr(vec![Value::Int(1), Value::Int(2)]));
            o
        });
        let pretty = v.to_pretty();
        assert!(pretty.contains("\n  \"nested\""));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn preserves_key_order() {
        let parsed = parse(r#"{"z":1,"a":2}"#).unwrap();
        let keys: Vec<&str> = parsed
            .fields()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn floats_without_fraction_render_as_integers_but_parse_back() {
        assert_eq!(Value::Float(1.0).to_compact(), "1");
        assert_eq!(parse("1").unwrap(), Value::Int(1));
        assert_eq!(parse("1.25e2").unwrap(), Value::Float(125.0));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::Float(f64::NAN).to_compact(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn rejects_trailing_garbage_and_syntax_errors() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes_and_raw_utf8() {
        assert_eq!(parse(r#""Aé""#).unwrap(), Value::Str("Aé".to_string()));
        assert_eq!(parse(r#""A\u00e9""#).unwrap(), Value::Str("Aé".to_string()));
    }
}
