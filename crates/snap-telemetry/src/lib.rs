//! Telemetry and energy observability for the SNAP/LE simulator.
//!
//! The paper's argument is quantitative — handler lengths of 70–245
//! dynamic instructions, 1.6–5.8 nJ per task at 0.6 V, idle power set
//! by leakage alone — so the simulator needs a measurement layer that
//! can reproduce those numbers from a run. This crate provides it:
//!
//! * [`metrics`] — the `snap-metrics-v1` report: per-node counters,
//!   energy attribution by component / instruction class / handler,
//!   and (with sampling enabled) handler-length, handler-energy and
//!   queue-wait distributions.
//! * [`hist`] — the [`Histogram`] summary type those distributions
//!   render through.
//! * [`chrome`] — [`ChromeTrace`], a Chrome `trace_event` exporter;
//!   network runs open in Perfetto with one track per node.
//! * [`schema`] — validators used by CI so the emitted JSON, the
//!   producers, and `docs/OBSERVABILITY.md` cannot drift apart.
//! * [`json`] — the dependency-free JSON [`Value`] these are built on
//!   (ordered keys and deterministic float text, so reports are
//!   bit-stable per seed and can be golden-snapshotted).
//!
//! Everything here is observation-only: enabling telemetry never
//! changes simulated behaviour, timing, or energy (the core's golden
//! traces are the enforcement mechanism).

#![warn(missing_docs)]

pub mod chrome;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod schema;

pub use chrome::ChromeTrace;
pub use hist::{Histogram, DEFAULT_RETAIN};
pub use json::{parse, Value};
pub use metrics::{class_slug, node_metrics, report, NetworkCounters, SCHEMA};
pub use schema::{validate_chrome_trace, validate_metrics};
