//! Chrome `trace_event` export (Perfetto / `chrome://tracing`).
//!
//! The builder produces the JSON-array flavour of the [trace event
//! format]: metadata (`ph:"M"`) records naming the process and one
//! thread per node, complete slices (`ph:"X"`) for handler bursts, and
//! instants (`ph:"i"`) for network events. Timestamps are microseconds
//! (`ts`/`dur`, fractional allowed); output events are sorted by
//! timestamp so consumers that require monotonic order load the file
//! directly.
//!
//! Opening a trace: Perfetto (<https://ui.perfetto.dev>) → "Open trace
//! file". Each node renders as one track: slices are handler
//! executions, the gaps between them are sleep.
//!
//! [trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::Value;
use snap_core::HandlerSample;

const PS_PER_US: f64 = 1_000_000.0;

/// A Chrome `trace_event` JSON builder.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    /// Metadata events (always emitted first, in insertion order).
    meta: Vec<Value>,
    /// Timed events, with their ps timestamp for sorting.
    timed: Vec<(u64, Value)>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Name the process (shown as the Perfetto track group).
    pub fn process_name(&mut self, name: &str) {
        self.meta.push(meta_event("process_name", 0, name));
    }

    /// Name a thread (one thread = one node track).
    pub fn thread_name(&mut self, tid: i64, name: &str) {
        self.meta.push(meta_event("thread_name", tid, name));
    }

    /// Add a complete slice (`ph:"X"`): an interval on a track.
    pub fn complete(&mut self, tid: i64, name: &str, start_ps: u64, end_ps: u64, args: Value) {
        let mut e = Value::obj();
        e.set("name", Value::Str(name.to_string()));
        e.set("ph", Value::Str("X".to_string()));
        e.set("ts", Value::Float(start_ps as f64 / PS_PER_US));
        e.set(
            "dur",
            Value::Float(end_ps.saturating_sub(start_ps) as f64 / PS_PER_US),
        );
        e.set("pid", Value::Int(0));
        e.set("tid", Value::Int(tid));
        e.set("args", args);
        self.timed.push((start_ps, e));
    }

    /// Add an instant event (`ph:"i"`, thread scope).
    pub fn instant(&mut self, tid: i64, name: &str, at_ps: u64, args: Value) {
        let mut e = Value::obj();
        e.set("name", Value::Str(name.to_string()));
        e.set("ph", Value::Str("i".to_string()));
        e.set("s", Value::Str("t".to_string()));
        e.set("ts", Value::Float(at_ps as f64 / PS_PER_US));
        e.set("pid", Value::Int(0));
        e.set("tid", Value::Int(tid));
        e.set("args", args);
        self.timed.push((at_ps, e));
    }

    /// Add one slice per handler sample on the `tid` track — the
    /// handler-burst view of a node. The gaps between slices are the
    /// node's sleep intervals.
    pub fn add_handler_samples(&mut self, tid: i64, samples: &[HandlerSample]) {
        for s in samples {
            let mut args = Value::obj();
            args.set("instructions", Value::Int(s.instructions as i64));
            args.set("energy_pj", Value::Float(s.energy.as_pj()));
            args.set("queue_wait_ps", Value::Int(s.queue_wait.as_ps() as i64));
            self.complete(
                tid,
                &s.event.to_string(),
                s.start.as_ps(),
                s.end.as_ps(),
                args,
            );
        }
    }

    /// Number of events added so far (metadata + timed).
    pub fn len(&self) -> usize {
        self.meta.len() + self.timed.len()
    }

    /// `true` when nothing was added.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty() && self.timed.is_empty()
    }

    /// Render the complete trace: a JSON array with metadata first,
    /// then all timed events sorted by timestamp (stable, so equal
    /// timestamps keep insertion order).
    pub fn to_json(&self) -> String {
        let mut timed = self.timed.clone();
        timed.sort_by_key(|(ts, _)| *ts);
        let events: Vec<Value> = self
            .meta
            .iter()
            .cloned()
            .chain(timed.into_iter().map(|(_, e)| e))
            .collect();
        Value::Arr(events).to_pretty()
    }
}

fn meta_event(kind: &str, tid: i64, name: &str) -> Value {
    let mut args = Value::obj();
    args.set("name", Value::Str(name.to_string()));
    let mut e = Value::obj();
    e.set("name", Value::Str(kind.to_string()));
    e.set("ph", Value::Str("M".to_string()));
    e.set("pid", Value::Int(0));
    e.set("tid", Value::Int(tid));
    e.set("args", args);
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn output_is_sorted_valid_json() {
        let mut t = ChromeTrace::new();
        t.process_name("snap network");
        t.thread_name(1, "node1");
        t.instant(1, "transmit", 5_000_000, Value::obj());
        t.complete(1, "timer0", 1_000_000, 2_000_000, Value::obj());
        let text = t.to_json();
        let parsed = parse(&text).unwrap();
        let events = parsed.elements().unwrap();
        assert_eq!(events.len(), 4);
        // Metadata first, then by timestamp.
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(events[2].get("name").unwrap().as_str(), Some("timer0"));
        assert_eq!(events[2].get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(events[2].get("dur").unwrap().as_f64(), Some(1.0));
        assert_eq!(events[3].get("name").unwrap().as_str(), Some("transmit"));
    }

    #[test]
    fn handler_samples_become_slices() {
        use dess::{SimDuration, SimTime};
        use snap_energy::Energy;
        use snap_isa::EventKind;
        let sample = HandlerSample {
            event: EventKind::RadioRx,
            start: SimTime::from_ps(10),
            end: SimTime::from_ps(400),
            instructions: 12,
            energy: Energy::from_pj(1234.5),
            queue_wait: SimDuration::from_ps(7),
            sw_posted: 1,
            sw_enqueued: 1,
            enqueued: 1,
            queue_len: 0,
        };
        let mut t = ChromeTrace::new();
        t.add_handler_samples(3, &[sample]);
        let parsed = parse(&t.to_json()).unwrap();
        let e = &parsed.elements().unwrap()[0];
        assert_eq!(e.get("name").unwrap().as_str(), Some("radio-rx"));
        assert_eq!(e.get("tid").unwrap().as_i64(), Some(3));
        assert_eq!(
            e.get("args").unwrap().get("instructions").unwrap().as_i64(),
            Some(12)
        );
    }
}
