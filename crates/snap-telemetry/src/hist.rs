//! Streaming histograms for telemetry distributions.
//!
//! The paper reports distributions, not just totals — handler lengths
//! of 70–245 dynamic instructions, energy per handler in nanojoules.
//! A [`Histogram`] accumulates scalar observations and renders the
//! documented JSON summary: count/sum/min/max/mean, the p50/p90/p99
//! percentiles, and cumulative power-of-two buckets (Prometheus-style
//! `le` upper bounds).
//!
//! To bound memory on unbounded runs, only the first
//! [`Histogram::cap`] observations are retained for percentiles and
//! buckets; `count`/`sum`/`min`/`max`/`mean` always cover every
//! observation.

use crate::json::Value;

/// Default retention for percentile computation.
pub const DEFAULT_RETAIN: usize = 65_536;

/// A scalar distribution.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    cap: usize,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram with the default retention.
    pub fn new() -> Histogram {
        Histogram::with_retention(DEFAULT_RETAIN)
    }

    /// An empty histogram retaining at most `cap` raw observations for
    /// percentiles and buckets.
    pub fn with_retention(cap: usize) -> Histogram {
        Histogram {
            samples: Vec::new(),
            cap: cap.max(1),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation. Non-finite values are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if self.samples.len() < self.cap {
            self.samples.push(value);
        }
    }

    /// Total observations (including any past the retention cap).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum / self.count as f64)
    }

    /// Retention capacity for raw observations.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// The `q`-quantile (0.0–1.0) of the retained observations, by the
    /// nearest-rank method (`None` when empty).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let rank =
            ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Render the documented JSON summary object:
    ///
    /// ```json
    /// {"count":N,"sum":S,"min":m,"max":M,"mean":A,
    ///  "p50":..,"p90":..,"p99":..,
    ///  "buckets":[{"le":1,"count":c1},...,{"le":null,"count":N}]}
    /// ```
    ///
    /// Buckets are cumulative with power-of-two upper bounds from 1 up
    /// to the first power covering `max`; the final `le:null` bucket
    /// (= +Inf) always holds the full retained count. Empty histograms
    /// render `min`/`max`/`mean` and percentiles as `null` and no
    /// finite buckets.
    pub fn to_json(&self) -> Value {
        let opt = |v: Option<f64>| v.map(Value::Float).unwrap_or(Value::Null);
        let mut o = Value::obj();
        o.set("count", Value::Int(self.count as i64));
        o.set("sum", Value::Float(self.sum));
        o.set("min", opt(self.min()));
        o.set("max", opt(self.max()));
        o.set("mean", opt(self.mean()));
        o.set("p50", opt(self.quantile(0.50)));
        o.set("p90", opt(self.quantile(0.90)));
        o.set("p99", opt(self.quantile(0.99)));
        let mut buckets = Vec::new();
        if !self.samples.is_empty() {
            let mut le = 1.0f64;
            loop {
                let count = self.samples.iter().filter(|&&s| s <= le).count();
                let mut b = Value::obj();
                b.set("le", Value::Float(le));
                b.set("count", Value::Int(count as i64));
                buckets.push(b);
                if le >= self.max || le > 1e30 {
                    break;
                }
                le *= 2.0;
            }
        }
        let mut inf = Value::obj();
        inf.set("le", Value::Null);
        inf.set("count", Value::Int(self.samples.len() as i64));
        buckets.push(inf);
        o.set("buckets", Value::Arr(buckets));
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_renders_nulls() {
        let h = Histogram::new();
        let j = h.to_json();
        assert_eq!(j.get("count").unwrap().as_i64(), Some(0));
        assert_eq!(j.get("min"), Some(&Value::Null));
        assert_eq!(j.get("p50"), Some(&Value::Null));
        // Only the +Inf bucket.
        assert_eq!(j.get("buckets").unwrap().elements().unwrap().len(), 1);
    }

    #[test]
    fn summary_statistics() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
        assert_eq!(h.mean(), Some(2.5));
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
    }

    #[test]
    fn buckets_are_cumulative_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0.5, 1.5, 3.0, 10.0] {
            h.record(v);
        }
        let j = h.to_json();
        let buckets = j.get("buckets").unwrap().elements().unwrap().to_vec();
        // le: 1, 2, 4, 8, 16, null
        let les: Vec<Option<f64>> = buckets
            .iter()
            .map(|b| b.get("le").unwrap().as_f64())
            .collect();
        assert_eq!(
            les,
            vec![Some(1.0), Some(2.0), Some(4.0), Some(8.0), Some(16.0), None]
        );
        let counts: Vec<i64> = buckets
            .iter()
            .map(|b| b.get("count").unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(counts, vec![1, 2, 3, 3, 4, 4]);
    }

    #[test]
    fn retention_cap_bounds_samples_not_counters() {
        let mut h = Histogram::with_retention(4);
        for i in 0..100 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), Some(99.0));
        // Percentiles only see the first 4 observations.
        assert_eq!(h.quantile(1.0), Some(3.0));
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }
}
