//! Building `snap-metrics-v1` reports from simulator state.
//!
//! One report covers one run: a `meta` header (tool, voltage, duration),
//! one entry per node with its counters, energy attribution and —
//! when per-dispatch sampling was enabled — handler distributions, and
//! an optional `network` section (filled by `snap-net`). The complete
//! field-by-field schema is documented in `docs/OBSERVABILITY.md`; the
//! validator in [`crate::schema`] enforces it.

use crate::hist::Histogram;
use crate::json::Value;
use snap_core::{CoreState, Processor};
use snap_isa::{EventKind, InstructionClass};

/// The schema identifier stamped into every report.
pub const SCHEMA: &str = "snap-metrics-v1";

/// kebab-case slug of an instruction class ("Arith Reg" → "arith-reg").
pub fn class_slug(class: InstructionClass) -> String {
    class.label().to_lowercase().replace(' ', "-")
}

/// The core state as a lowercase schema string.
fn state_str(state: CoreState) -> &'static str {
    match state {
        CoreState::Running => "running",
        CoreState::Asleep => "asleep",
        CoreState::Halted => "halted",
    }
}

/// Collect one node's metrics object from its processor.
///
/// Counters and energy attribution are always present (they come from
/// the core's always-on accounting); the `histograms` section appears
/// only when [`snap_core::Processor::enable_sampling`] was called
/// before the run.
pub fn node_metrics(node: i64, cpu: &Processor) -> Value {
    let stats = cpu.stats();
    let mut o = Value::obj();
    o.set("node", Value::Int(node));
    o.set("state", Value::Str(state_str(cpu.state()).to_string()));

    let mut counters = Value::obj();
    counters.set("instructions", Value::Int(stats.instructions as i64));
    counters.set("cycles", Value::Int(stats.cycles as i64));
    counters.set(
        "handlers_dispatched",
        Value::Int(stats.handlers_dispatched as i64),
    );
    counters.set("wakeups", Value::Int(stats.wakeups as i64));
    counters.set("events_inserted", Value::Int(stats.events_inserted as i64));
    counters.set("events_dropped", Value::Int(stats.events_dropped as i64));
    counters.set("busy_ps", Value::Int(stats.busy_time.as_ps() as i64));
    counters.set("sleep_ps", Value::Int(stats.sleep_time.as_ps() as i64));
    counters.set("now_ps", Value::Int(stats.now.as_ps() as i64));
    let mut by_event = Value::obj();
    for ev in EventKind::ALL {
        let s = cpu.profile().event(ev);
        if s.dispatches > 0 {
            by_event.set(&ev.to_string(), Value::Int(s.dispatches as i64));
        }
    }
    counters.set("dispatches_by_event", by_event);
    o.set("counters", counters);

    let mut energy = Value::obj();
    energy.set("total_pj", Value::Float(stats.energy.as_pj()));
    energy.set(
        "pj_per_instruction",
        Value::Float(stats.energy_per_instruction().as_pj()),
    );
    let mut by_component = Value::obj();
    for (component, e) in cpu.acct().components().iter() {
        by_component.set(component.label(), Value::Float(e.as_pj()));
    }
    energy.set("by_component_pj", by_component);
    let mut by_class = Vec::new();
    for (class, s) in cpu.acct().per_class() {
        let mut c = Value::obj();
        c.set("class", Value::Str(class_slug(class)));
        c.set("count", Value::Int(s.count as i64));
        c.set("pj", Value::Float(s.energy.as_pj()));
        by_class.push(c);
    }
    energy.set("by_class", Value::Arr(by_class));
    let mut by_handler = Vec::new();
    let boot = cpu.profile().boot();
    let mut push_handler = |event: &str, s: snap_core::HandlerStats| {
        let mut h = Value::obj();
        h.set("event", Value::Str(event.to_string()));
        h.set("dispatches", Value::Int(s.dispatches as i64));
        h.set("instructions", Value::Int(s.instructions as i64));
        h.set("pj", Value::Float(s.energy.as_pj()));
        h.set("busy_ps", Value::Int(s.busy_time.as_ps() as i64));
        by_handler.push(h);
    };
    push_handler("boot", boot);
    for (ev, s) in cpu.profile().dispatched() {
        push_handler(&ev.to_string(), s);
    }
    energy.set("by_handler", Value::Arr(by_handler));
    o.set("energy", energy);

    if let Some(sampler) = cpu.sampler() {
        let mut instructions = Histogram::new();
        let mut energy_pj = Histogram::new();
        let mut queue_wait = Histogram::new();
        for s in sampler.samples() {
            instructions.record(s.instructions as f64);
            energy_pj.record(s.energy.as_pj());
            queue_wait.record(s.queue_wait.as_ps() as f64);
        }
        let mut hists = Value::obj();
        hists.set("handler_instructions", instructions.to_json());
        hists.set("handler_energy_pj", energy_pj.to_json());
        hists.set("queue_wait_ps", queue_wait.to_json());
        hists.set(
            "samples_retained",
            Value::Int(sampler.samples().len() as i64),
        );
        hists.set("samples_truncated", Value::Int(sampler.truncated() as i64));
        o.set("histograms", hists);
    }
    o
}

/// Network-wide counters and the per-window activity distribution.
/// `snap-net` fills one of these during a run; plain data so the
/// dependency points from `snap-net` to this crate only.
#[derive(Debug, Clone, Default)]
pub struct NetworkCounters {
    /// Words delivered cleanly to a receiver.
    pub deliveries: u64,
    /// Words garbled by collision at a receiver.
    pub collisions: u64,
    /// Words lost to simulated fading.
    pub faded: u64,
    /// Trace events recorded (any [`crate::chrome`]/JSONL export
    /// covers at most this many).
    pub trace_recorded: u64,
    /// Nodes active per scheduler window (the wake-calendar batch
    /// size; a direct measure of how event-driven the network is).
    pub window_active_nodes: Histogram,
}

impl NetworkCounters {
    /// Render the `network` section of a report.
    pub fn to_json(&self) -> Value {
        let mut o = Value::obj();
        o.set("deliveries", Value::Int(self.deliveries as i64));
        o.set("collisions", Value::Int(self.collisions as i64));
        o.set("faded", Value::Int(self.faded as i64));
        o.set("trace_recorded", Value::Int(self.trace_recorded as i64));
        o.set("window_active_nodes", self.window_active_nodes.to_json());
        o
    }
}

/// Assemble a complete `snap-metrics-v1` report.
///
/// `tool` names the producer (`srun`, `netsim`, `bench`), `vdd_v` the
/// operating voltage, `duration_ps` the simulated span, `nodes` the
/// [`node_metrics`] objects, and `network` the optional
/// [`NetworkCounters::to_json`] section.
pub fn report(
    tool: &str,
    vdd_v: f64,
    duration_ps: u64,
    nodes: Vec<Value>,
    network: Option<Value>,
) -> Value {
    let mut o = Value::obj();
    o.set("schema", Value::Str(SCHEMA.to_string()));
    o.set("tool", Value::Str(tool.to_string()));
    o.set("vdd_v", Value::Float(vdd_v));
    o.set("duration_ps", Value::Int(duration_ps as i64));
    o.set("nodes", Value::Arr(nodes));
    if let Some(network) = network {
        o.set("network", network);
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_core::{CoreConfig, Processor};
    use snap_isa::{AluImmOp, Instruction, Reg, Word};

    fn sampled_cpu() -> Processor {
        let li = |rd, imm| Instruction::AluImm {
            op: AluImmOp::Li,
            rd,
            imm,
        };
        let boot = [
            li(Reg::R1, EventKind::SensorIrq.index() as Word),
            li(Reg::R2, 100),
            Instruction::SetAddr {
                rev: Reg::R1,
                raddr: Reg::R2,
            },
            Instruction::Done,
        ];
        let handler = [li(Reg::R5, 7), Instruction::Done];
        let mut cpu = Processor::new(CoreConfig::default());
        cpu.enable_sampling(1024);
        cpu.load_program(&boot).unwrap();
        let img: Vec<Word> = handler.iter().flat_map(|i| i.encode()).collect();
        cpu.load_image(100, &img).unwrap();
        cpu.run_until_idle(100).unwrap();
        cpu.post_sensor_irq();
        cpu.run_until_idle(100).unwrap();
        cpu
    }

    #[test]
    fn node_metrics_has_documented_sections() {
        let cpu = sampled_cpu();
        let m = node_metrics(1, &cpu);
        assert_eq!(m.get("node").unwrap().as_i64(), Some(1));
        assert_eq!(m.get("state").unwrap().as_str(), Some("asleep"));
        let counters = m.get("counters").unwrap();
        assert_eq!(counters.get("instructions").unwrap().as_i64(), Some(6));
        assert_eq!(
            counters
                .get("dispatches_by_event")
                .unwrap()
                .get("sensor-irq")
                .unwrap()
                .as_i64(),
            Some(1)
        );
        let energy = m.get("energy").unwrap();
        assert!(energy.get("total_pj").unwrap().as_f64().unwrap() > 0.0);
        let components = energy.get("by_component_pj").unwrap();
        for label in [
            "datapath",
            "fetch",
            "decode",
            "mem-interface",
            "misc",
            "imem",
            "dmem",
        ] {
            assert!(components.get(label).is_some(), "missing {label}");
        }
        let hists = m.get("histograms").unwrap();
        assert_eq!(
            hists
                .get("handler_instructions")
                .unwrap()
                .get("count")
                .unwrap()
                .as_i64(),
            Some(1)
        );
        // Handler: li + done = 2 instructions.
        assert_eq!(
            hists
                .get("handler_instructions")
                .unwrap()
                .get("max")
                .unwrap()
                .as_f64(),
            Some(2.0)
        );
    }

    #[test]
    fn sampling_off_omits_histograms() {
        let mut cpu = Processor::new(CoreConfig::default());
        cpu.load_program(&[Instruction::Halt]).unwrap();
        cpu.run_to_halt(10).unwrap();
        let m = node_metrics(1, &cpu);
        assert!(m.get("histograms").is_none());
        assert_eq!(m.get("state").unwrap().as_str(), Some("halted"));
    }

    #[test]
    fn report_assembles_and_round_trips() {
        let cpu = sampled_cpu();
        let nodes = vec![node_metrics(1, &cpu)];
        let mut net = NetworkCounters {
            deliveries: 3,
            ..Default::default()
        };
        net.window_active_nodes.record(1.0);
        let r = report("test", 0.6, 1_000_000, nodes, Some(net.to_json()));
        let text = r.to_pretty();
        let parsed = crate::json::parse(&text).unwrap();
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(parsed.get("vdd_v").unwrap().as_f64(), Some(0.6));
        assert_eq!(
            parsed
                .get("network")
                .unwrap()
                .get("deliveries")
                .unwrap()
                .as_i64(),
            Some(3)
        );
    }

    #[test]
    fn class_slugs_are_kebab_case() {
        assert_eq!(class_slug(InstructionClass::ArithReg), "arith-reg");
        assert_eq!(class_slug(InstructionClass::ImemLoad), "imem-load");
    }
}
