//! Validation of the documented export formats.
//!
//! Two entry points: [`validate_metrics`] checks a `snap-metrics-v1`
//! report string against the schema in `docs/OBSERVABILITY.md`, and
//! [`validate_chrome_trace`] checks a Chrome `trace_event` JSON array.
//! CI runs both over freshly produced files (`cargo xtask
//! validate-metrics`), so the docs, the producers, and this module
//! cannot drift apart silently.

use crate::json::{parse, Value};
use crate::metrics::SCHEMA;

/// Validate a full `snap-metrics-v1` report. Returns the first problem
/// found as a human-readable path + message.
pub fn validate_metrics(text: &str) -> Result<(), String> {
    let v = parse(text)?;
    require_str(&v, "schema")?;
    if v.get("schema").unwrap().as_str() != Some(SCHEMA) {
        return Err(format!(
            "schema: expected \"{SCHEMA}\", got {}",
            v.get("schema").unwrap().to_compact()
        ));
    }
    require_str(&v, "tool")?;
    require_num(&v, "vdd_v")?;
    require_int(&v, "duration_ps")?;
    let nodes = v
        .get("nodes")
        .ok_or("missing field: nodes")?
        .elements()
        .ok_or("nodes: expected array")?;
    for (i, node) in nodes.iter().enumerate() {
        validate_node(node).map_err(|e| format!("nodes[{i}].{e}"))?;
    }
    if let Some(network) = v.get("network") {
        validate_network(network).map_err(|e| format!("network.{e}"))?;
    }
    Ok(())
}

fn validate_node(node: &Value) -> Result<(), String> {
    require_int(node, "node")?;
    // `kind` arrived with heterogeneous fleets; its absence means a
    // SNAP node (pre-fleet producers never emit it).
    let kind = match node.get("kind") {
        None => "snap",
        Some(k) => k.as_str().ok_or("kind: expected string")?,
    };
    match kind {
        "snap" | "gateway" => validate_snap_node(node)?,
        "avr" => validate_avr_node(node)?,
        other => return Err(format!("kind: unknown value {other:?}")),
    }
    if let Some(b) = node.get("battery") {
        validate_battery(b).map_err(|e| format!("battery.{e}"))?;
    }
    Ok(())
}

/// The per-node battery section (heterogeneous fleets): consumption
/// against capacity plus the duty-cycle lifetime projection.
fn validate_battery(b: &Value) -> Result<(), String> {
    for key in ["capacity_pj", "consumed_pj", "remaining_pj"] {
        require_num(b, key)?;
    }
    if let Some(p) = b.get("projected_lifetime_s") {
        if p.as_f64().is_none() {
            return Err("projected_lifetime_s: expected number".to_string());
        }
    }
    if let Some(d) = b.get("died_at_ps") {
        if d.as_i64().is_none() {
            return Err("died_at_ps: expected integer".to_string());
        }
    }
    Ok(())
}

/// An ATmega mote's node object: cycle/sleep counters and the active
/// energy total — the SNAP handler vocabulary does not apply.
fn validate_avr_node(node: &Value) -> Result<(), String> {
    let state = require_str(node, "state")?;
    if !matches!(state, "running" | "sleeping" | "halted") {
        return Err(format!("state: unknown value {state:?}"));
    }
    let counters = node.get("counters").ok_or("missing field: counters")?;
    for key in [
        "active_cycles",
        "wall_cycles",
        "sleep_ps",
        "now_ps",
        "spi_bytes_sent",
    ] {
        require_int(counters, key).map_err(|e| format!("counters.{e}"))?;
    }
    let energy = node.get("energy").ok_or("missing field: energy")?;
    require_num(energy, "total_pj").map_err(|e| format!("energy.{e}"))?;
    Ok(())
}

fn validate_snap_node(node: &Value) -> Result<(), String> {
    let state = require_str(node, "state")?;
    if !matches!(state, "running" | "asleep" | "halted") {
        return Err(format!("state: unknown value {state:?}"));
    }

    let counters = node.get("counters").ok_or("missing field: counters")?;
    for key in [
        "instructions",
        "cycles",
        "handlers_dispatched",
        "wakeups",
        "events_inserted",
        "events_dropped",
        "busy_ps",
        "sleep_ps",
        "now_ps",
    ] {
        require_int(counters, key).map_err(|e| format!("counters.{e}"))?;
    }
    let by_event = counters
        .get("dispatches_by_event")
        .ok_or("counters.missing field: dispatches_by_event")?;
    for (name, count) in by_event
        .fields()
        .ok_or("counters.dispatches_by_event: expected object")?
    {
        if count.as_i64().is_none() {
            return Err(format!(
                "counters.dispatches_by_event.{name}: expected integer"
            ));
        }
    }

    let energy = node.get("energy").ok_or("missing field: energy")?;
    require_num(energy, "total_pj").map_err(|e| format!("energy.{e}"))?;
    require_num(energy, "pj_per_instruction").map_err(|e| format!("energy.{e}"))?;
    let components = energy
        .get("by_component_pj")
        .ok_or("energy.missing field: by_component_pj")?;
    for label in [
        "datapath",
        "fetch",
        "decode",
        "mem-interface",
        "misc",
        "imem",
        "dmem",
    ] {
        require_num(components, label).map_err(|e| format!("energy.by_component_pj.{e}"))?;
    }
    let by_class = energy
        .get("by_class")
        .ok_or("energy.missing field: by_class")?
        .elements()
        .ok_or("energy.by_class: expected array")?;
    for (i, c) in by_class.iter().enumerate() {
        require_str(c, "class").map_err(|e| format!("energy.by_class[{i}].{e}"))?;
        require_int(c, "count").map_err(|e| format!("energy.by_class[{i}].{e}"))?;
        require_num(c, "pj").map_err(|e| format!("energy.by_class[{i}].{e}"))?;
    }
    let by_handler = energy
        .get("by_handler")
        .ok_or("energy.missing field: by_handler")?
        .elements()
        .ok_or("energy.by_handler: expected array")?;
    for (i, h) in by_handler.iter().enumerate() {
        require_str(h, "event").map_err(|e| format!("energy.by_handler[{i}].{e}"))?;
        for key in ["dispatches", "instructions", "busy_ps"] {
            require_int(h, key).map_err(|e| format!("energy.by_handler[{i}].{e}"))?;
        }
        require_num(h, "pj").map_err(|e| format!("energy.by_handler[{i}].{e}"))?;
    }

    if let Some(hists) = node.get("histograms") {
        for key in ["handler_instructions", "handler_energy_pj", "queue_wait_ps"] {
            let h = hists
                .get(key)
                .ok_or(format!("histograms.missing field: {key}"))?;
            validate_histogram(h).map_err(|e| format!("histograms.{key}.{e}"))?;
        }
        require_int(hists, "samples_retained").map_err(|e| format!("histograms.{e}"))?;
        require_int(hists, "samples_truncated").map_err(|e| format!("histograms.{e}"))?;
    }
    Ok(())
}

fn validate_network(network: &Value) -> Result<(), String> {
    for key in ["deliveries", "collisions", "faded", "trace_recorded"] {
        require_int(network, key)?;
    }
    let h = network
        .get("window_active_nodes")
        .ok_or("missing field: window_active_nodes")?;
    validate_histogram(h).map_err(|e| format!("window_active_nodes.{e}"))
}

/// Validate one histogram summary object (shape produced by
/// [`crate::Histogram::to_json`]).
pub fn validate_histogram(h: &Value) -> Result<(), String> {
    require_int(h, "count")?;
    require_num(h, "sum")?;
    for key in ["min", "max", "mean", "p50", "p90", "p99"] {
        let v = h.get(key).ok_or(format!("missing field: {key}"))?;
        if !matches!(v, Value::Null) && v.as_f64().is_none() {
            return Err(format!("{key}: expected number or null"));
        }
    }
    let buckets = h
        .get("buckets")
        .ok_or("missing field: buckets")?
        .elements()
        .ok_or("buckets: expected array")?;
    if buckets.is_empty() {
        return Err("buckets: must end with the le:null bucket".to_string());
    }
    let mut prev_le = f64::NEG_INFINITY;
    let mut prev_count = i64::MIN;
    for (i, b) in buckets.iter().enumerate() {
        let le = b
            .get("le")
            .ok_or(format!("buckets[{i}].missing field: le"))?;
        let count = require_int(b, "count").map_err(|e| format!("buckets[{i}].{e}"))?;
        let last = i == buckets.len() - 1;
        match le {
            Value::Null if last => {}
            Value::Null => return Err(format!("buckets[{i}].le: null before final bucket")),
            _ => {
                let le = le
                    .as_f64()
                    .ok_or(format!("buckets[{i}].le: expected number or null"))?;
                if le <= prev_le {
                    return Err(format!("buckets[{i}].le: not increasing"));
                }
                prev_le = le;
            }
        }
        if count < prev_count.max(0) {
            return Err(format!("buckets[{i}].count: cumulative counts decreased"));
        }
        prev_count = count;
    }
    Ok(())
}

/// Validate a Chrome `trace_event` export: a JSON array of event
/// objects, each with `name`/`ph`/`pid`/`tid`, `ts` on timed events
/// (with `dur` on `"X"`), and non-decreasing timestamps across the
/// timed events.
pub fn validate_chrome_trace(text: &str) -> Result<(), String> {
    let v = parse(text)?;
    let events = v.elements().ok_or("expected top-level array")?;
    let mut prev_ts = f64::NEG_INFINITY;
    for (i, e) in events.iter().enumerate() {
        require_str(e, "name").map_err(|e| format!("[{i}].{e}"))?;
        let ph = require_str(e, "ph").map_err(|e| format!("[{i}].{e}"))?;
        require_int(e, "pid").map_err(|e| format!("[{i}].{e}"))?;
        require_int(e, "tid").map_err(|e| format!("[{i}].{e}"))?;
        if ph == "M" {
            continue;
        }
        let ts = require_num(e, "ts").map_err(|e| format!("[{i}].{e}"))?;
        if ts < prev_ts {
            return Err(format!("[{i}].ts: timestamps not monotonic"));
        }
        prev_ts = ts;
        if ph == "X" {
            let dur = require_num(e, "dur").map_err(|e| format!("[{i}].{e}"))?;
            if dur < 0.0 {
                return Err(format!("[{i}].dur: negative"));
            }
        }
    }
    Ok(())
}

fn require_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .ok_or(format!("missing field: {key}"))?
        .as_str()
        .ok_or(format!("{key}: expected string"))
}

fn require_int(v: &Value, key: &str) -> Result<i64, String> {
    v.get(key)
        .ok_or(format!("missing field: {key}"))?
        .as_i64()
        .ok_or(format!("{key}: expected integer"))
}

fn require_num(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .ok_or(format!("missing field: {key}"))?
        .as_f64()
        .ok_or(format!("{key}: expected number"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::ChromeTrace;
    use crate::metrics::{node_metrics, report, NetworkCounters};
    use snap_core::{CoreConfig, Processor};
    use snap_isa::Instruction;

    fn minimal_report(sampled: bool) -> String {
        let mut cpu = Processor::new(CoreConfig::default());
        if sampled {
            cpu.enable_sampling(16);
        }
        cpu.load_program(&[Instruction::Halt]).unwrap();
        cpu.run_to_halt(10).unwrap();
        let net = NetworkCounters::default();
        report(
            "test",
            0.6,
            1_000,
            vec![node_metrics(0, &cpu)],
            Some(net.to_json()),
        )
        .to_pretty()
    }

    #[test]
    fn real_reports_validate() {
        validate_metrics(&minimal_report(false)).unwrap();
        validate_metrics(&minimal_report(true)).unwrap();
    }

    #[test]
    fn rejects_wrong_schema_id() {
        let text = minimal_report(false).replace("snap-metrics-v1", "other-v9");
        let err = validate_metrics(&text).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn rejects_missing_counter() {
        let text = minimal_report(false).replace("\"wakeups\"", "\"wokeups\"");
        let err = validate_metrics(&text).unwrap_err();
        assert!(err.contains("wakeups"), "{err}");
    }

    #[test]
    fn real_chrome_trace_validates() {
        let mut t = ChromeTrace::new();
        t.process_name("p");
        t.thread_name(1, "node1");
        t.complete(1, "timer0", 0, 100, crate::json::Value::obj());
        t.instant(1, "led", 50, crate::json::Value::obj());
        validate_chrome_trace(&t.to_json()).unwrap();
    }

    #[test]
    fn rejects_non_monotonic_trace() {
        let text = r#"[
  {"name":"a","ph":"X","ts":5.0,"dur":1.0,"pid":0,"tid":1,"args":{}},
  {"name":"b","ph":"i","s":"t","ts":2.0,"pid":0,"tid":1,"args":{}}
]"#;
        let err = validate_chrome_trace(text).unwrap_err();
        assert!(err.contains("monotonic"), "{err}");
    }

    #[test]
    fn rejects_non_json() {
        assert!(validate_metrics("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
    }
}
