//! `srun --checkpoint-every` / `--restore` end to end: checkpointing a
//! run must not perturb it, and resuming from a mid-run checkpoint must
//! land on the uninterrupted run's exact final state.

use std::path::{Path, PathBuf};
use std::process::Command;

/// A self-contained periodic-timer blink: installs an `EV_TIMER0`
/// handler that counts ticks, re-arms itself and writes the LED port.
/// Keeps the node waking every 500 µs for as long as it runs.
const BLINK_S: &str = "\
boot:
    li      r1, 0
    li      r2, tick
    setaddr r1, r2
    li      r1, 0
    schedhi r1, r0
    li      r2, 500
    schedlo r1, r2
    done
tick:
    lw      r3, 0(r0)
    addi    r3, 1
    sw      r3, 0(r0)
    li      r1, 0
    schedhi r1, r0
    li      r2, 500
    schedlo r1, r2
    li      r5, 0x4000
    or      r5, r3
    mov     r15, r5
    done
";

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srun-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_srun(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_srun"))
        .args(args)
        .output()
        .expect("spawn srun");
    assert!(
        out.status.success(),
        "srun {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The final statistics block — state, clock, instruction count,
/// handler count, energy, busy/sleep split. Identical stats means the
/// runs were observably identical.
fn stats(stdout: &str) -> Vec<String> {
    let lines: Vec<String> = stdout
        .lines()
        .skip_while(|l| *l != "---")
        .map(String::from)
        .collect();
    assert!(!lines.is_empty(), "no stats block in output:\n{stdout}");
    lines
}

fn checkpoint_equivalence(engine: &str, tag: &str) {
    let dir = scratch_dir(tag);
    let src = dir.join("blink.s");
    std::fs::write(&src, BLINK_S).unwrap();
    let src = src.to_str().unwrap();

    let straight = run_srun(&["--ms", "10", "--engine", engine, src]);

    // Checkpointing must not perturb the run.
    let observed = run_srun(&[
        "--ms",
        "10",
        "--engine",
        engine,
        "--checkpoint-every",
        "2",
        src,
    ]);
    assert_eq!(
        stats(&observed),
        stats(&straight),
        "checkpointing changed the run"
    );
    for ms in [2u64, 4, 6, 8, 10] {
        assert!(
            Path::new(&format!("{src}.ckpt.{ms}ms.snap")).exists(),
            "missing checkpoint at {ms} ms"
        );
    }

    // Resuming from the 4 ms checkpoint and running the remaining 6 ms
    // must land exactly on the straight run.
    let resumed = run_srun(&["--restore", &format!("{src}.ckpt.4ms.snap"), "--ms", "6"]);
    assert_eq!(
        stats(&resumed),
        stats(&straight),
        "restore diverged from the straight run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_restore_matches_straight_run_fused() {
    checkpoint_equivalence("fused", "fused");
}

#[test]
fn checkpoint_restore_matches_straight_run_aot() {
    // The AOT image is not serialized; restore re-proves and recompiles
    // from the restored IMEM and must still be bit-identical.
    checkpoint_equivalence("aot", "aot");
}

#[test]
fn restore_rejects_garbage() {
    let dir = scratch_dir("garbage");
    let bad = dir.join("bad.snap");
    std::fs::write(&bad, b"not a snapshot").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_srun"))
        .args(["--restore", bad.to_str().unwrap(), "--ms", "1"])
        .output()
        .expect("spawn srun");
    assert!(!out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}
