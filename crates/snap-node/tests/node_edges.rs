//! Node-level edge cases: radio mode transitions, sensor latency, and
//! half-duplex behaviour.

use dess::SimDuration;
use snap_asm::assemble;
use snap_node::{Node, NodeConfig, NodeOutput, RadioMode};

fn node_with(src: &str) -> Node {
    let program = assemble(src).unwrap();
    let mut node = Node::new(NodeConfig::default());
    node.load(&program).unwrap();
    node
}

/// Sensor replies arrive after the configured latency, not instantly.
#[test]
fn sensor_reply_takes_the_configured_latency() {
    let src = r"
        .equ EV_REPLY, 6
    boot:
        li      r1, EV_REPLY
        li      r2, got
        setaddr r1, r2
        li      r15, 0x3002
        done
    got:
        mov     r3, r15
        halt
    ";
    let mut node = node_with(src);
    node.sensors_mut().set_reading(2, 99);
    node.run_for(SimDuration::from_us(5)).unwrap();
    // Query issued in the first microseconds; the default reply latency
    // is 10 us, so the reading must not have arrived yet.
    assert_ne!(node.cpu().regs().read(snap_isa::Reg::R3), 99);
    node.run_for(SimDuration::from_us(10)).unwrap();
    assert_eq!(node.cpu().regs().read(snap_isa::Reg::R3), 99);
}

/// Half duplex: words delivered while the node transmits are lost.
#[test]
fn transmitting_node_cannot_hear() {
    // Note: the tx-done handler must be installed — an empty table
    // entry points at address 0, which would faithfully re-run boot
    // (and re-transmit) like the real hardware would.
    let src = r"
        .equ EV_TXDONE, 4
    boot:
        li      r1, EV_TXDONE
        li      r2, idle
        setaddr r1, r2
        li      r15, 0x1001    ; rx on
        li      r15, 0x2000    ; tx
        li      r15, 0xaaaa    ; payload: on the air for ~833us
        done
    idle:
        done
    ";
    let mut node = node_with(src);
    node.run_for(SimDuration::from_us(100)).unwrap();
    assert_eq!(node.radio().mode(), RadioMode::Tx);
    assert!(!node.deliver_rx(0x1234), "half duplex");
    // After the word completes, reception works again.
    node.run_for(SimDuration::from_ms(1)).unwrap();
    assert_eq!(node.radio().mode(), RadioMode::Rx);
    assert!(node.deliver_rx(0x1234));
}

/// Radio mode changes requested during a transmission are ignored; the
/// radio returns to RX when the word completes.
#[test]
fn mode_change_during_tx_is_ignored() {
    let src = r"
        .equ EV_TXDONE, 4
    boot:
        li      r1, EV_TXDONE
        li      r2, idle
        setaddr r1, r2
        li      r15, 0x1001
        li      r15, 0x2000
        li      r15, 0xbbbb
        li      r15, 0x1000    ; radio off — while TX is in flight
        done
    idle:
        done
    ";
    let mut node = node_with(src);
    let out = node.run_for(SimDuration::from_ms(2)).unwrap();
    // The word still went out.
    assert!(out
        .iter()
        .any(|o| matches!(o, NodeOutput::Transmitted { word: 0xbbbb, .. })));
    assert_eq!(node.radio().mode(), RadioMode::Rx, "returns to RX after TX");
}

/// Port writes are visible in outputs and history with timestamps in
/// ascending order.
#[test]
fn led_history_is_monotone() {
    let src = r"
    boot:
        li      r15, 0x4001
        li      r15, 0x4000
        li      r15, 0x4005
        halt
    ";
    let mut node = node_with(src);
    node.run_for(SimDuration::from_ms(1)).unwrap();
    let hist = node.led().history();
    assert_eq!(hist.len(), 3);
    assert!(hist.windows(2).all(|w| w[0].0 <= w[1].0));
    assert_eq!(node.led().value(), 5);
}

/// A node asleep with an armed timer reports that expiry as its next
/// activity; after it fires, next_activity is None again.
#[test]
fn next_activity_tracks_timers() {
    let src = r"
    boot:
        li      r1, 0
        li      r2, tick
        setaddr r1, r2
        li      r3, 0
        schedhi r3, r0
        li      r4, 700
        schedlo r3, r4
        done
    tick:
        done
    ";
    let mut node = node_with(src);
    node.run_for(SimDuration::from_us(10)).unwrap();
    let next = node.next_activity().expect("armed timer");
    assert!((next.as_us() - 700.0).abs() < 5.0, "{next}");
    node.run_for(SimDuration::from_ms(1)).unwrap();
    assert_eq!(node.next_activity(), None, "one-shot timer consumed");
}
