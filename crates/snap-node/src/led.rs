//! The output port (LEDs).
//!
//! The TinyOS comparison applications blink and display values on LEDs;
//! on SNAP "this operation corresponds to a write to the sensor port"
//! (paper §4.6). The port records its history so benchmarks can count
//! blinks and check displayed values.

use dess::SimTime;

/// The 12-bit output port with change history.
#[derive(Debug, Clone, Default)]
pub struct LedPort {
    value: u16,
    history: Vec<(SimTime, u16)>,
}

impl LedPort {
    /// A port driving 0 with empty history.
    pub fn new() -> LedPort {
        LedPort::default()
    }

    /// Record a write of `value` at time `at`.
    pub fn write(&mut self, at: SimTime, value: u16) {
        self.value = value & 0x0fff;
        self.history.push((at, self.value));
    }

    /// The currently driven value.
    pub fn value(&self) -> u16 {
        self.value
    }

    /// All writes, in time order.
    pub fn history(&self) -> &[(SimTime, u16)] {
        &self.history
    }

    /// Number of writes.
    pub fn writes(&self) -> usize {
        self.history.len()
    }

    /// All state for a snapshot: `(value, history)`.
    pub(crate) fn export(&self) -> (u16, &[(SimTime, u16)]) {
        (self.value, &self.history)
    }

    /// Rebuild from a snapshot.
    pub(crate) fn restore(value: u16, history: Vec<(SimTime, u16)>) -> LedPort {
        LedPort { value, history }
    }

    /// Number of value *changes* (a blink toggles, so one blink = one
    /// change).
    pub fn changes(&self) -> usize {
        let mut last = 0u16;
        let mut n = 0;
        for &(_, v) in &self.history {
            if v != last {
                n += 1;
                last = v;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_history() {
        let mut led = LedPort::new();
        led.write(SimTime::from_ps(1), 1);
        led.write(SimTime::from_ps(2), 0);
        led.write(SimTime::from_ps(3), 0);
        led.write(SimTime::from_ps(4), 1);
        assert_eq!(led.value(), 1);
        assert_eq!(led.writes(), 4);
        assert_eq!(led.changes(), 3); // 0->1, 1->0, 0->1
    }

    #[test]
    fn masks_to_12_bits() {
        let mut led = LedPort::new();
        led.write(SimTime::ZERO, 0xffff);
        assert_eq!(led.value(), 0x0fff);
    }
}
