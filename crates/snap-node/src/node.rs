//! The node event loop: core + radio + sensors + port, in lock-step
//! simulated time.
//!
//! A [`Node`] comes in three kinds ([`NodeKind`]): SNAP/LE sensor
//! nodes, ATmega-baseline motes ([`crate::avr::AvrMote`]), and
//! mains-powered SNAP gateways that log every word they hear into an
//! uplink buffer for the serving layer. All three satisfy the same
//! scheduler contract (`next_activity` / `run_until` / `deliver_rx`),
//! so the network layer treats a heterogeneous fleet uniformly.
//!
//! Nodes may carry a finite [`BatteryConfig`]; when the budget runs
//! out the node dies at a deterministic instant (see
//! [`Node::run_until`] and `snap_energy::battery` for the invariant).

use crate::avr::{AvrMote, AVR_BIT_RATE, AVR_CYCLE_PS};
use crate::led::LedPort;
use crate::radio::Radio;
use crate::sensor::SensorBank;
use atmega::{AvrCore, AvrCoreError};
use dess::{Calendar, SimDuration, SimTime};
use snap_asm::Program;
use snap_core::{CoreConfig, CoreState, EnvAction, Processor, StepError};
use snap_energy::{BatteryConfig, Energy};
use snap_isa::Word;
use std::fmt;

/// Identifies a node within a network simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Node configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// The processor configuration.
    pub core: CoreConfig,
    /// Radio bit rate in bits/second.
    pub radio_bit_rate: f64,
    /// This node's identity.
    pub id: NodeId,
    /// Safety cap on instructions per [`Node::run_until`] call; a runaway
    /// handler (infinite loop) trips [`NodeError::StepLimit`] instead of
    /// hanging the simulation.
    pub step_limit: u64,
}

impl Default for NodeConfig {
    fn default() -> NodeConfig {
        NodeConfig {
            core: CoreConfig::default(),
            radio_bit_rate: crate::radio::DEFAULT_BIT_RATE,
            id: NodeId(0),
            step_limit: 10_000_000,
        }
    }
}

/// What hardware a [`Node`] runs, and its role in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeKind {
    /// A SNAP/LE sensor node (the paper's processor).
    #[default]
    Snap,
    /// An ATmega-baseline mote: an AVR core running the TinyOS-like
    /// runtime, adapted to the node contract by [`crate::avr::AvrMote`].
    Avr,
    /// A mains-powered SNAP node that bridges radio traffic upstream:
    /// every word it hears is logged to [`Node::uplink`]. Gateways
    /// never carry a battery budget.
    Gateway,
}

/// The processor behind a node: kind-level dispatch lives here so the
/// rest of the node (radio, sensors, calendar) stays shared.
///
/// Deliberately not boxed: this enum sits on every node of up-to-1M
/// fleets and the SNAP core is the common case — an AVR mote wastes
/// the size difference, but boxing would put every SNAP core behind a
/// pointer chase on the hottest dispatch path.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub(crate) enum NodeCpu {
    Snap(Processor),
    Avr(AvrMote),
}

/// One radio word a gateway heard, queued for the uplink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UplinkFrame {
    /// When the word finished arriving at the gateway.
    pub at: SimTime,
    /// The word.
    pub word: Word,
}

/// Externally visible things a node did during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeOutput {
    /// A radio word went on the air from `start` to `end`.
    Transmitted {
        /// The transmitted word.
        word: Word,
        /// Start of serialization.
        start: SimTime,
        /// End of serialization (when peers hear it).
        end: SimTime,
    },
    /// The output port changed.
    LedWrite {
        /// The driven value.
        value: u16,
        /// When.
        at: SimTime,
    },
    /// The radio was enabled or disabled.
    RadioModeChanged {
        /// `true` = receiver on.
        enabled: bool,
        /// When.
        at: SimTime,
    },
    /// The node's battery budget ran out: it ceased operating at `at`
    /// and will never produce activity again. Emitted exactly once.
    Died {
        /// The exact exhaustion instant (scheduler-invariant; see
        /// `snap_energy::battery`).
        at: SimTime,
    },
}

/// Node-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeError {
    /// The core faulted.
    Core {
        /// Which node.
        node: NodeId,
        /// The underlying fault.
        error: StepError,
    },
    /// A handler issued a radio TX while a word was still on the air
    /// (the MAC must wait for `RadioTxDone`).
    RadioBusy {
        /// Which node.
        node: NodeId,
        /// When.
        at: SimTime,
    },
    /// The instruction budget of a single awake stretch was exhausted
    /// (runaway handler). The counter persists across
    /// [`Node::run_until`] window boundaries and resets only when the
    /// core sleeps or dispatches a fresh handler, so a runaway handler
    /// spanning many windows is still caught.
    StepLimit {
        /// Which node.
        node: NodeId,
        /// The configured budget.
        limit: u64,
    },
    /// An AVR-kind node's core faulted.
    Avr {
        /// Which node.
        node: NodeId,
        /// The underlying fault.
        error: AvrCoreError,
    },
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::Core { node, error } => write!(f, "{node}: {error}"),
            NodeError::RadioBusy { node, at } => {
                write!(f, "{node}: radio TX while busy at {at}")
            }
            NodeError::StepLimit { node, limit } => {
                write!(f, "{node}: exceeded {limit} instructions in one run")
            }
            NodeError::Avr { node, error } => write!(f, "{node}: {error}"),
        }
    }
}

impl std::error::Error for NodeError {}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Pending {
    TxDone,
    SensorReply(Word),
}

/// Earliest of two optional instants (`None` = never).
fn min_opt(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// A complete simulated sensor node (Fig. 1), of any [`NodeKind`].
///
/// Fields are `pub(crate)` for one consumer only: [`crate::snapshot`].
#[derive(Debug)]
pub struct Node {
    pub(crate) id: NodeId,
    pub(crate) kind: NodeKind,
    pub(crate) cpu: NodeCpu,
    pub(crate) radio: Radio,
    pub(crate) sensors: SensorBank,
    pub(crate) led: LedPort,
    pub(crate) pending: Calendar<Pending>,
    pub(crate) step_limit: u64,
    /// Instructions executed in the current awake stretch. Persists
    /// across `run_until` calls; resets when the core sleeps or a new
    /// handler is dispatched (see [`NodeError::StepLimit`]).
    pub(crate) run_steps: u64,
    /// The finite energy budget, if any. `None` = mains powered.
    pub(crate) battery: Option<BatteryConfig>,
    /// Set exactly once, at the instant the battery ran out.
    pub(crate) died_at: Option<SimTime>,
    /// Words heard by a [`NodeKind::Gateway`] node, in arrival order.
    pub(crate) uplink: Vec<UplinkFrame>,
}

impl Node {
    /// Build a SNAP node from its configuration.
    pub fn new(config: NodeConfig) -> Node {
        Node::with_kind(config, NodeKind::Snap)
    }

    /// Build a mains-powered SNAP gateway: identical to a SNAP node,
    /// but every word it hears is also logged to [`Node::uplink`] and
    /// [`Node::set_battery`] is a no-op (gateways never die).
    pub fn new_gateway(config: NodeConfig) -> Node {
        Node::with_kind(config, NodeKind::Gateway)
    }

    fn with_kind(config: NodeConfig, kind: NodeKind) -> Node {
        let mut radio = Radio::with_bit_rate(config.radio_bit_rate);
        if matches!(kind, NodeKind::Gateway) {
            // A gateway bridges from boot: its receiver is on before
            // (and regardless of whether) the program asks for it.
            radio.set_enabled(true);
        }
        Node {
            id: config.id,
            kind,
            cpu: NodeCpu::Snap(Processor::new(config.core)),
            radio,
            sensors: SensorBank::new(),
            led: LedPort::new(),
            pending: Calendar::new(),
            step_limit: config.step_limit,
            run_steps: 0,
            battery: None,
            died_at: None,
            uplink: Vec::new(),
        }
    }

    /// Build an AVR-baseline mote node around an assembled-and-wired
    /// core (see `atmega::tinyos` for the application builders). The
    /// radio runs at [`AVR_BIT_RATE`]; the receiver starts off and
    /// stays off after transmissions (beacon-style motes are
    /// transmit-only — see [`crate::avr::AvrMote`]).
    pub fn new_avr(id: NodeId, core: AvrCore) -> Node {
        Node {
            id,
            kind: NodeKind::Avr,
            cpu: NodeCpu::Avr(AvrMote::new(core)),
            radio: Radio::with_bit_rate(AVR_BIT_RATE),
            sensors: SensorBank::new(),
            led: LedPort::new(),
            pending: Calendar::new(),
            step_limit: NodeConfig::default().step_limit,
            run_steps: 0,
            battery: None,
            died_at: None,
            uplink: Vec::new(),
        }
    }

    /// Load an assembled program (IMEM and DMEM images) into the core.
    ///
    /// # Errors
    ///
    /// Returns an error if either image exceeds its 4 KB bank.
    ///
    /// # Panics
    ///
    /// Panics on an AVR-kind node (its program is baked into the
    /// [`AvrCore`] at construction).
    pub fn load(&mut self, program: &Program) -> Result<(), snap_core::memory::LoadError> {
        let cpu = self.snap_mut();
        cpu.load_image(0, &program.imem_image())?;
        cpu.load_data(0, &program.dmem_image())
    }

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's kind.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Clone this node under a new identity.
    ///
    /// Memory banks and the decode cache are copy-on-write, so cloning
    /// a fully-loaded template is the cheap way to build large fleets:
    /// the program image and predecoded instructions are shared until a
    /// node first writes to its own DMEM. The battery configuration is
    /// inherited; the uplink buffer starts empty.
    pub fn clone_with_id(&self, id: NodeId) -> Node {
        Node {
            id,
            kind: self.kind,
            cpu: match &self.cpu {
                NodeCpu::Snap(cpu) => NodeCpu::Snap(cpu.clone()),
                NodeCpu::Avr(mote) => NodeCpu::Avr(mote.clone()),
            },
            radio: self.radio.clone(),
            sensors: self.sensors.clone(),
            led: self.led.clone(),
            pending: Calendar::new(),
            step_limit: self.step_limit,
            run_steps: self.run_steps,
            battery: self.battery,
            died_at: self.died_at,
            uplink: Vec::new(),
        }
    }

    /// The SNAP processor (statistics, registers, memories).
    ///
    /// # Panics
    ///
    /// Panics on an AVR-kind node — callers iterating a heterogeneous
    /// fleet dispatch on [`Node::kind`] first (or use [`Node::avr`]).
    pub fn cpu(&self) -> &Processor {
        self.snap()
    }

    /// Mutable SNAP processor access (test fixtures).
    ///
    /// # Panics
    ///
    /// Panics on an AVR-kind node (see [`Node::cpu`]).
    pub fn cpu_mut(&mut self) -> &mut Processor {
        self.snap_mut()
    }

    /// The AVR mote behind an [`NodeKind::Avr`] node; `None` otherwise.
    pub fn avr(&self) -> Option<&AvrMote> {
        match &self.cpu {
            NodeCpu::Avr(mote) => Some(mote),
            NodeCpu::Snap(_) => None,
        }
    }

    /// Mutable AVR mote access (test fixtures).
    pub fn avr_mut(&mut self) -> Option<&mut AvrMote> {
        match &mut self.cpu {
            NodeCpu::Avr(mote) => Some(mote),
            NodeCpu::Snap(_) => None,
        }
    }

    fn snap(&self) -> &Processor {
        match &self.cpu {
            NodeCpu::Snap(cpu) => cpu,
            NodeCpu::Avr(_) => panic!("{}: SNAP processor access on an AVR-kind node", self.id),
        }
    }

    fn snap_mut(&mut self) -> &mut Processor {
        match &mut self.cpu {
            NodeCpu::Snap(cpu) => cpu,
            NodeCpu::Avr(_) => panic!("{}: SNAP processor access on an AVR-kind node", self.id),
        }
    }

    /// The radio.
    pub fn radio(&self) -> &Radio {
        &self.radio
    }

    /// The sensors (mutable so the environment can change readings).
    pub fn sensors_mut(&mut self) -> &mut SensorBank {
        &mut self.sensors
    }

    /// The sensors.
    pub fn sensors(&self) -> &SensorBank {
        &self.sensors
    }

    /// The output port.
    pub fn led(&self) -> &LedPort {
        &self.led
    }

    /// Current node-local simulated time.
    pub fn now(&self) -> SimTime {
        match &self.cpu {
            NodeCpu::Snap(cpu) => cpu.now(),
            NodeCpu::Avr(mote) => mote.now(),
        }
    }

    /// Attach (or remove) a finite energy budget. Ignored on gateway
    /// nodes — they are mains powered by definition.
    pub fn set_battery(&mut self, battery: Option<BatteryConfig>) {
        if !matches!(self.kind, NodeKind::Gateway) {
            self.battery = battery;
        }
    }

    /// The energy budget, if one is attached.
    pub fn battery(&self) -> Option<&BatteryConfig> {
        self.battery.as_ref()
    }

    /// The instant the battery ran out, once it has.
    pub fn died_at(&self) -> Option<SimTime> {
        self.died_at
    }

    /// Words heard by a gateway node, in arrival order (always empty
    /// for other kinds).
    pub fn uplink(&self) -> &[UplinkFrame] {
        &self.uplink
    }

    /// Drain the gateway uplink buffer (the serving layer consumes it).
    pub fn take_uplink(&mut self) -> Vec<UplinkFrame> {
        std::mem::take(&mut self.uplink)
    }

    /// The lifetime totals the battery model consumes: (active energy,
    /// sleep picoseconds, words transmitted). All three are exact
    /// functions of node state — never incrementally accumulated — so
    /// battery math is scheduler-invariant (see `snap_energy::battery`).
    pub fn consumption_totals(&self) -> (Energy, u64, u64) {
        match &self.cpu {
            NodeCpu::Snap(cpu) => {
                let stats = cpu.stats();
                (
                    stats.energy,
                    stats.sleep_time.as_ps(),
                    self.radio.words_sent(),
                )
            }
            NodeCpu::Avr(mote) => (
                mote.active_energy(),
                mote.sleep_ps(),
                self.radio.words_sent(),
            ),
        }
    }

    /// Charge consumed so far against the battery (`None` when mains
    /// powered).
    pub fn battery_consumed(&self) -> Option<Energy> {
        let battery = self.battery.as_ref()?;
        let (active, sleep_ps, words) = self.consumption_totals();
        Some(battery.consumed(active, sleep_ps, words))
    }

    /// The exact instant the battery runs out if the node keeps
    /// sleeping from now on — the death instant the event loop kills
    /// the node at. `None` when mains powered or past the simulation
    /// horizon. Only meaningful while the node is idle.
    fn death_instant(&self) -> Option<SimTime> {
        let battery = self.battery.as_ref()?;
        let (active, sleep_ps, words) = self.consumption_totals();
        let extra = battery.sleep_ps_to_exhaustion(active, sleep_ps, words)?;
        Some(self.now() + SimDuration::from_ps(extra))
    }

    /// Deliver a radio word from the channel. Returns `true` when the
    /// node heard it (receiver on, not transmitting, event accepted).
    /// Dead nodes hear nothing. On an AVR mote the word's low byte
    /// arrives as an SPI-complete interrupt. On a gateway the word is
    /// logged to [`Node::uplink`] and counts as heard whether or not
    /// the program also consumes it (bridging is the gateway's job;
    /// local processing is optional).
    pub fn deliver_rx(&mut self, word: Word) -> bool {
        if self.died_at.is_some() || !self.radio.can_hear() {
            return false;
        }
        self.radio.note_heard();
        if matches!(self.kind, NodeKind::Gateway) {
            self.uplink.push(UplinkFrame {
                at: self.now(),
                word,
            });
        }
        match &mut self.cpu {
            NodeCpu::Snap(cpu) => {
                let accepted = cpu.post_radio_rx(word);
                accepted || matches!(self.kind, NodeKind::Gateway)
            }
            NodeCpu::Avr(mote) => {
                mote.core.post_spi_rx(word as u8);
                true
            }
        }
    }

    /// Assert the external sensor-interrupt pin. Always `false` on AVR
    /// motes (their sensing path is the ADC, driven by the program) and
    /// on dead nodes.
    pub fn trigger_sensor_irq(&mut self) -> bool {
        if self.died_at.is_some() {
            return false;
        }
        match &mut self.cpu {
            NodeCpu::Snap(cpu) => cpu.post_sensor_irq(),
            NodeCpu::Avr(_) => false,
        }
    }

    /// When this node next needs attention: now if running or an event
    /// is deliverable, the earliest pending/timer/battery-death instant
    /// while asleep, `None` when nothing will ever happen again (halted
    /// or dead).
    ///
    /// The battery-death instant counts as activity so every scheduler
    /// naturally windows at it and [`Node::run_until`] kills the node
    /// there — that, plus the instant being a pure function of node
    /// state, is what makes death timing scheduler-invariant.
    pub fn next_activity(&self) -> Option<SimTime> {
        if self.died_at.is_some() {
            return None;
        }
        match &self.cpu {
            NodeCpu::Snap(cpu) => match cpu.state() {
                CoreState::Halted => None,
                CoreState::Running => Some(cpu.now()),
                CoreState::Asleep => {
                    if !cpu.event_queue().is_empty() {
                        return Some(cpu.now());
                    }
                    let pending = self.pending.peek_time();
                    let timer = cpu.next_timer_expiry();
                    let wake = min_opt(pending, timer);
                    min_opt(wake, self.death_instant())
                }
            },
            NodeCpu::Avr(mote) => {
                let core = mote.core();
                if core.halted() {
                    return None;
                }
                if !core.sleeping() || core.irq_pending() {
                    return Some(mote.now());
                }
                let peripheral = core
                    .next_event_cycle()
                    .map(|c| SimTime::from_ps(c * AVR_CYCLE_PS));
                let wake = min_opt(peripheral, self.pending.peek_time());
                min_opt(wake, self.death_instant())
            }
        }
    }

    /// Advance the node until `deadline`, executing handlers and
    /// delivering radio/sensor events at their due times.
    ///
    /// SNAP handlers execute in batched bursts ([`Processor::run_burst`])
    /// bounded by the earliest pending local event, so per-instruction
    /// polling overhead is gone while event delivery instants — and
    /// therefore all architectural state — stay bit-identical to the
    /// stepped loop. AVR motes run their core to the first instruction
    /// boundary at or past the deadline (see [`crate::avr`]).
    ///
    /// ## Battery death
    ///
    /// A node with a [`BatteryConfig`] checks its budget at every
    /// active→idle boundary: if the budget runs out before the node's
    /// next wake-up, it dies at exactly the exhaustion instant (idling
    /// up to it first, so the final sleep stretch is accounted). Both
    /// the decision points and the instant are pure functions of node
    /// state, so death timing is identical under every scheduler. Death
    /// wins ties: a node whose budget expires exactly at a wake-up or
    /// delivery instant dies without processing the event. A dead node
    /// does nothing forever after.
    ///
    /// # Errors
    ///
    /// See [`NodeError`].
    pub fn run_until(&mut self, deadline: SimTime) -> Result<Vec<NodeOutput>, NodeError> {
        let mut outputs = Vec::new();
        match self.cpu {
            NodeCpu::Snap(_) => self.run_snap_until(deadline, &mut outputs)?,
            NodeCpu::Avr(_) => self.run_avr_until(deadline, &mut outputs)?,
        }
        Ok(outputs)
    }

    fn run_snap_until(
        &mut self,
        deadline: SimTime,
        outputs: &mut Vec<NodeOutput>,
    ) -> Result<(), NodeError> {
        loop {
            if self.died_at.is_some() {
                break;
            }
            self.deliver_due();
            match self.snap().state() {
                CoreState::Halted => break,
                CoreState::Running => {
                    if self.snap().now() >= deadline {
                        break;
                    }
                    let remaining = self.step_limit.saturating_sub(self.run_steps);
                    if remaining == 0 {
                        return Err(NodeError::StepLimit {
                            node: self.id,
                            limit: self.step_limit,
                        });
                    }
                    // Stop the burst where a stepped loop would have
                    // delivered the next pending radio/sensor event
                    // (`deliver_due` polls at instruction boundaries).
                    let limit = match self.pending.peek_time() {
                        Some(p) if p < deadline => p,
                        _ => deadline,
                    };
                    let node = self.id;
                    let cpu = self.snap_mut();
                    let dispatched = cpu.handlers_dispatched();
                    let burst = cpu
                        .run_burst(limit, remaining)
                        .map_err(|error| NodeError::Core { node, error })?;
                    if cpu.handlers_dispatched() != dispatched {
                        // `done` chained into a fresh handler mid-burst:
                        // restart the runaway budget. Attributing the
                        // whole burst to the newest handler over-counts
                        // by at most one burst, which only matters when
                        // the budget was nearly exhausted anyway.
                        self.run_steps = burst.steps;
                    } else {
                        self.run_steps += burst.steps;
                    }
                    if let Some(action) = burst.action {
                        self.handle_action(action, outputs)?;
                    }
                }
                CoreState::Asleep => {
                    self.run_steps = 0;
                    if !self.snap().event_queue().is_empty() {
                        // A token is waiting: wake up.
                        let node = self.id;
                        self.snap_mut()
                            .step()
                            .map_err(|error| NodeError::Core { node, error })?;
                        continue;
                    }
                    let wake = min_opt(self.pending.peek_time(), self.snap().next_timer_expiry());
                    if self.die_if_exhausted_before(wake, deadline, outputs) {
                        break;
                    }
                    match wake {
                        Some(t) if t <= deadline => {
                            self.snap_mut().advance_idle(t);
                        }
                        _ => {
                            self.snap_mut().advance_idle(deadline);
                            break;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The shared death check, evaluated at an active→idle boundary:
    /// if the battery runs out no later than both the node's next wake
    /// (`wake`, `None` = never wakes) and the window `deadline`, idle
    /// up to the exhaustion instant, mark the node dead and emit
    /// [`NodeOutput::Died`]. Returns whether the node died.
    fn die_if_exhausted_before(
        &mut self,
        wake: Option<SimTime>,
        deadline: SimTime,
        outputs: &mut Vec<NodeOutput>,
    ) -> bool {
        let Some(at) = self.death_instant() else {
            return false;
        };
        if wake.is_some_and(|w| at > w) || at > deadline {
            return false;
        }
        match &mut self.cpu {
            NodeCpu::Snap(cpu) => {
                cpu.advance_idle(at);
            }
            NodeCpu::Avr(mote) => {
                let cycle = AvrMote::cycle_deadline(at);
                mote.core_mut().freeze_at_wall(cycle);
            }
        }
        self.died_at = Some(at);
        outputs.push(NodeOutput::Died { at });
        true
    }

    fn run_avr_until(
        &mut self,
        deadline: SimTime,
        outputs: &mut Vec<NodeOutput>,
    ) -> Result<(), NodeError> {
        let node = self.id;
        let dl_cycles = AvrMote::cycle_deadline(deadline);
        loop {
            if self.died_at.is_some() {
                break;
            }
            self.deliver_due();
            let core = match &self.cpu {
                NodeCpu::Avr(mote) => mote.core(),
                NodeCpu::Snap(_) => unreachable!("run_avr_until on a SNAP node"),
            };
            if core.halted() {
                break;
            }
            if core.sleeping() && !core.irq_pending() {
                // Idle: the next thing that can happen is a core
                // peripheral event, a node-layer calendar entry
                // (radio TX completion), or battery death.
                let peripheral = core
                    .next_event_cycle()
                    .map(|c| SimTime::from_ps(c * AVR_CYCLE_PS));
                let wake = min_opt(peripheral, self.pending.peek_time());
                if self.die_if_exhausted_before(wake, deadline, outputs) {
                    break;
                }
                let target = match wake {
                    Some(w) if w <= deadline => AvrMote::cycle_deadline(w),
                    _ => dl_cycles,
                };
                let mote = self.avr_mut().expect("AVR node");
                mote.core_mut()
                    .run_until_wall(target)
                    .map_err(|error| NodeError::Avr { node, error })?;
                // A fired wake interrupt may have executed a few ISR
                // instructions inside `run_until_wall` before the wall
                // target was reached — surface any SPI bytes they wrote.
                self.drain_avr_tx(outputs)?;
                if target == dl_cycles && wake.is_none_or(|w| w > deadline) {
                    self.deliver_due();
                    break;
                }
                continue;
            }
            // Active (or a wake interrupt is deliverable): run to the
            // next idle boundary or the first instruction boundary at
            // or past the deadline, then surface new SPI bytes as
            // radio words.
            let mote = self.avr_mut().expect("AVR node");
            mote.core_mut()
                .run_active_until_wall(dl_cycles)
                .map_err(|error| NodeError::Avr { node, error })?;
            self.drain_avr_tx(outputs)?;
            let reached = match &self.cpu {
                NodeCpu::Avr(mote) => mote.core().wall_cycles() >= dl_cycles,
                NodeCpu::Snap(_) => unreachable!(),
            };
            if reached {
                self.deliver_due();
                break;
            }
        }
        Ok(())
    }

    /// Turn SPI bytes the AVR program wrote since the last drain into
    /// on-air radio words, one word per byte, starting at the byte's
    /// write instant. TX completions that fall before a byte's start
    /// are processed first so back-to-back bytes find the radio free.
    fn drain_avr_tx(&mut self, outputs: &mut Vec<NodeOutput>) -> Result<(), NodeError> {
        loop {
            let (byte, cycle) = {
                let mote = match &self.cpu {
                    NodeCpu::Avr(mote) => mote,
                    NodeCpu::Snap(_) => unreachable!("drain_avr_tx on a SNAP node"),
                };
                let i = mote.tx_emitted;
                match (
                    mote.core().spi_sent().get(i),
                    mote.core().spi_sent_cycles().get(i),
                ) {
                    (Some(&b), Some(&c)) => (b, c),
                    _ => break,
                }
            };
            let start = SimTime::from_ps(cycle * AVR_CYCLE_PS);
            self.pop_pending_through(start);
            match self.radio.start_tx(Word::from(byte), start) {
                Some(end) => {
                    self.pending.schedule(end, Pending::TxDone);
                    outputs.push(NodeOutput::Transmitted {
                        word: Word::from(byte),
                        start,
                        end,
                    });
                }
                None => {
                    return Err(NodeError::RadioBusy {
                        node: self.id,
                        at: start,
                    })
                }
            }
            if let NodeCpu::Avr(mote) = &mut self.cpu {
                mote.tx_emitted += 1;
            }
        }
        Ok(())
    }

    /// Advance the node by `duration` from its current time.
    ///
    /// ```
    /// use dess::SimDuration;
    /// use snap_node::{Node, NodeConfig};
    ///
    /// let program = snap_asm::assemble("boot: li r15, 0x4003\n done")?;
    /// let mut node = Node::new(NodeConfig::default());
    /// node.load(&program)?;
    /// node.run_for(SimDuration::from_us(10))?;
    /// assert_eq!(node.led().value(), 3);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// See [`NodeError`].
    pub fn run_for(&mut self, duration: SimDuration) -> Result<Vec<NodeOutput>, NodeError> {
        self.run_until(self.now() + duration)
    }

    fn deliver_due(&mut self) {
        self.pop_pending_through(self.now());
    }

    /// Process calendar entries due at or before `t`. On SNAP nodes a
    /// TX completion posts `RadioTxDone`; on AVR motes the core already
    /// took its own SPI-complete interrupt, so only the radio is freed
    /// (and returned to the mote's listen policy — off by default).
    fn pop_pending_through(&mut self, t: SimTime) {
        while let Some(due) = self.pending.peek_time() {
            if due > t {
                break;
            }
            let (_, ev) = self.pending.pop().expect("peeked");
            match ev {
                Pending::TxDone => {
                    let _word = self.radio.finish_tx();
                    match &mut self.cpu {
                        NodeCpu::Snap(cpu) => {
                            cpu.post_radio_tx_done();
                        }
                        NodeCpu::Avr(mote) => {
                            self.radio.set_enabled(mote.listen);
                        }
                    }
                }
                Pending::SensorReply(v) => {
                    if let NodeCpu::Snap(cpu) = &mut self.cpu {
                        cpu.post_sensor_reply(v);
                    }
                }
            }
        }
    }

    fn handle_action(
        &mut self,
        action: EnvAction,
        outputs: &mut Vec<NodeOutput>,
    ) -> Result<(), NodeError> {
        let now = self.snap().now();
        match action {
            EnvAction::TxWord(word) => match self.radio.start_tx(word, now) {
                Some(end) => {
                    self.pending.schedule(end, Pending::TxDone);
                    outputs.push(NodeOutput::Transmitted {
                        word,
                        start: now,
                        end,
                    });
                    Ok(())
                }
                None => Err(NodeError::RadioBusy {
                    node: self.id,
                    at: now,
                }),
            },
            EnvAction::RadioMode(enabled) => {
                self.radio.set_enabled(enabled);
                outputs.push(NodeOutput::RadioModeChanged { enabled, at: now });
                Ok(())
            }
            EnvAction::Query(id) => {
                let value = self.sensors.query(id);
                self.pending.schedule(
                    now + self.sensors.reply_latency(),
                    Pending::SensorReply(value),
                );
                Ok(())
            }
            EnvAction::PortWrite(value) => {
                self.led.write(now, value);
                outputs.push(NodeOutput::LedWrite { value, at: now });
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_asm::assemble;
    use snap_isa::EventKind;

    fn node_with(src: &str) -> Node {
        let program = assemble(src).unwrap();
        let mut node = Node::new(NodeConfig::default());
        node.load(&program).unwrap();
        node
    }

    #[test]
    fn port_write_surfaces_as_output() {
        let mut node = node_with("li r15, 0x4007\nhalt");
        let out = node.run_for(SimDuration::from_ms(1)).unwrap();
        assert!(matches!(out[..], [NodeOutput::LedWrite { value: 7, .. }]));
        assert_eq!(node.led().value(), 7);
    }

    #[test]
    fn radio_tx_takes_word_time() {
        // TX command, payload, wait for tx-done event, then halt.
        let src = r"
            .equ EV_TXDONE, 4
                li      r1, EV_TXDONE
                li      r2, after
                setaddr r1, r2
                li      r15, 0x2000     ; TX command
                li      r15, 0xbeef     ; payload
                done
            after:
                halt
        ";
        let mut node = node_with(src);
        let out = node.run_for(SimDuration::from_ms(5)).unwrap();
        let Some(NodeOutput::Transmitted { word, start, end }) = out
            .iter()
            .find(|o| matches!(o, NodeOutput::Transmitted { .. }))
        else {
            panic!("no transmission in {out:?}");
        };
        assert_eq!(*word, 0xbeef);
        assert!(((*end - *start).as_us() - 833.3).abs() < 1.0);
        // The node slept during the TX and woke for the done event.
        assert_eq!(node.cpu().stats().wakeups, 1);
        assert!(node.cpu().stats().sleep_time.as_us() > 800.0);
    }

    #[test]
    fn sensor_query_reply_round_trip() {
        let src = r"
            .equ EV_REPLY, 6
                li      r1, EV_REPLY
                li      r2, got
                setaddr r1, r2
                li      r15, 0x3005     ; query sensor 5
                done
            got:
                mov     r3, r15         ; pop the reading
                halt
        ";
        let mut node = node_with(src);
        node.sensors_mut().set_reading(5, 0x2bad);
        node.run_for(SimDuration::from_ms(1)).unwrap();
        assert_eq!(node.cpu().regs().read(snap_isa::Reg::R3), 0x2bad);
        assert_eq!(node.sensors().queries(), 1);
    }

    #[test]
    fn rx_word_reaches_handler() {
        let src = r"
            .equ EV_RX, 3
                li      r1, EV_RX
                li      r2, rx
                setaddr r1, r2
                li      r15, 0x1001     ; rx on
                done
            rx:
                mov     r4, r15
                halt
        ";
        let mut node = node_with(src);
        node.run_for(SimDuration::from_us(10)).unwrap();
        assert!(node.deliver_rx(0x1234));
        node.run_for(SimDuration::from_us(10)).unwrap();
        assert_eq!(node.cpu().regs().read(snap_isa::Reg::R4), 0x1234);
        assert_eq!(node.radio().words_heard(), 1);
    }

    #[test]
    fn rx_with_radio_off_is_lost() {
        let mut node = node_with("done");
        node.run_for(SimDuration::from_us(1)).unwrap();
        assert!(!node.deliver_rx(0x5555));
    }

    #[test]
    fn timer_driven_periodic_handler() {
        // Schedule timer0 every 100 us; each firing writes the port and
        // reschedules. Run 1 ms => ~10 writes.
        let src = r"
                li      r1, 0
                li      r2, tick
                setaddr r1, r2
                call    sched
                done
            sched:
                li      r3, 0
                schedhi r1, r3
                li      r3, 100
                schedlo r1, r3
                ret
            tick:
                li      r15, 0x4001
                li      r15, 0x4000
                call    sched
                done
        ";
        let mut node = node_with(src);
        node.run_for(SimDuration::from_ms(1)).unwrap();
        let blinks = node.led().writes();
        assert!(
            (16..=22).contains(&blinks),
            "expected ~20 port writes, got {blinks}"
        );
        assert!(node.cpu().stats().wakeups >= 9);
    }

    #[test]
    fn next_activity_reflects_state() {
        let mut node = node_with("done");
        node.run_for(SimDuration::from_us(1)).unwrap();
        // Asleep, no timers, nothing pending.
        assert_eq!(node.next_activity(), None);
        node.trigger_sensor_irq();
        assert_eq!(node.next_activity(), Some(node.now()));
    }

    #[test]
    fn halted_node_stops() {
        let mut node = node_with("halt");
        node.run_for(SimDuration::from_ms(10)).unwrap();
        assert_eq!(node.cpu().state(), snap_core::CoreState::Halted);
        assert_eq!(node.next_activity(), None);
        // Further runs are no-ops.
        let out = node.run_for(SimDuration::from_ms(1)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn runaway_handler_trips_step_limit() {
        let cfg = NodeConfig {
            step_limit: 1000,
            ..NodeConfig::default()
        };
        let program = assemble("loop: jmp loop").unwrap();
        let mut node = Node::new(cfg);
        node.load(&program).unwrap();
        let err = node.run_for(SimDuration::from_ms(1)).unwrap_err();
        assert!(matches!(err, NodeError::StepLimit { limit: 1000, .. }));
    }

    #[test]
    fn step_limit_spans_window_boundaries() {
        // Windows short enough that each one executes well under the
        // budget: the counter must accumulate across windows instead of
        // resetting, or this runaway loop is never caught.
        let cfg = NodeConfig {
            step_limit: 1000,
            ..NodeConfig::default()
        };
        let program = assemble("loop: jmp loop").unwrap();
        let mut node = Node::new(cfg);
        node.load(&program).unwrap();
        let mut windows = 0u32;
        let err = loop {
            match node.run_for(SimDuration::from_us(1)) {
                Ok(_) => windows += 1,
                Err(e) => break e,
            }
            assert!(windows < 10_000, "step limit never tripped");
        };
        assert!(matches!(err, NodeError::StepLimit { limit: 1000, .. }));
        assert!(windows > 1, "budget must survive at least one window");
    }

    #[test]
    fn step_budget_resets_after_sleep() {
        // Each IRQ handler runs ~600 instructions — under the 1000
        // budget — then sleeps. Repeated dispatches must each get a
        // fresh budget rather than accumulating into a false trip.
        let src = r"
            .equ EV_IRQ, 5
                li      r1, EV_IRQ
                li      r2, h
                setaddr r1, r2
                done
            h:
                li      r3, 200
            spin:
                subi    r3, 1
                bnez    r3, spin
                done
        ";
        let cfg = NodeConfig {
            step_limit: 1000,
            ..NodeConfig::default()
        };
        let program = assemble(src).unwrap();
        let mut node = Node::new(cfg);
        node.load(&program).unwrap();
        node.run_for(SimDuration::from_us(50)).unwrap();
        for _ in 0..5 {
            node.trigger_sensor_irq();
            node.run_for(SimDuration::from_us(50)).unwrap();
        }
        assert_eq!(node.cpu().stats().handlers_dispatched, 5);
    }

    #[test]
    fn tx_while_busy_is_an_error() {
        let src = r"
            li r15, 0x2000
            li r15, 1
            li r15, 0x2000
            li r15, 2
            halt
        ";
        let mut node = node_with(src);
        let err = node.run_for(SimDuration::from_ms(1)).unwrap_err();
        assert!(matches!(err, NodeError::RadioBusy { .. }), "{err}");
    }

    #[test]
    fn handler_measurement_via_stat_snapshots() {
        // Measure a handler exactly as the Table 1 benches do.
        let src = r"
            .equ EV_IRQ, 5
                li      r1, EV_IRQ
                li      r2, h
                setaddr r1, r2
                done
            h:
                li      r3, 1
                li      r4, 2
                add     r3, r4
                done
        ";
        let mut node = node_with(src);
        node.run_for(SimDuration::from_us(10)).unwrap();
        let before = node.cpu().stats();
        node.trigger_sensor_irq();
        node.run_for(SimDuration::from_us(10)).unwrap();
        let d = node.cpu().stats().since(&before);
        assert_eq!(d.instructions, 4); // li, li, add, done
        assert_eq!(d.handlers_dispatched, 1);
        assert!(d.energy.as_pj() > 0.0);
        // Paper event-kind sanity: irq index is 5.
        assert_eq!(EventKind::SensorIrq.index(), 5);
    }

    /// An AVR beacon mote as a Node: virtual timer fires, the app ships
    /// header+sample over SPI, and each byte goes on the air as a word.
    fn avr_beacon_node(tag: u8, period_ticks: u16) -> Node {
        let (mut core, _) = atmega::tinyos::beacon_system(tag, period_ticks).unwrap();
        core.set_adc_reading(0x42);
        Node::new_avr(NodeId(7), core)
    }

    #[test]
    fn avr_beacon_transmits_words_on_air() {
        let mut node = avr_beacon_node(5, 2);
        let out = node.run_for(SimDuration::from_ms(7)).unwrap();
        let words: Vec<u16> = out
            .iter()
            .filter_map(|o| match o {
                NodeOutput::Transmitted { word, .. } => Some(*word),
                _ => None,
            })
            .collect();
        // ≥2 beacon periods: header (0x80 | tag) then the ADC sample.
        assert!(words.len() >= 4, "expected ≥2 beacons, got {words:?}");
        assert_eq!(&words[..4], &[0x85, 0x42, 0x85, 0x42]);
        // Transmissions really occupy the radio for a 16-bit word time.
        let Some(NodeOutput::Transmitted { start, end, .. }) = out
            .iter()
            .find(|o| matches!(o, NodeOutput::Transmitted { .. }))
        else {
            unreachable!()
        };
        assert!(((*end - *start).as_us() - 416.7).abs() < 1.0);
        assert!(node.avr().unwrap().active_energy().as_pj() > 0.0);
    }

    #[test]
    fn avr_windowing_is_split_invariant() {
        // The same mote driven to one 7 ms deadline vs. through ragged
        // interior deadlines (as a scheduler would window it) must
        // transmit identical words at identical instants and land in
        // the identical core state.
        let mut whole = avr_beacon_node(5, 2);
        let mut sliced = avr_beacon_node(5, 2);
        let out_a = whole.run_until(SimTime::from_ps(7_000_000_000)).unwrap();
        let mut out_b = Vec::new();
        for us in [1, 1000, 2500, 2501, 5000, 6000, 7000] {
            let deadline = SimTime::from_ps(us * 1_000_000);
            out_b.extend(sliced.run_until(deadline).unwrap());
        }
        assert_eq!(out_a, out_b);
        assert_eq!(whole.export_snapshot(), sliced.export_snapshot());
    }

    /// A battery so small the node dies mid-simulation: ~10.8 µJ at a
    /// 3 W sleep draw exhausts a few µs into the first sleep.
    fn micro_battery() -> BatteryConfig {
        BatteryConfig {
            capacity_uah: 1e-3,
            voltage_v: 3.0,
            sleep_ua: 1e6,
            tx_pj_per_word: 0.0,
        }
    }

    #[test]
    fn battery_death_is_split_invariant() {
        let src = "li r15, 0x4001\ndone";
        let run = |deadlines_us: &[u64]| {
            let mut node = node_with(src);
            node.set_battery(Some(micro_battery()));
            let mut out = Vec::new();
            for &us in deadlines_us {
                let deadline = SimTime::from_ps(us * 1_000_000);
                out.extend(node.run_until(deadline).unwrap());
            }
            (out, node.died_at(), node.export_snapshot())
        };
        let (out_a, died_a, snap_a) = run(&[100]);
        let (out_b, died_b, snap_b) = run(&[1, 2, 3, 6, 100]);
        assert_eq!(out_a, out_b);
        assert_eq!(died_a, died_b);
        assert_eq!(snap_a, snap_b);
        let at = died_a.expect("node must exhaust its micro battery");
        assert!(out_a.contains(&NodeOutput::Died { at }));
        // The death instant is exactly where consumption crosses
        // capacity, not a window boundary.
        assert!(at.as_ps() % SimDuration::from_us(1).as_ps() != 0);
    }

    #[test]
    fn dead_node_is_inert() {
        let mut node = node_with("li r15, 0x1001\ndone"); // rx on, sleep
        node.set_battery(Some(micro_battery()));
        node.run_for(SimDuration::from_ms(1)).unwrap();
        assert!(node.died_at().is_some());
        assert_eq!(node.next_activity(), None);
        assert!(!node.deliver_rx(0x1234));
        assert!(!node.trigger_sensor_irq());
        let out = node.run_for(SimDuration::from_ms(1)).unwrap();
        assert!(out.is_empty());
        // Consumption is frozen at (just past) capacity.
        let consumed = node.battery_consumed().expect("battery present");
        assert!(consumed.as_pj() >= micro_battery().capacity().as_pj());
    }

    #[test]
    fn avr_battery_death_is_split_invariant() {
        let run = |deadlines_us: &[u64]| {
            let mut node = avr_beacon_node(1, 2);
            node.set_battery(Some(micro_battery()));
            let mut out = Vec::new();
            for &us in deadlines_us {
                let deadline = SimTime::from_ps(us * 1_000_000);
                out.extend(node.run_until(deadline).unwrap());
            }
            (out, node.died_at(), node.export_snapshot())
        };
        let (out_a, died_a, snap_a) = run(&[10_000]);
        let (out_b, died_b, snap_b) = run(&[3, 1003, 6000, 6001, 10_000]);
        assert_eq!(out_a, out_b);
        assert_eq!(died_a, died_b);
        assert_eq!(snap_a, snap_b);
        assert!(died_a.is_some(), "AVR mote must exhaust its battery");
    }

    #[test]
    fn gateway_never_dies_and_logs_uplink() {
        let mut node = Node::new_gateway(NodeConfig::default());
        node.load(&assemble("done").unwrap()).unwrap();
        node.set_battery(Some(micro_battery())); // ignored: mains power
        assert!(node.battery().is_none());
        node.run_for(SimDuration::from_ms(1)).unwrap();
        assert!(node.died_at().is_none());
        assert!(node.deliver_rx(0xbeef));
        assert_eq!(
            node.uplink(),
            &[UplinkFrame {
                at: node.now(),
                word: 0xbeef
            }]
        );
        let drained = node.take_uplink();
        assert_eq!(drained.len(), 1);
        assert!(node.uplink().is_empty());
    }
}
