//! The node event loop: core + radio + sensors + port, in lock-step
//! simulated time.

use crate::led::LedPort;
use crate::radio::Radio;
use crate::sensor::SensorBank;
use dess::{Calendar, SimDuration, SimTime};
use snap_asm::Program;
use snap_core::{CoreConfig, CoreState, EnvAction, Processor, StepError};
use snap_isa::Word;
use std::fmt;

/// Identifies a node within a network simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Node configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeConfig {
    /// The processor configuration.
    pub core: CoreConfig,
    /// Radio bit rate in bits/second.
    pub radio_bit_rate: f64,
    /// This node's identity.
    pub id: NodeId,
    /// Safety cap on instructions per [`Node::run_until`] call; a runaway
    /// handler (infinite loop) trips [`NodeError::StepLimit`] instead of
    /// hanging the simulation.
    pub step_limit: u64,
}

impl Default for NodeConfig {
    fn default() -> NodeConfig {
        NodeConfig {
            core: CoreConfig::default(),
            radio_bit_rate: crate::radio::DEFAULT_BIT_RATE,
            id: NodeId(0),
            step_limit: 10_000_000,
        }
    }
}

/// Externally visible things a node did during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeOutput {
    /// A radio word went on the air from `start` to `end`.
    Transmitted {
        /// The transmitted word.
        word: Word,
        /// Start of serialization.
        start: SimTime,
        /// End of serialization (when peers hear it).
        end: SimTime,
    },
    /// The output port changed.
    LedWrite {
        /// The driven value.
        value: u16,
        /// When.
        at: SimTime,
    },
    /// The radio was enabled or disabled.
    RadioModeChanged {
        /// `true` = receiver on.
        enabled: bool,
        /// When.
        at: SimTime,
    },
}

/// Node-level errors.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeError {
    /// The core faulted.
    Core {
        /// Which node.
        node: NodeId,
        /// The underlying fault.
        error: StepError,
    },
    /// A handler issued a radio TX while a word was still on the air
    /// (the MAC must wait for `RadioTxDone`).
    RadioBusy {
        /// Which node.
        node: NodeId,
        /// When.
        at: SimTime,
    },
    /// The instruction budget of a single awake stretch was exhausted
    /// (runaway handler). The counter persists across
    /// [`Node::run_until`] window boundaries and resets only when the
    /// core sleeps or dispatches a fresh handler, so a runaway handler
    /// spanning many windows is still caught.
    StepLimit {
        /// Which node.
        node: NodeId,
        /// The configured budget.
        limit: u64,
    },
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::Core { node, error } => write!(f, "{node}: {error}"),
            NodeError::RadioBusy { node, at } => {
                write!(f, "{node}: radio TX while busy at {at}")
            }
            NodeError::StepLimit { node, limit } => {
                write!(f, "{node}: exceeded {limit} instructions in one run")
            }
        }
    }
}

impl std::error::Error for NodeError {}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Pending {
    TxDone,
    SensorReply(Word),
}

/// A complete simulated sensor node (Fig. 1).
///
/// Fields are `pub(crate)` for one consumer only: [`crate::snapshot`].
#[derive(Debug)]
pub struct Node {
    pub(crate) id: NodeId,
    pub(crate) cpu: Processor,
    pub(crate) radio: Radio,
    pub(crate) sensors: SensorBank,
    pub(crate) led: LedPort,
    pub(crate) pending: Calendar<Pending>,
    pub(crate) step_limit: u64,
    /// Instructions executed in the current awake stretch. Persists
    /// across `run_until` calls; resets when the core sleeps or a new
    /// handler is dispatched (see [`NodeError::StepLimit`]).
    pub(crate) run_steps: u64,
}

impl Node {
    /// Build a node from its configuration.
    pub fn new(config: NodeConfig) -> Node {
        Node {
            id: config.id,
            cpu: Processor::new(config.core),
            radio: Radio::with_bit_rate(config.radio_bit_rate),
            sensors: SensorBank::new(),
            led: LedPort::new(),
            pending: Calendar::new(),
            step_limit: config.step_limit,
            run_steps: 0,
        }
    }

    /// Load an assembled program (IMEM and DMEM images) into the core.
    ///
    /// # Errors
    ///
    /// Returns an error if either image exceeds its 4 KB bank.
    pub fn load(&mut self, program: &Program) -> Result<(), snap_core::memory::LoadError> {
        self.cpu.load_image(0, &program.imem_image())?;
        self.cpu.load_data(0, &program.dmem_image())
    }

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Clone this node under a new identity.
    ///
    /// Memory banks and the decode cache are copy-on-write, so cloning
    /// a fully-loaded template is the cheap way to build large fleets:
    /// the program image and predecoded instructions are shared until a
    /// node first writes to its own DMEM.
    pub fn clone_with_id(&self, id: NodeId) -> Node {
        Node {
            id,
            cpu: self.cpu.clone(),
            radio: self.radio.clone(),
            sensors: self.sensors.clone(),
            led: self.led.clone(),
            pending: Calendar::new(),
            step_limit: self.step_limit,
            run_steps: self.run_steps,
        }
    }

    /// The processor (statistics, registers, memories).
    pub fn cpu(&self) -> &Processor {
        &self.cpu
    }

    /// Mutable processor access (test fixtures).
    pub fn cpu_mut(&mut self) -> &mut Processor {
        &mut self.cpu
    }

    /// The radio.
    pub fn radio(&self) -> &Radio {
        &self.radio
    }

    /// The sensors (mutable so the environment can change readings).
    pub fn sensors_mut(&mut self) -> &mut SensorBank {
        &mut self.sensors
    }

    /// The sensors.
    pub fn sensors(&self) -> &SensorBank {
        &self.sensors
    }

    /// The output port.
    pub fn led(&self) -> &LedPort {
        &self.led
    }

    /// Current node-local simulated time.
    pub fn now(&self) -> SimTime {
        self.cpu.now()
    }

    /// Deliver a radio word from the channel. Returns `true` when the
    /// node heard it (receiver on, not transmitting, event accepted).
    pub fn deliver_rx(&mut self, word: Word) -> bool {
        if !self.radio.can_hear() {
            return false;
        }
        self.radio.note_heard();
        self.cpu.post_radio_rx(word)
    }

    /// Assert the external sensor-interrupt pin.
    pub fn trigger_sensor_irq(&mut self) -> bool {
        self.cpu.post_sensor_irq()
    }

    /// When this node next needs attention: now if running or an event
    /// is deliverable, the earliest pending/timer instant while asleep,
    /// `None` when nothing will ever happen again.
    pub fn next_activity(&self) -> Option<SimTime> {
        match self.cpu.state() {
            CoreState::Halted => None,
            CoreState::Running => Some(self.cpu.now()),
            CoreState::Asleep => {
                if !self.cpu.event_queue().is_empty() {
                    return Some(self.cpu.now());
                }
                let pending = self.pending.peek_time();
                let timer = self.cpu.next_timer_expiry();
                match (pending, timer) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            }
        }
    }

    /// Advance the node until `deadline`, executing handlers and
    /// delivering radio/sensor events at their due times.
    ///
    /// Handlers execute in batched bursts ([`Processor::run_burst`])
    /// bounded by the earliest pending local event, so per-instruction
    /// polling overhead is gone while event delivery instants — and
    /// therefore all architectural state — stay bit-identical to the
    /// stepped loop.
    ///
    /// # Errors
    ///
    /// See [`NodeError`].
    pub fn run_until(&mut self, deadline: SimTime) -> Result<Vec<NodeOutput>, NodeError> {
        let mut outputs = Vec::new();
        loop {
            self.deliver_due();
            match self.cpu.state() {
                CoreState::Halted => break,
                CoreState::Running => {
                    if self.cpu.now() >= deadline {
                        break;
                    }
                    let remaining = self.step_limit.saturating_sub(self.run_steps);
                    if remaining == 0 {
                        return Err(NodeError::StepLimit {
                            node: self.id,
                            limit: self.step_limit,
                        });
                    }
                    // Stop the burst where a stepped loop would have
                    // delivered the next pending radio/sensor event
                    // (`deliver_due` polls at instruction boundaries).
                    let limit = match self.pending.peek_time() {
                        Some(p) if p < deadline => p,
                        _ => deadline,
                    };
                    let dispatched = self.cpu.handlers_dispatched();
                    let burst =
                        self.cpu
                            .run_burst(limit, remaining)
                            .map_err(|error| NodeError::Core {
                                node: self.id,
                                error,
                            })?;
                    if self.cpu.handlers_dispatched() != dispatched {
                        // `done` chained into a fresh handler mid-burst:
                        // restart the runaway budget. Attributing the
                        // whole burst to the newest handler over-counts
                        // by at most one burst, which only matters when
                        // the budget was nearly exhausted anyway.
                        self.run_steps = burst.steps;
                    } else {
                        self.run_steps += burst.steps;
                    }
                    if let Some(action) = burst.action {
                        self.handle_action(action, &mut outputs)?;
                    }
                }
                CoreState::Asleep => {
                    self.run_steps = 0;
                    if !self.cpu.event_queue().is_empty() {
                        // A token is waiting: wake up.
                        self.cpu.step().map_err(|error| NodeError::Core {
                            node: self.id,
                            error,
                        })?;
                        continue;
                    }
                    let next = self.next_activity();
                    match next {
                        Some(t) if t <= deadline => {
                            self.cpu.advance_idle(t);
                        }
                        _ => {
                            self.cpu.advance_idle(deadline);
                            break;
                        }
                    }
                }
            }
        }
        Ok(outputs)
    }

    /// Advance the node by `duration` from its current time.
    ///
    /// ```
    /// use dess::SimDuration;
    /// use snap_node::{Node, NodeConfig};
    ///
    /// let program = snap_asm::assemble("boot: li r15, 0x4003\n done")?;
    /// let mut node = Node::new(NodeConfig::default());
    /// node.load(&program)?;
    /// node.run_for(SimDuration::from_us(10))?;
    /// assert_eq!(node.led().value(), 3);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// See [`NodeError`].
    pub fn run_for(&mut self, duration: SimDuration) -> Result<Vec<NodeOutput>, NodeError> {
        self.run_until(self.cpu.now() + duration)
    }

    fn deliver_due(&mut self) {
        while let Some(t) = self.pending.peek_time() {
            if t > self.cpu.now() {
                break;
            }
            let (_, ev) = self.pending.pop().expect("peeked");
            match ev {
                Pending::TxDone => {
                    let _word = self.radio.finish_tx();
                    self.cpu.post_radio_tx_done();
                }
                Pending::SensorReply(v) => {
                    self.cpu.post_sensor_reply(v);
                }
            }
        }
    }

    fn handle_action(
        &mut self,
        action: EnvAction,
        outputs: &mut Vec<NodeOutput>,
    ) -> Result<(), NodeError> {
        let now = self.cpu.now();
        match action {
            EnvAction::TxWord(word) => match self.radio.start_tx(word, now) {
                Some(end) => {
                    self.pending.schedule(end, Pending::TxDone);
                    outputs.push(NodeOutput::Transmitted {
                        word,
                        start: now,
                        end,
                    });
                    Ok(())
                }
                None => Err(NodeError::RadioBusy {
                    node: self.id,
                    at: now,
                }),
            },
            EnvAction::RadioMode(enabled) => {
                self.radio.set_enabled(enabled);
                outputs.push(NodeOutput::RadioModeChanged { enabled, at: now });
                Ok(())
            }
            EnvAction::Query(id) => {
                let value = self.sensors.query(id);
                self.pending.schedule(
                    now + self.sensors.reply_latency(),
                    Pending::SensorReply(value),
                );
                Ok(())
            }
            EnvAction::PortWrite(value) => {
                self.led.write(now, value);
                outputs.push(NodeOutput::LedWrite { value, at: now });
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_asm::assemble;
    use snap_isa::EventKind;

    fn node_with(src: &str) -> Node {
        let program = assemble(src).unwrap();
        let mut node = Node::new(NodeConfig::default());
        node.load(&program).unwrap();
        node
    }

    #[test]
    fn port_write_surfaces_as_output() {
        let mut node = node_with("li r15, 0x4007\nhalt");
        let out = node.run_for(SimDuration::from_ms(1)).unwrap();
        assert!(matches!(out[..], [NodeOutput::LedWrite { value: 7, .. }]));
        assert_eq!(node.led().value(), 7);
    }

    #[test]
    fn radio_tx_takes_word_time() {
        // TX command, payload, wait for tx-done event, then halt.
        let src = r"
            .equ EV_TXDONE, 4
                li      r1, EV_TXDONE
                li      r2, after
                setaddr r1, r2
                li      r15, 0x2000     ; TX command
                li      r15, 0xbeef     ; payload
                done
            after:
                halt
        ";
        let mut node = node_with(src);
        let out = node.run_for(SimDuration::from_ms(5)).unwrap();
        let Some(NodeOutput::Transmitted { word, start, end }) = out
            .iter()
            .find(|o| matches!(o, NodeOutput::Transmitted { .. }))
        else {
            panic!("no transmission in {out:?}");
        };
        assert_eq!(*word, 0xbeef);
        assert!(((*end - *start).as_us() - 833.3).abs() < 1.0);
        // The node slept during the TX and woke for the done event.
        assert_eq!(node.cpu().stats().wakeups, 1);
        assert!(node.cpu().stats().sleep_time.as_us() > 800.0);
    }

    #[test]
    fn sensor_query_reply_round_trip() {
        let src = r"
            .equ EV_REPLY, 6
                li      r1, EV_REPLY
                li      r2, got
                setaddr r1, r2
                li      r15, 0x3005     ; query sensor 5
                done
            got:
                mov     r3, r15         ; pop the reading
                halt
        ";
        let mut node = node_with(src);
        node.sensors_mut().set_reading(5, 0x2bad);
        node.run_for(SimDuration::from_ms(1)).unwrap();
        assert_eq!(node.cpu().regs().read(snap_isa::Reg::R3), 0x2bad);
        assert_eq!(node.sensors().queries(), 1);
    }

    #[test]
    fn rx_word_reaches_handler() {
        let src = r"
            .equ EV_RX, 3
                li      r1, EV_RX
                li      r2, rx
                setaddr r1, r2
                li      r15, 0x1001     ; rx on
                done
            rx:
                mov     r4, r15
                halt
        ";
        let mut node = node_with(src);
        node.run_for(SimDuration::from_us(10)).unwrap();
        assert!(node.deliver_rx(0x1234));
        node.run_for(SimDuration::from_us(10)).unwrap();
        assert_eq!(node.cpu().regs().read(snap_isa::Reg::R4), 0x1234);
        assert_eq!(node.radio().words_heard(), 1);
    }

    #[test]
    fn rx_with_radio_off_is_lost() {
        let mut node = node_with("done");
        node.run_for(SimDuration::from_us(1)).unwrap();
        assert!(!node.deliver_rx(0x5555));
    }

    #[test]
    fn timer_driven_periodic_handler() {
        // Schedule timer0 every 100 us; each firing writes the port and
        // reschedules. Run 1 ms => ~10 writes.
        let src = r"
                li      r1, 0
                li      r2, tick
                setaddr r1, r2
                call    sched
                done
            sched:
                li      r3, 0
                schedhi r1, r3
                li      r3, 100
                schedlo r1, r3
                ret
            tick:
                li      r15, 0x4001
                li      r15, 0x4000
                call    sched
                done
        ";
        let mut node = node_with(src);
        node.run_for(SimDuration::from_ms(1)).unwrap();
        let blinks = node.led().writes();
        assert!(
            (16..=22).contains(&blinks),
            "expected ~20 port writes, got {blinks}"
        );
        assert!(node.cpu().stats().wakeups >= 9);
    }

    #[test]
    fn next_activity_reflects_state() {
        let mut node = node_with("done");
        node.run_for(SimDuration::from_us(1)).unwrap();
        // Asleep, no timers, nothing pending.
        assert_eq!(node.next_activity(), None);
        node.trigger_sensor_irq();
        assert_eq!(node.next_activity(), Some(node.now()));
    }

    #[test]
    fn halted_node_stops() {
        let mut node = node_with("halt");
        node.run_for(SimDuration::from_ms(10)).unwrap();
        assert_eq!(node.cpu().state(), snap_core::CoreState::Halted);
        assert_eq!(node.next_activity(), None);
        // Further runs are no-ops.
        let out = node.run_for(SimDuration::from_ms(1)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn runaway_handler_trips_step_limit() {
        let cfg = NodeConfig {
            step_limit: 1000,
            ..NodeConfig::default()
        };
        let program = assemble("loop: jmp loop").unwrap();
        let mut node = Node::new(cfg);
        node.load(&program).unwrap();
        let err = node.run_for(SimDuration::from_ms(1)).unwrap_err();
        assert!(matches!(err, NodeError::StepLimit { limit: 1000, .. }));
    }

    #[test]
    fn step_limit_spans_window_boundaries() {
        // Windows short enough that each one executes well under the
        // budget: the counter must accumulate across windows instead of
        // resetting, or this runaway loop is never caught.
        let cfg = NodeConfig {
            step_limit: 1000,
            ..NodeConfig::default()
        };
        let program = assemble("loop: jmp loop").unwrap();
        let mut node = Node::new(cfg);
        node.load(&program).unwrap();
        let mut windows = 0u32;
        let err = loop {
            match node.run_for(SimDuration::from_us(1)) {
                Ok(_) => windows += 1,
                Err(e) => break e,
            }
            assert!(windows < 10_000, "step limit never tripped");
        };
        assert!(matches!(err, NodeError::StepLimit { limit: 1000, .. }));
        assert!(windows > 1, "budget must survive at least one window");
    }

    #[test]
    fn step_budget_resets_after_sleep() {
        // Each IRQ handler runs ~600 instructions — under the 1000
        // budget — then sleeps. Repeated dispatches must each get a
        // fresh budget rather than accumulating into a false trip.
        let src = r"
            .equ EV_IRQ, 5
                li      r1, EV_IRQ
                li      r2, h
                setaddr r1, r2
                done
            h:
                li      r3, 200
            spin:
                subi    r3, 1
                bnez    r3, spin
                done
        ";
        let cfg = NodeConfig {
            step_limit: 1000,
            ..NodeConfig::default()
        };
        let program = assemble(src).unwrap();
        let mut node = Node::new(cfg);
        node.load(&program).unwrap();
        node.run_for(SimDuration::from_us(50)).unwrap();
        for _ in 0..5 {
            node.trigger_sensor_irq();
            node.run_for(SimDuration::from_us(50)).unwrap();
        }
        assert_eq!(node.cpu().stats().handlers_dispatched, 5);
    }

    #[test]
    fn tx_while_busy_is_an_error() {
        let src = r"
            li r15, 0x2000
            li r15, 1
            li r15, 0x2000
            li r15, 2
            halt
        ";
        let mut node = node_with(src);
        let err = node.run_for(SimDuration::from_ms(1)).unwrap_err();
        assert!(matches!(err, NodeError::RadioBusy { .. }), "{err}");
    }

    #[test]
    fn handler_measurement_via_stat_snapshots() {
        // Measure a handler exactly as the Table 1 benches do.
        let src = r"
            .equ EV_IRQ, 5
                li      r1, EV_IRQ
                li      r2, h
                setaddr r1, r2
                done
            h:
                li      r3, 1
                li      r4, 2
                add     r3, r4
                done
        ";
        let mut node = node_with(src);
        node.run_for(SimDuration::from_us(10)).unwrap();
        let before = node.cpu().stats();
        node.trigger_sensor_irq();
        node.run_for(SimDuration::from_us(10)).unwrap();
        let d = node.cpu().stats().since(&before);
        assert_eq!(d.instructions, 4); // li, li, add, done
        assert_eq!(d.handlers_dispatched, 1);
        assert!(d.energy.as_pj() > 0.0);
        // Paper event-kind sanity: irq index is 5.
        assert_eq!(EventKind::SensorIrq.index(), 5);
    }
}
