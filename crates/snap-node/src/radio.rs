//! The RFM TR1000-class radio transceiver model.
//!
//! The paper's first prototype uses the RFM TR1000 (as in the Berkeley
//! Motes): a ≈19.2 kbps serial radio with mode-select control pins. The
//! message coprocessor does all bit/word conversion, so the model works
//! in whole 16-bit words: a transmission occupies the air for
//! `16 / bit_rate` seconds (≈833 µs at 19.2 kbps).

use dess::{SimDuration, SimTime};
use snap_isa::Word;

/// Bits per radio word (the datapath width).
pub const WORD_BITS: u32 = 16;

/// Default bit rate in bits/second (paper §3.3: "around 19.2kbps").
pub const DEFAULT_BIT_RATE: f64 = 19_200.0;

/// Transceiver mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioMode {
    /// Powered down: neither receives nor transmits.
    Off,
    /// Receiver enabled.
    Rx,
    /// Serializing a word onto the air (returns to `Rx` when done).
    Tx,
}

/// The radio transceiver.
#[derive(Debug, Clone)]
pub struct Radio {
    bit_rate: f64,
    mode: RadioMode,
    tx_done_at: Option<SimTime>,
    tx_word: Option<Word>,
    words_sent: u64,
    words_heard: u64,
}

impl Radio {
    /// A radio at the default 19.2 kbps, initially off.
    pub fn new() -> Radio {
        Radio::with_bit_rate(DEFAULT_BIT_RATE)
    }

    /// A radio at a custom bit rate.
    ///
    /// # Panics
    ///
    /// Panics unless `bit_rate` is positive.
    pub fn with_bit_rate(bit_rate: f64) -> Radio {
        assert!(bit_rate > 0.0, "bit rate must be positive");
        Radio {
            bit_rate,
            mode: RadioMode::Off,
            tx_done_at: None,
            tx_word: None,
            words_sent: 0,
            words_heard: 0,
        }
    }

    /// Time on air for one 16-bit word.
    pub fn word_time(&self) -> SimDuration {
        SimDuration::from_ns_f64(WORD_BITS as f64 / self.bit_rate * 1e9)
    }

    /// The current mode.
    pub fn mode(&self) -> RadioMode {
        self.mode
    }

    /// Enable the receiver (`RadioRxOn`) or power down (`RadioOff`).
    /// Mode changes during a transmission are ignored; the in-flight
    /// word completes and the radio returns to receive mode.
    pub fn set_enabled(&mut self, enabled: bool) {
        if self.mode != RadioMode::Tx {
            self.mode = if enabled {
                RadioMode::Rx
            } else {
                RadioMode::Off
            };
        }
    }

    /// Begin transmitting `word` at `now`.
    ///
    /// Returns the completion time, or `None` when a transmission is
    /// already in flight (the MAC must wait for `RadioTxDone`).
    pub fn start_tx(&mut self, word: Word, now: SimTime) -> Option<SimTime> {
        if self.tx_done_at.is_some() {
            return None;
        }
        let done = now + self.word_time();
        self.mode = RadioMode::Tx;
        self.tx_done_at = Some(done);
        self.tx_word = Some(word);
        self.words_sent += 1;
        Some(done)
    }

    /// Complete the in-flight transmission; returns the word that was on
    /// the air. The radio returns to receive mode.
    ///
    /// # Panics
    ///
    /// Panics if no transmission is in flight.
    pub fn finish_tx(&mut self) -> Word {
        self.tx_done_at
            .take()
            .expect("finish_tx without a transmission in flight");
        self.mode = RadioMode::Rx;
        self.tx_word.take().expect("tx word recorded at start_tx")
    }

    /// When the in-flight transmission completes, if any.
    pub fn tx_done_at(&self) -> Option<SimTime> {
        self.tx_done_at
    }

    /// `true` when a word arriving now would be heard (receiver on and
    /// not transmitting — the TR1000 is half-duplex).
    pub fn can_hear(&self) -> bool {
        self.mode == RadioMode::Rx
    }

    /// Count a received word (the node calls this when delivering).
    pub fn note_heard(&mut self) {
        self.words_heard += 1;
    }

    /// Words transmitted over the radio's lifetime.
    pub fn words_sent(&self) -> u64 {
        self.words_sent
    }

    /// Words received while listening.
    pub fn words_heard(&self) -> u64 {
        self.words_heard
    }

    /// All state for a snapshot: `(bit_rate, mode, tx_done_at, tx_word,
    /// words_sent, words_heard)`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn export(&self) -> (f64, RadioMode, Option<SimTime>, Option<Word>, u64, u64) {
        (
            self.bit_rate,
            self.mode,
            self.tx_done_at,
            self.tx_word,
            self.words_sent,
            self.words_heard,
        )
    }

    /// Rebuild from a snapshot. The caller has validated `bit_rate`
    /// (finite, positive).
    pub(crate) fn restore(
        bit_rate: f64,
        mode: RadioMode,
        tx_done_at: Option<SimTime>,
        tx_word: Option<Word>,
        words_sent: u64,
        words_heard: u64,
    ) -> Radio {
        let mut r = Radio::with_bit_rate(bit_rate);
        r.mode = mode;
        r.tx_done_at = tx_done_at;
        r.tx_word = tx_word;
        r.words_sent = words_sent;
        r.words_heard = words_heard;
        r
    }
}

impl Default for Radio {
    fn default() -> Radio {
        Radio::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_time_is_833us_at_default_rate() {
        let r = Radio::new();
        assert!(
            (r.word_time().as_us() - 833.33).abs() < 0.5,
            "{}",
            r.word_time()
        );
    }

    #[test]
    fn tx_occupies_the_air() {
        let mut r = Radio::new();
        r.set_enabled(true);
        let t0 = SimTime::ZERO;
        let done = r.start_tx(0xabcd, t0).unwrap();
        assert_eq!(done, t0 + r.word_time());
        assert_eq!(r.mode(), RadioMode::Tx);
        assert!(!r.can_hear(), "half duplex: cannot hear while transmitting");
        // Second TX while busy is refused.
        assert_eq!(r.start_tx(0x1111, t0), None);
        assert_eq!(r.finish_tx(), 0xabcd);
        assert_eq!(r.mode(), RadioMode::Rx);
        assert_eq!(r.words_sent(), 1);
    }

    #[test]
    fn off_radio_cannot_hear() {
        let mut r = Radio::new();
        assert!(!r.can_hear());
        r.set_enabled(true);
        assert!(r.can_hear());
        r.set_enabled(false);
        assert!(!r.can_hear());
    }

    #[test]
    #[should_panic(expected = "without a transmission")]
    fn finish_without_start_panics() {
        Radio::new().finish_tx();
    }

    #[test]
    fn custom_bit_rate() {
        let r = Radio::with_bit_rate(38_400.0);
        assert!((r.word_time().as_us() - 416.7).abs() < 0.5);
    }
}
