//! Node state export/restore against the `snap-snapshot` format.
//!
//! Extends the core snapshot ([`snap_core::snapshot`]) with the node's
//! peripherals: radio (including an in-flight transmission), sensor
//! bank, output port history, the pending-event calendar, and the
//! runaway-handler budget. Format v2 adds the fleet-heterogeneity
//! state: the node kind, the opaque AVR core blob for
//! [`NodeKind::Avr`] motes (its own versioned format, see
//! [`atmega::state`]), the battery budget, the death instant, and the
//! gateway uplink queue. A restored node resumes bit-identically —
//! see the format crate's docs for the invariant.

use crate::avr::AvrMote;
use crate::node::{Node, NodeCpu, NodeKind, Pending, UplinkFrame};
use crate::radio::{Radio, RadioMode};
use crate::sensor::SensorBank;
use crate::{LedPort, NodeId};
use atmega::AvrCore;
use dess::{Calendar, SimDuration, SimTime};
use snap_core::Processor;
use snap_energy::BatteryConfig;
use snap_snapshot::node::{node_kind, pending, radio_mode};
use snap_snapshot::{
    BatterySnapshot, LedSnapshot, NodeSnapshot, PendingSnap, RadioSnapshot, SensorSnapshot,
    SnapshotError,
};

fn mode_to_wire(m: RadioMode) -> u8 {
    match m {
        RadioMode::Off => radio_mode::OFF,
        RadioMode::Rx => radio_mode::RX,
        RadioMode::Tx => radio_mode::TX,
    }
}

fn mode_from_wire(w: u8) -> Result<RadioMode, SnapshotError> {
    match w {
        radio_mode::OFF => Ok(RadioMode::Off),
        radio_mode::RX => Ok(RadioMode::Rx),
        radio_mode::TX => Ok(RadioMode::Tx),
        _ => Err(SnapshotError::Corrupt("radio mode discriminant")),
    }
}

fn kind_to_wire(k: NodeKind) -> u8 {
    match k {
        NodeKind::Snap => node_kind::SNAP,
        NodeKind::Avr => node_kind::AVR,
        NodeKind::Gateway => node_kind::GATEWAY,
    }
}

fn kind_from_wire(w: u8) -> Result<NodeKind, SnapshotError> {
    match w {
        node_kind::SNAP => Ok(NodeKind::Snap),
        node_kind::AVR => Ok(NodeKind::Avr),
        node_kind::GATEWAY => Ok(NodeKind::Gateway),
        _ => Err(SnapshotError::Corrupt("node kind discriminant")),
    }
}

fn battery_to_wire(b: &BatteryConfig) -> BatterySnapshot {
    BatterySnapshot {
        capacity_uah_bits: b.capacity_uah.to_bits(),
        voltage_v_bits: b.voltage_v.to_bits(),
        sleep_ua_bits: b.sleep_ua.to_bits(),
        tx_pj_per_word_bits: b.tx_pj_per_word.to_bits(),
    }
}

fn battery_from_wire(s: &BatterySnapshot) -> Result<BatteryConfig, SnapshotError> {
    let b = BatteryConfig {
        capacity_uah: f64::from_bits(s.capacity_uah_bits),
        voltage_v: f64::from_bits(s.voltage_v_bits),
        sleep_ua: f64::from_bits(s.sleep_ua_bits),
        tx_pj_per_word: f64::from_bits(s.tx_pj_per_word_bits),
    };
    let sane = |v: f64| v.is_finite() && v >= 0.0;
    if !(sane(b.capacity_uah) && sane(b.voltage_v) && sane(b.sleep_ua) && sane(b.tx_pj_per_word)) {
        return Err(SnapshotError::Corrupt("battery config field"));
    }
    Ok(b)
}

impl Node {
    /// Capture the complete observable node state.
    pub fn export_snapshot(&self) -> NodeSnapshot {
        let (bit_rate, mode, tx_done_at, tx_word, words_sent, words_heard) = self.radio.export();
        let (readings, reply_latency, queries) = self.sensors.export();
        let (led_value, led_history) = self.led.export();
        let (core, avr_state, avr_tx_emitted, avr_listen) = match &self.cpu {
            NodeCpu::Snap(cpu) => (Some(cpu.export_snapshot()), Vec::new(), 0, false),
            NodeCpu::Avr(mote) => (
                None,
                mote.core().export_state(),
                mote.tx_emitted as u64,
                mote.listen,
            ),
        };
        NodeSnapshot {
            id: self.id.0,
            kind: kind_to_wire(self.kind),
            core,
            avr_state,
            avr_tx_emitted,
            avr_listen,
            radio: RadioSnapshot {
                bit_rate_bits: bit_rate.to_bits(),
                mode: mode_to_wire(mode),
                tx_done_at_ps: tx_done_at.map(|t| t.as_ps()),
                tx_word,
                words_sent,
                words_heard,
            },
            sensors: SensorSnapshot {
                readings,
                reply_latency_ps: reply_latency.as_ps(),
                queries,
            },
            led: LedSnapshot {
                value: led_value,
                history: led_history.iter().map(|&(t, v)| (t.as_ps(), v)).collect(),
            },
            pending: self
                .pending
                .snapshot_entries()
                .iter()
                .map(|&(at, ev)| match ev {
                    Pending::TxDone => PendingSnap {
                        at_ps: at.as_ps(),
                        kind: pending::TX_DONE,
                        value: 0,
                    },
                    Pending::SensorReply(v) => PendingSnap {
                        at_ps: at.as_ps(),
                        kind: pending::SENSOR_REPLY,
                        value: v,
                    },
                })
                .collect(),
            step_limit: self.step_limit,
            run_steps: self.run_steps,
            battery: self.battery.as_ref().map(battery_to_wire),
            died_at_ps: self.died_at.map(|t| t.as_ps()),
            uplink: self.uplink.iter().map(|f| (f.at.as_ps(), f.word)).collect(),
        }
    }

    /// Rebuild a node from a snapshot. The restored node resumes
    /// bit-identically to the original.
    ///
    /// # Errors
    ///
    /// Rejects structurally invalid snapshots ([`SnapshotError::Corrupt`]).
    pub fn from_snapshot(snap: &NodeSnapshot) -> Result<Node, SnapshotError> {
        let kind = kind_from_wire(snap.kind)?;
        let bit_rate = f64::from_bits(snap.radio.bit_rate_bits);
        if !bit_rate.is_finite() || bit_rate <= 0.0 {
            return Err(SnapshotError::Corrupt("radio bit rate"));
        }
        let mode = mode_from_wire(snap.radio.mode)?;
        // An in-flight transmission carries both its word and its
        // completion time, or neither.
        if snap.radio.tx_done_at_ps.is_some() != snap.radio.tx_word.is_some() {
            return Err(SnapshotError::Corrupt("in-flight transmission"));
        }
        if snap.radio.tx_done_at_ps.is_some() != (mode == RadioMode::Tx) {
            return Err(SnapshotError::Corrupt("radio mode vs in-flight tx"));
        }
        // Kind-specific structural invariants. The in-memory struct can
        // be built by hand, so re-check what the wire decoder checks.
        if (kind == NodeKind::Avr) != snap.core.is_none() {
            return Err(SnapshotError::Corrupt("node kind / core presence mismatch"));
        }
        if (kind == NodeKind::Avr) == snap.avr_state.is_empty() {
            return Err(SnapshotError::Corrupt("node kind / avr state mismatch"));
        }
        if kind == NodeKind::Gateway && snap.battery.is_some() {
            return Err(SnapshotError::Corrupt("battery on mains-powered gateway"));
        }
        if kind != NodeKind::Gateway && !snap.uplink.is_empty() {
            return Err(SnapshotError::Corrupt("uplink frames on non-gateway node"));
        }
        let cpu = match &snap.core {
            Some(core) => NodeCpu::Snap(Processor::from_snapshot(core)?),
            None => {
                let core = AvrCore::restore_state(&snap.avr_state)
                    .map_err(|_| SnapshotError::Corrupt("avr core state blob"))?;
                if snap.avr_tx_emitted as usize > core.spi_sent().len() {
                    return Err(SnapshotError::Corrupt("avr tx drain cursor"));
                }
                let mut mote = AvrMote::new(core);
                mote.tx_emitted = snap.avr_tx_emitted as usize;
                mote.listen = snap.avr_listen;
                NodeCpu::Avr(mote)
            }
        };
        let mut pending_cal = Calendar::new();
        for p in &snap.pending {
            let ev = match p.kind {
                pending::TX_DONE => Pending::TxDone,
                pending::SENSOR_REPLY => Pending::SensorReply(p.value),
                _ => return Err(SnapshotError::Corrupt("pending event kind")),
            };
            pending_cal.schedule(SimTime::from_ps(p.at_ps), ev);
        }
        Ok(Node {
            id: NodeId(snap.id),
            kind,
            cpu,
            radio: Radio::restore(
                bit_rate,
                mode,
                snap.radio.tx_done_at_ps.map(SimTime::from_ps),
                snap.radio.tx_word,
                snap.radio.words_sent,
                snap.radio.words_heard,
            ),
            sensors: SensorBank::restore(
                &snap.sensors.readings,
                SimDuration::from_ps(snap.sensors.reply_latency_ps),
                snap.sensors.queries,
            ),
            led: LedPort::restore(
                snap.led.value,
                snap.led
                    .history
                    .iter()
                    .map(|&(t, v)| (SimTime::from_ps(t), v))
                    .collect(),
            ),
            pending: pending_cal,
            step_limit: snap.step_limit,
            run_steps: snap.run_steps,
            battery: snap.battery.as_ref().map(battery_from_wire).transpose()?,
            died_at: snap.died_at_ps.map(SimTime::from_ps),
            uplink: snap
                .uplink
                .iter()
                .map(|&(at, word)| UplinkFrame {
                    at: SimTime::from_ps(at),
                    word,
                })
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeConfig;
    use snap_asm::assemble;
    use snap_snapshot::Snapshot;

    /// A node frozen mid-transmission with a sensor reply pending and
    /// port history accumulated.
    fn busy_node() -> Node {
        let src = r"
            .equ EV_TXDONE, 4
            .equ EV_REPLY, 6
                li      r1, EV_TXDONE
                li      r2, sent
                setaddr r1, r2
                li      r1, EV_REPLY
                li      r2, got
                setaddr r1, r2
                li      r15, 0x4005     ; port <- 5
                li      r15, 0x3002     ; query sensor 2
                li      r15, 0x2000     ; TX command
                li      r15, 0xbeef     ; payload
                done
            sent:
                li      r15, 0x4006
                done
            got:
                mov     r3, r15
                done
        ";
        let mut node = Node::new(NodeConfig::default());
        node.load(&assemble(src).unwrap()).unwrap();
        node.sensors_mut().set_reading(2, 0x7777);
        // Stop while the word is still on the air (~833 us) and the
        // sensor reply (~10 us) is still pending.
        node.run_for(SimDuration::from_us(5)).unwrap();
        node
    }

    /// An AVR beacon mote frozen a few periods in, with a battery.
    fn busy_avr_node() -> Node {
        let (core, _) = atmega::tinyos::beacon_system(3, 4).unwrap();
        let mut node = Node::new_avr(NodeId(2), core);
        node.set_battery(Some(BatteryConfig::coin_cell_avr()));
        node.run_for(SimDuration::from_ms(5)).unwrap();
        node
    }

    #[test]
    fn export_import_round_trip_is_exact() {
        let node = busy_node();
        let snap = node.export_snapshot();
        let restored = Node::from_snapshot(&snap).unwrap();
        assert_eq!(restored.export_snapshot(), snap);
    }

    #[test]
    fn avr_round_trip_is_exact_and_resumes() {
        let node = busy_avr_node();
        let snap = node.export_snapshot();
        assert_eq!(snap.kind, node_kind::AVR);
        assert!(snap.core.is_none());
        assert!(!snap.avr_state.is_empty());
        let restored = Node::from_snapshot(&snap).unwrap();
        assert_eq!(restored.export_snapshot(), snap);

        let mut straight = busy_avr_node();
        let mut resumed = Node::from_snapshot(&snap).unwrap();
        let out_a = straight.run_for(SimDuration::from_ms(10)).unwrap();
        let out_b = resumed.run_for(SimDuration::from_ms(10)).unwrap();
        assert_eq!(out_a, out_b);
        assert_eq!(straight.export_snapshot(), resumed.export_snapshot());
    }

    #[test]
    fn gateway_uplink_round_trips() {
        let mut node = Node::new_gateway(NodeConfig::default());
        node.load(&assemble("halt").unwrap()).unwrap();
        node.deliver_rx(0xabcd);
        let snap = node.export_snapshot();
        assert_eq!(snap.kind, node_kind::GATEWAY);
        assert_eq!(snap.uplink, vec![(0, 0xabcd)]);
        let restored = Node::from_snapshot(&snap).unwrap();
        assert_eq!(restored.uplink(), node.uplink());
        assert_eq!(restored.export_snapshot(), snap);
    }

    #[test]
    fn restored_node_resumes_bit_identically() {
        let mut straight = busy_node();
        let mut restored = Node::from_snapshot(&busy_node().export_snapshot()).unwrap();
        // Run both through the pending sensor reply AND the tx-done.
        let out_a = straight.run_for(SimDuration::from_ms(2)).unwrap();
        let out_b = restored.run_for(SimDuration::from_ms(2)).unwrap();
        assert_eq!(out_a, out_b);
        assert_eq!(straight.export_snapshot(), restored.export_snapshot());
        assert!(straight.radio().words_sent() == 1);
        assert_eq!(
            straight.cpu().regs().read(snap_isa::Reg::R3),
            0x7777,
            "sensor reply must survive the snapshot"
        );
    }

    #[test]
    fn node_snapshot_serializes_through_bytes() {
        let snap = busy_node().export_snapshot();
        let bytes = Snapshot::Node(Box::new(snap.clone())).to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.as_node().unwrap(), &snap);

        let snap = busy_avr_node().export_snapshot();
        let bytes = Snapshot::Node(Box::new(snap.clone())).to_bytes();
        assert_eq!(Snapshot::from_bytes(&bytes).unwrap().as_node(), Some(&snap));
    }

    #[test]
    fn corrupt_node_fields_are_rejected() {
        let snap = busy_node().export_snapshot();

        let mut s = snap.clone();
        s.radio.bit_rate_bits = (-1.0f64).to_bits();
        assert!(Node::from_snapshot(&s).is_err());

        let mut s = snap.clone();
        s.radio.mode = 9;
        assert!(Node::from_snapshot(&s).is_err());

        let mut s = snap.clone();
        s.radio.tx_word = None; // in-flight time without a word
        assert!(Node::from_snapshot(&s).is_err());

        let mut s = snap.clone();
        s.pending[0].kind = 7;
        assert!(Node::from_snapshot(&s).is_err());

        // Kind-consistency and battery sanity checks.
        let mut s = snap.clone();
        s.kind = node_kind::AVR; // AVR kind but a SNAP core present
        assert!(Node::from_snapshot(&s).is_err());

        let mut s = snap.clone();
        s.uplink = vec![(1, 2)]; // uplink frames on a non-gateway
        assert!(Node::from_snapshot(&s).is_err());

        let mut s = snap;
        s.battery = Some(BatterySnapshot {
            capacity_uah_bits: f64::NAN.to_bits(),
            voltage_v_bits: 3.0f64.to_bits(),
            sleep_ua_bits: 0.0f64.to_bits(),
            tx_pj_per_word_bits: 0.0f64.to_bits(),
        });
        assert!(Node::from_snapshot(&s).is_err());

        let avr = busy_avr_node().export_snapshot();
        let mut s = avr.clone();
        s.avr_state[0] ^= 0xff; // corrupt the opaque blob's magic
        assert!(Node::from_snapshot(&s).is_err());

        let mut s = avr;
        s.avr_tx_emitted = u64::MAX; // drain cursor past the send log
        assert!(Node::from_snapshot(&s).is_err());
    }
}
