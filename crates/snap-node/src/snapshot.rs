//! Node state export/restore against the `snap-snapshot` format.
//!
//! Extends the core snapshot ([`snap_core::snapshot`]) with the node's
//! peripherals: radio (including an in-flight transmission), sensor
//! bank, output port history, the pending-event calendar, and the
//! runaway-handler budget. A restored node resumes bit-identically —
//! see the format crate's docs for the invariant.

use crate::node::{Node, Pending};
use crate::radio::{Radio, RadioMode};
use crate::sensor::SensorBank;
use crate::{LedPort, NodeId};
use dess::{Calendar, SimDuration, SimTime};
use snap_core::Processor;
use snap_snapshot::node::{pending, radio_mode};
use snap_snapshot::{
    LedSnapshot, NodeSnapshot, PendingSnap, RadioSnapshot, SensorSnapshot, SnapshotError,
};

fn mode_to_wire(m: RadioMode) -> u8 {
    match m {
        RadioMode::Off => radio_mode::OFF,
        RadioMode::Rx => radio_mode::RX,
        RadioMode::Tx => radio_mode::TX,
    }
}

fn mode_from_wire(w: u8) -> Result<RadioMode, SnapshotError> {
    match w {
        radio_mode::OFF => Ok(RadioMode::Off),
        radio_mode::RX => Ok(RadioMode::Rx),
        radio_mode::TX => Ok(RadioMode::Tx),
        _ => Err(SnapshotError::Corrupt("radio mode discriminant")),
    }
}

impl Node {
    /// Capture the complete observable node state.
    pub fn export_snapshot(&self) -> NodeSnapshot {
        let (bit_rate, mode, tx_done_at, tx_word, words_sent, words_heard) = self.radio.export();
        let (readings, reply_latency, queries) = self.sensors.export();
        let (led_value, led_history) = self.led.export();
        NodeSnapshot {
            id: self.id.0,
            core: self.cpu.export_snapshot(),
            radio: RadioSnapshot {
                bit_rate_bits: bit_rate.to_bits(),
                mode: mode_to_wire(mode),
                tx_done_at_ps: tx_done_at.map(|t| t.as_ps()),
                tx_word,
                words_sent,
                words_heard,
            },
            sensors: SensorSnapshot {
                readings,
                reply_latency_ps: reply_latency.as_ps(),
                queries,
            },
            led: LedSnapshot {
                value: led_value,
                history: led_history.iter().map(|&(t, v)| (t.as_ps(), v)).collect(),
            },
            pending: self
                .pending
                .snapshot_entries()
                .iter()
                .map(|&(at, ev)| match ev {
                    Pending::TxDone => PendingSnap {
                        at_ps: at.as_ps(),
                        kind: pending::TX_DONE,
                        value: 0,
                    },
                    Pending::SensorReply(v) => PendingSnap {
                        at_ps: at.as_ps(),
                        kind: pending::SENSOR_REPLY,
                        value: v,
                    },
                })
                .collect(),
            step_limit: self.step_limit,
            run_steps: self.run_steps,
        }
    }

    /// Rebuild a node from a snapshot. The restored node resumes
    /// bit-identically to the original.
    ///
    /// # Errors
    ///
    /// Rejects structurally invalid snapshots ([`SnapshotError::Corrupt`]).
    pub fn from_snapshot(snap: &NodeSnapshot) -> Result<Node, SnapshotError> {
        let bit_rate = f64::from_bits(snap.radio.bit_rate_bits);
        if !bit_rate.is_finite() || bit_rate <= 0.0 {
            return Err(SnapshotError::Corrupt("radio bit rate"));
        }
        let mode = mode_from_wire(snap.radio.mode)?;
        // An in-flight transmission carries both its word and its
        // completion time, or neither.
        if snap.radio.tx_done_at_ps.is_some() != snap.radio.tx_word.is_some() {
            return Err(SnapshotError::Corrupt("in-flight transmission"));
        }
        if snap.radio.tx_done_at_ps.is_some() != (mode == RadioMode::Tx) {
            return Err(SnapshotError::Corrupt("radio mode vs in-flight tx"));
        }
        let mut pending_cal = Calendar::new();
        for p in &snap.pending {
            let ev = match p.kind {
                pending::TX_DONE => Pending::TxDone,
                pending::SENSOR_REPLY => Pending::SensorReply(p.value),
                _ => return Err(SnapshotError::Corrupt("pending event kind")),
            };
            pending_cal.schedule(SimTime::from_ps(p.at_ps), ev);
        }
        Ok(Node {
            id: NodeId(snap.id),
            cpu: Processor::from_snapshot(&snap.core)?,
            radio: Radio::restore(
                bit_rate,
                mode,
                snap.radio.tx_done_at_ps.map(SimTime::from_ps),
                snap.radio.tx_word,
                snap.radio.words_sent,
                snap.radio.words_heard,
            ),
            sensors: SensorBank::restore(
                &snap.sensors.readings,
                SimDuration::from_ps(snap.sensors.reply_latency_ps),
                snap.sensors.queries,
            ),
            led: LedPort::restore(
                snap.led.value,
                snap.led
                    .history
                    .iter()
                    .map(|&(t, v)| (SimTime::from_ps(t), v))
                    .collect(),
            ),
            pending: pending_cal,
            step_limit: snap.step_limit,
            run_steps: snap.run_steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeConfig;
    use snap_asm::assemble;
    use snap_snapshot::Snapshot;

    /// A node frozen mid-transmission with a sensor reply pending and
    /// port history accumulated.
    fn busy_node() -> Node {
        let src = r"
            .equ EV_TXDONE, 4
            .equ EV_REPLY, 6
                li      r1, EV_TXDONE
                li      r2, sent
                setaddr r1, r2
                li      r1, EV_REPLY
                li      r2, got
                setaddr r1, r2
                li      r15, 0x4005     ; port <- 5
                li      r15, 0x3002     ; query sensor 2
                li      r15, 0x2000     ; TX command
                li      r15, 0xbeef     ; payload
                done
            sent:
                li      r15, 0x4006
                done
            got:
                mov     r3, r15
                done
        ";
        let mut node = Node::new(NodeConfig::default());
        node.load(&assemble(src).unwrap()).unwrap();
        node.sensors_mut().set_reading(2, 0x7777);
        // Stop while the word is still on the air (~833 us) and the
        // sensor reply (~10 us) is still pending.
        node.run_for(SimDuration::from_us(5)).unwrap();
        node
    }

    #[test]
    fn export_import_round_trip_is_exact() {
        let node = busy_node();
        let snap = node.export_snapshot();
        let restored = Node::from_snapshot(&snap).unwrap();
        assert_eq!(restored.export_snapshot(), snap);
    }

    #[test]
    fn restored_node_resumes_bit_identically() {
        let mut straight = busy_node();
        let mut restored = Node::from_snapshot(&busy_node().export_snapshot()).unwrap();
        // Run both through the pending sensor reply AND the tx-done.
        let out_a = straight.run_for(SimDuration::from_ms(2)).unwrap();
        let out_b = restored.run_for(SimDuration::from_ms(2)).unwrap();
        assert_eq!(out_a, out_b);
        assert_eq!(straight.export_snapshot(), restored.export_snapshot());
        assert!(straight.radio().words_sent() == 1);
        assert_eq!(
            straight.cpu().regs().read(snap_isa::Reg::R3),
            0x7777,
            "sensor reply must survive the snapshot"
        );
    }

    #[test]
    fn node_snapshot_serializes_through_bytes() {
        let snap = busy_node().export_snapshot();
        let bytes = Snapshot::Node(snap.clone()).to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.as_node().unwrap(), &snap);
    }

    #[test]
    fn corrupt_node_fields_are_rejected() {
        let snap = busy_node().export_snapshot();

        let mut s = snap.clone();
        s.radio.bit_rate_bits = (-1.0f64).to_bits();
        assert!(Node::from_snapshot(&s).is_err());

        let mut s = snap.clone();
        s.radio.mode = 9;
        assert!(Node::from_snapshot(&s).is_err());

        let mut s = snap.clone();
        s.radio.tx_word = None; // in-flight time without a word
        assert!(Node::from_snapshot(&s).is_err());

        let mut s = snap;
        s.pending[0].kind = 7;
        assert!(Node::from_snapshot(&s).is_err());
    }
}
