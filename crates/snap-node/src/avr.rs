//! The ATmega baseline mote as a network citizen.
//!
//! [`AvrMote`] wraps an [`atmega::AvrCore`] behind the same node-facing
//! contract the SNAP core satisfies, so a `Node` of kind
//! [`crate::NodeKind::Avr`] participates in the same radio channel,
//! wake calendar and scheduler machinery as SNAP nodes:
//!
//! * **Clock mapping.** The AVR core counts 4 MHz wall cycles; the
//!   network runs on picoseconds. One cycle is exactly
//!   [`AVR_CYCLE_PS`] = 250 000 ps, so the mapping is exact integer
//!   arithmetic in both directions. A `run_until(deadline)` runs the
//!   core while `wall_cycles × 250 000 < deadline_ps`, i.e. to the
//!   first instruction boundary at or past the deadline. That stopping
//!   point is a pure function of (core state, deadline) — independent
//!   of how a scheduler splits the interval — which is what keeps the
//!   network's bit-identity invariant intact (every scheduler syncs a
//!   node to the exact delivery instant before applying a delivery).
//! * **Radio mapping.** Each byte the program writes to `SPDR` goes on
//!   the air as one 16-bit radio word (value = the byte) starting at
//!   the write instant. At the mote's 38.4 kbps a word serializes in
//!   ≈416.67 µs, just under the 1667-cycle SPI shift (416.75 µs), so a
//!   program chaining bytes off SPI-complete interrupts never trips
//!   the radio-busy check. Received words are posted back through
//!   [`atmega::AvrCore::post_spi_rx`] as SPI-complete interrupts.
//! * **Energy mapping.** Active energy is the paper's power-based
//!   accounting (`AvrEnergyModel::task_energy` over total active
//!   cycles, ≈3.75 nJ per cycle); sleep time is the integer cycle
//!   difference `wall − active`. Both are lifetime totals, so the
//!   battery model's consumption stays a pure function of node state
//!   (see `snap_energy::battery`).

use atmega::AvrCore;
use dess::SimTime;
use snap_energy::{AvrEnergyModel, Energy};

/// One 4 MHz AVR clock cycle in picoseconds (exact).
pub const AVR_CYCLE_PS: u64 = 250_000;

/// Radio bit rate of the AVR mote's transceiver, bits/second. Chosen
/// so one 16-bit word serializes in slightly less than the 1667-cycle
/// SPI byte shift: back-to-back SPI bytes never find the radio busy.
pub const AVR_BIT_RATE: f64 = 38_400.0;

/// An ATmega-class mote core adapted to the node contract.
///
/// Owned by [`crate::Node`] when its kind is [`crate::NodeKind::Avr`];
/// the node event loop drives it via the cycle/radio/energy mappings
/// described in the module docs.
#[derive(Debug, Clone)]
pub struct AvrMote {
    pub(crate) core: AvrCore,
    pub(crate) model: AvrEnergyModel,
    /// SPI bytes already drained into radio words (index into
    /// [`AvrCore::spi_sent`]).
    pub(crate) tx_emitted: usize,
    /// Leave the receiver on after a transmission completes. Off by
    /// default: beacon-style motes are transmit-only, and a listening
    /// mote would take spurious SPI-complete interrupts for every word
    /// it overhears.
    pub(crate) listen: bool,
}

impl AvrMote {
    /// Wrap an assembled-and-wired AVR core.
    pub fn new(core: AvrCore) -> AvrMote {
        let model = AvrEnergyModel::atmega128l();
        debug_assert_eq!(model.cycle_time().as_ps(), AVR_CYCLE_PS);
        AvrMote {
            core,
            model,
            tx_emitted: 0,
            listen: false,
        }
    }

    /// Node-local simulated time: wall cycles at 250 ns each.
    pub fn now(&self) -> SimTime {
        SimTime::from_ps(self.core.wall_cycles() * AVR_CYCLE_PS)
    }

    /// Total active (executing) energy so far: the paper's power-based
    /// accounting over the core's lifetime active-cycle count.
    pub fn active_energy(&self) -> Energy {
        self.model.task_energy(self.core.active_cycles())
    }

    /// Total picoseconds spent asleep so far (integer-exact).
    pub fn sleep_ps(&self) -> u64 {
        (self.core.wall_cycles() - self.core.active_cycles()) * AVR_CYCLE_PS
    }

    /// The wrapped core.
    pub fn core(&self) -> &AvrCore {
        &self.core
    }

    /// Mutable core access (test fixtures and the node event loop).
    pub fn core_mut(&mut self) -> &mut AvrCore {
        &mut self.core
    }

    /// The energy model used for active-cycle accounting.
    pub fn model(&self) -> &AvrEnergyModel {
        &self.model
    }

    /// The first instruction-boundary cycle at or past `t`.
    pub(crate) fn cycle_deadline(t: SimTime) -> u64 {
        t.as_ps().div_ceil(AVR_CYCLE_PS)
    }
}
