//! Sensors attached to the message coprocessor.
//!
//! The paper supports two interaction styles (§3.3): *active* polling
//! (the core sends a `Query` command; the coprocessor reads the sensor
//! data pins and replies through `r15` with a `SensorReply` event) and
//! *passive* interrupts (a sensor asserts the external-interrupt pin,
//! raising a `SensorIrq` event). The bank models up to 4096 sensor
//! registers (the command word's 12-bit argument).

use dess::SimDuration;
use snap_isa::Word;
use std::collections::BTreeMap;

/// Default latency between a `Query` command and the reply event:
/// the coprocessor must sample the sensor data pins.
pub const DEFAULT_REPLY_LATENCY: SimDuration = SimDuration::from_us(10);

/// The node's sensor registers.
#[derive(Debug, Clone)]
pub struct SensorBank {
    readings: BTreeMap<u16, Word>,
    reply_latency: SimDuration,
    queries: u64,
}

impl SensorBank {
    /// An empty bank (all sensors read 0) with the default reply latency.
    pub fn new() -> SensorBank {
        SensorBank {
            readings: BTreeMap::new(),
            reply_latency: DEFAULT_REPLY_LATENCY,
            queries: 0,
        }
    }

    /// Override the query-reply latency.
    pub fn with_reply_latency(mut self, latency: SimDuration) -> SensorBank {
        self.reply_latency = latency;
        self
    }

    /// Set sensor `id`'s current reading (the simulated environment).
    pub fn set_reading(&mut self, id: u16, value: Word) {
        self.readings.insert(id & 0x0fff, value);
    }

    /// The current reading of sensor `id` (0 when never set).
    pub fn reading(&self, id: u16) -> Word {
        self.readings.get(&(id & 0x0fff)).copied().unwrap_or(0)
    }

    /// Handle a `Query` command: returns the sampled value and counts
    /// the query. The node delivers the reply after
    /// [`SensorBank::reply_latency`].
    pub fn query(&mut self, id: u16) -> Word {
        self.queries += 1;
        self.reading(id)
    }

    /// Latency between query and reply.
    pub fn reply_latency(&self) -> SimDuration {
        self.reply_latency
    }

    /// Queries served over the bank's lifetime.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// All state for a snapshot: `(readings, reply_latency, queries)`.
    /// Readings come out in ascending id order (BTreeMap iteration).
    pub(crate) fn export(&self) -> (Vec<(u16, Word)>, SimDuration, u64) {
        (
            self.readings.iter().map(|(&k, &v)| (k, v)).collect(),
            self.reply_latency,
            self.queries,
        )
    }

    /// Rebuild from a snapshot.
    pub(crate) fn restore(
        readings: &[(u16, Word)],
        reply_latency: SimDuration,
        queries: u64,
    ) -> SensorBank {
        SensorBank {
            readings: readings.iter().map(|&(k, v)| (k & 0x0fff, v)).collect(),
            reply_latency,
            queries,
        }
    }
}

impl Default for SensorBank {
    fn default() -> SensorBank {
        SensorBank::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readings_default_to_zero() {
        let bank = SensorBank::new();
        assert_eq!(bank.reading(0), 0);
        assert_eq!(bank.reading(4095), 0);
    }

    #[test]
    fn set_and_query() {
        let mut bank = SensorBank::new();
        bank.set_reading(3, 0x0123);
        assert_eq!(bank.query(3), 0x0123);
        assert_eq!(bank.query(4), 0);
        assert_eq!(bank.queries(), 2);
    }

    #[test]
    fn ids_are_masked_to_12_bits() {
        let mut bank = SensorBank::new();
        bank.set_reading(0x1003, 7); // aliases sensor 3
        assert_eq!(bank.reading(3), 7);
    }

    #[test]
    fn reply_latency_configurable() {
        let bank = SensorBank::new().with_reply_latency(SimDuration::from_us(2));
        assert_eq!(bank.reply_latency(), SimDuration::from_us(2));
    }
}
