//! # snap-node — a complete simulated sensor node
//!
//! The node of Fig. 1: a SNAP/LE core wired to an RFM TR1000-class radio
//! transceiver, a bank of sensors, and an output port (LEDs). The node
//! owns the glue the paper's message coprocessor expects from its
//! environment:
//!
//! * [`radio`] — a 19.2 kbps serial transceiver: transmitting one 16-bit
//!   word takes ≈833 µs, after which the core receives a `RadioTxDone`
//!   event; received words are posted word-by-word as `RadioRx` events.
//! * [`sensor`] — queryable sensor registers (temperature, light, ...)
//!   with a small reply latency, plus the external-interrupt pin.
//! * [`led`] — the output port written through the `PortWrite` command;
//!   the Blink benchmarks observe it.
//! * [`node`] — the event loop that advances the core, delivers radio
//!   and sensor events at the right simulated times, and reports what
//!   the node did ([`NodeOutput`]).
//!
//! ## Example
//!
//! ```
//! use snap_node::{Node, NodeConfig};
//! use snap_asm::assemble;
//! use dess::SimDuration;
//!
//! let program = assemble("li r15, 0x402a\nhalt").unwrap(); // port <- 0x2a
//! let mut node = Node::new(NodeConfig::default());
//! node.load(&program).unwrap();
//! let outputs = node.run_for(SimDuration::from_ms(1)).unwrap();
//! assert!(!outputs.is_empty());
//! assert_eq!(node.led().value(), 0x2a);
//! ```

#![warn(missing_docs)]

pub mod avr;
pub mod led;
pub mod node;
pub mod radio;
pub mod sensor;
pub mod snapshot;

pub use atmega;
pub use avr::{AvrMote, AVR_BIT_RATE, AVR_CYCLE_PS};
pub use led::LedPort;
pub use node::{Node, NodeConfig, NodeError, NodeId, NodeKind, NodeOutput, UplinkFrame};
pub use radio::{Radio, RadioMode, WORD_BITS};
pub use sensor::SensorBank;
pub use snap_energy::BatteryConfig;
