//! `srun` — run a SNAP program on a simulated node from the command
//! line, with optional instruction tracing.
//!
//! ```text
//! srun [--trace] [--lint] [--ms N] [--vdd 1.8|0.9|0.6] [--c]
//!      [--engine interp|fused|aot]
//!      [--checkpoint-every N] [--restore FILE.snap]
//!      [--metrics OUT.json] [--trace-out OUT.trace.json] FILE(.s|.c|.bin)
//! ```
//!
//! * `.s` sources are assembled, `.c` sources compiled (with `--c` or by
//!   extension), anything else is loaded as a little-endian word image;
//! * `--ms N` simulates N milliseconds (default 10);
//! * `--checkpoint-every N` writes a versioned `snap-snapshot` node
//!   checkpoint every N simulated milliseconds
//!   (`FILE.ckpt.<t>ms.snap`); a later `--restore` resumes from one
//!   **bit-identically** — same registers, memories, trace and energy
//!   `f64` bits as the uninterrupted run;
//! * `--restore FILE.snap` resumes from a checkpoint instead of loading
//!   a program (`--ms` then counts additional milliseconds; the
//!   engine/vdd flags are ignored — the checkpoint carries its
//!   configuration, and AOT-engine nodes are re-proved and recompiled
//!   from the restored IMEM);
//! * `--trace` prints every executed instruction with its address;
//! * `--lint` runs the `snap-lint` static analysis as a preflight and
//!   refuses to run a program with error-severity findings;
//! * `--engine` selects the translation tier (default `fused`); `aot`
//!   runs the snap-lint termination proof and compiles every proved
//!   handler ahead of time — results are bit-identical across engines;
//! * `--metrics OUT.json` writes a `snap-metrics-v1` report (counters,
//!   energy attribution, handler distributions — see
//!   `docs/OBSERVABILITY.md`);
//! * `--trace-out OUT.trace.json` writes a Chrome `trace_event` file of
//!   the run's handler bursts, viewable in Perfetto;
//! * exits with the node's statistics summary.

use dess::SimDuration;
use snap_core::{CoreState, StepOutcome};
use snap_node::{Node, NodeConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut trace = false;
    let mut lint = false;
    let mut millis: u64 = 10;
    let mut vdd = String::from("1.8");
    let mut force_c = false;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut engine = snap_core::Engine::Fused;
    let mut checkpoint_every: Option<u64> = None;
    let mut restore: Option<String> = None;
    let mut input: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => trace = true,
            "--lint" => lint = true,
            "--c" => force_c = true,
            "--ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => millis = v,
                None => return usage("--ms requires a number"),
            },
            "--vdd" => match args.next() {
                Some(v) => vdd = v,
                None => return usage("--vdd requires a voltage"),
            },
            "--metrics" => match args.next() {
                Some(v) => metrics_out = Some(v),
                None => return usage("--metrics requires an output path"),
            },
            "--trace-out" => match args.next() {
                Some(v) => trace_out = Some(v),
                None => return usage("--trace-out requires an output path"),
            },
            "--checkpoint-every" => match args.next().and_then(|v| v.parse().ok()) {
                Some(0) | None => return usage("--checkpoint-every requires a positive ms count"),
                Some(v) => checkpoint_every = Some(v),
            },
            "--restore" => match args.next() {
                Some(v) => restore = Some(v),
                None => return usage("--restore requires a checkpoint path"),
            },
            "--engine" => match args.next().as_deref() {
                Some("interp") => engine = snap_core::Engine::Interp,
                Some("fused") => engine = snap_core::Engine::Fused,
                Some("aot") => engine = snap_core::Engine::Aot,
                Some(other) => {
                    return usage(&format!("unknown engine `{other}` (interp, fused or aot)"))
                }
                None => return usage("--engine requires interp, fused or aot"),
            },
            "--help" | "-h" => return usage(""),
            other => input = Some(other.to_string()),
        }
    }
    if trace && checkpoint_every.is_some() {
        return usage("--checkpoint-every does not combine with --trace");
    }
    // Checkpoint files are named after whatever defined this run.
    let ckpt_base = restore.clone().or_else(|| input.clone());

    let point = match vdd.as_str() {
        "1.8" => snap_energy::OperatingPoint::V1_8,
        "0.9" => snap_energy::OperatingPoint::V0_9,
        "0.6" => snap_energy::OperatingPoint::V0_6,
        other => return usage(&format!("unsupported vdd `{other}` (1.8, 0.9 or 0.6)")),
    };

    let mut node;
    if let Some(ckpt) = &restore {
        if input.is_some() {
            return usage("--restore replaces the input file");
        }
        if lint {
            return usage("--lint analyzes a program input; it cannot run on a checkpoint");
        }
        node = match load_checkpoint(ckpt) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("srun: {e}");
                return ExitCode::FAILURE;
            }
        };
        if metrics_out.is_some() || trace_out.is_some() {
            node.cpu_mut()
                .enable_sampling(snap_telemetry::DEFAULT_RETAIN);
        }
        println!("restored:     {ckpt} at {}", node.now());
    } else {
        let Some(path) = input else {
            return usage("no input file");
        };

        // Build the program by input kind.
        let loaded = match load(&path, force_c) {
            Ok(loaded) => loaded,
            Err(e) => {
                eprintln!("srun: {e}");
                return ExitCode::FAILURE;
            }
        };

        if lint {
            let analysis = match &loaded {
                Loaded::Program(program) => snap_lint::analyze_program(program, point),
                Loaded::Raw { imem, .. } => snap_lint::analyze_image(imem, point),
            };
            for d in &analysis.diagnostics {
                let loc = match (&d.line, d.pc) {
                    (Some((module, line)), _) => format!("{module}:{line}"),
                    (None, Some(pc)) => format!("pc {pc:#05x}"),
                    (None, None) => String::from("program"),
                };
                eprintln!(
                    "srun: lint: {}: {} at {loc}: {}",
                    d.severity.label(),
                    d.lint,
                    d.message
                );
            }
            if !analysis.is_clean() {
                eprintln!(
                    "srun: {path}: refusing to run with error-severity lint findings \
                     (run `snap-lint {path}` for the full report)"
                );
                return ExitCode::FAILURE;
            }
            println!(
                "lint:         clean ({} findings below error severity)",
                analysis.diagnostics.len()
            );
            if analysis.flow.degraded {
                println!("flow:         degraded (whole-image chain claims withdrawn)");
            } else {
                let chains = analysis.flow.chains.len();
                let bounded = analysis
                    .flow
                    .chains
                    .iter()
                    .filter(|c| c.events_per_wake.is_some())
                    .count();
                let peak = analysis
                    .flow
                    .chains
                    .iter()
                    .filter_map(|c| c.peak_queue)
                    .max();
                match peak {
                    Some(p) => println!(
                        "flow:         {bounded}/{chains} activation chains bounded, \
                         worst peak queue {p} of {}",
                        analysis.flow.queue_capacity
                    ),
                    None => println!("flow:         {bounded}/{chains} activation chains bounded"),
                }
            }
        }

        // Tier 2 needs the termination proof: every handler snap-lint
        // proves done-terminating becomes an AOT compilation region.
        let aot_regions: Vec<snap_core::AotRegion> = if engine == snap_core::Engine::Aot {
            let analysis = match &loaded {
                Loaded::Program(program) => snap_lint::analyze_program(program, point),
                Loaded::Raw { imem, .. } => snap_lint::analyze_image(imem, point),
            };
            analysis
                .regions
                .iter()
                .map(|r| snap_core::AotRegion {
                    entry: r.entry,
                    addrs: r.addrs.clone(),
                })
                .collect()
        } else {
            Vec::new()
        };

        let (imem, dmem) = match loaded {
            Loaded::Program(program) => (program.imem_image(), program.dmem_image()),
            Loaded::Raw { imem, dmem } => (imem, dmem),
        };

        let cfg = NodeConfig {
            core: snap_core::CoreConfig {
                engine,
                ..snap_core::CoreConfig::at(point)
            },
            ..NodeConfig::default()
        };
        node = Node::new(cfg);
        if metrics_out.is_some() || trace_out.is_some() {
            node.cpu_mut()
                .enable_sampling(snap_telemetry::DEFAULT_RETAIN);
        }
        node.cpu_mut()
            .load_image(0, &imem)
            .expect("image fits IMEM");
        node.cpu_mut().load_data(0, &dmem).expect("image fits DMEM");
        if engine == snap_core::Engine::Aot {
            // Install after loading: loading drops any compiled image.
            node.cpu_mut().install_aot(&aot_regions);
            println!(
                "aot:          {} compiled blocks over {} proved regions",
                node.cpu().aot_block_count(),
                aot_regions.len()
            );
        }
    }

    if trace {
        // Manual step loop with per-instruction output; timers are
        // fast-forwarded like the core's standalone helpers do. The
        // deadline is relative to the node's clock so `--restore` runs
        // `--ms` additional milliseconds.
        let deadline = node.now() + SimDuration::from_ms(millis);
        loop {
            match node.cpu_mut().step() {
                Ok(StepOutcome::Executed { ins, at, .. }) => {
                    println!("{:>12}  {at:#05x}  {ins}", node.now().to_string());
                }
                Ok(StepOutcome::Woke { event }) => {
                    println!("{:>12}  ---- wake: {event}", node.now().to_string());
                }
                Ok(StepOutcome::Halted) => break,
                Ok(StepOutcome::Asleep) => match node.cpu().next_timer_expiry() {
                    Some(at) if at <= deadline => {
                        node.cpu_mut().advance_idle(at);
                    }
                    _ => break,
                },
                Err(e) => {
                    eprintln!("srun: fault: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if node.now() >= deadline {
                break;
            }
        }
    } else if let Some(every) = checkpoint_every {
        // Advance in checkpoint-sized windows, serializing the node at
        // every boundary. Snapshots are defined exactly at `run_until`
        // boundaries, and restoring one resumes bit-identically.
        let base = ckpt_base.expect("checkpointing requires an input or --restore");
        let deadline = node.now() + SimDuration::from_ms(millis);
        while node.now() < deadline {
            let mut next = node.now() + SimDuration::from_ms(every);
            if next > deadline {
                next = deadline;
            }
            if let Err(e) = node.run_until(next) {
                eprintln!("srun: fault: {e}");
                eprintln!("srun: (checkpoints up to the fault remain on disk)");
                return ExitCode::FAILURE;
            }
            let at_ms = node.now().as_ps() / 1_000_000_000;
            let out = format!("{base}.ckpt.{at_ms}ms.snap");
            let bytes = snap_snapshot::Snapshot::Node(Box::new(node.export_snapshot())).to_bytes();
            if let Err(e) = std::fs::write(&out, &bytes) {
                eprintln!("srun: {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!("checkpoint:   {out} ({} bytes)", bytes.len());
        }
    } else if let Err(e) = node.run_for(SimDuration::from_ms(millis)) {
        eprintln!("srun: fault: {e}");
        return ExitCode::FAILURE;
    }

    let stats = node.cpu().stats();
    println!("---");
    println!("state:        {:?}", node.cpu().state());
    println!("time:         {}", node.now());
    println!("instructions: {}", stats.instructions);
    println!("handlers:     {}", stats.handlers_dispatched);
    println!("energy:       {}", stats.energy);
    println!("busy/sleep:   {} / {}", stats.busy_time, stats.sleep_time);
    if node.cpu().state() == CoreState::Running {
        println!("(still running at the deadline)");
    }

    if let Some(path) = metrics_out {
        // From the node's actual configuration, so `--restore` reports
        // the checkpoint's operating point rather than the flag default.
        let vdd_v = node.cpu().config().operating_point.vdd();
        let report = snap_telemetry::report(
            "srun",
            vdd_v,
            node.now().as_ps(),
            vec![snap_telemetry::node_metrics(0, node.cpu())],
            None,
        );
        if let Err(e) = std::fs::write(&path, report.to_pretty()) {
            eprintln!("srun: {path}: {e}");
            return ExitCode::FAILURE;
        }
        print_distributions(node.cpu());
        println!("metrics:      {path}");
    }
    if let Some(path) = trace_out {
        let mut chrome = snap_telemetry::ChromeTrace::new();
        chrome.process_name("srun");
        chrome.thread_name(0, "node0");
        if let Some(sampler) = node.cpu().sampler() {
            chrome.add_handler_samples(0, sampler.samples());
        }
        if let Err(e) = std::fs::write(&path, chrome.to_json()) {
            eprintln!("srun: {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("trace-out:    {path}");
    }
    ExitCode::SUCCESS
}

/// Print the handler-length and energy-per-handler distributions the
/// sampler collected, in the units the paper reports (dynamic
/// instructions; nJ per handler).
fn print_distributions(cpu: &snap_core::Processor) {
    let Some(sampler) = cpu.sampler() else { return };
    let mut instructions = snap_telemetry::Histogram::new();
    let mut nj = snap_telemetry::Histogram::new();
    for s in sampler.samples() {
        instructions.record(s.instructions as f64);
        nj.record(s.energy.as_pj() / 1000.0);
    }
    let span = |h: &snap_telemetry::Histogram| match (h.min(), h.max(), h.mean()) {
        (Some(min), Some(max), Some(mean)) => {
            format!(
                "min {min:.3}  p50 {p50:.3}  max {max:.3}  mean {mean:.3}",
                p50 = h.quantile(0.5).unwrap()
            )
        }
        _ => String::from("(no samples)"),
    };
    println!(
        "handler len:  {} (dynamic instructions)",
        span(&instructions)
    );
    println!("handler nJ:   {}", span(&nj));
}

/// Restore a node from a `snap-snapshot` checkpoint, re-proving and
/// recompiling the AOT image when the checkpointed engine is tier 2
/// (caches are pure functions of state; results are bit-identical).
fn load_checkpoint(path: &str) -> Result<Node, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let snap = snap_snapshot::Snapshot::from_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let ns = snap.as_node().ok_or_else(|| {
        format!("{path}: not a node checkpoint (fleet snapshots restore via snap-serve)")
    })?;
    let mut node = Node::from_snapshot(ns).map_err(|e| format!("{path}: {e}"))?;
    if node.cpu().config().engine == snap_core::Engine::Aot {
        let analysis = snap_lint::analyze_image(
            node.cpu().imem().as_words(),
            node.cpu().config().operating_point,
        );
        let regions: Vec<snap_core::AotRegion> = analysis
            .regions
            .iter()
            .map(|r| snap_core::AotRegion {
                entry: r.entry,
                addrs: r.addrs.clone(),
            })
            .collect();
        node.cpu_mut().install_aot(&regions);
    }
    Ok(node)
}

/// A loaded input: a full [`snap_asm::Program`] (symbols and source
/// lines available for `--lint`) or a raw word image.
enum Loaded {
    Program(snap_asm::Program),
    Raw { imem: Vec<u16>, dmem: Vec<u16> },
}

fn load(path: &str, force_c: bool) -> Result<Loaded, String> {
    if force_c || path.ends_with(".c") {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let program = snapcc::compile_to_program(&src).map_err(|e| format!("{path}: {e}"))?;
        Ok(Loaded::Program(program))
    } else if path.ends_with(".s") {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let program = snap_asm::assemble(&src).map_err(|e| format!("{path}: {e}"))?;
        Ok(Loaded::Program(program))
    } else {
        let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        if bytes.len() % 2 != 0 {
            return Err(format!("{path}: odd byte count"));
        }
        let words = bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        Ok(Loaded::Raw {
            imem: words,
            dmem: Vec::new(),
        })
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("srun: {err}");
    }
    eprintln!(
        "usage: srun [--trace] [--lint] [--ms N] [--vdd 1.8|0.9|0.6] [--c] \
         [--engine interp|fused|aot] \
         [--checkpoint-every N] [--restore FILE.snap] \
         [--metrics OUT.json] [--trace-out OUT.trace.json] FILE(.s|.c|.bin)"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
