//! Baseline energy model: the ATmega128L-class microcontroller.
//!
//! The paper's comparisons (Table 2, Fig. 5, §4.6) use the Atmel
//! ATmega128L in the Berkeley MICA motes: a clocked 8-bit AVR RISC core
//! at 4 MIPS and 3 V, consuming about 1500 pJ per instruction. The
//! Fig. 5 blink energy (1960 nJ for 523 cycles) corresponds to a
//! power-based accounting of ≈3.75 nJ per *cycle* of elapsed time at
//! 4 MHz (≈15 mW active power at 3 V), which is what this model uses for
//! whole-task energy. Sleep-to-active transitions take 4–65 ms depending
//! on the sleep state (paper §4.3).

use crate::units::{Energy, Power};
use dess::SimDuration;

/// Energy/timing constants for the ATmega128L-class baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvrEnergyModel {
    clock_hz: f64,
    energy_per_instruction: Energy,
    active_power: Power,
}

impl AvrEnergyModel {
    /// The paper's ATmega128L operating point: 4 MHz, 3 V, ≈1500 pJ/ins,
    /// ≈15 mW active.
    pub fn atmega128l() -> AvrEnergyModel {
        AvrEnergyModel {
            clock_hz: 4.0e6,
            energy_per_instruction: Energy::from_pj(1_500.0),
            active_power: Power::from_mw(15.0),
        }
    }

    /// A custom clocked baseline.
    ///
    /// # Panics
    ///
    /// Panics unless `clock_hz` is positive.
    pub fn new(
        clock_hz: f64,
        energy_per_instruction: Energy,
        active_power: Power,
    ) -> AvrEnergyModel {
        assert!(clock_hz > 0.0, "clock frequency must be positive");
        AvrEnergyModel {
            clock_hz,
            energy_per_instruction,
            active_power,
        }
    }

    /// The clock frequency in hertz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// One clock period.
    pub fn cycle_time(&self) -> SimDuration {
        SimDuration::from_ps((1e12 / self.clock_hz).round() as u64)
    }

    /// Average energy per executed instruction (Table 2's `E/ins`).
    pub fn energy_per_instruction(&self) -> Energy {
        self.energy_per_instruction
    }

    /// Active power while the core is clocked.
    pub fn active_power(&self) -> Power {
        self.active_power
    }

    /// Energy of a task that keeps the core active for `cycles` clock
    /// cycles (the paper's Fig. 5 accounting: power × elapsed time).
    pub fn task_energy(&self, cycles: u64) -> Energy {
        self.active_power.for_duration(self.cycle_time() * cycles)
    }

    /// Elapsed time of a `cycles`-cycle task.
    pub fn task_time(&self, cycles: u64) -> SimDuration {
        self.cycle_time() * cycles
    }

    /// The fastest sleep→active transition (idle sleep): ≈4 ms.
    pub fn min_wakeup(&self) -> SimDuration {
        SimDuration::from_ms(4)
    }

    /// The slowest sleep→active transition (deepest sleep): ≈65 ms.
    pub fn max_wakeup(&self) -> SimDuration {
        SimDuration::from_ms(65)
    }
}

impl Default for AvrEnergyModel {
    fn default() -> AvrEnergyModel {
        AvrEnergyModel::atmega128l()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blink_energy_matches_fig5() {
        // Paper Fig. 5: 523 cycles per blink cost ≈1960 nJ on the mote.
        let m = AvrEnergyModel::atmega128l();
        let e = m.task_energy(523);
        assert!((e.as_nj() - 1960.0).abs() < 25.0, "{e}");
    }

    #[test]
    fn cycle_time_is_250ns() {
        let m = AvrEnergyModel::atmega128l();
        assert_eq!(m.cycle_time(), SimDuration::from_ns(250));
    }

    #[test]
    fn energy_per_instruction_is_1500pj() {
        let m = AvrEnergyModel::atmega128l();
        assert!((m.energy_per_instruction().as_pj() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn wakeup_band() {
        let m = AvrEnergyModel::atmega128l();
        assert!(m.min_wakeup() < m.max_wakeup());
        assert_eq!(m.min_wakeup(), SimDuration::from_ms(4));
        assert_eq!(m.max_wakeup(), SimDuration::from_ms(65));
    }

    #[test]
    fn atmel_vs_snap_wakeup_gap_is_orders_of_magnitude() {
        use crate::model::SnapTimingModel;
        use crate::voltage::OperatingPoint;
        let avr = AvrEnergyModel::atmega128l().min_wakeup();
        let snap = SnapTimingModel::new(OperatingPoint::V0_6).wakeup_latency();
        let ratio = avr.as_ps() as f64 / snap.as_ps() as f64;
        assert!(ratio > 1e5, "wake-up ratio only {ratio}");
    }
}
