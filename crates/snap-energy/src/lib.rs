//! # snap-energy — energy and timing models
//!
//! The paper evaluates SNAP/LE with SPICE-calibrated switch-level
//! simulation of a transistor-level 180 nm design. This crate replaces
//! that apparatus with an *architectural* energy/timing model whose
//! constants are calibrated to the paper's published numbers:
//!
//! * energy scales with the square of the supply voltage
//!   (216–219 → 54–56 → 23–24 pJ/ins across 1.8/0.9/0.6 V is a clean V²
//!   sequence);
//! * delay scales by ×1 / ×3.93 / ×8.57 across the same voltages (both
//!   the 240/61/28 MIPS and the 2.5/9.8/21.4 ns wake-up sequences give
//!   the same factors);
//! * per-instruction energy decomposes into a core part plus memory
//!   parts (one IMEM word per instruction word fetched, one DMEM access
//!   for loads/stores) — the paper reports memory as "about half" of the
//!   energy per instruction;
//! * the core part splits 33 % datapath / 20 % fetch / 16 % decode /
//!   9 % memory interface / 22 % miscellaneous (paper §4.4).
//!
//! The same crate carries the baseline models: the ATmega128L-class
//! microcontroller constants (≈1500 pJ/ins at 3 V and 4 MIPS, paper
//! Table 2 and §4.6) and the static rows of Table 2.

#![warn(missing_docs)]

pub mod avr;
pub mod battery;
pub mod breakdown;
pub mod model;
pub mod related;
pub mod units;
pub mod voltage;

pub use avr::AvrEnergyModel;
pub use battery::BatteryConfig;
pub use breakdown::{Component, ComponentEnergy};
pub use model::{SnapEnergyModel, SnapTimingModel};
pub use related::{related_processors, RelatedProcessor};
pub use units::{Energy, Power};
pub use voltage::OperatingPoint;
