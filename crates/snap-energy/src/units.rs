//! Energy and power quantities.
//!
//! Picojoules are the paper's working unit ("picojoule computing"); a
//! whole handler is tens of nanojoules and a node-month is millijoules,
//! all comfortably inside `f64`.

use dess::SimDuration;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An amount of energy, stored in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// From picojoules.
    pub const fn from_pj(pj: f64) -> Energy {
        Energy(pj)
    }

    /// From nanojoules.
    pub fn from_nj(nj: f64) -> Energy {
        Energy(nj * 1e3)
    }

    /// In picojoules.
    pub const fn as_pj(self) -> f64 {
        self.0
    }

    /// In nanojoules.
    pub fn as_nj(self) -> f64 {
        self.0 / 1e3
    }

    /// In microjoules.
    pub fn as_uj(self) -> f64 {
        self.0 / 1e6
    }

    /// Average power when this energy is spent over `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is zero.
    pub fn over(self, dt: SimDuration) -> Power {
        assert!(!dt.is_zero(), "cannot compute power over a zero duration");
        // pJ / ps = W
        Power::from_watts(self.0 / dt.as_ps() as f64)
    }
}

impl Add for Energy {
    type Output = Energy;

    #[inline]
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    #[inline]
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;

    #[inline]
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;

    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<u64> for Energy {
    type Output = Energy;

    fn mul(self, rhs: u64) -> Energy {
        Energy(self.0 * rhs as f64)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;

    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Div<Energy> for Energy {
    type Output = f64;

    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pj = self.0;
        if pj.abs() >= 1e6 {
            write!(f, "{:.2}uJ", pj / 1e6)
        } else if pj.abs() >= 1e3 {
            write!(f, "{:.2}nJ", pj / 1e3)
        } else {
            write!(f, "{:.1}pJ", pj)
        }
    }
}

/// Electrical power, stored in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// From watts.
    pub const fn from_watts(w: f64) -> Power {
        Power(w)
    }

    /// From nanowatts.
    pub fn from_nw(nw: f64) -> Power {
        Power(nw * 1e-9)
    }

    /// From milliwatts.
    pub fn from_mw(mw: f64) -> Power {
        Power(mw * 1e-3)
    }

    /// In watts.
    pub const fn as_watts(self) -> f64 {
        self.0
    }

    /// In nanowatts.
    pub fn as_nw(self) -> f64 {
        self.0 * 1e9
    }

    /// In microwatts.
    pub fn as_uw(self) -> f64 {
        self.0 * 1e6
    }

    /// In milliwatts.
    pub fn as_mw(self) -> f64 {
        self.0 * 1e3
    }

    /// Energy spent sustaining this power for `dt`.
    pub fn for_duration(self, dt: SimDuration) -> Energy {
        // W * ps = pJ
        Energy::from_pj(self.0 * dt.as_ps() as f64)
    }
}

impl Add for Power {
    type Output = Power;

    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.0;
        if w.abs() >= 1e-3 {
            write!(f, "{:.2}mW", w * 1e3)
        } else if w.abs() >= 1e-6 {
            write!(f, "{:.2}uW", w * 1e6)
        } else {
            write!(f, "{:.1}nW", w * 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Energy::from_nj(1.5).as_pj(), 1500.0);
        assert!((Energy::from_pj(2e6).as_uj() - 2.0).abs() < 1e-12);
        assert!((Power::from_mw(15.0).as_watts() - 0.015).abs() < 1e-12);
        assert!((Power::from_nw(550.0).as_uw() - 0.55).abs() < 1e-12);
    }

    #[test]
    fn energy_over_time_is_power() {
        // 218 pJ per instruction at 240 MIPS => 218pJ / 4.1667ns = 52.3mW? No:
        // 218 pJ / 4166.7 ps = 0.0523 W. Sanity-check the arithmetic.
        let e = Energy::from_pj(218.0);
        let p = e.over(SimDuration::from_ps(4_167));
        assert!((p.as_mw() - 52.3).abs() < 0.2, "{p}");
    }

    #[test]
    fn power_times_time_is_energy() {
        // Paper §4.7: one 5.8 nJ handler (0.6 V) ten times per second is 58 nW.
        let p = Power::from_nw(58.0);
        let e = p.for_duration(SimDuration::from_ms(100));
        assert!((e.as_nj() - 5.8).abs() < 1e-9, "{e}");
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: Energy = [1.0, 2.0, 3.0].into_iter().map(Energy::from_pj).sum();
        assert_eq!(total.as_pj(), 6.0);
        assert_eq!((Energy::from_pj(4.0) * 2.5).as_pj(), 10.0);
        assert_eq!((Energy::from_pj(9.0) / 3.0).as_pj(), 3.0);
        assert_eq!(Energy::from_pj(9.0) / Energy::from_pj(3.0), 3.0);
        assert_eq!((Energy::from_pj(9.0) - Energy::from_pj(3.0)).as_pj(), 6.0);
        assert_eq!((Energy::from_pj(3.0) * 4u64).as_pj(), 12.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(Energy::from_pj(24.0).to_string(), "24.0pJ");
        assert_eq!(Energy::from_pj(5_800.0).to_string(), "5.80nJ");
        assert_eq!(Energy::from_pj(1_960_000.0).to_string(), "1.96uJ");
        assert_eq!(Power::from_nw(150.0).to_string(), "150.0nW");
        assert_eq!(Power::from_mw(15.0).to_string(), "15.00mW");
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn power_over_zero_duration_panics() {
        let _ = Energy::from_pj(1.0).over(SimDuration::ZERO);
    }
}
