//! Supply-voltage operating points.
//!
//! The paper evaluates SNAP/LE at 1.8 V (nominal for TSMC 180 nm), 0.9 V
//! and 0.6 V. Two scaling laws connect the points:
//!
//! * **Energy** — switching energy goes as C·V², so
//!   `scale = (V / 1.8)²`. The paper's measured averages
//!   (216–219 / 54–56 / 23–24 pJ/ins) follow this exactly.
//! * **Delay** — the paper's throughput (240 / 61 / 28 MIPS) and wake-up
//!   (2.5 / 9.8 / 21.4 ns) sequences both give delay factors of
//!   ×1 / ×3.93 / ×8.57; we store those calibrated factors per point.

use std::fmt;

/// Nominal supply for the 180 nm process.
const NOMINAL_VDD: f64 = 1.8;

/// A supply-voltage operating point with its calibrated delay factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    vdd: f64,
    delay_factor: f64,
}

impl OperatingPoint {
    /// 1.8 V — nominal voltage; 240 MIPS, ~218 pJ/ins.
    pub const V1_8: OperatingPoint = OperatingPoint {
        vdd: 1.8,
        delay_factor: 1.0,
    };

    /// 0.9 V — 61 MIPS, ~55 pJ/ins.
    pub const V0_9: OperatingPoint = OperatingPoint {
        vdd: 0.9,
        delay_factor: 3.93,
    };

    /// 0.6 V — the paper's target deployment point; 28 MIPS, ~24 pJ/ins.
    pub const V0_6: OperatingPoint = OperatingPoint {
        vdd: 0.6,
        delay_factor: 8.57,
    };

    /// The three operating points evaluated in the paper, highest first
    /// (matching the order of Table 1's columns).
    pub const PAPER_POINTS: [OperatingPoint; 3] = [
        OperatingPoint::V1_8,
        OperatingPoint::V0_9,
        OperatingPoint::V0_6,
    ];

    /// A custom operating point.
    ///
    /// `delay_factor` is the circuit slow-down relative to 1.8 V; use the
    /// paper-calibrated constants ([`OperatingPoint::V1_8`] etc.) for the
    /// published voltages.
    ///
    /// # Panics
    ///
    /// Panics unless `vdd > 0` and `delay_factor >= 1`.
    pub fn new(vdd: f64, delay_factor: f64) -> OperatingPoint {
        assert!(vdd > 0.0, "supply voltage must be positive");
        assert!(
            delay_factor >= 1.0,
            "delay factor is relative to nominal (>= 1)"
        );
        OperatingPoint { vdd, delay_factor }
    }

    /// The supply voltage in volts.
    pub fn vdd(self) -> f64 {
        self.vdd
    }

    /// Energy scale relative to 1.8 V: `(V / 1.8)²`.
    pub fn energy_scale(self) -> f64 {
        let r = self.vdd / NOMINAL_VDD;
        r * r
    }

    /// Circuit delay factor relative to 1.8 V.
    pub fn delay_factor(self) -> f64 {
        self.delay_factor
    }

    /// A short label such as `"1.8V"` used in table headers.
    pub fn label(self) -> String {
        format!("{:.1}V", self.vdd)
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}V (×{:.2} delay)", self.vdd, self.delay_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_quadratically() {
        assert!((OperatingPoint::V1_8.energy_scale() - 1.0).abs() < 1e-12);
        assert!((OperatingPoint::V0_9.energy_scale() - 0.25).abs() < 1e-12);
        assert!((OperatingPoint::V0_6.energy_scale() - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn paper_energy_sequence_is_v_squared() {
        // 218 pJ/ins at 1.8 V should land in the paper's 0.9/0.6 V bands.
        let base = 218.0;
        let at_09 = base * OperatingPoint::V0_9.energy_scale();
        let at_06 = base * OperatingPoint::V0_6.energy_scale();
        assert!((54.0..=56.0).contains(&at_09), "{at_09}");
        assert!((23.0..=25.0).contains(&at_06), "{at_06}");
    }

    #[test]
    fn delay_factors_match_paper_mips() {
        // 240 MIPS at 1.8 V implies 61 and 28 MIPS at the lower points.
        assert!((240.0 / OperatingPoint::V0_9.delay_factor() - 61.0).abs() < 1.0);
        assert!((240.0 / OperatingPoint::V0_6.delay_factor() - 28.0).abs() < 0.5);
    }

    #[test]
    fn custom_point() {
        let p = OperatingPoint::new(1.2, 2.0);
        assert!((p.energy_scale() - (1.2f64 / 1.8).powi(2)).abs() < 1e-12);
        assert_eq!(p.label(), "1.2V");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_vdd_rejected() {
        let _ = OperatingPoint::new(0.0, 1.0);
    }
}
