//! The SNAP/LE per-instruction energy and timing model.
//!
//! Every instruction's energy decomposes as
//!
//! ```text
//! E = scale(V) · (E_core(class) + words · E_imem + dmem · E_dmem [+ imem_data · E_imem])
//! ```
//!
//! where `words` is the number of IMEM words fetched (1 or 2), `dmem`
//! flags a data-memory access, and `scale(V)` is the V² factor from
//! [`OperatingPoint::energy_scale`]. Latency decomposes the same way in
//! units of *gate delays* — the natural unit for an asynchronous (QDI)
//! pipeline — scaled by the per-voltage delay factor. The base gate
//! delay is fixed by the paper's wake-up measurement: 18 gate delays =
//! 2.5 ns at 1.8 V, i.e. ≈139 ps per gate delay.
//!
//! The class tables below are this reproduction's calibration knobs. They
//! were chosen so that, at 1.8 V:
//!
//! * every instruction stays under 300 pJ (paper §4.4);
//! * one-word register ops are the cheapest class, two-word immediates
//!   the middle class, and loads/stores the most expensive (Fig. 4);
//! * memory (IMEM fetch + DMEM) is roughly half the energy (paper §4.4);
//! * the Table 1 handler mixes average ≈ 216–219 pJ/ins and ≈ 240 MIPS.

use crate::breakdown::{Component, ComponentEnergy};
use crate::units::{Energy, Power};
use crate::voltage::OperatingPoint;
use dess::SimDuration;
use snap_isa::InstructionClass;

/// Energy of fetching one IMEM word, in pJ at 1.8 V.
pub const IMEM_WORD_PJ: f64 = 52.0;

/// Energy of one DMEM access, in pJ at 1.8 V.
pub const DMEM_ACCESS_PJ: f64 = 55.0;

/// Energy of a *data* access to IMEM (`ilw`/`isw`), in pJ at 1.8 V.
pub const IMEM_DATA_PJ: f64 = 52.0;

/// Gate delay at 1.8 V in picoseconds: 2.5 ns wake-up / 18 gate delays.
pub const GATE_DELAY_PS_1V8: f64 = 2_500.0 / 18.0;

/// Wake-up (idle→active) latency in gate delays (paper §4.3).
pub const WAKEUP_GATE_DELAYS: u64 = 18;

/// Extra gate delays for fetching an instruction's second word.
pub const EXTRA_WORD_GD: f64 = 10.0;

/// Extra gate delays for a DMEM access.
pub const DMEM_GD: f64 = 10.0;

/// Extra gate delays for a data access to IMEM.
pub const IMEM_DATA_GD: f64 = 12.0;

/// Per-class core (non-memory) energy at 1.8 V, and base latency in gate
/// delays (excluding extra-word and data-memory terms).
///
/// Classes executed by units on the *slow* busses (timer interface, LFSR,
/// IMEM load/store data paths — paper §3.1) carry extra gate delays for
/// the additional bus hop.
fn class_table(class: InstructionClass) -> (f64, f64) {
    use InstructionClass as C;
    match class {
        //                   core pJ  base gate delays
        C::ArithReg => (106.0, 18.0),
        C::LogicalReg => (102.0, 18.0),
        C::Shift => (105.0, 18.0),
        C::ArithImm => (119.0, 18.0),
        C::LogicalImm => (115.0, 18.0),
        C::Load => (106.0, 20.0),
        C::Store => (100.0, 20.0),
        // IMEM data port sits on the slow busses.
        C::ImemLoad => (112.0, 26.0),
        C::ImemStore => (110.0, 26.0),
        C::Branch => (119.0, 19.0),
        C::Jump => (112.0, 18.0),
        // Timer coprocessor interface: slow bus.
        C::Timer => (119.0, 26.0),
        C::Bitfield => (125.0, 20.0),
        // LFSR: slow bus.
        C::Rand => (110.0, 26.0),
        C::Event => (88.0, 16.0),
        C::Nop => (69.0, 14.0),
    }
}

/// Bus organization (paper §3.1): SNAP/LE uses a two-level hierarchy —
/// common units on low-capacitance fast busses, rare units behind slow
/// busses. The flat alternative attaches every unit to one heavily
/// loaded bus: every operation pays the full bus capacitance (matching
/// the slow-bus latency) and the datapath burns extra switching energy.
/// Used by the `ablation_bus` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BusModel {
    /// The paper's two-level fast/slow hierarchy.
    #[default]
    Hierarchical,
    /// A single flat bus (ablation baseline).
    Flat,
}

/// Base gate delays every class pays on a flat bus (the slow-bus cost).
pub const FLAT_BUS_BASE_GD: f64 = 26.0;

/// Extra core energy fraction on a flat bus (higher bus capacitance).
pub const FLAT_BUS_ENERGY_FACTOR: f64 = 1.15;

/// Shape of one executed instruction, as needed by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrShape {
    /// Energy/timing class.
    pub class: InstructionClass,
    /// IMEM words fetched (1 or 2).
    pub words: usize,
    /// Whether a DMEM access is performed.
    pub dmem: bool,
    /// Whether a *data* access to IMEM is performed (`ilw`/`isw`).
    pub imem_data: bool,
}

impl InstrShape {
    /// Shape of a one-word, no-memory instruction of the given class.
    pub fn simple(class: InstructionClass) -> InstrShape {
        InstrShape {
            class,
            words: 1,
            dmem: false,
            imem_data: false,
        }
    }
}

/// The SNAP/LE energy model at a fixed operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapEnergyModel {
    point: OperatingPoint,
    /// Idle (sleep) leakage power. The paper leaves leakage measurement
    /// as future work; this is a configurable placeholder (default 10 nW)
    /// so lifetime projections can include it explicitly.
    idle_leakage: Power,
    bus: BusModel,
}

impl SnapEnergyModel {
    /// Model at an operating point with the default leakage placeholder.
    pub fn new(point: OperatingPoint) -> SnapEnergyModel {
        SnapEnergyModel {
            point,
            idle_leakage: Power::from_nw(10.0),
            bus: BusModel::default(),
        }
    }

    /// Override the idle-leakage placeholder.
    pub fn with_idle_leakage(mut self, leakage: Power) -> SnapEnergyModel {
        self.idle_leakage = leakage;
        self
    }

    /// Select the bus organization (ablation).
    pub fn with_bus(mut self, bus: BusModel) -> SnapEnergyModel {
        self.bus = bus;
        self
    }

    fn core_energy_factor(&self) -> f64 {
        match self.bus {
            BusModel::Hierarchical => 1.0,
            BusModel::Flat => FLAT_BUS_ENERGY_FACTOR,
        }
    }

    /// The operating point this model is evaluated at.
    pub fn operating_point(&self) -> OperatingPoint {
        self.point
    }

    /// Idle (sleep) leakage power.
    pub fn idle_leakage(&self) -> Power {
        self.idle_leakage
    }

    /// Total energy of one executed instruction.
    pub fn instruction_energy(&self, shape: InstrShape) -> Energy {
        let (core, _) = class_table(shape.class);
        let core = core * self.core_energy_factor();
        let mut pj = core + shape.words as f64 * IMEM_WORD_PJ;
        if shape.dmem {
            pj += DMEM_ACCESS_PJ;
        }
        if shape.imem_data {
            pj += IMEM_DATA_PJ;
        }
        Energy::from_pj(pj * self.point.energy_scale())
    }

    /// Energy of one executed instruction, attributed to processor
    /// components (paper §4.4 split).
    pub fn instruction_energy_by_component(&self, shape: InstrShape) -> ComponentEnergy {
        let scale = self.point.energy_scale();
        let (core, _) = class_table(shape.class);
        let core = core * self.core_energy_factor();
        let mut split = ComponentEnergy::default();
        for (component, fraction) in Component::CORE_SPLIT {
            split.add(component, Energy::from_pj(core * fraction * scale));
        }
        split.add(
            Component::Imem,
            Energy::from_pj(shape.words as f64 * IMEM_WORD_PJ * scale),
        );
        if shape.dmem {
            split.add(Component::Dmem, Energy::from_pj(DMEM_ACCESS_PJ * scale));
        }
        if shape.imem_data {
            split.add(Component::Imem, Energy::from_pj(IMEM_DATA_PJ * scale));
        }
        split
    }
}

/// The SNAP/LE timing model at a fixed operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapTimingModel {
    point: OperatingPoint,
    bus: BusModel,
}

impl SnapTimingModel {
    /// Model at an operating point.
    pub fn new(point: OperatingPoint) -> SnapTimingModel {
        SnapTimingModel {
            point,
            bus: BusModel::default(),
        }
    }

    /// Select the bus organization (ablation).
    pub fn with_bus(mut self, bus: BusModel) -> SnapTimingModel {
        self.bus = bus;
        self
    }

    /// The operating point this model is evaluated at.
    pub fn operating_point(&self) -> OperatingPoint {
        self.point
    }

    /// One gate delay at this operating point.
    pub fn gate_delay(&self) -> SimDuration {
        SimDuration::from_ps((GATE_DELAY_PS_1V8 * self.point.delay_factor()).round() as u64)
    }

    /// Latency of one executed instruction.
    pub fn instruction_latency(&self, shape: InstrShape) -> SimDuration {
        let (_, base_gd) = class_table(shape.class);
        let base_gd = match self.bus {
            BusModel::Hierarchical => base_gd,
            BusModel::Flat => base_gd.max(FLAT_BUS_BASE_GD),
        };
        let mut gd = base_gd + (shape.words as f64 - 1.0) * EXTRA_WORD_GD;
        if shape.dmem {
            gd += DMEM_GD;
        }
        if shape.imem_data {
            gd += IMEM_DATA_GD;
        }
        let ps = gd * GATE_DELAY_PS_1V8 * self.point.delay_factor();
        SimDuration::from_ps(ps.round() as u64)
    }

    /// The idle→active wake-up latency: eighteen gate delays (paper §4.3:
    /// 2.5 ns at 1.8 V, 9.8 ns at 0.9 V, 21.4 ns at 0.6 V).
    pub fn wakeup_latency(&self) -> SimDuration {
        self.gate_delay() * WAKEUP_GATE_DELAYS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_isa::InstructionClass as C;

    fn shape(class: C) -> InstrShape {
        let words = match class {
            C::ArithImm
            | C::LogicalImm
            | C::Load
            | C::Store
            | C::ImemLoad
            | C::ImemStore
            | C::Branch
            | C::Bitfield => 2,
            _ => 1,
        };
        InstrShape {
            class,
            words,
            dmem: matches!(class, C::Load | C::Store),
            imem_data: matches!(class, C::ImemLoad | C::ImemStore),
        }
    }

    #[test]
    fn all_classes_under_300pj_at_nominal() {
        let m = SnapEnergyModel::new(OperatingPoint::V1_8);
        for class in C::ALL {
            let e = m.instruction_energy(shape(class));
            assert!(e.as_pj() < 300.0, "{class}: {e}");
            assert!(e.as_pj() > 0.0, "{class}: {e}");
        }
    }

    #[test]
    fn class_ordering_matches_fig4() {
        let m = SnapEnergyModel::new(OperatingPoint::V1_8);
        let one_word = m.instruction_energy(shape(C::ArithReg));
        let two_word = m.instruction_energy(shape(C::ArithImm));
        let memory = m.instruction_energy(shape(C::Load));
        assert!(one_word < two_word, "{one_word} !< {two_word}");
        assert!(two_word < memory, "{two_word} !< {memory}");
    }

    #[test]
    fn low_voltage_bands() {
        // Paper: < 75 pJ/ins at 0.6 V, many types < 25 pJ/ins.
        let m = SnapEnergyModel::new(OperatingPoint::V0_6);
        let mut under_25 = 0;
        for class in C::ALL {
            let e = m.instruction_energy(shape(class));
            assert!(e.as_pj() < 75.0, "{class}: {e}");
            if e.as_pj() < 25.0 {
                under_25 += 1;
            }
        }
        assert!(
            under_25 >= 6,
            "expected many classes under 25 pJ, got {under_25}"
        );
    }

    #[test]
    fn memory_share_is_about_half_over_a_handler_mix() {
        // The paper's "about half is memory" holds for the *average*
        // handler instruction (which includes two-word and load/store
        // instructions); a one-word register op alone is about a third.
        let m = SnapEnergyModel::new(OperatingPoint::V1_8);
        let one_word = m.instruction_energy_by_component(InstrShape::simple(C::ArithReg));
        let ratio = one_word.memory_total() / one_word.total();
        assert!(
            (0.25..0.45).contains(&ratio),
            "one-word memory share {ratio}"
        );
        // Representative mix: 40% reg ops, 25% loads/stores, 20%
        // two-word imm, 15% branches.
        let mut mix = crate::breakdown::ComponentEnergy::new();
        let load = InstrShape {
            class: C::Load,
            words: 2,
            dmem: true,
            imem_data: false,
        };
        let imm = InstrShape {
            class: C::ArithImm,
            words: 2,
            dmem: false,
            imem_data: false,
        };
        let br = InstrShape {
            class: C::Branch,
            words: 2,
            dmem: false,
            imem_data: false,
        };
        for _ in 0..40 {
            mix.merge(&m.instruction_energy_by_component(InstrShape::simple(C::ArithReg)));
        }
        for _ in 0..25 {
            mix.merge(&m.instruction_energy_by_component(load));
        }
        for _ in 0..20 {
            mix.merge(&m.instruction_energy_by_component(imm));
        }
        for _ in 0..15 {
            mix.merge(&m.instruction_energy_by_component(br));
        }
        let mix_ratio = mix.memory_total() / mix.total();
        assert!(
            (0.42..0.58).contains(&mix_ratio),
            "mix memory share {mix_ratio}"
        );
    }

    #[test]
    fn component_split_sums_to_total() {
        let m = SnapEnergyModel::new(OperatingPoint::V0_9);
        for class in C::ALL {
            let s = shape(class);
            let split = m.instruction_energy_by_component(s);
            let total = m.instruction_energy(s);
            assert!(
                (split.total().as_pj() - total.as_pj()).abs() < 1e-9,
                "{class}: {} vs {}",
                split.total(),
                total
            );
        }
    }

    #[test]
    fn wakeup_latencies_match_paper() {
        // 2.5 / 9.8 / 21.4 ns at 1.8 / 0.9 / 0.6 V.
        let cases = [
            (OperatingPoint::V1_8, 2.5),
            (OperatingPoint::V0_9, 9.8),
            (OperatingPoint::V0_6, 21.4),
        ];
        for (point, ns) in cases {
            let w = SnapTimingModel::new(point).wakeup_latency();
            assert!((w.as_ns() - ns).abs() < 0.15, "{point}: {w} vs {ns}ns");
        }
    }

    #[test]
    fn single_instruction_rate_near_published_band() {
        // A one-word register op should execute at a few hundred MIPS at
        // 1.8 V (the benchmark *average*, including two-word and memory
        // instructions, is 240 MIPS).
        let t = SnapTimingModel::new(OperatingPoint::V1_8);
        let lat = t.instruction_latency(InstrShape::simple(C::ArithReg));
        let mips = 1e6 / lat.as_ps() as f64;
        assert!((250.0..450.0).contains(&mips), "{mips} MIPS");
    }

    #[test]
    fn delay_scales_with_voltage() {
        let s = InstrShape::simple(C::ArithReg);
        let at = |p| SnapTimingModel::new(p).instruction_latency(s).as_ps() as f64;
        let base = at(OperatingPoint::V1_8);
        assert!((at(OperatingPoint::V0_9) / base - 3.93).abs() < 0.05);
        assert!((at(OperatingPoint::V0_6) / base - 8.57).abs() < 0.05);
    }

    #[test]
    fn energy_scales_with_v_squared() {
        let s = shape(C::Load);
        let at = |p| SnapEnergyModel::new(p).instruction_energy(s).as_pj();
        let base = at(OperatingPoint::V1_8);
        assert!((at(OperatingPoint::V0_9) / base - 0.25).abs() < 1e-9);
        assert!((at(OperatingPoint::V0_6) / base - 1.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_is_configurable() {
        let m = SnapEnergyModel::new(OperatingPoint::V0_6).with_idle_leakage(Power::from_nw(3.0));
        assert!((m.idle_leakage().as_nw() - 3.0).abs() < 1e-12);
    }
}
