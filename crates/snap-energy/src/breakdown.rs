//! Component-level energy attribution.
//!
//! Paper §4.4: within the processor core (excluding memories), 33 % of
//! the energy goes to the datapath (including the data busses), 20 % to
//! instruction fetch, 16 % to decode, 9 % to the memory interface, and
//! 22 % to miscellaneous logic (decoupling buffers, control). The core
//! as a whole is about half of the per-instruction energy; the other
//! half is memory access.

use crate::units::Energy;
use std::fmt;

/// A unit of the processor that energy can be attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Component {
    /// Execution units and the data busses.
    Datapath,
    /// Instruction fetch (including the event-queue head logic).
    Fetch,
    /// Instruction decode.
    Decode,
    /// The core's interface to the memories.
    MemInterface,
    /// Decoupling buffers and miscellaneous control.
    Misc,
    /// Instruction-memory accesses (fetch words + `ilw`/`isw` data).
    Imem,
    /// Data-memory accesses.
    Dmem,
}

impl Component {
    /// All components, in display order.
    pub const ALL: [Component; 7] = [
        Component::Datapath,
        Component::Fetch,
        Component::Decode,
        Component::MemInterface,
        Component::Misc,
        Component::Imem,
        Component::Dmem,
    ];

    /// The paper's §4.4 split of *core* energy across core components.
    pub const CORE_SPLIT: [(Component, f64); 5] = [
        (Component::Datapath, 0.33),
        (Component::Fetch, 0.20),
        (Component::Decode, 0.16),
        (Component::MemInterface, 0.09),
        (Component::Misc, 0.22),
    ];

    /// `true` for the memory components (IMEM/DMEM).
    pub fn is_memory(self) -> bool {
        matches!(self, Component::Imem | Component::Dmem)
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Component::Datapath => "datapath",
            Component::Fetch => "fetch",
            Component::Decode => "decode",
            Component::MemInterface => "mem-interface",
            Component::Misc => "misc",
            Component::Imem => "imem",
            Component::Dmem => "dmem",
        }
    }

    fn ordinal(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Energy attributed per component; an accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ComponentEnergy {
    per: [Energy; 7],
}

impl ComponentEnergy {
    /// An all-zero attribution.
    pub fn new() -> ComponentEnergy {
        ComponentEnergy::default()
    }

    /// Add energy to a component.
    #[inline]
    pub fn add(&mut self, component: Component, energy: Energy) {
        self.per[component.ordinal()] += energy;
    }

    /// Merge another attribution into this one.
    #[inline]
    pub fn merge(&mut self, other: &ComponentEnergy) {
        // Elementwise over the fixed arrays (vectorizes; same sums as
        // per-component indexing).
        for (into, from) in self.per.iter_mut().zip(other.per.iter()) {
            *into += *from;
        }
    }

    /// Energy attributed to one component.
    #[inline]
    pub fn get(&self, component: Component) -> Energy {
        self.per[component.ordinal()]
    }

    /// The raw per-component array, indexed in [`Component::ALL`]
    /// order. Hot accumulation loops use this to keep the seven sums
    /// in registers.
    #[inline]
    pub fn as_array(&self) -> &[Energy; 7] {
        &self.per
    }

    /// Mutable [`ComponentEnergy::as_array`].
    #[inline]
    pub fn as_array_mut(&mut self) -> &mut [Energy; 7] {
        &mut self.per
    }

    /// Total energy across all components.
    pub fn total(&self) -> Energy {
        self.per.iter().copied().sum()
    }

    /// Total energy attributed to memories (IMEM + DMEM).
    pub fn memory_total(&self) -> Energy {
        self.get(Component::Imem) + self.get(Component::Dmem)
    }

    /// Total energy attributed to the core (everything but memories).
    pub fn core_total(&self) -> Energy {
        self.total() - self.memory_total()
    }

    /// Fraction of *core* energy attributed to a core component.
    ///
    /// Returns 0 when no core energy has been recorded.
    pub fn core_fraction(&self, component: Component) -> f64 {
        let core = self.core_total().as_pj();
        if core == 0.0 || component.is_memory() {
            return 0.0;
        }
        self.get(component).as_pj() / core
    }

    /// Iterate `(component, energy)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, Energy)> + '_ {
        Component::ALL.into_iter().map(move |c| (c, self.get(c)))
    }
}

impl fmt::Display for ComponentEnergy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        writeln!(f, "total {total}")?;
        for (c, e) in self.iter() {
            let pct = if total.as_pj() > 0.0 {
                e.as_pj() / total.as_pj() * 100.0
            } else {
                0.0
            };
            writeln!(f, "  {c:<14} {e:>12} ({pct:4.1}%)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_split_sums_to_one() {
        let sum: f64 = Component::CORE_SPLIT.iter().map(|(_, frac)| frac).sum();
        assert!((sum - 1.0).abs() < 1e-12, "{sum}");
    }

    #[test]
    fn accumulation_and_totals() {
        let mut ce = ComponentEnergy::new();
        ce.add(Component::Datapath, Energy::from_pj(33.0));
        ce.add(Component::Fetch, Energy::from_pj(20.0));
        ce.add(Component::Imem, Energy::from_pj(40.0));
        ce.add(Component::Dmem, Energy::from_pj(7.0));
        assert!((ce.total().as_pj() - 100.0).abs() < 1e-12);
        assert!((ce.memory_total().as_pj() - 47.0).abs() < 1e-12);
        assert!((ce.core_total().as_pj() - 53.0).abs() < 1e-12);
        assert!((ce.core_fraction(Component::Datapath) - 33.0 / 53.0).abs() < 1e-12);
        assert_eq!(ce.core_fraction(Component::Imem), 0.0);
    }

    #[test]
    fn merge_adds_pointwise() {
        let mut a = ComponentEnergy::new();
        a.add(Component::Misc, Energy::from_pj(5.0));
        let mut b = ComponentEnergy::new();
        b.add(Component::Misc, Energy::from_pj(7.0));
        b.add(Component::Dmem, Energy::from_pj(1.0));
        a.merge(&b);
        assert!((a.get(Component::Misc).as_pj() - 12.0).abs() < 1e-12);
        assert!((a.get(Component::Dmem).as_pj() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let ce = ComponentEnergy::new();
        assert_eq!(ce.core_fraction(Component::Fetch), 0.0);
        assert_eq!(ce.total(), Energy::ZERO);
    }

    #[test]
    fn display_contains_all_components() {
        let mut ce = ComponentEnergy::new();
        ce.add(Component::Decode, Energy::from_pj(16.0));
        let s = ce.to_string();
        for c in Component::ALL {
            assert!(s.contains(c.label()), "missing {c}");
        }
    }
}
