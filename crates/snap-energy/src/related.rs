//! The static rows of Table 2: related microcontrollers.
//!
//! Literature data quoted by the paper for the processors it compares
//! against. The two SNAP/LE rows are *measured* by the benchmark harness
//! (crate `bench`, binary `table2`) rather than stored here.

/// One comparison row of the paper's Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct RelatedProcessor {
    /// Processor name.
    pub name: &'static str,
    /// Short context note from the paper.
    pub note: &'static str,
    /// `true` for clocked (synchronous) designs.
    pub clocked: bool,
    /// Throughput band in MIPS (min, max).
    pub mips: (f64, f64),
    /// Datapath width in bits.
    pub datapath_bits: u8,
    /// On-chip / directly-attached memory description.
    pub memory: &'static str,
    /// Supply-voltage band in volts (min, max).
    pub voltage: (f64, f64),
    /// Energy per instruction band in picojoules (min, max).
    pub energy_per_ins_pj: (f64, f64),
}

/// The static (literature) rows of Table 2, in the paper's order.
pub fn related_processors() -> Vec<RelatedProcessor> {
    vec![
        RelatedProcessor {
            name: "Atmel Mega128L",
            note: "AVR RISC core used by MICA2 Mote, MEDUSA-II",
            clocked: true,
            mips: (4.0, 4.0),
            datapath_bits: 8,
            memory: "4-8K",
            voltage: (3.0, 3.0),
            energy_per_ins_pj: (1_500.0, 1_500.0),
        },
        RelatedProcessor {
            name: "Intel XScale",
            note: "High end ARM cores, used in Rockwell sensors, Intel Mote",
            clocked: true,
            mips: (200.0, 400.0),
            datapath_bits: 32,
            memory: "16-32MB",
            voltage: (1.3, 1.65),
            energy_per_ins_pj: (890.0, 1_028.0),
        },
        RelatedProcessor {
            name: "DVS Microprocessor",
            note: "Dynamic voltage scaled custom ARM8",
            clocked: true,
            mips: (7.0, 84.0),
            datapath_bits: 32,
            memory: "16KB",
            voltage: (1.8, 3.8),
            energy_per_ins_pj: (540.0, 5_600.0),
        },
        RelatedProcessor {
            name: "CoolRISC",
            note: "XE88 microcontroller",
            clocked: true,
            mips: (1.0, 1.0),
            datapath_bits: 8,
            memory: "22KB",
            voltage: (2.4, 2.4),
            energy_per_ins_pj: (720.0, 720.0),
        },
        RelatedProcessor {
            name: "Lutonium",
            note: "8051 compatible in TSMC 0.18um (asynchronous QDI)",
            clocked: false,
            mips: (200.0, 200.0),
            datapath_bits: 8,
            memory: "8KB",
            voltage: (1.8, 1.8),
            energy_per_ins_pj: (500.0, 500.0),
        },
        RelatedProcessor {
            name: "Aspro-216",
            note: "Custom async microcontroller in STM 0.25um",
            clocked: false,
            mips: (25.0, 140.0),
            datapath_bits: 16,
            memory: "64KB",
            voltage: (1.0, 2.5),
            energy_per_ins_pj: (1_000.0, 3_000.0),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_literature_rows() {
        assert_eq!(related_processors().len(), 6);
    }

    #[test]
    fn snap_at_0v6_beats_every_row_on_energy() {
        // Paper: SNAP/LE at 0.6 V is ≈24 pJ/ins; the cheapest related
        // processor (Lutonium) is 500 pJ/ins. The Atmel is "almost 68x".
        let snap_pj = 24.0;
        for row in related_processors() {
            assert!(
                row.energy_per_ins_pj.0 / snap_pj > 20.0,
                "{} should be >20x SNAP energy",
                row.name
            );
        }
        let atmel = &related_processors()[0];
        let ratio = atmel.energy_per_ins_pj.0 / snap_pj;
        assert!((60.0..70.0).contains(&ratio), "Atmel ratio {ratio}");
    }

    #[test]
    fn rows_have_sane_bands() {
        for row in related_processors() {
            assert!(row.mips.0 <= row.mips.1, "{}", row.name);
            assert!(row.voltage.0 <= row.voltage.1, "{}", row.name);
            assert!(
                row.energy_per_ins_pj.0 <= row.energy_per_ins_pj.1,
                "{}",
                row.name
            );
            assert!(matches!(row.datapath_bits, 8 | 16 | 32), "{}", row.name);
        }
    }

    #[test]
    fn debug_output_names_rows() {
        let dbg = format!("{:?}", related_processors());
        assert!(dbg.contains("Lutonium") && dbg.contains("Aspro-216"));
    }
}
