//! Battery / energy-budget model: finite charge, sleep-floor draw and
//! deterministic exhaustion.
//!
//! The paper's bottom line is node *lifetime*: a SNAP/LE node spends
//! nanowatts asleep while an ATmega-class mote pays tens of microwatts,
//! so the same battery lasts orders of magnitude longer (Table 2,
//! §4.7). This module turns that argument into a simulable budget: a
//! [`BatteryConfig`] describes usable charge and the platform's sleep
//! floor, and the consumption / exhaustion math here is **pure** — a
//! function of totals the simulator already tracks exactly (active
//! energy in pJ, integer sleep picoseconds, words transmitted), never
//! an incrementally accumulated float.
//!
//! ## Why exhaustion is bit-deterministic
//!
//! The network schedulers (`snap-net`) split a node's idle stretches at
//! arbitrary interior instants — lockstep syncs every node to every
//! global event, the wake calendar only at the node's own wake-ups.
//! If battery state were accumulated per window (`charge -= f64 draw`)
//! the result would depend on the split, because float addition is not
//! associative. Instead:
//!
//! * active energy is the core's own total (bit-identical across
//!   execution engines by the tiering invariant);
//! * sleep time is an integer picosecond total (exactly associative —
//!   any window split sums to the same `u64`);
//! * consumption is recomputed from those totals in one fixed
//!   expression, so its `f64` bits at a given instant are identical no
//!   matter how the simulation reached that instant.
//!
//! Consumption is therefore monotone in time while a node sleeps, and
//! "the first picosecond at which consumption reaches capacity" is a
//! well-defined instant. [`BatteryConfig::sleep_ps_to_exhaustion`]
//! finds exactly that instant (binary search over the monotone
//! predicate, not a rounded division), which is what lets `snap-node`
//! kill an exhausted node at the same picosecond under every scheduler.

use crate::units::{Energy, Power};
use dess::SimDuration;

/// A finite energy budget: usable charge plus the platform's sleep
/// floor and optional per-word radio charge.
///
/// All consumption queries take the caller's *totals* — active energy,
/// lifetime sleep picoseconds, lifetime words transmitted — and return
/// pure functions of them (see the module docs for why).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryConfig {
    /// Usable capacity in microamp-hours. Real deployments are in the
    /// hundreds of thousands (a 620 mAh coin cell is 620 000 µAh);
    /// simulation scenarios use micro-scale cells so exhaustion lands
    /// inside a tractable simulated span.
    pub capacity_uah: f64,
    /// Nominal cell voltage, volts.
    pub voltage_v: f64,
    /// Sleep-mode draw in microamps: everything the platform burns
    /// while the core sleeps (leakage, watchdog, timer oscillator).
    pub sleep_ua: f64,
    /// Extra charge per transmitted radio word, pJ (radio front-end
    /// energy, which the core model does not account). Zero disables
    /// the term.
    pub tx_pj_per_word: f64,
}

/// Exhaustion instants beyond ~2⁶² ps (~53 days of simulated time —
/// far past any scenario horizon) are reported as "never": the sim
/// clock is a `u64` of picoseconds and the search must not overflow.
const EXHAUSTION_HORIZON_PS: u64 = 1 << 62;

impl BatteryConfig {
    /// A 620 mAh, 3 V lithium coin cell (CR2450 class) powering a
    /// SNAP/LE node: the sleep floor is the paper's 10 nW leakage
    /// placeholder (~3.3 nA at 3 V).
    pub fn coin_cell_snap() -> BatteryConfig {
        BatteryConfig {
            capacity_uah: 620_000.0,
            voltage_v: 3.0,
            sleep_ua: 0.0033,
            tx_pj_per_word: 0.0,
        }
    }

    /// The same coin cell powering an ATmega128L-class mote: ~25 µA in
    /// its deepest sleep with the watchdog running (datasheet figure
    /// the paper's Table 2 comparison leans on).
    pub fn coin_cell_avr() -> BatteryConfig {
        BatteryConfig {
            capacity_uah: 620_000.0,
            voltage_v: 3.0,
            sleep_ua: 25.0,
            tx_pj_per_word: 0.0,
        }
    }

    /// Usable energy: `capacity × voltage`.
    pub fn capacity(&self) -> Energy {
        // µAh × V → µW·h → J: 1 µAh at 1 V is 3.6 mJ = 3.6e9 pJ.
        Energy::from_pj(self.capacity_uah * self.voltage_v * 3.6e9)
    }

    /// Power drawn while asleep: `sleep current × voltage`.
    pub fn sleep_power(&self) -> Power {
        Power::from_watts(self.sleep_ua * 1e-6 * self.voltage_v)
    }

    /// Total charge consumed, given the node's lifetime totals. The
    /// single place the consumption expression lives — every caller
    /// (death checks, metrics, projections) goes through it, which is
    /// what makes the `f64` bits scheduler-invariant.
    pub fn consumed(&self, active: Energy, sleep_ps: u64, words_sent: u64) -> Energy {
        // 1 W · 1 ps = 1 pJ, so the sleep term is watts × ps directly.
        let sleep_pj = self.sleep_power().as_watts() * sleep_ps as f64;
        let tx_pj = self.tx_pj_per_word * words_sent as f64;
        Energy::from_pj(active.as_pj() + sleep_pj + tx_pj)
    }

    /// Charge left in the budget (clamped at zero).
    pub fn remaining(&self, active: Energy, sleep_ps: u64, words_sent: u64) -> Energy {
        let left = self.capacity().as_pj() - self.consumed(active, sleep_ps, words_sent).as_pj();
        Energy::from_pj(left.max(0.0))
    }

    /// Has the budget run out at these totals?
    pub fn is_exhausted(&self, active: Energy, sleep_ps: u64, words_sent: u64) -> bool {
        self.consumed(active, sleep_ps, words_sent).as_pj() >= self.capacity().as_pj()
    }

    /// The *exact* number of additional sleep picoseconds after which
    /// the budget is exhausted, holding active energy and the word
    /// count fixed: the minimal `extra` with
    /// `is_exhausted(active, sleep_ps + extra, words_sent)`.
    ///
    /// Returns `Some(0)` when already exhausted and `None` when the
    /// instant lies beyond the simulation horizon (no sleep draw, or a
    /// real-scale battery that would outlive the `u64` clock).
    ///
    /// A rounded division would land within a few ULP-ps of the true
    /// boundary but not *on* it; since different schedulers evaluate at
    /// different instants, that error would move the death instant.
    /// Binary search over the monotone predicate finds the first
    /// exhausted picosecond exactly.
    pub fn sleep_ps_to_exhaustion(
        &self,
        active: Energy,
        sleep_ps: u64,
        words_sent: u64,
    ) -> Option<u64> {
        let exhausted = |extra: u64| -> bool {
            match sleep_ps.checked_add(extra) {
                Some(total) => self.is_exhausted(active, total, words_sent),
                None => true, // past the u64 clock: unreachable anyway
            }
        };
        if exhausted(0) {
            return Some(0);
        }
        let rate = self.sleep_power().as_watts(); // pJ per ps
        if rate <= 0.0 {
            return None;
        }
        let margin = self.capacity().as_pj() - self.consumed(active, sleep_ps, words_sent).as_pj();
        let guess = margin / rate;
        if !guess.is_finite() || guess >= EXHAUSTION_HORIZON_PS as f64 {
            return None;
        }
        // Bracket the boundary around the guess, then binary-search the
        // first `extra` where the predicate flips. The guess is within
        // ULP-scale relative error, so widening terminates immediately
        // in practice; the loops are only for rigor.
        let mut hi = (guess as u64).saturating_add(2);
        while !exhausted(hi) {
            if hi >= EXHAUSTION_HORIZON_PS {
                return None;
            }
            hi = hi.saturating_mul(2);
        }
        let mut lo = 0u64; // exhausted(0) is false, checked above
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if exhausted(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }

    /// Project total node lifetime in seconds from the average power
    /// observed so far: `capacity / (consumed / elapsed)`. `None` until
    /// anything has been consumed over a nonzero span.
    ///
    /// This is the duty-cycle extrapolation the metrics report carries:
    /// if the observed window is representative, a full battery lasts
    /// this long.
    pub fn projected_lifetime_s(&self, consumed: Energy, elapsed: SimDuration) -> Option<f64> {
        if elapsed.is_zero() || consumed.as_pj() <= 0.0 {
            return None;
        }
        let avg_w = consumed.as_pj() / elapsed.as_ps() as f64; // pJ/ps = W
        Some(self.capacity().as_pj() / avg_w / 1e12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BatteryConfig {
        // 1 µAh at 1 V = 3.6e9 pJ capacity with a 1 µW sleep draw
        // (= 1e-6 pJ/ps): exhaustion from full in 3.6e15 ps = 1 h.
        BatteryConfig {
            capacity_uah: 1.0,
            voltage_v: 1.0,
            sleep_ua: 1.0,
            tx_pj_per_word: 0.0,
        }
    }

    #[test]
    fn capacity_and_sleep_power_units() {
        let b = BatteryConfig::coin_cell_snap();
        // 620 mAh × 3 V = 6.7 kJ.
        assert!((b.capacity().as_pj() / 1e12 - 6_696.0).abs() < 1.0);
        assert!((b.sleep_power().as_nw() - 9.9).abs() < 0.1);
    }

    #[test]
    fn consumption_is_a_pure_function_of_totals() {
        let b = tiny();
        let a = Energy::from_pj(1234.5);
        // Same totals, same bits — regardless of how a simulation
        // would have split the sleep stretch.
        let c1 = b.consumed(a, 1_000_000, 7).as_pj();
        let c2 = b.consumed(a, 1_000_000, 7).as_pj();
        assert_eq!(c1.to_bits(), c2.to_bits());
        // Monotone in sleep time.
        assert!(b.consumed(a, 2_000_000, 7).as_pj() > c1);
    }

    #[test]
    fn exhaustion_boundary_is_exact() {
        let b = tiny();
        for active_pj in [0.0, 17.3, 3.5e6] {
            let active = Energy::from_pj(active_pj);
            match b.sleep_ps_to_exhaustion(active, 0, 0) {
                Some(extra) => {
                    assert!(b.is_exhausted(active, extra, 0), "boundary not exhausted");
                    assert!(
                        extra == 0 || !b.is_exhausted(active, extra - 1, 0),
                        "boundary not minimal"
                    );
                }
                None => panic!("tiny battery must exhaust"),
            }
        }
    }

    #[test]
    fn exhaustion_instant_is_split_invariant() {
        // Evaluating the death search from different interior instants
        // of the same sleep stretch lands on the same absolute instant.
        let b = tiny();
        let active = Energy::from_pj(42.0);
        let from_start = b.sleep_ps_to_exhaustion(active, 0, 0).unwrap();
        for interior in [1u64, 999, 1_000_000, from_start - 1] {
            let rest = b.sleep_ps_to_exhaustion(active, interior, 0).unwrap();
            assert_eq!(
                interior + rest,
                from_start,
                "death moved when evaluated from interior instant {interior}"
            );
        }
    }

    #[test]
    fn real_batteries_never_exhaust_within_the_horizon() {
        let b = BatteryConfig::coin_cell_snap();
        // Decades of sleep at 10 nW: beyond the u64 clock, so "never".
        assert_eq!(b.sleep_ps_to_exhaustion(Energy::ZERO, 0, 0), None);
        // No sleep draw at all: never exhausts on sleep alone.
        let mains = BatteryConfig {
            sleep_ua: 0.0,
            ..tiny()
        };
        assert_eq!(mains.sleep_ps_to_exhaustion(Energy::ZERO, 0, 0), None);
    }

    #[test]
    fn tx_charge_counts_against_the_budget() {
        let b = BatteryConfig {
            tx_pj_per_word: 100.0,
            ..tiny()
        };
        let no_tx = b.consumed(Energy::ZERO, 0, 0).as_pj();
        let with_tx = b.consumed(Energy::ZERO, 0, 10).as_pj();
        assert_eq!(with_tx - no_tx, 1_000.0);
    }

    #[test]
    fn lifetime_projection_matches_average_power() {
        let b = tiny();
        // 3.6e5 pJ over 0.1 s → 3.6e-6 W average → 3.6e9 pJ lasts 1000 s.
        let s = b
            .projected_lifetime_s(Energy::from_pj(3.6e5), SimDuration::from_ms(100))
            .unwrap();
        assert!((s - 1_000.0).abs() < 1e-6, "{s}");
        assert_eq!(
            b.projected_lifetime_s(Energy::ZERO, SimDuration::from_ms(1)),
            None
        );
    }
}
