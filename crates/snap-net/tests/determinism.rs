//! Parallel/sequential equivalence: the worker pool must be invisible.
//!
//! The same 10-node scenario runs twice — once with the parallel
//! threshold forced to 1 (every window on the pool) and once forced
//! above the node count (pure sequential path). Traces and per-node
//! energy totals must be bit-identical; anything less means the pool
//! reordered node outputs or perturbed the accounting.

use dess::{SimDuration, SimTime};
use snap_apps::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use snap_apps::prelude::install_handler;
use snap_net::{NetworkSim, Position, Stimulus};

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_ms(n)
}

/// Ten nodes on a 5×2 grid, each sending to its successor on a
/// staggered sensor interrupt — enough concurrent MAC traffic to
/// exercise deliveries, collisions and backoff on both paths.
fn build(parallel_threshold: usize) -> NetworkSim {
    let mut sim = NetworkSim::new(12.0);
    sim.set_parallel_threshold(parallel_threshold);
    for i in 0u8..10 {
        let dst = if i == 9 { 1 } else { i + 2 };
        let extra = install_handler("EV_IRQ", "app_send_irq");
        let app = format!("{}{}", send_on_irq_app(dst), RX_DISPATCH_STUB);
        let program = mac_program(i + 1, &extra, &app).unwrap();
        let (col, row) = (f64::from(i % 5), f64::from(i / 5));
        let id = sim.add_node(&program, Position::new(col * 8.0, row * 8.0));
        sim.schedule(
            id,
            SimTime::ZERO + SimDuration::from_us(1_000 + 900 * u64::from(i)),
            Stimulus::SensorIrq,
        );
    }
    sim
}

#[test]
fn parallel_and_sequential_runs_are_bit_identical() {
    let mut parallel = build(1); // every window goes through the pool
    let mut sequential = build(100); // node count never reaches this
    parallel.run_until(ms(40)).unwrap();
    sequential.run_until(ms(40)).unwrap();

    // The scenario must actually do something, or the test is vacuous.
    assert!(parallel.channel().deliveries() > 0, "no traffic delivered");

    assert_eq!(parallel.trace().events(), sequential.trace().events());
    assert_eq!(
        parallel.channel().deliveries(),
        sequential.channel().deliveries()
    );
    assert_eq!(
        parallel.channel().collisions(),
        sequential.channel().collisions()
    );
    for i in 0u32..10 {
        let id = snap_node::NodeId(i + 1);
        let (p, s) = (
            parallel.node(id).cpu().stats(),
            sequential.node(id).cpu().stats(),
        );
        assert_eq!(
            p.instructions,
            s.instructions,
            "node {} instruction count",
            i + 1
        );
        assert_eq!(
            p.energy.as_pj().to_bits(),
            s.energy.as_pj().to_bits(),
            "node {} energy not bit-identical",
            i + 1
        );
        assert_eq!(p.busy_time, s.busy_time, "node {} busy time", i + 1);
    }
}
