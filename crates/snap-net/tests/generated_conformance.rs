//! Generated multi-node workloads through scheduler equivalence.
//!
//! `snap-smith`'s randomized handler programs exercise corners the
//! hand-written apps never reach — queue-overflow storms, `isw`
//! self-modification, carry-chain arithmetic inside handlers, radio
//! commands issued at odd moments. Here a small mesh of nodes each
//! runs a *different* generated program while exchanging real radio
//! traffic, and the lockstep and event-driven schedulers (sequential
//! and parallel) must observe bit-identical universes: full trace,
//! channel counters, and every node's registers, instruction count and
//! energy bit pattern.

use dess::{SimDuration, SimTime};
use snap_isa::Reg;
use snap_net::{NetworkSim, Position, Scheduler, Stimulus};
use snap_node::NodeId;
use snap_smith::gen::generate;

/// A triangle of generated nodes close enough to hear each other.
fn build(seeds: &[u64; 3], loss: f64, scheduler: Scheduler, threshold: usize) -> NetworkSim {
    let mut sim = NetworkSim::new(12.0);
    sim.set_scheduler(scheduler);
    sim.set_parallel_threshold(threshold);
    if loss > 0.0 {
        sim.set_loss(loss, 0xD1CE);
    }
    let positions = [
        Position::new(0.0, 0.0),
        Position::new(8.0, 0.0),
        Position::new(4.0, 6.0),
    ];
    for (i, (&seed, pos)) in seeds.iter().zip(positions).enumerate() {
        let case = generate(seed);
        let program = snap_asm::assemble(&case.source).expect("generated programs assemble");
        let id = sim.add_node(&program, pos);
        // Staggered sensor interrupts keep handlers firing even when a
        // node's own timers go quiet.
        for k in 0..4u64 {
            sim.schedule(
                id,
                SimTime::ZERO + SimDuration::from_us(400 + 900 * k + 130 * i as u64),
                Stimulus::SensorIrq,
            );
        }
    }
    sim
}

#[derive(Debug, PartialEq)]
struct NodeObserved {
    instructions: u64,
    energy_bits: u64,
    busy_ps: u64,
    sleep_ps: u64,
    clock_ps: u64,
    regs: [u16; 15],
    handlers: u64,
}

#[derive(Debug, PartialEq)]
struct Observed {
    trace: Vec<snap_net::TraceEvent>,
    deliveries: u64,
    collisions: u64,
    faded: u64,
    now_ps: u64,
    per_node: Vec<NodeObserved>,
}

fn run(seeds: &[u64; 3], loss: f64, scheduler: Scheduler, threshold: usize) -> Observed {
    let mut sim = build(seeds, loss, scheduler, threshold);
    sim.run_until(SimTime::ZERO + SimDuration::from_ms(8))
        .unwrap();
    let per_node = (1..=3u32)
        .map(|n| {
            let node = sim.node(NodeId(n));
            let stats = node.cpu().stats();
            let mut regs = [0u16; 15];
            for (i, slot) in regs.iter_mut().enumerate() {
                *slot = node.cpu().regs().read(Reg::ALL[i]);
            }
            NodeObserved {
                instructions: stats.instructions,
                energy_bits: stats.energy.as_pj().to_bits(),
                busy_ps: stats.busy_time.as_ps(),
                sleep_ps: stats.sleep_time.as_ps(),
                clock_ps: node.now().as_ps(),
                regs,
                handlers: stats.handlers_dispatched,
            }
        })
        .collect();
    Observed {
        trace: sim.trace().events().to_vec(),
        deliveries: sim.channel().deliveries(),
        collisions: sim.channel().collisions(),
        faded: sim.channel().faded(),
        now_ps: sim.now().as_ps(),
        per_node,
    }
}

#[test]
fn generated_meshes_are_scheduler_invariant() {
    let scenarios: [([u64; 3], f64); 3] = [([5, 8, 9], 0.0), ([1, 4, 6], 0.10), ([2, 8, 9], 0.35)];
    for (seeds, loss) in scenarios {
        let reference = run(&seeds, loss, Scheduler::Lockstep, 100);
        let total: u64 = reference.per_node.iter().map(|n| n.instructions).sum();
        assert!(
            total > 1_000,
            "seeds {seeds:?}: vacuous scenario, only {total} instructions"
        );
        let configs = [
            (Scheduler::Lockstep, 1usize, "lockstep/parallel"),
            (Scheduler::EventDriven, 100, "event-driven/sequential"),
            (Scheduler::EventDriven, 1, "event-driven/parallel"),
        ];
        for (scheduler, threshold, label) in configs {
            let got = run(&seeds, loss, scheduler, threshold);
            assert_eq!(
                got, reference,
                "seeds {seeds:?} loss {loss}: diverged under {label}"
            );
        }
    }
}
