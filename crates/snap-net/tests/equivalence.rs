//! Scheduler equivalence: the wake calendar must be invisible.
//!
//! The event-driven scheduler skips sleeping nodes and fast-forwards
//! their clocks lazily; the lockstep scheduler advances every node
//! every round. If the wake calendar ever disagrees with what a full
//! `next_activity` scan would return — a missed re-key after a timer
//! arm, a delivery posted to a stale clock — the two schedulers pick
//! different window boundaries and their traces diverge. This property
//! test throws randomized mixed workloads (periodic timers, CSMA
//! traffic under random loss, staggered sensor interrupts) at all four
//! scheduler × parallel-threshold combinations and requires
//! bit-identical results: the full trace, channel counters, and every
//! node's instruction count, energy (to the bit), busy/sleep time and
//! architectural registers.

use dess::{SimDuration, SimTime};
use proptest::prelude::*;
use snap_apps::blink::blink_program;
use snap_apps::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use snap_apps::prelude::install_handler;
use snap_isa::Reg;
use snap_net::{NetworkSim, Position, Scheduler, Stimulus};
use snap_node::NodeId;

/// One randomized scenario: `mac_nodes` CSMA senders in a ring on a
/// grid, `blink_nodes` timer-periodic nodes (pure timer load, no
/// radio), random per-word loss and staggered sensor interrupts.
#[derive(Debug, Clone)]
struct Scenario {
    mac_nodes: u8,
    blink_nodes: u8,
    loss_ppm: u32,
    loss_seed: u64,
    stagger_us: u64,
    extra_irqs: Vec<(u8, u64)>,
    run_ms: u64,
}

fn build(s: &Scenario, scheduler: Scheduler, threshold: usize, shards: usize) -> NetworkSim {
    let mut sim = NetworkSim::new(12.0);
    sim.set_scheduler(scheduler);
    sim.set_parallel_threshold(threshold);
    sim.set_shards(shards);
    if s.loss_ppm > 0 {
        sim.set_loss(f64::from(s.loss_ppm) / 1_000_000.0, s.loss_seed);
    }
    for i in 0..s.mac_nodes {
        let dst = if i + 1 == s.mac_nodes { 1 } else { i + 2 };
        let extra = install_handler("EV_IRQ", "app_send_irq");
        let app = format!("{}{}", send_on_irq_app(dst), RX_DISPATCH_STUB);
        let program = mac_program(i + 1, &extra, &app).unwrap();
        let (col, row) = (f64::from(i % 5), f64::from(i / 5));
        let id = sim.add_node(&program, Position::new(col * 8.0, row * 8.0));
        sim.schedule(
            id,
            SimTime::ZERO + SimDuration::from_us(1_000 + s.stagger_us * u64::from(i)),
            Stimulus::SensorIrq,
        );
    }
    // Timer-periodic nodes parked far away: they exercise the wake
    // calendar's timer path (sleep, periodic expiry, re-arm) without
    // joining the radio traffic.
    for i in 0..s.blink_nodes {
        sim.add_node(
            &blink_program().unwrap(),
            Position::new(1_000.0 + f64::from(i) * 100.0, 0.0),
        );
    }
    for &(node, at_us) in &s.extra_irqs {
        let target = NodeId(u32::from(node % s.mac_nodes) + 1);
        sim.schedule(
            target,
            SimTime::ZERO + SimDuration::from_us(at_us),
            Stimulus::SensorIrq,
        );
    }
    sim
}

/// Everything observable about a finished run, collapsed to comparable
/// (bit-exact) form.
#[derive(Debug, PartialEq)]
struct Observed {
    trace: Vec<snap_net::TraceEvent>,
    deliveries: u64,
    collisions: u64,
    faded: u64,
    now_ps: u64,
    per_node: Vec<NodeObserved>,
}

#[derive(Debug, PartialEq)]
struct NodeObserved {
    instructions: u64,
    energy_bits: u64,
    busy_ps: u64,
    sleep_ps: u64,
    clock_ps: u64,
    regs: [u16; 15],
    handlers: u64,
}

fn run(s: &Scenario, scheduler: Scheduler, threshold: usize, shards: usize) -> Observed {
    let mut sim = build(s, scheduler, threshold, shards);
    sim.run_until(SimTime::ZERO + SimDuration::from_ms(s.run_ms))
        .unwrap();
    observe(&sim, u32::from(s.mac_nodes) + u32::from(s.blink_nodes))
}

fn observe(sim: &NetworkSim, nodes: u32) -> Observed {
    let per_node = (1..=nodes)
        .map(|n| {
            let node = sim.node(NodeId(n));
            let stats = node.cpu().stats();
            let mut regs = [0u16; 15];
            for (i, slot) in regs.iter_mut().enumerate() {
                *slot = node.cpu().regs().read(Reg::ALL[i]);
            }
            NodeObserved {
                instructions: stats.instructions,
                energy_bits: stats.energy.as_pj().to_bits(),
                busy_ps: stats.busy_time.as_ps(),
                sleep_ps: stats.sleep_time.as_ps(),
                clock_ps: node.now().as_ps(),
                regs,
                handlers: stats.handlers_dispatched,
            }
        })
        .collect();
    Observed {
        trace: sim.trace().events().to_vec(),
        deliveries: sim.channel().deliveries(),
        collisions: sim.channel().collisions(),
        faded: sim.channel().faded(),
        now_ps: sim.now().as_ps(),
        per_node,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// All four scheduler × threshold combinations observe the same
    /// universe, bit for bit.
    #[test]
    fn schedulers_are_observationally_equivalent(
        mac_nodes in 3u8..9,
        blink_nodes in 0u8..3,
        loss_ppm in prop::sample::select(vec![0u32, 20_000, 150_000]),
        loss_seed in 1u64..1_000,
        stagger_us in 300u64..1_500,
        extra_irqs in prop::collection::vec((0u8..8, 2_000u64..30_000), 0..4),
        run_ms in 20u64..45,
    ) {
        let s = Scenario {
            mac_nodes,
            blink_nodes,
            loss_ppm,
            loss_seed,
            stagger_us,
            extra_irqs,
            run_ms,
        };
        // Lockstep sequential is the reference the others must hit.
        let reference = run(&s, Scheduler::Lockstep, 100, 1);
        prop_assert!(
            !reference.trace.is_empty(),
            "vacuous scenario: no traffic at all"
        );
        let configs = [
            (Scheduler::Lockstep, 1usize, 1usize, "lockstep/parallel"),
            (Scheduler::EventDriven, 100, 1, "event-driven/sequential"),
            (Scheduler::EventDriven, 1, 1, "event-driven/parallel"),
            (Scheduler::Sharded, 100, 1, "sharded/1"),
            (Scheduler::Sharded, 100, 2, "sharded/2"),
            (Scheduler::Sharded, 100, 4, "sharded/4"),
            (Scheduler::Sharded, 100, 8, "sharded/8"),
        ];
        for (scheduler, threshold, shards, label) in configs {
            let got = run(&s, scheduler, threshold, shards);
            prop_assert_eq!(
                &got.trace, &reference.trace,
                "trace diverged under {}", label
            );
            prop_assert_eq!(&got, &reference, "state diverged under {}", label);
        }
    }

    /// Sharding is invisible at scale: on a randomized dense grid (64
    /// to ~500 nodes) with CSMA traffic spanning the whole width — so
    /// transmissions routinely cross shard boundaries — every shard
    /// count observes the universe the sequential event-driven
    /// scheduler does, bit for bit.
    #[test]
    fn sharded_grid_matches_sequential(
        side in 8usize..23,
        mac_nodes in 4u8..9,
        loss_ppm in prop::sample::select(vec![0u32, 150_000]),
        loss_seed in 1u64..1_000,
        stagger_us in 300u64..1_200,
        run_ms in 6u64..14,
    ) {
        let build_grid = |scheduler: Scheduler, shards: usize| {
            let mut sim = NetworkSim::new(12.0);
            sim.set_scheduler(scheduler);
            sim.set_shards(shards);
            if loss_ppm > 0 {
                sim.set_loss(f64::from(loss_ppm) / 1_000_000.0, loss_seed);
            }
            // A CSMA ring strung along row 0 of the grid: neighbours
            // are 8 m apart (in range), and with shard cells sorted
            // spatially the ring spans several shards.
            for i in 0..mac_nodes {
                let dst = if i + 1 == mac_nodes { 1 } else { i + 2 };
                let extra = install_handler("EV_IRQ", "app_send_irq");
                let app = format!("{}{}", send_on_irq_app(dst), RX_DISPATCH_STUB);
                let program = mac_program(i + 1, &extra, &app).unwrap();
                let id = sim.add_node(
                    &program,
                    Position::new(f64::from(i) * 8.0, 0.0),
                );
                sim.schedule(
                    id,
                    SimTime::ZERO
                        + SimDuration::from_us(1_000 + stagger_us * u64::from(i)),
                    Stimulus::SensorIrq,
                );
            }
            // The rest of the grid is timer-periodic filler: each node
            // wakes on its own schedule, exercising the per-shard wake
            // calendars without adding radio traffic.
            let filler = side * side - usize::from(mac_nodes);
            let blink = blink_program().unwrap();
            sim.add_nodes_from(
                &blink,
                snap_core::CoreConfig::default(),
                (0..filler).map(|i| {
                    let slot = i + usize::from(mac_nodes);
                    Position::new(
                        (slot % side) as f64 * 8.0,
                        (slot / side) as f64 * 8.0,
                    )
                }),
            );
            sim
        };
        let nodes = (side * side) as u32;
        let horizon = SimTime::ZERO + SimDuration::from_ms(run_ms);
        let mut reference_sim = build_grid(Scheduler::EventDriven, 1);
        reference_sim.run_until(horizon).unwrap();
        let reference = observe(&reference_sim, nodes);
        prop_assert!(!reference.trace.is_empty(), "vacuous grid scenario");
        for shards in [1usize, 2, 4, 8] {
            let mut sim = build_grid(Scheduler::Sharded, shards);
            sim.run_until(horizon).unwrap();
            let got = observe(&sim, nodes);
            prop_assert_eq!(
                &got.trace, &reference.trace,
                "trace diverged at {} shards", shards
            );
            prop_assert_eq!(&got, &reference, "state diverged at {} shards", shards);
        }
    }
}

/// The fade RNG is drawn by the coordinator in delivery order, so the
/// loss/fade sequence must not depend on how the fleet is sharded:
/// with 30% word loss the faded/delivered/collided counters and the
/// full trace are identical at every shard count.
#[test]
fn fade_sequence_is_independent_of_shard_count() {
    let s = Scenario {
        mac_nodes: 7,
        blink_nodes: 2,
        loss_ppm: 300_000,
        loss_seed: 42,
        stagger_us: 500,
        extra_irqs: vec![(2, 9_000), (5, 15_000), (0, 21_000)],
        run_ms: 35,
    };
    let reference = run(&s, Scheduler::EventDriven, 100, 1);
    assert!(reference.faded > 0, "scenario never exercised the fade RNG");
    for shards in [1usize, 2, 3, 4, 8] {
        let got = run(&s, Scheduler::Sharded, 100, shards);
        assert_eq!(
            (got.faded, got.deliveries, got.collisions),
            (reference.faded, reference.deliveries, reference.collisions),
            "channel counters diverged at {shards} shards"
        );
        assert_eq!(got, reference, "state diverged at {shards} shards");
    }
}

/// A long quiet tail after the traffic dies down: the event-driven
/// scheduler skips all of it, the lockstep one grinds through — both
/// must land on identical clocks, sleep totals and energy.
#[test]
fn quiet_tail_is_fast_forwarded_identically() {
    let s = Scenario {
        mac_nodes: 5,
        blink_nodes: 1,
        loss_ppm: 0,
        loss_seed: 1,
        stagger_us: 700,
        extra_irqs: vec![],
        run_ms: 120, // traffic is over in ~10 ms; 110 ms of near-silence
    };
    let reference = run(&s, Scheduler::Lockstep, 100, 1);
    let event_driven = run(&s, Scheduler::EventDriven, 100, 1);
    assert_eq!(event_driven, reference);
    let sharded = run(&s, Scheduler::Sharded, 100, 4);
    assert_eq!(sharded, reference);
}
