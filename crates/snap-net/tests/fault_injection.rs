//! Fault injection: the MAC under a lossy channel.
//!
//! A two-node MAC link (node 1 sends on every sensor interrupt, node 2
//! receives) runs under `Channel::set_loss` at 0%, 10% and 50% word
//! loss. The assertions pin the MAC's loss-accounting contract:
//!
//! * a lossless channel delivers every packet with zero drop/timeout
//!   counters;
//! * under loss, every transmitted packet is accounted for at the
//!   receiver — received + checksum drops + frame timeouts add up,
//!   and nothing is double-counted;
//! * loss strictly reduces (or holds) successful receptions, and the
//!   channel's own faded-word counter moves in the opposite direction;
//! * for a fixed loss seed the whole run is bit-deterministic: two
//!   independent builds of the same scenario land on identical counters and
//!   traces.

use dess::{SimDuration, SimTime};
use snap_apps::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use snap_apps::prelude::install_handler;
use snap_net::{NetworkSim, Position, Scheduler, Stimulus};
use snap_node::NodeId;

const SENDS: u64 = 12;

fn build(loss: f64, seed: u64) -> NetworkSim {
    let mut sim = NetworkSim::new(12.0);
    sim.set_scheduler(Scheduler::EventDriven);
    if loss > 0.0 {
        sim.set_loss(loss, seed);
    }
    let extra = install_handler("EV_IRQ", "app_send_irq");
    for id in 1..=2u8 {
        let app = format!("{}{}", send_on_irq_app(3 - id), RX_DISPATCH_STUB);
        let program = mac_program(id, &extra, &app).unwrap();
        sim.add_node(&program, Position::new(f64::from(id) * 4.0, 0.0));
    }
    // Node 1 fires a send every 4 ms (a 5-word packet occupies the air ~4.2 ms at 19.2 kbps).
    for k in 0..SENDS {
        sim.schedule(
            NodeId(1),
            SimTime::ZERO + SimDuration::from_us(1_000 + 6_000 * k),
            Stimulus::SensorIrq,
        );
    }
    sim
}

#[derive(Debug, PartialEq)]
struct MacCounters {
    tx_count: u64,
    rx_drops: u64,
    rx_tmo: u64,
    deliveries: u64,
    faded: u64,
    trace_len: usize,
}

fn run(loss: f64, seed: u64) -> MacCounters {
    let mut sim = build(loss, seed);
    sim.run_until(SimTime::ZERO + SimDuration::from_ms(90))
        .unwrap();
    // Symbols are assembly-time: re-derive them from a fresh assembly
    // of the same program each node was built with.
    let read = |node: u32, sym: &str| -> u64 {
        let extra = install_handler("EV_IRQ", "app_send_irq");
        let app = format!("{}{}", send_on_irq_app(3 - node as u8), RX_DISPATCH_STUB);
        let addr = mac_program(node as u8, &extra, &app)
            .unwrap()
            .symbol(sym)
            .expect("mac symbol");
        u64::from(sim.node(NodeId(node)).cpu().dmem().read(addr))
    };
    MacCounters {
        tx_count: read(1, "mac_tx_count"),
        rx_drops: read(2, "mac_rx_drops"),
        rx_tmo: read(2, "mac_rx_tmo"),
        deliveries: sim.channel().deliveries(),
        faded: sim.channel().faded(),
        trace_len: sim.trace().events().len(),
    }
}

#[test]
fn lossless_link_delivers_everything() {
    let c = run(0.0, 1);
    assert_eq!(c.tx_count, SENDS, "every IRQ send must complete");
    assert_eq!(c.rx_drops, 0, "no checksum failures without loss");
    assert_eq!(c.rx_tmo, 0, "no frame timeouts without loss");
    assert_eq!(c.faded, 0);
    assert!(c.deliveries > 0);
}

#[test]
fn loss_is_accounted_not_absorbed() {
    let clean = run(0.0, 7);
    for loss in [0.10, 0.50] {
        let c = run(loss, 7);
        assert_eq!(c.tx_count, SENDS, "loss {loss}: sender is unaffected");
        assert!(
            c.faded > 0,
            "loss {loss}: the channel must actually drop words"
        );
        assert!(
            c.deliveries < clean.deliveries,
            "loss {loss}: deliveries must shrink ({} vs clean {})",
            c.deliveries,
            clean.deliveries
        );
        assert!(
            c.rx_drops + c.rx_tmo > 0,
            "loss {loss}: the receiver must notice missing words \
             (drops {}, timeouts {})",
            c.rx_drops,
            c.rx_tmo
        );
        // Every accounted failure needs evidence on the air: a
        // checksum drop consumes a full frame and a resync timeout
        // needs at least the header word, so failures can never
        // outnumber delivered words.
        assert!(
            c.rx_drops + c.rx_tmo <= c.deliveries,
            "loss {loss}: more failures ({} + {}) than delivered words ({})",
            c.rx_drops,
            c.rx_tmo,
            c.deliveries
        );
    }
}

#[test]
fn lossy_runs_are_deterministic_for_a_fixed_seed() {
    for (loss, seed) in [(0.10, 42), (0.50, 42), (0.50, 43)] {
        let a = run(loss, seed);
        let b = run(loss, seed);
        assert_eq!(a, b, "loss {loss} seed {seed}: rerun diverged");
    }
    // Different seeds should (for 50% loss, overwhelmingly) fade a
    // different set of words; equality here would suggest the seed is
    // ignored.
    let a = run(0.50, 42);
    let b = run(0.50, 43);
    assert_ne!(
        (a.faded, a.trace_len),
        (b.faded, b.trace_len),
        "different loss seeds produced identical fades"
    );
}
