//! Checkpoint equivalence: snapshots must be invisible.
//!
//! The defining property of `snap-snapshot`: for any simulation `S`
//! and times `T1 < T2`, running `S` straight to `T2` is bit-identical
//! to running to `T1`, serializing to bytes, restoring a fresh fleet
//! from those bytes, and running that to `T2` — same trace, same
//! channel counters, same event order, same registers, same energy
//! `f64` bits on every node. The property test exercises the full
//! engine × scheduler matrix ({Interp, Fused, Aot} × {Lockstep,
//! EventDriven, Sharded}) with randomized CSMA traffic, random
//! per-word loss (so the fade RNG state must survive the round trip),
//! timer-periodic background nodes and mid-run sensor interrupts, with
//! the snapshot instant drawn at random — including instants with
//! words mid-air and sensor replies pending.

use dess::{SimDuration, SimTime};
use proptest::prelude::*;
use snap_apps::blink::blink_program;
use snap_apps::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use snap_apps::prelude::install_handler;
use snap_core::{CoreConfig, Engine};
use snap_isa::Reg;
use snap_net::{NetworkSim, Position, Scheduler, Stimulus};
use snap_node::NodeId;
use snap_snapshot::Snapshot;

#[derive(Debug, Clone)]
struct Scenario {
    mac_nodes: u8,
    blink_nodes: u8,
    loss_ppm: u32,
    loss_seed: u64,
    stagger_us: u64,
    extra_irqs: Vec<(u8, u64)>,
    snap_at_us: u64,
    run_to_us: u64,
}

fn build(s: &Scenario, engine: Engine, scheduler: Scheduler) -> NetworkSim {
    let core = CoreConfig {
        engine,
        ..CoreConfig::default()
    };
    let mut sim = NetworkSim::new(12.0);
    sim.set_scheduler(scheduler);
    sim.set_shards(3);
    if s.loss_ppm > 0 {
        sim.set_loss(f64::from(s.loss_ppm) / 1_000_000.0, s.loss_seed);
    }
    for i in 0..s.mac_nodes {
        let dst = if i + 1 == s.mac_nodes { 1 } else { i + 2 };
        let extra = install_handler("EV_IRQ", "app_send_irq");
        let app = format!("{}{}", send_on_irq_app(dst), RX_DISPATCH_STUB);
        let program = mac_program(i + 1, &extra, &app).unwrap();
        let (col, row) = (f64::from(i % 5), f64::from(i / 5));
        let id = sim.add_node_with_core(&program, Position::new(col * 8.0, row * 8.0), core);
        sim.schedule(
            id,
            SimTime::ZERO + SimDuration::from_us(1_000 + s.stagger_us * u64::from(i)),
            Stimulus::SensorIrq,
        );
    }
    for i in 0..s.blink_nodes {
        sim.add_node_with_core(
            &blink_program().unwrap(),
            Position::new(1_000.0 + f64::from(i) * 100.0, 0.0),
            core,
        );
    }
    for &(node, at_us) in &s.extra_irqs {
        let target = NodeId(u32::from(node % s.mac_nodes) + 1);
        sim.schedule(
            target,
            SimTime::ZERO + SimDuration::from_us(at_us),
            Stimulus::SensorIrq,
        );
    }
    sim
}

/// Everything observable about a finished run, in bit-exact form.
#[derive(Debug, PartialEq)]
struct Observed {
    trace: Vec<snap_net::TraceEvent>,
    trace_recorded: u64,
    deliveries: u64,
    collisions: u64,
    faded: u64,
    now_ps: u64,
    per_node: Vec<NodeObserved>,
}

#[derive(Debug, PartialEq)]
struct NodeObserved {
    instructions: u64,
    energy_bits: u64,
    busy_ps: u64,
    sleep_ps: u64,
    clock_ps: u64,
    regs: [u16; 15],
    handlers: u64,
    words_sent: u64,
    words_heard: u64,
}

fn observe(sim: &NetworkSim) -> Observed {
    let per_node = (1..=sim.node_count() as u32)
        .map(|n| {
            let node = sim.node(NodeId(n));
            let stats = node.cpu().stats();
            let mut regs = [0u16; 15];
            for (i, slot) in regs.iter_mut().enumerate() {
                *slot = node.cpu().regs().read(Reg::ALL[i]);
            }
            NodeObserved {
                instructions: stats.instructions,
                energy_bits: stats.energy.as_pj().to_bits(),
                busy_ps: stats.busy_time.as_ps(),
                sleep_ps: stats.sleep_time.as_ps(),
                clock_ps: node.now().as_ps(),
                regs,
                handlers: stats.handlers_dispatched,
                words_sent: node.radio().words_sent(),
                words_heard: node.radio().words_heard(),
            }
        })
        .collect();
    Observed {
        trace: sim.trace().events().to_vec(),
        trace_recorded: sim.trace().recorded(),
        deliveries: sim.channel().deliveries(),
        collisions: sim.channel().collisions(),
        faded: sim.channel().faded(),
        now_ps: sim.now().as_ps(),
        per_node,
    }
}

/// Straight run vs checkpoint-resume run for one engine × scheduler
/// cell. Randomized MAC scenarios can legitimately fault (e.g. an
/// injected IRQ makes the app transmit while its radio is busy), and a
/// faulting universe must fault identically after a resume — so each
/// leg's `Result` is part of the observation. State is compared only
/// when both legs succeed (an error aborts a window mid-fold, leaving
/// the trace unsealed).
#[allow(clippy::type_complexity)]
fn straight_vs_resumed(
    s: &Scenario,
    engine: Engine,
    scheduler: Scheduler,
) -> (
    Result<Observed, snap_node::NodeError>,
    Result<Observed, snap_node::NodeError>,
    usize,
) {
    let t1 = SimTime::ZERO + SimDuration::from_us(s.snap_at_us);
    let t2 = SimTime::ZERO + SimDuration::from_us(s.run_to_us);

    let mut straight = build(s, engine, scheduler);
    let straight_result = straight.run_until(t2);

    let mut first_leg = build(s, engine, scheduler);
    if let Err(e) = first_leg.run_until(t1) {
        // Faulted before the checkpoint instant: the straight leg must
        // observe the identical fault.
        return (straight_result.map(|()| observe(&straight)), Err(e), 0);
    }
    // Full wire round trip, not just the in-memory structs: the bytes
    // are what `snap-serve` and `srun --restore` actually move around.
    let bytes = Snapshot::Fleet(Box::new(first_leg.export_snapshot())).to_bytes();
    let restored = Snapshot::from_bytes(&bytes).expect("own bytes decode");
    let mut resumed = NetworkSim::from_snapshot(restored.as_fleet().unwrap()).unwrap();
    drop(first_leg);
    let resumed_result = resumed.run_until(t2);

    (
        straight_result.map(|()| observe(&straight)),
        resumed_result.map(|()| observe(&resumed)),
        bytes.len(),
    )
}

const ENGINES: [Engine; 3] = [Engine::Interp, Engine::Fused, Engine::Aot];
const SCHEDULERS: [Scheduler; 3] = [
    Scheduler::Lockstep,
    Scheduler::EventDriven,
    Scheduler::Sharded,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The defining property, over the full 3 × 3 matrix.
    #[test]
    fn resume_from_snapshot_is_bit_identical(
        mac_nodes in 3u8..7,
        blink_nodes in 0u8..3,
        loss_ppm in prop::sample::select(vec![0u32, 150_000]),
        loss_seed in 1u64..1_000,
        stagger_us in 300u64..1_500,
        extra_irqs in prop::collection::vec((0u8..8, 2_000u64..20_000), 0..3),
        snap_at_us in 1_500u64..14_000,
        extra_run_us in 6_000u64..12_000,
    ) {
        let s = Scenario {
            mac_nodes,
            blink_nodes,
            loss_ppm,
            loss_seed,
            stagger_us,
            extra_irqs,
            snap_at_us,
            run_to_us: snap_at_us + extra_run_us,
        };
        for engine in ENGINES {
            for sched in SCHEDULERS {
                let (straight, resumed, _) = straight_vs_resumed(&s, engine, sched);
                match (&straight, &resumed) {
                    (Ok(a), Ok(b)) => {
                        prop_assert!(
                            !a.trace.is_empty(),
                            "vacuous scenario: no traffic at all"
                        );
                        prop_assert_eq!(
                            &b.trace, &a.trace,
                            "trace diverged after resume under {:?}/{:?}", engine, sched
                        );
                        prop_assert_eq!(
                            b, a,
                            "state diverged after resume under {:?}/{:?}", engine, sched
                        );
                    }
                    // A randomized IRQ can legitimately fault the MAC app
                    // (TX while the radio is busy). The resumed universe
                    // must then fault with the *identical* error at the
                    // identical instant.
                    (Err(ea), Err(eb)) => prop_assert_eq!(
                        eb, ea,
                        "fault diverged after resume under {:?}/{:?}", engine, sched
                    ),
                    _ => prop_assert!(
                        false,
                        "one leg faulted, the other did not under {:?}/{:?}: \
                         straight={:?} resumed={:?}",
                        engine, sched, straight, resumed
                    ),
                }
            }
        }
    }

    /// Resuming under a *different* scheduler than the one that took
    /// the checkpoint still lands on the straight run: the snapshot
    /// holds no scheduler-internal state (DESIGN.md §11's mid-epoch
    /// safety argument, exercised).
    #[test]
    fn snapshot_is_scheduler_portable(
        mac_nodes in 3u8..6,
        stagger_us in 300u64..1_200,
        snap_at_us in 1_500u64..9_000,
    ) {
        let s = Scenario {
            mac_nodes,
            blink_nodes: 1,
            loss_ppm: 150_000,
            loss_seed: 7,
            stagger_us,
            extra_irqs: vec![],
            snap_at_us,
            run_to_us: snap_at_us + 9_000,
        };
        let t1 = SimTime::ZERO + SimDuration::from_us(s.snap_at_us);
        let t2 = SimTime::ZERO + SimDuration::from_us(s.run_to_us);
        let mut reference = build(&s, Engine::Fused, Scheduler::Lockstep);
        reference.run_until(t2).unwrap();
        let reference = observe(&reference);

        let mut first_leg = build(&s, Engine::Fused, Scheduler::Lockstep);
        first_leg.run_until(t1).unwrap();
        let snap = first_leg.export_snapshot();
        for resume_sched in SCHEDULERS {
            let mut resumed = NetworkSim::from_snapshot(&snap).unwrap();
            resumed.set_scheduler(resume_sched);
            resumed.run_until(t2).unwrap();
            prop_assert_eq!(
                &observe(&resumed), &reference,
                "resume under {:?} diverged from the straight lockstep run",
                resume_sched
            );
        }
    }
}

/// Snapshot at time zero — before any run — round-trips and resumes
/// identically (the degenerate checkpoint every `--checkpoint-every`
/// sequence starts from).
#[test]
fn snapshot_before_first_run_resumes_identically() {
    let s = Scenario {
        mac_nodes: 3,
        blink_nodes: 1,
        loss_ppm: 0,
        loss_seed: 1,
        stagger_us: 500,
        extra_irqs: vec![],
        snap_at_us: 0,
        run_to_us: 12_000,
    };
    let (straight, resumed, bytes) = straight_vs_resumed(&s, Engine::Fused, Scheduler::EventDriven);
    assert!(bytes > 0);
    assert_eq!(resumed.unwrap(), straight.unwrap());
}

/// A snapshot taken while a word is mid-air (and a TX-done pending)
/// must carry the in-flight transmission: the word still lands, once,
/// at its exact instant.
#[test]
fn mid_air_word_survives_checkpoint() {
    // First sender fires at 1 ms; a word takes ~833 us on air, so
    // 1.3 ms is comfortably mid-flight for the first data word's
    // RTS/CTS exchange window.
    let s = Scenario {
        mac_nodes: 3,
        blink_nodes: 0,
        loss_ppm: 0,
        loss_seed: 1,
        stagger_us: 900,
        extra_irqs: vec![],
        snap_at_us: 1_300,
        run_to_us: 30_000,
    };
    let (straight, resumed, _) = straight_vs_resumed(&s, Engine::Fused, Scheduler::EventDriven);
    let straight = straight.unwrap();
    assert!(
        straight.deliveries > 0,
        "scenario produced no deliveries at all"
    );
    assert_eq!(resumed.unwrap(), straight);
}

/// Repeated checkpoint/restore every millisecond — a chain of resumes
/// — still lands bit-identically on the straight run (what
/// `srun --checkpoint-every` produces).
#[test]
fn chained_checkpoints_accumulate_no_drift() {
    let s = Scenario {
        mac_nodes: 4,
        blink_nodes: 1,
        loss_ppm: 150_000,
        loss_seed: 3,
        stagger_us: 600,
        extra_irqs: vec![],
        snap_at_us: 0,
        run_to_us: 20_000,
    };
    let t2 = SimTime::ZERO + SimDuration::from_us(s.run_to_us);
    let mut straight = build(&s, Engine::Fused, Scheduler::EventDriven);
    straight.run_until(t2).unwrap();

    let mut sim = build(&s, Engine::Fused, Scheduler::EventDriven);
    for ms in 1..=20u64 {
        sim.run_until(SimTime::ZERO + SimDuration::from_ms(ms))
            .unwrap();
        let bytes = Snapshot::Fleet(Box::new(sim.export_snapshot())).to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        sim = NetworkSim::from_snapshot(back.as_fleet().unwrap()).unwrap();
    }
    let straight = observe(&straight);
    assert!(straight.deliveries > 0, "scenario produced no deliveries");
    assert_eq!(observe(&sim), straight);
}

/// A program-level fault (here: an injected IRQ makes the MAC app start
/// a TX while a word is already on air) must reproduce **identically**
/// after a checkpoint/restore taken before the fault — same error
/// variant, same node, same picosecond. Faults are part of the
/// deterministic observable, not an excuse for divergence.
#[test]
fn fault_reproduces_identically_after_resume() {
    let s = Scenario {
        mac_nodes: 4,
        blink_nodes: 1,
        loss_ppm: 150_000,
        loss_seed: 3,
        stagger_us: 600,
        // IRQ into node 2 at 5 ms lands mid-transmission and faults the
        // app with RadioBusy shortly after — deterministically.
        extra_irqs: vec![(1, 5_000), (2, 9_000)],
        snap_at_us: 4_000,
        run_to_us: 20_000,
    };
    let (straight, resumed, _) = straight_vs_resumed(&s, Engine::Fused, Scheduler::EventDriven);
    let fault = straight.expect_err("scenario is expected to fault after 4 ms");
    assert!(
        matches!(fault, snap_node::NodeError::RadioBusy { .. }),
        "expected a RadioBusy fault, got {fault:?}"
    );
    assert_eq!(resumed.expect_err("resumed leg must fault too"), fault);
}
