//! Golden snapshot: the on-disk format is a compatibility contract.
//!
//! A checked-in, byte-exact fleet snapshot of the `mac` demo at a fixed
//! tick pins `snap-snapshot`'s wire format. If this test fails, you
//! changed the serialized representation — which breaks every snapshot
//! already sitting on disk (`srun --restore`, `snap-serve` forks).
//!
//! The rules, from DESIGN.md §11:
//!
//! 1. If the change is **intentional**, bump
//!    [`snap_snapshot::FORMAT_VERSION`] so old bytes are rejected
//!    loudly instead of misdecoded, then re-bless the golden file:
//!    `SNAP_BLESS=1 cargo test -p snap-net --test snapshot_golden`.
//! 2. If you did **not** mean to change the format, fix your change —
//!    do not re-bless.
//!
//! The golden bytes must also keep *decoding and resuming*: format
//! stability is pointless if the decoder drifts semantically while the
//! bytes stay put.

use dess::{SimDuration, SimTime};
use snap_apps::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use snap_apps::prelude::install_handler;
use snap_core::{CoreConfig, Engine};
use snap_net::{NetworkSim, Position, Scheduler, Stimulus};
use snap_snapshot::{Snapshot, FORMAT_VERSION};
use std::path::PathBuf;

/// Fixed scenario: everything here is deterministic, so the exported
/// bytes are a pure function of the wire format. Do not edit — editing
/// the scenario invalidates the golden file just like a format change.
fn golden_fleet() -> NetworkSim {
    let core = CoreConfig {
        engine: Engine::Fused,
        ..CoreConfig::default()
    };
    let mut sim = NetworkSim::new(12.0);
    sim.set_scheduler(Scheduler::EventDriven);
    sim.set_loss(0.15, 42);
    for i in 0..3u8 {
        let dst = if i + 1 == 3 { 1 } else { i + 2 };
        let extra = install_handler("EV_IRQ", "app_send_irq");
        let app = format!("{}{}", send_on_irq_app(dst), RX_DISPATCH_STUB);
        let program = mac_program(i + 1, &extra, &app).unwrap();
        let id = sim.add_node_with_core(&program, Position::new(f64::from(i) * 8.0, 0.0), core);
        sim.schedule(
            id,
            SimTime::ZERO + SimDuration::from_us(1_000 + 700 * u64::from(i)),
            Stimulus::SensorIrq,
        );
    }
    sim
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("mac_fleet_v{FORMAT_VERSION}.snap"))
}

/// The fixed tick. Chosen so words have flown, LEDs have blinked and a
/// fade-RNG draw has happened — the snapshot exercises every section.
const GOLDEN_TICK_US: u64 = 6_000;

#[test]
fn golden_snapshot_bytes_are_stable() {
    let mut sim = golden_fleet();
    sim.run_until(SimTime::ZERO + SimDuration::from_us(GOLDEN_TICK_US))
        .unwrap();
    let bytes = Snapshot::Fleet(Box::new(sim.export_snapshot())).to_bytes();

    let path = golden_path();
    if std::env::var_os("SNAP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        eprintln!("blessed {} ({} bytes)", path.display(), bytes.len());
        return;
    }

    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}\n\
             run `SNAP_BLESS=1 cargo test -p snap-net --test snapshot_golden` to create it",
            path.display()
        )
    });
    if bytes != golden {
        let first_diff = bytes
            .iter()
            .zip(&golden)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| bytes.len().min(golden.len()));
        panic!(
            "SNAPSHOT WIRE FORMAT DRIFT\n\
             \n\
             the serialized fleet snapshot no longer matches the checked-in\n\
             golden file ({}).\n\
             got {} bytes, expected {}; first difference at offset {}.\n\
             \n\
             Every snapshot on disk (srun --restore, snap-serve forks) decodes\n\
             with this format. If the change is intentional:\n\
               1. bump snap_snapshot::FORMAT_VERSION (currently {FORMAT_VERSION}),\n\
               2. re-bless: SNAP_BLESS=1 cargo test -p snap-net --test snapshot_golden\n\
             If it is not intentional, fix the encoding — do NOT re-bless.",
            path.display(),
            bytes.len(),
            golden.len(),
            first_diff,
        );
    }
}

/// The checked-in bytes must keep decoding and *resuming*: a format
/// that is byte-stable but semantically drifted would still strand old
/// snapshots. Restores the golden file and runs it 4 ms further.
#[test]
fn golden_snapshot_still_restores_and_runs() {
    let path = golden_path();
    let golden = match std::fs::read(&path) {
        Ok(b) => b,
        // The bless workflow creates the file; the stability test above
        // reports it missing with instructions.
        Err(_) => return,
    };
    let snap = Snapshot::from_bytes(&golden).expect("golden bytes decode");
    let fleet = snap.as_fleet().expect("golden snapshot is a fleet");
    let mut sim = NetworkSim::from_snapshot(fleet).expect("golden fleet restores");
    assert_eq!(sim.now().as_ps(), GOLDEN_TICK_US * 1_000_000);
    sim.run_until(SimTime::ZERO + SimDuration::from_us(GOLDEN_TICK_US + 4_000))
        .unwrap();

    // And it must land exactly where a straight run lands.
    let mut straight = golden_fleet();
    straight
        .run_until(SimTime::ZERO + SimDuration::from_us(GOLDEN_TICK_US + 4_000))
        .unwrap();
    assert_eq!(
        sim.export_snapshot(),
        straight.export_snapshot(),
        "golden restore diverged from a straight run"
    );
}
