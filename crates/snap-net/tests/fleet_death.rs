//! Battery exhaustion must be invisible to scheduling choices.
//!
//! A heterogeneous fleet (SNAP MAC ring + ATmega beacon motes + a
//! mains-powered gateway) runs on micro-scale batteries sized so nodes
//! die mid-run. The death instant is part of the observable universe:
//! every execution engine and every scheduler must kill each node at
//! the identical picosecond, record the identical `NodeDeath` trace
//! event, and freeze the corpse identically — and a checkpoint taken
//! while a node is dying (or already dead) must restore to the same
//! universe. See DESIGN.md §12 for the determinism argument.

use dess::{SimDuration, SimTime};
use snap_apps::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use snap_apps::prelude::install_handler;
use snap_core::{CoreConfig, Engine};
use snap_net::{NetworkSim, Position, Scheduler, Stimulus, TraceKind};
use snap_node::atmega::tinyos::beacon_system;
use snap_node::{BatteryConfig, NodeId, NodeKind};
use snap_snapshot::Snapshot;

const MAC_NODES: u8 = 2;
const AVR_NODES: u8 = 2;
/// MAC ring ids are 1..=2, motes 3..=4, gateway 5.
const FIRST_AVR: u32 = MAC_NODES as u32 + 1;
const GATEWAY: u32 = MAC_NODES as u32 + AVR_NODES as u32 + 1;
const RUN_TO_US: u64 = 30_000;

/// A test cell drained fast enough to die inside the 30 ms horizon
/// (micro-scale capacities; see the `capacity_uah` docs). The SNAP
/// ring dies around 16 ms; the AVR motes — whose active burn dominates
/// their budget — a few beacons earlier.
fn snap_cell() -> BatteryConfig {
    BatteryConfig {
        capacity_uah: 3.0e-5,
        voltage_v: 3.0,
        sleep_ua: 6.0,
        tx_pj_per_word: 50.0,
    }
}

fn avr_cell() -> BatteryConfig {
    BatteryConfig {
        capacity_uah: 8.4e-4,
        ..BatteryConfig::coin_cell_avr()
    }
}

fn build(engine: Engine, scheduler: Scheduler, shards: usize) -> NetworkSim {
    let core = CoreConfig {
        engine,
        ..CoreConfig::default()
    };
    let mut sim = NetworkSim::new(12.0);
    sim.set_scheduler(scheduler);
    sim.set_shards(shards);
    for i in 0..MAC_NODES {
        let dst = if i + 1 == MAC_NODES { 1 } else { i + 2 };
        let extra = install_handler("EV_IRQ", "app_send_irq");
        let app = format!("{}{}", send_on_irq_app(dst), RX_DISPATCH_STUB);
        let program = mac_program(i + 1, &extra, &app).unwrap();
        let id = sim.add_node_with_core(&program, Position::new(f64::from(i) * 8.0, 0.0), core);
        sim.schedule(
            id,
            SimTime::ZERO + SimDuration::from_us(1_000 + 900 * u64::from(i)),
            Stimulus::SensorIrq,
        );
        sim.set_battery(id, Some(snap_cell()));
    }
    // Different beacon periods so the two motes do not transmit in
    // perfect lockstep (identical boots would collide every beacon).
    for i in 0..AVR_NODES {
        let (avr, _) = beacon_system(i + 1, 2 + u16::from(i)).unwrap();
        let id = sim.add_avr_node(avr, Position::new(f64::from(i) * 8.0, -8.0));
        sim.set_battery(id, Some(avr_cell()));
    }
    // The gateway overhears the ring and never carries a budget.
    let done = snap_asm::assemble("done").unwrap();
    sim.add_gateway_with_core(&done, Position::new(4.0, 4.0), core);
    sim
}

/// Everything observable about a finished heterogeneous run, in
/// bit-exact form.
#[derive(Debug, PartialEq)]
struct Observed {
    trace: Vec<snap_net::TraceEvent>,
    deaths: Vec<(u32, u64)>,
    deliveries: u64,
    now_ps: u64,
    per_node: Vec<NodeObserved>,
}

#[derive(Debug, PartialEq)]
struct NodeObserved {
    kind: NodeKind,
    clock_ps: u64,
    /// Instructions (SNAP/gateway) or wall cycles (AVR): the engines
    /// and schedulers must agree on how far each core got.
    progress: u64,
    energy_bits: u64,
    consumed_bits: Option<u64>,
    died_at_ps: Option<u64>,
    uplink_words: usize,
}

fn observe(sim: &NetworkSim) -> Observed {
    let per_node = (1..=sim.node_count() as u32)
        .map(|n| {
            let node = sim.node(NodeId(n));
            let (progress, energy_bits) = match node.avr() {
                Some(mote) => (
                    mote.core().wall_cycles(),
                    mote.active_energy().as_pj().to_bits(),
                ),
                None => {
                    let stats = node.cpu().stats();
                    (stats.instructions, stats.energy.as_pj().to_bits())
                }
            };
            NodeObserved {
                kind: node.kind(),
                clock_ps: node.now().as_ps(),
                progress,
                energy_bits,
                consumed_bits: node.battery_consumed().map(|e| e.as_pj().to_bits()),
                died_at_ps: node.died_at().map(|t| t.as_ps()),
                uplink_words: node.uplink().len(),
            }
        })
        .collect();
    let trace: Vec<snap_net::TraceEvent> = sim.trace().events().to_vec();
    let deaths = trace
        .iter()
        .filter(|e| e.kind == TraceKind::NodeDeath)
        .map(|e| (e.node.0, e.at_ps))
        .collect();
    Observed {
        trace,
        deaths,
        deliveries: sim.channel().deliveries(),
        now_ps: sim.now().as_ps(),
        per_node,
    }
}

fn run(engine: Engine, scheduler: Scheduler, shards: usize) -> Observed {
    let mut sim = build(engine, scheduler, shards);
    sim.run_until(SimTime::ZERO + SimDuration::from_us(RUN_TO_US))
        .unwrap();
    observe(&sim)
}

/// Every engine × scheduler cell kills every budgeted node at the
/// identical picosecond and observes the identical universe.
#[test]
fn battery_death_is_bit_identical_across_engines_and_schedulers() {
    let reference = run(Engine::Interp, Scheduler::Lockstep, 1);
    // The scenario must actually exercise death on *both* platforms,
    // and the gateway must have bridged traffic before the ring died.
    let dead: Vec<u32> = reference.deaths.iter().map(|&(n, _)| n).collect();
    assert!(
        dead.iter().any(|&n| n < FIRST_AVR),
        "no SNAP node died: {reference:?}"
    );
    assert!(
        dead.iter().any(|&n| (FIRST_AVR..GATEWAY).contains(&n)),
        "no AVR mote died: {reference:?}"
    );
    assert!(!dead.contains(&GATEWAY), "the mains-powered gateway died");
    assert!(reference.deliveries > 0, "vacuous scenario: no traffic");
    assert!(
        reference.per_node[GATEWAY as usize - 1].uplink_words > 0,
        "gateway bridged nothing"
    );
    for engine in [Engine::Interp, Engine::Fused, Engine::Aot] {
        for (scheduler, shards) in [
            (Scheduler::Lockstep, 1usize),
            (Scheduler::EventDriven, 1),
            (Scheduler::Sharded, 1),
            (Scheduler::Sharded, 2),
            (Scheduler::Sharded, 4),
        ] {
            let got = run(engine, scheduler, shards);
            assert_eq!(
                got.deaths, reference.deaths,
                "death instants diverged under {engine:?}/{scheduler:?}/{shards}"
            );
            assert_eq!(
                got, reference,
                "state diverged under {engine:?}/{scheduler:?}/{shards}"
            );
        }
    }
}

/// A dead node is frozen: nothing node-produced (transmit, LED, another
/// death) appears in the trace after its death instant, and its clock
/// stops at that instant (schedulers skip corpses instead of syncing
/// them forward).
#[test]
fn dead_nodes_stay_frozen() {
    let reference = run(Engine::Fused, Scheduler::EventDriven, 1);
    for &(node, died_at) in &reference.deaths {
        for e in &reference.trace {
            let node_produced = matches!(
                e.kind,
                TraceKind::Transmit { .. } | TraceKind::Led { .. } | TraceKind::NodeDeath
            );
            assert!(
                !(e.node.0 == node && node_produced && e.at_ps > died_at),
                "dead node {node} produced {e:?} after dying at {died_at}"
            );
        }
        let obs = &reference.per_node[node as usize - 1];
        assert_eq!(obs.died_at_ps, Some(died_at));
        assert_eq!(obs.clock_ps, died_at, "corpse clock moved after death");
    }
}

/// Checkpoint/restore straddling the death instants: a snapshot taken
/// before any death, between the AVR and SNAP waves, and after all
/// deaths must each resume to the bit-identical universe.
#[test]
fn death_instants_survive_snapshot_straddle() {
    let horizon = SimTime::ZERO + SimDuration::from_us(RUN_TO_US);
    let mut straight = build(Engine::Fused, Scheduler::EventDriven, 1);
    straight.run_until(horizon).unwrap();
    let reference = observe(&straight);
    assert!(!reference.deaths.is_empty(), "vacuous scenario: no deaths");
    let first_death = reference.deaths.iter().map(|&(_, at)| at).min().unwrap();
    let last_death = reference.deaths.iter().map(|&(_, at)| at).max().unwrap();
    assert!(first_death < last_death, "want a window between deaths");
    for snap_at_ps in [
        first_death - 1,                // everyone still alive
        (first_death + last_death) / 2, // some corpses aboard
        last_death + 1,                 // all deaths already in the trace
    ] {
        let mut first_leg = build(Engine::Fused, Scheduler::EventDriven, 1);
        first_leg
            .run_until(SimTime::ZERO + SimDuration::from_ps(snap_at_ps))
            .unwrap();
        let bytes = Snapshot::Fleet(Box::new(first_leg.export_snapshot())).to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("own bytes decode");
        let mut resumed = NetworkSim::from_snapshot(back.as_fleet().unwrap()).unwrap();
        resumed.run_until(horizon).unwrap();
        let got = observe(&resumed);
        assert_eq!(
            got.deaths, reference.deaths,
            "death instants diverged resuming from {snap_at_ps} ps"
        );
        assert_eq!(
            got, reference,
            "state diverged resuming from {snap_at_ps} ps"
        );
    }
}
