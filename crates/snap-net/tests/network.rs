//! End-to-end network scenarios: real SNAP handler binaries exchanging
//! packets over the simulated channel.

use dess::{SimDuration, SimTime};
use snap_apps::aodv::{aodv_node_program, relay_program};
use snap_apps::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use snap_apps::packet::{Packet, PacketType};
use snap_apps::prelude::install_handler;
use snap_net::{NetworkSim, Position, Stimulus, TraceKind};
use snap_node::NodeId;

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_ms(n)
}

/// Sender transmits a DATA packet; a nearby listener receives it.
#[test]
fn two_node_packet_exchange() {
    let mut sim = NetworkSim::new(10.0);
    let extra = install_handler("EV_IRQ", "app_send_irq");
    let app = format!("{}{}", send_on_irq_app(2), RX_DISPATCH_STUB);
    let sender = sim.add_node(
        &mac_program(1, &extra, &app).unwrap(),
        Position::new(0.0, 0.0),
    );
    let listener = sim.add_node(
        &mac_program(2, "", RX_DISPATCH_STUB).unwrap(),
        Position::new(5.0, 0.0),
    );
    sim.schedule(sender, ms(2), Stimulus::SensorIrq);
    sim.run_until(ms(20)).unwrap();

    // 5 words on the air, 5 clean deliveries at the listener.
    assert_eq!(sim.channel().deliveries(), 5);
    assert_eq!(sim.channel().collisions(), 0);
    assert_eq!(sim.node(listener).radio().words_heard(), 5);
    // The listener's MAC assembled and verified the packet.
    let program = mac_program(2, "", RX_DISPATCH_STUB).unwrap();
    let drops = program.symbol("mac_rx_drops").unwrap();
    assert_eq!(sim.node(listener).cpu().dmem().read(drops), 0);
    let buf = program.symbol("mac_rx_buf").unwrap();
    assert_eq!(sim.node(listener).cpu().dmem().read(buf + 2), 0x1111);
}

/// A out of range of C: the relay B answers an RREQ and forwards DATA.
#[test]
fn three_node_aodv_forwarding_chain() {
    let mut sim = NetworkSim::new(6.0);
    // Node 1 (source) -- node 2 (relay) -- node 3 (sink), 5 apart.
    let extra = install_handler("EV_IRQ", "app_send_irq");
    let source_app = format!("{}{}", send_on_irq_app(3), "\napp_deliver:\n    done\n");
    let source = sim.add_node(
        &aodv_node_program(1, &[(3, 2)], &extra, &source_app).unwrap(),
        Position::new(0.0, 0.0),
    );
    let _relay = sim.add_node(
        &relay_program(2, &[(3, 3), (1, 1)]).unwrap(),
        Position::new(5.0, 0.0),
    );
    let sink = sim.add_node(&relay_program(3, &[]).unwrap(), Position::new(10.0, 0.0));
    assert!(
        !sim.topology().in_range(source, sink),
        "must need the relay"
    );

    sim.schedule(source, ms(2), Stimulus::SensorIrq);
    sim.run_until(ms(40)).unwrap();

    // The sink got the payload: its aodv_local counter incremented.
    let sink_prog = relay_program(3, &[]).unwrap();
    let local = sink_prog.symbol("aodv_local").unwrap();
    assert_eq!(
        sim.node(sink).cpu().dmem().read(local),
        1,
        "payload must reach the sink"
    );
    // The relay forwarded exactly one packet.
    let relay_prog = relay_program(2, &[]).unwrap();
    let fwds = relay_prog.symbol("aodv_fwds").unwrap();
    assert_eq!(sim.node(NodeId(2)).cpu().dmem().read(fwds), 1);
}

/// An RREQ broadcast is answered over the air with an RREP.
#[test]
fn route_request_reply_over_the_air() {
    let mut sim = NetworkSim::new(10.0);
    // Node 1 sends an RREQ by staging it via the send app? Use a relay
    // with a routing table as the responder and drive the RREQ from a
    // bare MAC node.
    let rreq = Packet::route_request(2, 1, 9);
    // Custom app: on IRQ, stage the RREQ words.
    let app = format!(
        r"
app_send_irq:
    li      r2, {w0}
    sw      r2, mac_tx_buf+0(r0)
    li      r2, {w1}
    sw      r2, mac_tx_buf+1(r0)
    li      r2, {w2}
    sw      r2, mac_tx_buf+2(r0)
    li      r1, 3
    call    mac_send
    done
rx_dispatch:
    lw      r2, mac_rx_buf+1(r0)
    srli    r2, 8
    sw      r2, 0x100(r0)      ; log the received packet type
    done
",
        w0 = rreq.encode()[0],
        w1 = rreq.encode()[1],
        w2 = rreq.encode()[2],
    );
    let extra = install_handler("EV_IRQ", "app_send_irq");
    let asker = sim.add_node(
        &mac_program(1, &extra, &app).unwrap(),
        Position::new(0.0, 0.0),
    );
    let _responder = sim.add_node(
        &relay_program(2, &[(9, 7)]).unwrap(),
        Position::new(4.0, 0.0),
    );

    sim.schedule(asker, ms(2), Stimulus::SensorIrq);
    sim.run_until(ms(30)).unwrap();

    // The asker logged an RREP (type 3) at DMEM 0x100.
    assert_eq!(
        sim.node(asker).cpu().dmem().read(0x100),
        PacketType::RouteReply.code() as u16
    );
}

/// Two senders colliding: the listener hears garbage, counted as
/// collisions, and the MAC checksum rejects any partial assembly.
#[test]
fn simultaneous_transmitters_collide() {
    let mut sim = NetworkSim::new(20.0);
    let extra = install_handler("EV_IRQ", "app_send_irq");
    let app = format!("{}{}", send_on_irq_app(3), RX_DISPATCH_STUB);
    let a = sim.add_node(
        &mac_program(1, &extra, &app).unwrap(),
        Position::new(0.0, 0.0),
    );
    let b = sim.add_node(
        &mac_program(2, &extra, &app).unwrap(),
        Position::new(1.0, 0.0),
    );
    let _listener = sim.add_node(
        &mac_program(3, "", RX_DISPATCH_STUB).unwrap(),
        Position::new(2.0, 0.0),
    );
    // Same instant: both backoffs start together; the LFSR seeds are
    // identical, so the backoff draws coincide and words overlap.
    sim.schedule(a, ms(2), Stimulus::SensorIrq);
    sim.schedule(b, ms(2), Stimulus::SensorIrq);
    sim.run_until(ms(30)).unwrap();

    assert!(sim.channel().collisions() > 0, "expected collisions");
}

/// Trace records transmissions, deliveries and stimuli.
#[test]
fn trace_captures_activity() {
    let mut sim = NetworkSim::new(10.0);
    let extra = install_handler("EV_IRQ", "app_send_irq");
    let app = format!("{}{}", send_on_irq_app(2), RX_DISPATCH_STUB);
    let sender = sim.add_node(
        &mac_program(1, &extra, &app).unwrap(),
        Position::new(0.0, 0.0),
    );
    let _rx = sim.add_node(
        &mac_program(2, "", RX_DISPATCH_STUB).unwrap(),
        Position::new(1.0, 0.0),
    );
    sim.schedule(sender, ms(1), Stimulus::SensorIrq);
    sim.run_until(ms(20)).unwrap();

    let tx_events = sim
        .trace()
        .count(|e| matches!(e.kind, TraceKind::Transmit { .. }));
    let rx_events = sim
        .trace()
        .count(|e| matches!(e.kind, TraceKind::Deliver { .. }));
    let stim = sim.trace().count(|e| matches!(e.kind, TraceKind::Stimulus));
    assert_eq!(tx_events, 5);
    assert_eq!(rx_events, 5);
    assert_eq!(stim, 1);
}

/// Sleeping network: with no stimuli, nodes sleep and time passes with
/// almost no instructions.
#[test]
fn idle_network_sleeps() {
    let mut sim = NetworkSim::new(10.0);
    let a = sim.add_node(&relay_program(1, &[]).unwrap(), Position::new(0.0, 0.0));
    sim.run_until(ms(100)).unwrap();
    let stats = sim.node(a).cpu().stats();
    assert!(
        stats.instructions < 50,
        "boot only, got {}",
        stats.instructions
    );
    assert!(
        stats.sleep_time.as_ms() > 99.0,
        "slept {}",
        stats.sleep_time
    );
}

/// Two identical runs produce bit-identical traces: the whole stack
/// (LFSR backoffs, calendar FIFO tie-breaks, parallel windows) is
/// deterministic.
#[test]
fn simulation_is_deterministic() {
    fn run_once() -> Vec<snap_net::TraceEvent> {
        let mut sim = NetworkSim::new(8.0);
        let extra = install_handler("EV_IRQ", "app_send_irq");
        let app = format!("{}{}", send_on_irq_app(2), RX_DISPATCH_STUB);
        let a = sim.add_node(
            &mac_program(1, &extra, &app).unwrap(),
            Position::new(0.0, 0.0),
        );
        let app3 = format!("{}{}", send_on_irq_app(2), RX_DISPATCH_STUB);
        let c = sim.add_node(
            &mac_program(3, &extra, &app3).unwrap(),
            Position::new(2.0, 0.0),
        );
        sim.add_node(
            &mac_program(2, "", RX_DISPATCH_STUB).unwrap(),
            Position::new(1.0, 1.0),
        );
        sim.schedule(a, ms(1), Stimulus::SensorIrq);
        sim.schedule(c, ms(1), Stimulus::SensorIrq);
        sim.run_until(ms(50)).unwrap();
        sim.trace().events().to_vec()
    }
    let first = run_once();
    let second = run_once();
    assert!(!first.is_empty());
    assert_eq!(first, second);
}

/// Nodes with different ids draw different CSMA backoffs (the MAC
/// seeds its LFSR from the node id).
#[test]
fn backoffs_are_decorrelated_by_node_id() {
    let mut starts = Vec::new();
    for id in [1u8, 2, 3] {
        let extra = install_handler("EV_IRQ", "app_send_irq");
        let app = format!("{}{}", send_on_irq_app(9), RX_DISPATCH_STUB);
        let program = mac_program(id, &extra, &app).unwrap();
        let mut node = snap_node::Node::new(snap_node::NodeConfig::default());
        node.load(&program).unwrap();
        node.run_for(SimDuration::from_ms(1)).unwrap();
        let before = node.now();
        node.trigger_sensor_irq();
        let out = node.run_for(SimDuration::from_ms(5)).unwrap();
        let start = out
            .iter()
            .find_map(|o| match o {
                snap_node::NodeOutput::Transmitted { start, .. } => Some(*start),
                _ => None,
            })
            .expect("a transmission");
        starts.push((start - before).as_us().round() as i64);
    }
    assert!(
        starts[0] != starts[1] || starts[1] != starts[2],
        "backoffs should differ across ids: {starts:?}"
    );
}

/// Fading: with loss probability 1 nothing arrives; the MAC's checksum
/// machinery keeps the receiver sane; with 0 everything arrives.
#[test]
fn channel_fading_model() {
    for (p, expect_all) in [(0.0, true), (1.0, false)] {
        let mut sim = NetworkSim::new(10.0);
        sim.set_loss(p, 42);
        let extra = install_handler("EV_IRQ", "app_send_irq");
        let app = format!("{}{}", send_on_irq_app(2), RX_DISPATCH_STUB);
        let sender = sim.add_node(
            &mac_program(1, &extra, &app).unwrap(),
            Position::new(0.0, 0.0),
        );
        let listener = sim.add_node(
            &mac_program(2, "", RX_DISPATCH_STUB).unwrap(),
            Position::new(3.0, 0.0),
        );
        sim.schedule(sender, ms(1), Stimulus::SensorIrq);
        sim.run_until(ms(20)).unwrap();
        if expect_all {
            assert_eq!(sim.node(listener).radio().words_heard(), 5);
            assert_eq!(sim.channel().faded(), 0);
        } else {
            assert_eq!(sim.node(listener).radio().words_heard(), 0);
            assert_eq!(sim.channel().faded(), 5);
        }
    }
}
