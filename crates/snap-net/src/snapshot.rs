//! Fleet state export/restore against the `snap-snapshot` format.
//!
//! [`NetworkSim::export_snapshot`] captures a whole network — every
//! node (via [`snap_node::snapshot`]), the topology, the channel with
//! its fade RNG, the delivery and stimulus calendars, and the trace —
//! such that a restored fleet resumes **bit-identically** under every
//! scheduler. `snap-net/tests/snapshot_equiv.rs` enforces that across
//! the full engine × scheduler matrix.
//!
//! ## Why snapshots compose with every scheduler
//!
//! A snapshot is only taken between [`NetworkSim::run_until`] calls
//! (`export_snapshot` takes `&self`; a run holds `&mut self`). At that
//! boundary no scheduler-internal state exists: the event-driven wake
//! calendar is cleared and rebuilt at the top of every run, sharded
//! runs build their `Shard` structs per run, and `batch` is scratch.
//! The observable state is exactly {nodes, topology, channel,
//! calendars, trace, clock} — what this module serializes. In
//! particular a *mid-epoch* sharded snapshot cannot exist, which is
//! the safety argument for `Scheduler::Sharded` (DESIGN.md §11).
//!
//! Calendar FIFO order survives the round trip: entries are exported
//! sorted by `(time, insertion seq)` and re-`schedule`d in that order,
//! which reassigns fresh-but-ordered sequence numbers.
//!
//! Not captured, by design: the worker pool (rebuilt fresh; thread
//! count never affects results), telemetry (observation-only — call
//! [`NetworkSim::enable_telemetry`] again after restore), and AOT
//! artifacts (for [`snap_core::Engine::Aot`] nodes the restore re-runs
//! snap-lint's proof over the restored IMEM and recompiles — caches
//! are pure functions of state, and all tiers are bit-identical).

use crate::channel::{Channel, Transmission};
use crate::sim::{NetworkSim, Scheduler, Stimulus};
use crate::topology::Position;
use crate::trace::{Trace, TraceEvent, TraceKind, TraceMode};
use dess::SimTime;
use snap_node::{Node, NodeId, NodeKind};
use snap_snapshot::fleet::{scheduler, stimulus, trace_kind, trace_mode};
use snap_snapshot::{
    ChannelSnapshot, DeliverySnap, FleetSnapshot, PositionSnap, SnapshotError, StimulusSnap,
    TraceEventSnap, TraceSnapshot, TransmissionSnap,
};

fn scheduler_to_wire(s: Scheduler) -> u8 {
    match s {
        Scheduler::Lockstep => scheduler::LOCKSTEP,
        Scheduler::EventDriven => scheduler::EVENT_DRIVEN,
        Scheduler::Sharded => scheduler::SHARDED,
        Scheduler::Auto => scheduler::AUTO,
    }
}

fn scheduler_from_wire(w: u8) -> Result<Scheduler, SnapshotError> {
    match w {
        scheduler::LOCKSTEP => Ok(Scheduler::Lockstep),
        scheduler::EVENT_DRIVEN => Ok(Scheduler::EventDriven),
        scheduler::SHARDED => Ok(Scheduler::Sharded),
        scheduler::AUTO => Ok(Scheduler::Auto),
        _ => Err(SnapshotError::Corrupt("scheduler discriminant")),
    }
}

fn tx_to_snap(tx: &Transmission) -> TransmissionSnap {
    TransmissionSnap {
        from: tx.from.0,
        word: tx.word,
        start_ps: tx.start.as_ps(),
        end_ps: tx.end.as_ps(),
    }
}

fn tx_from_snap(s: &TransmissionSnap) -> Transmission {
    Transmission {
        from: NodeId(s.from),
        word: s.word,
        start: SimTime::from_ps(s.start_ps),
        end: SimTime::from_ps(s.end_ps),
    }
}

fn trace_event_to_snap(e: &TraceEvent) -> TraceEventSnap {
    let (kind, payload, from) = match e.kind {
        TraceKind::Transmit { word } => (trace_kind::TRANSMIT, word, 0),
        TraceKind::Deliver { word, from } => (trace_kind::DELIVER, word, from.0),
        TraceKind::Collision { from } => (trace_kind::COLLISION, 0, from.0),
        TraceKind::Led { value } => (trace_kind::LED, value, 0),
        TraceKind::Stimulus => (trace_kind::STIMULUS, 0, 0),
        TraceKind::NodeDeath => (trace_kind::NODE_DEATH, 0, 0),
    };
    TraceEventSnap {
        at_ps: e.at_ps,
        node: e.node.0,
        kind,
        payload,
        from,
    }
}

fn trace_event_from_snap(s: &TraceEventSnap) -> Result<TraceEvent, SnapshotError> {
    let kind = match s.kind {
        trace_kind::TRANSMIT => TraceKind::Transmit { word: s.payload },
        trace_kind::DELIVER => TraceKind::Deliver {
            word: s.payload,
            from: NodeId(s.from),
        },
        trace_kind::COLLISION => TraceKind::Collision {
            from: NodeId(s.from),
        },
        trace_kind::LED => TraceKind::Led { value: s.payload },
        trace_kind::STIMULUS => TraceKind::Stimulus,
        trace_kind::NODE_DEATH => TraceKind::NodeDeath,
        _ => return Err(SnapshotError::Corrupt("trace event kind")),
    };
    Ok(TraceEvent {
        at_ps: s.at_ps,
        node: NodeId(s.node),
        kind,
    })
}

impl NetworkSim {
    /// Capture the complete observable fleet state. Call between runs —
    /// the borrow checker already guarantees no run is in progress.
    pub fn export_snapshot(&self) -> FleetSnapshot {
        let (active, collisions, deliveries, faded, loss, rng_state) = self.channel.export();
        let (events, mode, recorded, sealed) = self.trace.export();
        let (mode_wire, ring_cap) = match mode {
            TraceMode::Full => (trace_mode::FULL, 0),
            TraceMode::Ring(cap) => (trace_mode::RING, cap as u64),
            TraceMode::CountOnly => (trace_mode::COUNT_ONLY, 0),
        };
        FleetSnapshot {
            now_ps: self.now.as_ps(),
            scheduler: scheduler_to_wire(self.scheduler),
            num_shards: self.num_shards as u64,
            parallel_threshold: self.parallel_threshold as u64,
            trace_mode_explicit: self.trace_mode_explicit,
            range_bits: self.topology.range().to_bits(),
            positions: self
                .nodes
                .iter()
                .map(|n| {
                    let p = self
                        .topology
                        .position(n.id())
                        .expect("every node is placed");
                    PositionSnap {
                        node: n.id().0,
                        x_bits: p.x.to_bits(),
                        y_bits: p.y.to_bits(),
                    }
                })
                .collect(),
            nodes: self.nodes.iter().map(Node::export_snapshot).collect(),
            channel: ChannelSnapshot {
                active: active.iter().map(tx_to_snap).collect(),
                collisions,
                deliveries,
                faded,
                loss_bits: loss.to_bits(),
                rng_state,
            },
            deliveries: self
                .deliveries
                .snapshot_entries()
                .iter()
                .map(|(at, tx)| DeliverySnap {
                    at_ps: at.as_ps(),
                    tx: tx_to_snap(tx),
                })
                .collect(),
            stimuli: self
                .stimuli
                .snapshot_entries()
                .iter()
                .map(|&(at, (node, stim))| match stim {
                    Stimulus::SensorIrq => StimulusSnap {
                        at_ps: at.as_ps(),
                        node: node.0,
                        kind: stimulus::SENSOR_IRQ,
                        id: 0,
                        value: 0,
                    },
                    Stimulus::SensorReading { id, value } => StimulusSnap {
                        at_ps: at.as_ps(),
                        node: node.0,
                        kind: stimulus::SENSOR_READING,
                        id,
                        value,
                    },
                })
                .collect(),
            trace: TraceSnapshot {
                mode: mode_wire,
                ring_cap,
                recorded,
                sealed: sealed as u64,
                events: events.iter().map(trace_event_to_snap).collect(),
            },
        }
    }

    /// Rebuild a fleet from a snapshot. The restored simulation resumes
    /// bit-identically under every scheduler; for
    /// [`snap_core::Engine::Aot`] nodes the tier-2 image is recompiled
    /// from the restored IMEM (see the module docs).
    ///
    /// # Errors
    ///
    /// Rejects structurally invalid snapshots ([`SnapshotError::Corrupt`]).
    pub fn from_snapshot(snap: &FleetSnapshot) -> Result<NetworkSim, SnapshotError> {
        let range = f64::from_bits(snap.range_bits);
        if !range.is_finite() || range <= 0.0 {
            return Err(SnapshotError::Corrupt("radio range"));
        }
        let loss = f64::from_bits(snap.channel.loss_bits);
        if !loss.is_finite() || !(0.0..=1.0).contains(&loss) {
            return Err(SnapshotError::Corrupt("channel loss probability"));
        }
        if snap.positions.len() != snap.nodes.len() {
            return Err(SnapshotError::Corrupt("position/node count mismatch"));
        }
        let mut sim = NetworkSim::new(range);
        sim.now = SimTime::from_ps(snap.now_ps);
        sim.scheduler = scheduler_from_wire(snap.scheduler)?;
        sim.num_shards = (snap.num_shards.max(1)) as usize;
        sim.parallel_threshold = (snap.parallel_threshold.max(1)) as usize;
        sim.trace_mode_explicit = snap.trace_mode_explicit;

        let mut placed = Vec::with_capacity(snap.nodes.len());
        for (i, (ns, ps)) in snap.nodes.iter().zip(&snap.positions).enumerate() {
            // Ids are assigned sequentially from 1 and index the node
            // slot directly; a permuted snapshot is corrupt.
            if ns.id != i as u32 + 1 || ps.node != ns.id {
                return Err(SnapshotError::Corrupt("node id sequence"));
            }
            let x = f64::from_bits(ps.x_bits);
            let y = f64::from_bits(ps.y_bits);
            if !x.is_finite() || !y.is_finite() {
                return Err(SnapshotError::Corrupt("node position"));
            }
            let mut node = Node::from_snapshot(ns)?;
            // Tier-2 recompile: prove and compile against the restored
            // IMEM, exactly as loading the original program would have.
            // AVR motes restore from their own opaque state blob and
            // have no SNAP engine to recompile.
            if node.kind() != NodeKind::Avr && node.cpu().config().engine == snap_core::Engine::Aot
            {
                let analysis = snap_lint::analyze_image(
                    node.cpu().imem().as_words(),
                    node.cpu().config().operating_point,
                );
                let regions: Vec<snap_core::AotRegion> = analysis
                    .regions
                    .iter()
                    .map(|r| snap_core::AotRegion {
                        entry: r.entry,
                        addrs: r.addrs.clone(),
                    })
                    .collect();
                node.cpu_mut().install_aot(&regions);
            }
            placed.push((node.id(), Position::new(x, y)));
            sim.nodes.push(node);
        }
        sim.topology.place_many(placed);

        sim.channel = Channel::restore(
            snap.channel.active.iter().map(tx_from_snap).collect(),
            snap.channel.collisions,
            snap.channel.deliveries,
            snap.channel.faded,
            loss,
            snap.channel.rng_state,
        );
        for d in &snap.deliveries {
            sim.deliveries
                .schedule(SimTime::from_ps(d.at_ps), tx_from_snap(&d.tx));
        }
        for s in &snap.stimuli {
            let stim = match s.kind {
                stimulus::SENSOR_IRQ => Stimulus::SensorIrq,
                stimulus::SENSOR_READING => Stimulus::SensorReading {
                    id: s.id,
                    value: s.value,
                },
                _ => return Err(SnapshotError::Corrupt("stimulus kind")),
            };
            sim.stimuli
                .schedule(SimTime::from_ps(s.at_ps), (NodeId(s.node), stim));
        }
        let mode = match snap.trace.mode {
            trace_mode::FULL => TraceMode::Full,
            trace_mode::RING => TraceMode::Ring((snap.trace.ring_cap.max(1)) as usize),
            trace_mode::COUNT_ONLY => TraceMode::CountOnly,
            _ => return Err(SnapshotError::Corrupt("trace mode")),
        };
        let events = snap
            .trace
            .events
            .iter()
            .map(trace_event_from_snap)
            .collect::<Result<Vec<_>, _>>()?;
        sim.trace = Trace::restore(
            events,
            mode,
            snap.trace.recorded,
            snap.trace.sealed as usize,
        );
        Ok(sim)
    }
}
