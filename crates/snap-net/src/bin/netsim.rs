//! `netsim` — run a multi-node SNAP network scenario from the command
//! line and export its telemetry.
//!
//! ```text
//! netsim [--app mac|blink|sense] [--nodes N] [--grid WxH] [--ms N]
//!        [--vdd 1.8|0.9|0.6] [--shards N] [--engine interp|fused|aot]
//!        [--metrics OUT.json] [--trace-out OUT.trace.json] [--jsonl OUT.jsonl]
//! ```
//!
//! Scenarios (all built from the `snap-apps` benchmark handlers):
//!
//! * `mac` (default, 3 nodes) — nodes in a line, 5 m apart, 10 m radio
//!   range; node 1 sends a MAC packet to node 2 on each of three
//!   scheduled sensor interrupts, every other node listens.
//! * `blink` — independent Blink nodes (no radio traffic).
//! * `sense` — independent periodic sense-and-log nodes.
//!
//! `--grid WxH` lays the nodes out on a W×H grid (8 m pitch) instead
//! of a line, overriding `--nodes` with W·H. `--shards N` switches to
//! the sharded scheduler with N parallel wake calendars — the scalable
//! path for very large fleets; by default the scheduler picks itself
//! by fleet size. `--engine` selects the per-node translation tier
//! (default `fused`; `aot` compiles snap-lint-proven handlers ahead of
//! time). Every scheduler and engine combination is bit-identical.
//!
//! Exports: `--metrics` writes the `snap-metrics-v1` report,
//! `--trace-out` a Chrome `trace_event` file (open it at
//! <https://ui.perfetto.dev> — one track per node), `--jsonl` the raw
//! network-event trace as JSON lines. All formats are documented in
//! `docs/OBSERVABILITY.md`.

use dess::{SimDuration, SimTime};
use snap_apps::blink::blink_program;
use snap_apps::mac::{mac_program, send_on_irq_app, RX_DISPATCH_STUB};
use snap_apps::prelude::install_handler;
use snap_apps::sense::sense_program;
use snap_core::CoreConfig;
use snap_net::{NetworkSim, Position, Stimulus};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut app = String::from("mac");
    let mut nodes: usize = 3;
    let mut grid: Option<(usize, usize)> = None;
    let mut millis: u64 = 50;
    let mut vdd = String::from("1.8");
    let mut shards: Option<usize> = None;
    let mut engine = snap_core::Engine::Fused;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut jsonl_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |flag: &str| match args.next() {
            Some(v) => Ok(v),
            None => Err(format!("{flag} requires a value")),
        };
        let result = match arg.as_str() {
            "--app" => take("--app").map(|v| app = v),
            "--nodes" => take("--nodes").and_then(|v| {
                v.parse()
                    .map(|n: usize| nodes = n.max(1))
                    .map_err(|_| "--nodes requires a number".to_string())
            }),
            "--grid" => take("--grid").and_then(|v| parse_grid(&v).map(|wh| grid = Some(wh))),
            "--ms" => take("--ms").and_then(|v| {
                v.parse()
                    .map(|n| millis = n)
                    .map_err(|_| "--ms requires a number".to_string())
            }),
            "--shards" => take("--shards").and_then(|v| {
                v.parse()
                    .map(|n: usize| shards = Some(n.max(1)))
                    .map_err(|_| "--shards requires a number".to_string())
            }),
            "--vdd" => take("--vdd").map(|v| vdd = v),
            "--engine" => take("--engine").and_then(|v| match v.as_str() {
                "interp" => {
                    engine = snap_core::Engine::Interp;
                    Ok(())
                }
                "fused" => {
                    engine = snap_core::Engine::Fused;
                    Ok(())
                }
                "aot" => {
                    engine = snap_core::Engine::Aot;
                    Ok(())
                }
                other => Err(format!("unknown engine `{other}` (interp, fused or aot)")),
            }),
            "--metrics" => take("--metrics").map(|v| metrics_out = Some(v)),
            "--trace-out" => take("--trace-out").map(|v| trace_out = Some(v)),
            "--jsonl" => take("--jsonl").map(|v| jsonl_out = Some(v)),
            "--help" | "-h" => return usage(""),
            other => Err(format!("unknown argument `{other}`")),
        };
        if let Err(e) = result {
            return usage(&e);
        }
    }

    let point = match vdd.as_str() {
        "1.8" => snap_energy::OperatingPoint::V1_8,
        "0.9" => snap_energy::OperatingPoint::V0_9,
        "0.6" => snap_energy::OperatingPoint::V0_6,
        other => return usage(&format!("unsupported vdd `{other}` (1.8, 0.9 or 0.6)")),
    };
    let core = CoreConfig {
        engine,
        ..CoreConfig::at(point)
    };

    let mut sim = NetworkSim::new(10.0);
    sim.enable_telemetry();
    if let Some(n) = shards {
        sim.set_scheduler(snap_net::sim::Scheduler::Sharded);
        sim.set_shards(n);
    }
    if let Some((w, h)) = grid {
        nodes = w * h;
    }
    if let Err(e) = build_scenario(&mut sim, &app, nodes, grid, core) {
        return usage(&e);
    }
    if let Err(e) = sim.run_until(SimTime::ZERO + SimDuration::from_ms(millis)) {
        eprintln!("netsim: node fault: {e}");
        return ExitCode::FAILURE;
    }

    // Run summary on stdout; file exports as requested.
    let mut instructions = 0u64;
    let mut energy_pj = 0.0f64;
    for id in 1..=sim.node_count() as u32 {
        let stats = sim.node(snap_node::NodeId(id)).cpu().stats();
        instructions += stats.instructions;
        energy_pj += stats.energy.as_pj();
    }
    println!("app:          {app} ({nodes} nodes, {millis} ms at {vdd} V)");
    println!("instructions: {instructions}");
    println!("energy:       {:.3} nJ total", energy_pj / 1000.0);
    println!(
        "channel:      {} delivered, {} collided, {} faded",
        sim.channel().deliveries(),
        sim.channel().collisions(),
        sim.channel().faded()
    );

    let vdd_v: f64 = vdd.parse().expect("validated above");
    if let Some(path) = metrics_out {
        let report = sim.metrics_report("netsim", vdd_v);
        if let Err(e) = std::fs::write(&path, report.to_pretty()) {
            eprintln!("netsim: {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics:      {path}");
    }
    if let Some(path) = trace_out {
        if let Err(e) = std::fs::write(&path, sim.chrome_trace().to_json()) {
            eprintln!("netsim: {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("trace-out:    {path}");
    }
    if let Some(path) = jsonl_out {
        if let Err(e) = std::fs::write(&path, sim.trace().to_json_lines()) {
            eprintln!("netsim: {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("jsonl:        {path}");
    }
    ExitCode::SUCCESS
}

/// Parse a `WxH` grid spec.
fn parse_grid(spec: &str) -> Result<(usize, usize), String> {
    let err = || format!("--grid requires WxH (e.g. 100x100), got `{spec}`");
    let (w, h) = spec.split_once(['x', 'X']).ok_or_else(err)?;
    let w: usize = w.parse().map_err(|_| err())?;
    let h: usize = h.parse().map_err(|_| err())?;
    if w == 0 || h == 0 {
        return Err(err());
    }
    Ok((w, h))
}

/// Populate the network for one named scenario.
fn build_scenario(
    sim: &mut NetworkSim,
    app: &str,
    nodes: usize,
    grid: Option<(usize, usize)>,
    core: CoreConfig,
) -> Result<(), String> {
    let position = move |i: usize| match grid {
        Some((w, _)) => Position::new((i % w) as f64 * 8.0, (i / w) as f64 * 8.0),
        None => Position::new(i as f64 * 5.0, 0.0),
    };
    match app {
        "mac" => {
            // Node 1 sends to node 2 on sensor interrupts; everyone
            // else listens. This is the 3-node scenario the docs walk
            // through in Perfetto.
            let extra = install_handler("EV_IRQ", "app_send_irq");
            let tx_app = format!("{}{}", send_on_irq_app(2), RX_DISPATCH_STUB);
            let sender_prog = mac_program(1, &extra, &tx_app).map_err(|e| format!("mac: {e}"))?;
            let sender = sim.add_node_with_core(&sender_prog, position(0), core);
            for i in 1..nodes {
                let prog = mac_program(i as u8 + 1, "", RX_DISPATCH_STUB)
                    .map_err(|e| format!("mac: {e}"))?;
                sim.add_node_with_core(&prog, position(i), core);
            }
            for ms in [2u64, 12, 22] {
                sim.schedule(
                    sender,
                    SimTime::ZERO + SimDuration::from_ms(ms),
                    Stimulus::SensorIrq,
                );
            }
        }
        "blink" => {
            let prog = blink_program().map_err(|e| format!("blink: {e}"))?;
            sim.add_nodes_from(&prog, core, (0..nodes).map(position));
        }
        "sense" => {
            let prog = sense_program().map_err(|e| format!("sense: {e}"))?;
            sim.add_nodes_from(&prog, core, (0..nodes).map(position));
        }
        other => return Err(format!("unknown app `{other}` (mac, blink or sense)")),
    }
    Ok(())
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("netsim: {err}");
    }
    eprintln!(
        "usage: netsim [--app mac|blink|sense] [--nodes N] [--grid WxH] [--ms N] \
         [--vdd 1.8|0.9|0.6] [--shards N] [--engine interp|fused|aot] \
         [--metrics OUT.json] [--trace-out OUT.trace.json] [--jsonl OUT.jsonl]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
