//! The broadcast radio channel with collision detection.
//!
//! Every transmission occupies the air for one word time (≈833 µs at
//! 19.2 kbps). A receiver hears a word only if exactly one audible
//! transmission overlapped the word's air time — two overlapping
//! audible transmissions garble each other (the standard disc-model
//! collision rule; the MAC's random backoff exists to avoid this).

use dess::{SimTime, SplitMix64};
use snap_isa::Word;
use snap_node::NodeId;

/// One word on the air.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transmission {
    /// The transmitting node.
    pub from: NodeId,
    /// The word.
    pub word: Word,
    /// Serialization start.
    pub start: SimTime,
    /// Serialization end (delivery instant).
    pub end: SimTime,
}

impl Transmission {
    /// `true` when two transmissions overlap in time.
    pub fn overlaps(&self, other: &Transmission) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// The channel: a log of recent transmissions for collision checks,
/// plus an optional random per-word loss (fading) model.
#[derive(Debug, Clone)]
pub struct Channel {
    active: Vec<Transmission>,
    collisions: u64,
    deliveries: u64,
    faded: u64,
    loss_probability: f64,
    rng: SplitMix64,
}

impl Default for Channel {
    fn default() -> Channel {
        Channel::new()
    }
}

impl Channel {
    /// An idle, lossless channel.
    pub fn new() -> Channel {
        Channel {
            active: Vec::new(),
            collisions: 0,
            deliveries: 0,
            faded: 0,
            loss_probability: 0.0,
            rng: SplitMix64::new(0x10_55),
        }
    }

    /// Add independent per-word, per-receiver random loss ("fading").
    /// Deterministic for a given seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= probability <= 1.0`.
    pub fn with_loss(mut self, probability: f64, seed: u64) -> Channel {
        self.set_loss(probability, seed);
        self
    }

    /// Enable random per-word loss in place: statistics and in-flight
    /// transmissions are preserved, only the fading model is replaced.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= probability <= 1.0`.
    pub fn set_loss(&mut self, probability: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&probability), "probability in [0, 1]");
        self.loss_probability = probability;
        self.rng = SplitMix64::new(seed);
    }

    /// Draw the fading dice for one word at one receiver. Returns
    /// `true` when the word fades away (and counts it).
    pub fn fades(&mut self) -> bool {
        if self.loss_probability == 0.0 {
            return false;
        }
        let lost = self.rng.next_f64() < self.loss_probability;
        if lost {
            self.faded += 1;
        }
        lost
    }

    /// Words lost to fading.
    pub fn faded(&self) -> u64 {
        self.faded
    }

    /// Record a transmission going on the air.
    pub fn transmit(&mut self, tx: Transmission) {
        self.active.push(tx);
    }

    /// Would `tx` be received cleanly by a listener that hears all of
    /// `audible_from`? Checks for any *other* audible transmission
    /// overlapping `tx` in time. `audible_from` must be id-sorted (the
    /// topology's cached neighbour lists are), so the audibility test
    /// is a binary search instead of a linear scan.
    pub fn is_clean(&self, tx: &Transmission, audible_from: &[NodeId]) -> bool {
        debug_assert!(audible_from.is_sorted());
        !self.active.iter().any(|other| {
            other != tx && audible_from.binary_search(&other.from).is_ok() && tx.overlaps(other)
        })
    }

    /// Account a clean delivery.
    pub fn note_delivery(&mut self) {
        self.deliveries += 1;
    }

    /// Account a collision-garbled word.
    pub fn note_collision(&mut self) {
        self.collisions += 1;
    }

    /// Drop transmissions that ended before `now` (no longer able to
    /// collide with anything in flight).
    pub fn expire(&mut self, now: SimTime) {
        self.active.retain(|t| t.end >= now);
    }

    /// Words delivered cleanly.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Words garbled by collisions.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// All state for a snapshot: `(active, collisions, deliveries,
    /// faded, loss_probability, rng state)`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn export(&self) -> (&[Transmission], u64, u64, u64, f64, u64) {
        (
            &self.active,
            self.collisions,
            self.deliveries,
            self.faded,
            self.loss_probability,
            self.rng.state(),
        )
    }

    /// Rebuild from a snapshot. `SplitMix64::new(state)` stores the
    /// state verbatim, so the fade-dice sequence resumes exactly. The
    /// caller has validated `loss_probability` (finite, in `[0, 1]`).
    pub(crate) fn restore(
        active: Vec<Transmission>,
        collisions: u64,
        deliveries: u64,
        faded: u64,
        loss_probability: f64,
        rng_state: u64,
    ) -> Channel {
        Channel {
            active,
            collisions,
            deliveries,
            faded,
            loss_probability,
            rng: SplitMix64::new(rng_state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dess::SimDuration;

    fn tx(from: u32, start_us: u64, end_us: u64) -> Transmission {
        Transmission {
            from: NodeId(from),
            word: 0xabcd,
            start: SimTime::ZERO + SimDuration::from_us(start_us),
            end: SimTime::ZERO + SimDuration::from_us(end_us),
        }
    }

    #[test]
    fn overlap_rules() {
        assert!(tx(1, 0, 833).overlaps(&tx(2, 100, 933)));
        assert!(
            !tx(1, 0, 833).overlaps(&tx(2, 833, 1666)),
            "back-to-back is clean"
        );
        assert!(tx(1, 0, 833).overlaps(&tx(2, 832, 1665)));
    }

    #[test]
    fn clean_when_alone() {
        let mut ch = Channel::new();
        let t = tx(1, 0, 833);
        ch.transmit(t);
        assert!(ch.is_clean(&t, &[NodeId(1), NodeId(2)]));
    }

    #[test]
    fn collision_when_overlapping_audible() {
        let mut ch = Channel::new();
        let t1 = tx(1, 0, 833);
        let t2 = tx(2, 400, 1233);
        ch.transmit(t1);
        ch.transmit(t2);
        assert!(!ch.is_clean(&t1, &[NodeId(1), NodeId(2)]));
        assert!(!ch.is_clean(&t2, &[NodeId(1), NodeId(2)]));
    }

    #[test]
    fn hidden_transmitter_does_not_collide() {
        // The overlapping transmitter is out of the receiver's range.
        let mut ch = Channel::new();
        let t1 = tx(1, 0, 833);
        let t2 = tx(3, 400, 1233);
        ch.transmit(t1);
        ch.transmit(t2);
        assert!(ch.is_clean(&t1, &[NodeId(1)]), "node 3 is inaudible here");
    }

    #[test]
    fn expiry_prunes_history() {
        let mut ch = Channel::new();
        ch.transmit(tx(1, 0, 833));
        ch.transmit(tx(2, 2000, 2833));
        ch.expire(SimTime::ZERO + SimDuration::from_us(1500));
        let t3 = tx(3, 100, 933);
        assert!(ch.is_clean(&t3, &[NodeId(1), NodeId(2), NodeId(3)]));
    }
}
