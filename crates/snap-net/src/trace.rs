//! A serializable trace of network-visible events.

use snap_isa::Word;
use snap_node::NodeId;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A word went on the air.
    Transmit {
        /// The word.
        word: Word,
    },
    /// A word was delivered cleanly to this node.
    Deliver {
        /// The word.
        word: Word,
        /// Who sent it.
        from: NodeId,
    },
    /// A word was garbled by a collision at this node.
    Collision {
        /// Who sent the garbled word.
        from: NodeId,
    },
    /// The node drove its LED port.
    Led {
        /// The driven value.
        value: u16,
    },
    /// An injected stimulus fired.
    Stimulus,
}

/// One trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulated time in picoseconds.
    pub at_ps: u64,
    /// The node involved.
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
}

/// The collected trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Record an event.
    pub fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events involving one node.
    pub fn for_node(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| e.node == node)
    }

    /// Count events matching a predicate.
    pub fn count<F: Fn(&TraceEvent) -> bool>(&self, pred: F) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// Render the trace as JSON lines (one event per line) for external
    /// analysis. Hand-rolled writer: the event structure is flat and
    /// the workspace deliberately avoids a JSON dependency.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let (kind, detail) = match e.kind {
                TraceKind::Transmit { word } => ("transmit", format!(r#","word":{word}"#)),
                TraceKind::Deliver { word, from } => {
                    ("deliver", format!(r#","word":{word},"from":{}"#, from.0))
                }
                TraceKind::Collision { from } => ("collision", format!(r#","from":{}"#, from.0)),
                TraceKind::Led { value } => ("led", format!(r#","value":{value}"#)),
                TraceKind::Stimulus => ("stimulus", String::new()),
            };
            out.push_str(&format!(
                r#"{{"at_ps":{},"node":{},"kind":"{kind}"{detail}}}"#,
                e.at_ps, e.node.0
            ));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_output() {
        let mut t = Trace::new();
        t.record(TraceEvent {
            at_ps: 5,
            node: NodeId(2),
            kind: TraceKind::Deliver {
                word: 7,
                from: NodeId(1),
            },
        });
        t.record(TraceEvent {
            at_ps: 9,
            node: NodeId(2),
            kind: TraceKind::Stimulus,
        });
        let json = t.to_json_lines();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"at_ps":5,"node":2,"kind":"deliver","word":7,"from":1}"#
        );
        assert_eq!(lines[1], r#"{"at_ps":9,"node":2,"kind":"stimulus"}"#);
    }

    #[test]
    fn record_and_filter() {
        let mut t = Trace::new();
        t.record(TraceEvent {
            at_ps: 1,
            node: NodeId(1),
            kind: TraceKind::Transmit { word: 5 },
        });
        t.record(TraceEvent {
            at_ps: 2,
            node: NodeId(2),
            kind: TraceKind::Led { value: 1 },
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.for_node(NodeId(1)).count(), 1);
        assert_eq!(t.count(|e| matches!(e.kind, TraceKind::Led { .. })), 1);
    }
}
