//! A serializable trace of network-visible events.

use snap_isa::Word;
use snap_node::NodeId;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A word went on the air.
    Transmit {
        /// The word.
        word: Word,
    },
    /// A word was delivered cleanly to this node.
    Deliver {
        /// The word.
        word: Word,
        /// Who sent it.
        from: NodeId,
    },
    /// A word was garbled by a collision at this node.
    Collision {
        /// Who sent the garbled word.
        from: NodeId,
    },
    /// The node drove its LED port.
    Led {
        /// The driven value.
        value: u16,
    },
    /// An injected stimulus fired.
    Stimulus,
    /// The node exhausted its battery budget and froze.
    NodeDeath,
}

/// One trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulated time in picoseconds.
    pub at_ps: u64,
    /// The node involved.
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
}

/// How a [`Trace`] stores what it records.
///
/// Long benchmark runs record millions of events; keeping them all
/// ([`TraceMode::Full`], the default) would make trace memory — not
/// simulation — the bottleneck. Ring mode keeps a sliding tail for
/// post-mortems; count-only mode keeps nothing but the total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Keep every event (the default; what tests compare).
    #[default]
    Full,
    /// Keep only the most recent `cap` events (`cap >= 1`).
    Ring(usize),
    /// Keep no events, only the running total.
    CountOnly,
}

/// The collected trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    mode: TraceMode,
    recorded: u64,
    /// Buffer index below which events are already in canonical order
    /// (see [`Trace::seal`]).
    sealed: usize,
}

/// Canonical intra-chunk sort key (see [`Trace::seal`]). The `class`
/// component encodes which side of a chunk boundary an event at the
/// boundary instant belongs to: node-produced events (`Transmit`,
/// `Led`) have timestamps strictly inside the chunk that produced them,
/// while channel/stimulus events (`Deliver`, `Collision`, `Stimulus`)
/// are applied at the *start* of the chunk that consumes them. Sorting
/// by `(at_ps, class, …)` therefore orders any concatenation of sealed
/// chunks identically, regardless of where the scheduler happened to
/// place its chunk boundaries. The remaining components cover every
/// event field, so the key is total: equal keys mean equal events.
fn canonical_key(e: &TraceEvent) -> (u64, u8, u32, u8, u32, u16) {
    let (class, rank, from, payload) = match e.kind {
        TraceKind::Transmit { word } => (0, 0, 0, word),
        TraceKind::Led { value } => (0, 1, 0, value),
        TraceKind::NodeDeath => (0, 2, 0, 0),
        TraceKind::Deliver { word, from } => (1, 0, from.0, word),
        TraceKind::Collision { from } => (1, 1, from.0, 0),
        TraceKind::Stimulus => (1, 2, 0, 0),
    };
    (e.at_ps, class, e.node.0, rank, from, payload)
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Switch storage mode. Shrinks (ring) or discards (count-only) the
    /// events already held so the new bound applies immediately.
    pub fn set_mode(&mut self, mode: TraceMode) {
        self.mode = mode;
        match mode {
            TraceMode::Full => {}
            TraceMode::Ring(cap) => {
                let cap = cap.max(1);
                if self.events.len() > cap {
                    let dropped = self.events.len() - cap;
                    self.events.drain(..dropped);
                    self.sealed = self.sealed.saturating_sub(dropped);
                }
            }
            TraceMode::CountOnly => {
                self.events = Vec::new();
                self.sealed = 0;
            }
        }
    }

    /// The active storage mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Record an event.
    pub fn record(&mut self, event: TraceEvent) {
        self.recorded += 1;
        match self.mode {
            TraceMode::Full => self.events.push(event),
            TraceMode::Ring(cap) => {
                let cap = cap.max(1);
                // Amortized eviction: let the buffer grow to 2*cap,
                // then drop the stale half in one memmove, so `events`
                // stays a plain slice (no ring-buffer index juggling
                // at every call site) at O(1) amortized cost.
                if self.events.len() >= cap * 2 {
                    let dropped = self.events.len() - (cap - 1);
                    self.events.drain(..dropped);
                    self.sealed = self.sealed.saturating_sub(dropped);
                }
                self.events.push(event);
            }
            TraceMode::CountOnly => {}
        }
    }

    /// Total events recorded, including any no longer retained.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Canonically order the events recorded since the last `seal`.
    ///
    /// Schedulers call this at every chunk boundary (scheduling window
    /// or shard epoch). Within a chunk, nodes execute in arbitrary
    /// order — whichever batch layout or shard the scheduler chose — so
    /// raw recording order is scheduler-dependent. Sorting each chunk
    /// by a canonical total key makes the final trace a pure function
    /// of simulated behaviour: every scheduler produces the identical
    /// event vector (the equivalence suite relies on this). In ring
    /// mode, events evicted before their chunk was sealed are simply
    /// gone; the retained tail is still sorted per chunk.
    pub fn seal(&mut self) {
        self.events[self.sealed..].sort_unstable_by_key(canonical_key);
        self.sealed = self.events.len();
    }

    /// Retained events, in recording order (in ring mode: the most
    /// recent `cap` events; in count-only mode: empty). The ring's
    /// backing buffer transiently holds up to 2×cap — this slices off
    /// the stale prefix.
    pub fn events(&self) -> &[TraceEvent] {
        match self.mode {
            TraceMode::Ring(cap) => {
                let cap = cap.max(1);
                &self.events[self.events.len().saturating_sub(cap)..]
            }
            _ => &self.events,
        }
    }

    /// Retained events involving one node.
    pub fn for_node(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events().iter().filter(move |e| e.node == node)
    }

    /// Count retained events matching a predicate.
    pub fn count<F: Fn(&TraceEvent) -> bool>(&self, pred: F) -> usize {
        self.events().iter().filter(|e| pred(e)).count()
    }

    /// All state for a snapshot: `(events, mode, recorded, sealed)`.
    pub(crate) fn export(&self) -> (&[TraceEvent], TraceMode, u64, usize) {
        (&self.events, self.mode, self.recorded, self.sealed)
    }

    /// Rebuild from a snapshot. `sealed` is clamped to the event count
    /// so a corrupt index cannot slice out of bounds later.
    pub(crate) fn restore(
        events: Vec<TraceEvent>,
        mode: TraceMode,
        recorded: u64,
        sealed: usize,
    ) -> Trace {
        Trace {
            sealed: sealed.min(events.len()),
            events,
            mode,
            recorded,
        }
    }

    /// Render the trace as JSON lines (one event per line) for external
    /// analysis. Hand-rolled writer: the event structure is flat and
    /// the workspace deliberately avoids a JSON dependency.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            let (kind, detail) = match e.kind {
                TraceKind::Transmit { word } => ("transmit", format!(r#","word":{word}"#)),
                TraceKind::Deliver { word, from } => {
                    ("deliver", format!(r#","word":{word},"from":{}"#, from.0))
                }
                TraceKind::Collision { from } => ("collision", format!(r#","from":{}"#, from.0)),
                TraceKind::Led { value } => ("led", format!(r#","value":{value}"#)),
                TraceKind::Stimulus => ("stimulus", String::new()),
                TraceKind::NodeDeath => ("node_death", String::new()),
            };
            out.push_str(&format!(
                r#"{{"at_ps":{},"node":{},"kind":"{kind}"{detail}}}"#,
                e.at_ps, e.node.0
            ));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_output() {
        let mut t = Trace::new();
        t.record(TraceEvent {
            at_ps: 5,
            node: NodeId(2),
            kind: TraceKind::Deliver {
                word: 7,
                from: NodeId(1),
            },
        });
        t.record(TraceEvent {
            at_ps: 9,
            node: NodeId(2),
            kind: TraceKind::Stimulus,
        });
        let json = t.to_json_lines();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"at_ps":5,"node":2,"kind":"deliver","word":7,"from":1}"#
        );
        assert_eq!(lines[1], r#"{"at_ps":9,"node":2,"kind":"stimulus"}"#);
    }

    #[test]
    fn ring_mode_keeps_most_recent_cap() {
        let mut t = Trace::new();
        t.set_mode(TraceMode::Ring(3));
        for i in 0..10u64 {
            t.record(TraceEvent {
                at_ps: i,
                node: NodeId(1),
                kind: TraceKind::Stimulus,
            });
        }
        assert_eq!(t.recorded(), 10);
        let kept: Vec<u64> = t.events().iter().map(|e| e.at_ps).collect();
        assert_eq!(kept, vec![7, 8, 9]);
        assert_eq!(t.count(|_| true), 3);
        assert_eq!(t.to_json_lines().lines().count(), 3);
    }

    #[test]
    fn count_only_mode_keeps_nothing() {
        let mut t = Trace::new();
        t.set_mode(TraceMode::CountOnly);
        for i in 0..5u64 {
            t.record(TraceEvent {
                at_ps: i,
                node: NodeId(1),
                kind: TraceKind::Stimulus,
            });
        }
        assert_eq!(t.recorded(), 5);
        assert!(t.events().is_empty());
    }

    #[test]
    fn switching_to_ring_shrinks_existing_events() {
        let mut t = Trace::new();
        for i in 0..6u64 {
            t.record(TraceEvent {
                at_ps: i,
                node: NodeId(1),
                kind: TraceKind::Stimulus,
            });
        }
        t.set_mode(TraceMode::Ring(2));
        let kept: Vec<u64> = t.events().iter().map(|e| e.at_ps).collect();
        assert_eq!(kept, vec![4, 5]);
        assert_eq!(t.recorded(), 6);
    }

    #[test]
    fn seal_orders_within_chunks_only() {
        // Two chunks; the second is recorded out of canonical order.
        let ev = |at_ps, node| TraceEvent {
            at_ps,
            node: NodeId(node),
            kind: TraceKind::Transmit { word: 1 },
        };
        let mut t = Trace::new();
        t.record(ev(5, 1));
        t.seal();
        t.record(ev(9, 2));
        t.record(ev(7, 3));
        t.record(ev(7, 1));
        t.seal();
        let order: Vec<(u64, u32)> = t.events().iter().map(|e| (e.at_ps, e.node.0)).collect();
        assert_eq!(order, vec![(5, 1), (7, 1), (7, 3), (9, 2)]);
        // Same instant: channel-side events sort after node-produced
        // ones — they belong to the chunk that consumes the instant.
        let mut t = Trace::new();
        t.record(TraceEvent {
            at_ps: 7,
            node: NodeId(9),
            kind: TraceKind::Deliver {
                word: 1,
                from: NodeId(1),
            },
        });
        t.record(ev(7, 1));
        t.seal();
        assert!(matches!(t.events()[0].kind, TraceKind::Transmit { .. }));
        assert!(matches!(t.events()[1].kind, TraceKind::Deliver { .. }));
    }

    #[test]
    fn seal_survives_ring_evictions() {
        let mut t = Trace::new();
        t.set_mode(TraceMode::Ring(2));
        for i in 0..9u64 {
            t.record(TraceEvent {
                at_ps: 10 - i, // deliberately decreasing
                node: NodeId(1),
                kind: TraceKind::Stimulus,
            });
            t.seal();
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.recorded(), 9);
    }

    #[test]
    fn record_and_filter() {
        let mut t = Trace::new();
        t.record(TraceEvent {
            at_ps: 1,
            node: NodeId(1),
            kind: TraceKind::Transmit { word: 5 },
        });
        t.record(TraceEvent {
            at_ps: 2,
            node: NodeId(2),
            kind: TraceKind::Led { value: 1 },
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.for_node(NodeId(1)).count(), 1);
        assert_eq!(t.count(|e| matches!(e.kind, TraceKind::Led { .. })), 1);
    }
}
