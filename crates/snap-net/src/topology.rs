//! Node positions and radio connectivity.

use snap_node::NodeId;
use std::collections::BTreeMap;

/// A 2-D node position (unit-free; range uses the same unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Position {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Position {
    /// A position.
    pub fn new(x: f64, y: f64) -> Position {
        Position { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Placement of nodes plus the (disc-model) radio range.
///
/// Connectivity is queried far more often than it changes (every
/// delivery consults it; placement happens at setup), so each node's
/// neighbour list is cached sorted and rebuilt whenever a node is
/// placed or moved. The disc model is symmetric, so one list per node
/// doubles as both "who hears `n`" and "who `n` hears".
#[derive(Debug, Clone)]
pub struct Topology {
    positions: BTreeMap<NodeId, Position>,
    range: f64,
    neighbours: BTreeMap<NodeId, Vec<NodeId>>,
}

impl Topology {
    /// An empty topology with the given radio range.
    ///
    /// # Panics
    ///
    /// Panics unless `range` is positive.
    pub fn new(range: f64) -> Topology {
        assert!(range > 0.0, "radio range must be positive");
        Topology {
            positions: BTreeMap::new(),
            range,
            neighbours: BTreeMap::new(),
        }
    }

    /// Place (or move) a node; updates the neighbour cache
    /// incrementally — one distance check against each placed node, so
    /// building an n-node topology costs O(n²) total instead of the
    /// O(n³) a full rebuild per placement would.
    pub fn place(&mut self, node: NodeId, position: Position) {
        let moved = self.positions.insert(node, position).is_some();
        if moved {
            // The node's old in-range set is unknown now; drop it from
            // every list and re-derive from the new position.
            for list in self.neighbours.values_mut() {
                if let Ok(i) = list.binary_search(&node) {
                    list.remove(i);
                }
            }
        }
        let mut mine = Vec::new();
        for (&other, other_pos) in &self.positions {
            if other == node || position.distance(other_pos) > self.range {
                continue;
            }
            mine.push(other); // id order: BTreeMap iteration order
            let list = self.neighbours.entry(other).or_default();
            if let Err(i) = list.binary_search(&node) {
                list.insert(i, node);
            }
        }
        self.neighbours.insert(node, mine);
    }

    /// The node's position, if placed.
    pub fn position(&self, node: NodeId) -> Option<Position> {
        self.positions.get(&node).copied()
    }

    /// The radio range.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// `true` when `b` can hear `a` (disc model; a node never hears
    /// itself).
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        match (self.positions.get(&a), self.positions.get(&b)) {
            (Some(pa), Some(pb)) => pa.distance(pb) <= self.range,
            _ => false,
        }
    }

    /// All placed nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.positions.keys().copied()
    }

    /// Nodes within range of `from` (excluding `from`), in id order.
    /// By radio symmetry this is also the set of nodes `from` hears.
    pub fn neighbours(&self, from: NodeId) -> &[NodeId] {
        self.neighbours.get(&from).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn disc_connectivity() {
        let mut t = Topology::new(10.0);
        t.place(NodeId(1), Position::new(0.0, 0.0));
        t.place(NodeId(2), Position::new(6.0, 8.0)); // distance 10: in range
        t.place(NodeId(3), Position::new(20.0, 0.0));
        assert!(t.in_range(NodeId(1), NodeId(2)));
        assert!(t.in_range(NodeId(2), NodeId(1)));
        assert!(!t.in_range(NodeId(1), NodeId(3)));
        assert!(!t.in_range(NodeId(1), NodeId(1)), "no self-hearing");
        assert_eq!(t.neighbours(NodeId(1)), vec![NodeId(2)]);
    }

    #[test]
    fn neighbour_cache_rebuilds_on_move() {
        let mut t = Topology::new(10.0);
        t.place(NodeId(1), Position::new(0.0, 0.0));
        t.place(NodeId(2), Position::new(5.0, 0.0));
        assert_eq!(t.neighbours(NodeId(1)), vec![NodeId(2)]);
        // Re-placing a node must refresh every cached neighbourhood.
        t.place(NodeId(2), Position::new(50.0, 0.0));
        assert!(t.neighbours(NodeId(1)).is_empty());
        assert!(t.neighbours(NodeId(2)).is_empty());
        t.place(NodeId(3), Position::new(45.0, 0.0));
        assert_eq!(t.neighbours(NodeId(2)), vec![NodeId(3)]);
        assert_eq!(t.neighbours(NodeId(3)), vec![NodeId(2)]);
        assert!(
            t.neighbours(NodeId(9)).is_empty(),
            "unknown id has no neighbours"
        );
    }

    #[test]
    fn unplaced_nodes_unreachable() {
        let mut t = Topology::new(5.0);
        t.place(NodeId(1), Position::new(0.0, 0.0));
        assert!(!t.in_range(NodeId(1), NodeId(9)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_range_rejected() {
        let _ = Topology::new(0.0);
    }
}
