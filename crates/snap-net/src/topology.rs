//! Node positions and radio connectivity.

use snap_node::NodeId;
use std::collections::{BTreeMap, HashMap};

/// A 2-D node position (unit-free; range uses the same unit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Position {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Position {
    /// A position.
    pub fn new(x: f64, y: f64) -> Position {
        Position { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Placement of nodes plus the (disc-model) radio range.
///
/// Connectivity is queried far more often than it changes (every
/// delivery consults it; placement happens at setup), so each node's
/// neighbour list is cached sorted and rebuilt whenever a node is
/// placed or moved. The disc model is symmetric, so one list per node
/// doubles as both "who hears `n`" and "who `n` hears".
///
/// Positions are additionally hashed into square grid cells whose side
/// equals the radio range, so every in-range candidate for a node lives
/// in the 3×3 block of cells around it. Placement and neighbour-list
/// construction scan that block instead of every placed node, which is
/// what makes 10⁵–10⁶-node topologies constructible: [`place_many`]
/// bulk-inserts the whole fleet and then derives each neighbour list
/// from cell-local candidates only.
///
/// [`place_many`]: Topology::place_many
#[derive(Debug, Clone)]
pub struct Topology {
    positions: BTreeMap<NodeId, Position>,
    range: f64,
    neighbours: BTreeMap<NodeId, Vec<NodeId>>,
    /// Spatial hash: cell coordinate → placed nodes in that cell,
    /// id-sorted. Cell side length is exactly `range`.
    cells: HashMap<(i64, i64), Vec<NodeId>>,
}

impl Topology {
    /// An empty topology with the given radio range.
    ///
    /// # Panics
    ///
    /// Panics unless `range` is positive.
    pub fn new(range: f64) -> Topology {
        assert!(range > 0.0, "radio range must be positive");
        Topology {
            positions: BTreeMap::new(),
            range,
            neighbours: BTreeMap::new(),
            cells: HashMap::new(),
        }
    }

    /// The grid cell containing `position` (cell side = radio range).
    fn cell_of(&self, position: Position) -> (i64, i64) {
        (
            (position.x / self.range).floor() as i64,
            (position.y / self.range).floor() as i64,
        )
    }

    /// The grid cell a placed node occupies, if placed. Cells have side
    /// length equal to the radio range, so all of a node's neighbours
    /// live in the 3×3 block centred on its cell — the property the
    /// sharded scheduler's spatial partitioning relies on.
    pub fn cell(&self, node: NodeId) -> Option<(i64, i64)> {
        self.positions.get(&node).map(|&p| self.cell_of(p))
    }

    /// Remove `node` from its cell list.
    fn cell_remove(&mut self, node: NodeId, position: Position) {
        let key = self.cell_of(position);
        if let Some(list) = self.cells.get_mut(&key) {
            if let Ok(i) = list.binary_search(&node) {
                list.remove(i);
            }
            if list.is_empty() {
                self.cells.remove(&key);
            }
        }
    }

    /// Insert `node` into its cell list (id-sorted).
    fn cell_insert(&mut self, node: NodeId, position: Position) {
        let key = self.cell_of(position);
        let list = self.cells.entry(key).or_default();
        if let Err(i) = list.binary_search(&node) {
            list.insert(i, node);
        }
    }

    /// In-range peers of `position` (excluding `node` itself), id-sorted,
    /// found by scanning the 3×3 cell block around `position`.
    fn in_range_peers(&self, node: NodeId, position: Position) -> Vec<NodeId> {
        let (cx, cy) = self.cell_of(position);
        let mut peers = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                let Some(list) = self.cells.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &other in list {
                    if other == node {
                        continue;
                    }
                    let other_pos = self.positions[&other];
                    if position.distance(&other_pos) <= self.range {
                        peers.push(other);
                    }
                }
            }
        }
        peers.sort_unstable();
        peers
    }

    /// Place (or move) a node; updates the neighbour cache
    /// incrementally. Candidate neighbours come from the 3×3 grid-cell
    /// block around the position, so each placement costs O(local
    /// density) rather than O(n).
    pub fn place(&mut self, node: NodeId, position: Position) {
        if let Some(old) = self.positions.insert(node, position) {
            // The node's old in-range set is exactly its cached
            // neighbour list; drop it from each of those lists and
            // re-derive from the new position.
            let old_neighbours = self.neighbours.remove(&node).unwrap_or_default();
            for other in old_neighbours {
                if let Some(list) = self.neighbours.get_mut(&other) {
                    if let Ok(i) = list.binary_search(&node) {
                        list.remove(i);
                    }
                }
            }
            self.cell_remove(node, old);
        }
        self.cell_insert(node, position);
        let mine = self.in_range_peers(node, position);
        for &other in &mine {
            let list = self.neighbours.entry(other).or_default();
            if let Err(i) = list.binary_search(&node) {
                list.insert(i, node);
            }
        }
        self.neighbours.insert(node, mine);
    }

    /// Place a batch of nodes at once.
    ///
    /// Equivalent to calling [`place`](Topology::place) for each entry,
    /// but neighbour lists are derived once after all positions land
    /// instead of being patched incrementally per placement — the fast
    /// path for constructing 10⁵–10⁶-node fleets.
    pub fn place_many<I>(&mut self, batch: I)
    where
        I: IntoIterator<Item = (NodeId, Position)>,
    {
        let mut placed = Vec::new();
        for (node, position) in batch {
            if let Some(old) = self.positions.insert(node, position) {
                // Re-placement falls back to the incremental move path
                // for the removal half; rare in bulk construction.
                let old_neighbours = self.neighbours.remove(&node).unwrap_or_default();
                for other in old_neighbours {
                    if let Some(list) = self.neighbours.get_mut(&other) {
                        if let Ok(i) = list.binary_search(&node) {
                            list.remove(i);
                        }
                    }
                }
                self.cell_remove(node, old);
            }
            self.cell_insert(node, position);
            placed.push((node, position));
        }
        // All positions are in the spatial hash now: derive each batch
        // node's full list in one cell-local scan, and splice the batch
        // node into the lists of in-range nodes from outside the batch.
        placed.sort_unstable_by_key(|&(node, _)| node);
        for &(node, position) in &placed {
            let mine = self.in_range_peers(node, position);
            for &other in &mine {
                if placed.binary_search_by_key(&other, |&(n, _)| n).is_ok() {
                    continue; // the batch peer derives its own full list
                }
                let list = self.neighbours.entry(other).or_default();
                if let Err(i) = list.binary_search(&node) {
                    list.insert(i, node);
                }
            }
            self.neighbours.insert(node, mine);
        }
    }

    /// The node's position, if placed.
    pub fn position(&self, node: NodeId) -> Option<Position> {
        self.positions.get(&node).copied()
    }

    /// The radio range.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// `true` when `b` can hear `a` (disc model; a node never hears
    /// itself).
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        match (self.positions.get(&a), self.positions.get(&b)) {
            (Some(pa), Some(pb)) => pa.distance(pb) <= self.range,
            _ => false,
        }
    }

    /// All placed nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.positions.keys().copied()
    }

    /// Nodes within range of `from` (excluding `from`), in id order.
    /// By radio symmetry this is also the set of nodes `from` hears.
    pub fn neighbours(&self, from: NodeId) -> &[NodeId] {
        self.neighbours.get(&from).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn disc_connectivity() {
        let mut t = Topology::new(10.0);
        t.place(NodeId(1), Position::new(0.0, 0.0));
        t.place(NodeId(2), Position::new(6.0, 8.0)); // distance 10: in range
        t.place(NodeId(3), Position::new(20.0, 0.0));
        assert!(t.in_range(NodeId(1), NodeId(2)));
        assert!(t.in_range(NodeId(2), NodeId(1)));
        assert!(!t.in_range(NodeId(1), NodeId(3)));
        assert!(!t.in_range(NodeId(1), NodeId(1)), "no self-hearing");
        assert_eq!(t.neighbours(NodeId(1)), vec![NodeId(2)]);
    }

    #[test]
    fn neighbour_cache_rebuilds_on_move() {
        let mut t = Topology::new(10.0);
        t.place(NodeId(1), Position::new(0.0, 0.0));
        t.place(NodeId(2), Position::new(5.0, 0.0));
        assert_eq!(t.neighbours(NodeId(1)), vec![NodeId(2)]);
        // Re-placing a node must refresh every cached neighbourhood.
        t.place(NodeId(2), Position::new(50.0, 0.0));
        assert!(t.neighbours(NodeId(1)).is_empty());
        assert!(t.neighbours(NodeId(2)).is_empty());
        t.place(NodeId(3), Position::new(45.0, 0.0));
        assert_eq!(t.neighbours(NodeId(2)), vec![NodeId(3)]);
        assert_eq!(t.neighbours(NodeId(3)), vec![NodeId(2)]);
        assert!(
            t.neighbours(NodeId(9)).is_empty(),
            "unknown id has no neighbours"
        );
    }

    #[test]
    fn unplaced_nodes_unreachable() {
        let mut t = Topology::new(5.0);
        t.place(NodeId(1), Position::new(0.0, 0.0));
        assert!(!t.in_range(NodeId(1), NodeId(9)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_range_rejected() {
        let _ = Topology::new(0.0);
    }

    #[test]
    fn place_many_matches_incremental_place() {
        // A crowded cluster straddling several grid cells, plus an
        // isolated outlier: bulk and incremental construction must
        // produce identical neighbour caches.
        let layout: Vec<(NodeId, Position)> = (0..40)
            .map(|i| {
                let (col, row) = (i % 8, i / 8);
                (
                    NodeId(i + 1),
                    Position::new(f64::from(col) * 4.0, f64::from(row) * 4.0),
                )
            })
            .chain([(NodeId(99), Position::new(500.0, -500.0))])
            .collect();
        let mut incremental = Topology::new(6.5);
        for &(node, pos) in &layout {
            incremental.place(node, pos);
        }
        let mut bulk = Topology::new(6.5);
        bulk.place_many(layout.iter().copied());
        for &(node, _) in &layout {
            assert_eq!(bulk.neighbours(node), incremental.neighbours(node));
            assert_eq!(bulk.position(node), incremental.position(node));
            assert_eq!(bulk.cell(node), incremental.cell(node));
        }
        assert!(bulk.neighbours(NodeId(99)).is_empty());
    }

    #[test]
    fn place_many_splices_into_existing_lists() {
        let mut t = Topology::new(10.0);
        t.place(NodeId(1), Position::new(0.0, 0.0));
        t.place_many([
            (NodeId(2), Position::new(3.0, 0.0)),
            (NodeId(3), Position::new(200.0, 0.0)),
        ]);
        assert_eq!(t.neighbours(NodeId(1)), vec![NodeId(2)]);
        assert_eq!(t.neighbours(NodeId(2)), vec![NodeId(1)]);
        assert!(t.neighbours(NodeId(3)).is_empty());
    }

    #[test]
    fn cells_span_the_radio_range() {
        let mut t = Topology::new(10.0);
        t.place(NodeId(1), Position::new(-0.5, 0.0));
        t.place(NodeId(2), Position::new(0.5, 0.0));
        assert_eq!(t.cell(NodeId(1)), Some((-1, 0)));
        assert_eq!(t.cell(NodeId(2)), Some((0, 0)));
        // Different cells, still neighbours: the 3×3 scan covers it.
        assert_eq!(t.neighbours(NodeId(1)), vec![NodeId(2)]);
        assert_eq!(t.cell(NodeId(9)), None);
    }
}
