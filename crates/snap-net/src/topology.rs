//! Node positions and radio connectivity.

use serde::{Deserialize, Serialize};
use snap_node::NodeId;
use std::collections::BTreeMap;

/// A 2-D node position (unit-free; range uses the same unit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Position {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Position {
    /// A position.
    pub fn new(x: f64, y: f64) -> Position {
        Position { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Placement of nodes plus the (disc-model) radio range.
#[derive(Debug, Clone)]
pub struct Topology {
    positions: BTreeMap<NodeId, Position>,
    range: f64,
}

impl Topology {
    /// An empty topology with the given radio range.
    ///
    /// # Panics
    ///
    /// Panics unless `range` is positive.
    pub fn new(range: f64) -> Topology {
        assert!(range > 0.0, "radio range must be positive");
        Topology { positions: BTreeMap::new(), range }
    }

    /// Place (or move) a node.
    pub fn place(&mut self, node: NodeId, position: Position) {
        self.positions.insert(node, position);
    }

    /// The node's position, if placed.
    pub fn position(&self, node: NodeId) -> Option<Position> {
        self.positions.get(&node).copied()
    }

    /// The radio range.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// `true` when `b` can hear `a` (disc model; a node never hears
    /// itself).
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return false;
        }
        match (self.positions.get(&a), self.positions.get(&b)) {
            (Some(pa), Some(pb)) => pa.distance(pb) <= self.range,
            _ => false,
        }
    }

    /// All placed nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.positions.keys().copied()
    }

    /// Nodes within range of `from` (excluding `from`).
    pub fn neighbours(&self, from: NodeId) -> Vec<NodeId> {
        self.nodes().filter(|&n| self.in_range(from, n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn disc_connectivity() {
        let mut t = Topology::new(10.0);
        t.place(NodeId(1), Position::new(0.0, 0.0));
        t.place(NodeId(2), Position::new(6.0, 8.0)); // distance 10: in range
        t.place(NodeId(3), Position::new(20.0, 0.0));
        assert!(t.in_range(NodeId(1), NodeId(2)));
        assert!(t.in_range(NodeId(2), NodeId(1)));
        assert!(!t.in_range(NodeId(1), NodeId(3)));
        assert!(!t.in_range(NodeId(1), NodeId(1)), "no self-hearing");
        assert_eq!(t.neighbours(NodeId(1)), vec![NodeId(2)]);
    }

    #[test]
    fn unplaced_nodes_unreachable() {
        let mut t = Topology::new(5.0);
        t.place(NodeId(1), Position::new(0.0, 0.0));
        assert!(!t.in_range(NodeId(1), NodeId(9)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_range_rejected() {
        let _ = Topology::new(0.0);
    }
}
