//! The lock-step network simulator.
//!
//! Nodes advance together to the next instant anything can happen (a
//! node handler, a timer, a word finishing serialization, an injected
//! stimulus). Running nodes get a bounded work window so the loop stays
//! efficient without letting any delivery or stimulus be skipped. When
//! the network is large, node windows execute on parallel threads
//! (nodes are independent between synchronization points).

use crate::channel::{Channel, Transmission};
use crate::pool::WorkerPool;
use crate::topology::{Position, Topology};
use crate::trace::{Trace, TraceEvent, TraceKind};
use dess::{Calendar, SimDuration, SimTime};
use snap_asm::Program;
use snap_isa::Word;
use snap_node::{Node, NodeConfig, NodeError, NodeId, NodeOutput};
use std::collections::BTreeMap;

/// Work window granted to running nodes per synchronization round.
const RUN_QUANTUM: SimDuration = SimDuration::from_us(100);

/// Default node count at which windows run on the worker pool.
pub const PARALLEL_THRESHOLD: usize = 8;

/// An external stimulus injected into a node on schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stimulus {
    /// Assert the node's sensor-interrupt pin.
    SensorIrq,
    /// Change a sensor's reading.
    SensorReading {
        /// Sensor id.
        id: u16,
        /// New value.
        value: Word,
    },
}

/// The multi-node network simulator.
pub struct NetworkSim {
    nodes: Vec<Node>,
    index: BTreeMap<NodeId, usize>,
    topology: Topology,
    channel: Channel,
    deliveries: Calendar<Transmission>,
    stimuli: Calendar<(NodeId, Stimulus)>,
    trace: Trace,
    now: SimTime,
    pool: WorkerPool,
    parallel_threshold: usize,
}

impl NetworkSim {
    /// An empty network with the given radio range.
    pub fn new(range: f64) -> NetworkSim {
        NetworkSim {
            nodes: Vec::new(),
            index: BTreeMap::new(),
            topology: Topology::new(range),
            channel: Channel::new(),
            deliveries: Calendar::new(),
            stimuli: Calendar::new(),
            trace: Trace::new(),
            now: SimTime::ZERO,
            pool: WorkerPool::new(),
            parallel_threshold: PARALLEL_THRESHOLD,
        }
    }

    /// Override the node count at which windows run on the worker pool
    /// (tests force it low/high to compare parallel vs sequential runs;
    /// both must produce bit-identical traces and energy totals).
    pub fn set_parallel_threshold(&mut self, threshold: usize) {
        self.parallel_threshold = threshold.max(1);
    }

    /// Add a node at `position` running `program`. Node ids are
    /// assigned sequentially from 1 — build each program with the
    /// matching MAC `node_id`.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit the node's memories.
    pub fn add_node(&mut self, program: &Program, position: Position) -> NodeId {
        let id = NodeId(self.nodes.len() as u16 + 1);
        let cfg = NodeConfig {
            id,
            ..NodeConfig::default()
        };
        let mut node = Node::new(cfg);
        node.load(program).expect("program fits the node memories");
        self.topology.place(id, position);
        self.index.insert(id, self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// The node with this id.
    ///
    /// # Panics
    ///
    /// Panics for unknown ids.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[self.index[&id]]
    }

    /// Mutable access to a node (fixtures: sensors, etc.).
    ///
    /// # Panics
    ///
    /// Panics for unknown ids.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[self.index[&id]]
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The channel statistics.
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// Enable random per-word loss (fading) on the channel.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= probability <= 1.0`.
    pub fn set_loss(&mut self, probability: f64, seed: u64) {
        self.channel.set_loss(probability, seed);
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Global simulation time reached so far.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule a stimulus for `node` at absolute time `at`.
    pub fn schedule(&mut self, node: NodeId, at: SimTime, stimulus: Stimulus) {
        self.stimuli.schedule(at, (node, stimulus));
    }

    /// Run the network until `t_end`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`NodeError`] from any node.
    pub fn run_until(&mut self, t_end: SimTime) -> Result<(), NodeError> {
        loop {
            let (next, later) = self.next_instants();
            let Some(t) = next else {
                self.advance_all(t_end)?;
                self.now = t_end;
                return Ok(());
            };
            if t >= t_end {
                self.advance_all(t_end)?;
                self.process_due(t_end);
                self.now = t_end;
                return Ok(());
            }
            // Window: up to the next *later* instant, capped by the
            // quantum, so running nodes execute efficiently but no
            // delivery or stimulus is overshot.
            let mut window_end = t + RUN_QUANTUM;
            if let Some(l) = later {
                window_end = window_end.min(l);
            }
            window_end = window_end.min(t_end).max(t + SimDuration::from_ps(1));
            self.advance_all(window_end)?;
            self.process_due(window_end);
            self.now = window_end;
        }
    }

    /// Run the network for `duration` from the current time.
    ///
    /// # Errors
    ///
    /// See [`NetworkSim::run_until`].
    pub fn run_for(&mut self, duration: SimDuration) -> Result<(), NodeError> {
        self.run_until(self.now + duration)
    }

    /// The earliest instant anything can happen, and the earliest
    /// instant strictly after it, in one pass over the calendars and
    /// all node activities.
    fn next_instants(&self) -> (Option<SimTime>, Option<SimTime>) {
        let mut first: Option<SimTime> = None;
        let mut second: Option<SimTime> = None;
        let mut consider = |cand: Option<SimTime>| {
            let Some(c) = cand else { return };
            match first {
                None => first = Some(c),
                Some(f) if c < f => {
                    second = Some(second.map_or(f, |s| s.min(f)));
                    first = Some(c);
                }
                Some(f) if c > f => {
                    second = Some(second.map_or(c, |s| s.min(c)));
                }
                Some(_) => {} // duplicate of the minimum
            }
        };
        consider(self.deliveries.peek_time());
        consider(self.stimuli.peek_time());
        for node in &self.nodes {
            consider(node.next_activity());
        }
        (first, second)
    }

    /// Advance every node to `deadline` (in parallel for big networks)
    /// and fold their outputs into the channel/trace.
    fn advance_all(&mut self, deadline: SimTime) -> Result<(), NodeError> {
        let results: Vec<Result<Vec<NodeOutput>, NodeError>> =
            if self.nodes.len() >= self.parallel_threshold {
                self.pool.run(&mut self.nodes, deadline)
            } else {
                self.nodes
                    .iter_mut()
                    .map(|node| node.run_until(deadline))
                    .collect()
            };

        for (i, result) in results.into_iter().enumerate() {
            let from = self.nodes[i].id();
            for output in result? {
                match output {
                    NodeOutput::Transmitted { word, start, end } => {
                        let tx = Transmission {
                            from,
                            word,
                            start,
                            end,
                        };
                        self.channel.transmit(tx);
                        self.deliveries.schedule(end, tx);
                        self.trace.record(TraceEvent {
                            at_ps: start.as_ps(),
                            node: from,
                            kind: TraceKind::Transmit { word },
                        });
                    }
                    NodeOutput::LedWrite { value, at } => {
                        self.trace.record(TraceEvent {
                            at_ps: at.as_ps(),
                            node: from,
                            kind: TraceKind::Led { value },
                        });
                    }
                    NodeOutput::RadioModeChanged { .. } => {}
                }
            }
        }
        Ok(())
    }

    /// Deliver transmissions and apply stimuli due at or before `t`.
    fn process_due(&mut self, t: SimTime) {
        while let Some(due) = self.deliveries.peek_time() {
            if due > t {
                break;
            }
            let (_, tx) = self.deliveries.pop().expect("peeked");
            self.deliver(tx);
        }
        while let Some(due) = self.stimuli.peek_time() {
            if due > t {
                break;
            }
            let (_, (id, stimulus)) = self.stimuli.pop().expect("peeked");
            self.apply_stimulus(id, stimulus, t);
        }
        // Keep a couple of word-times of history for overlap checks.
        let cutoff = SimTime::from_ps(t.as_ps().saturating_sub(SimDuration::from_ms(2).as_ps()));
        self.channel.expire(cutoff);
    }

    fn deliver(&mut self, tx: Transmission) {
        // Cached neighbour slices borrow `topology`; the loop mutates
        // only the disjoint `channel`/`nodes`/`trace` fields.
        let receivers = self.topology.neighbours(tx.from);
        for &id in receivers {
            // By symmetry, what `id` hears is exactly its neighbours.
            let audible = self.topology.neighbours(id);
            let clean = self.channel.is_clean(&tx, audible) && !self.channel.fades();
            let idx = self.index[&id];
            if clean {
                if self.nodes[idx].deliver_rx(tx.word) {
                    self.channel.note_delivery();
                    self.trace.record(TraceEvent {
                        at_ps: tx.end.as_ps(),
                        node: id,
                        kind: TraceKind::Deliver {
                            word: tx.word,
                            from: tx.from,
                        },
                    });
                }
            } else {
                self.channel.note_collision();
                self.trace.record(TraceEvent {
                    at_ps: tx.end.as_ps(),
                    node: id,
                    kind: TraceKind::Collision { from: tx.from },
                });
            }
        }
    }

    fn apply_stimulus(&mut self, id: NodeId, stimulus: Stimulus, at: SimTime) {
        let idx = self.index[&id];
        match stimulus {
            Stimulus::SensorIrq => {
                self.nodes[idx].trigger_sensor_irq();
            }
            Stimulus::SensorReading { id: sensor, value } => {
                self.nodes[idx].sensors_mut().set_reading(sensor, value);
            }
        }
        self.trace.record(TraceEvent {
            at_ps: at.as_ps(),
            node: id,
            kind: TraceKind::Stimulus,
        });
    }
}
