//! The network simulator: sleep-aware event-driven scheduling with a
//! lockstep reference path.
//!
//! SNAP/LE's thesis is that an event-driven node does *zero* work while
//! idle — the simulator mirrors the hardware. The default scheduler
//! keeps a **wake calendar** ([`dess::WakeQueue`]) of per-node
//! `next_activity` instants; each synchronization round pops only the
//! nodes due in the window, so simulation cost is proportional to
//! *active* nodes, not node count. Sleeping nodes are skipped entirely
//! and their clocks lazily fast-forwarded when an event finally reaches
//! them.
//!
//! The original lockstep scheduler (advance *every* node each round)
//! survives as [`Scheduler::Lockstep`], both as the reference for the
//! equivalence property tests and as the recorded bench baseline. Both
//! schedulers, and the parallel and sequential execution paths within
//! each, produce bit-identical traces, energy totals and architectural
//! state: they compute the very same window boundaries (the wake
//! calendar always mirrors what a full `next_activity` scan would
//! return) and apply deliveries/stimuli to nodes whose clocks sit at
//! the very same instants (skipped sleepers are synced to the window
//! end before anything is posted to them).

use crate::channel::{Channel, Transmission};
use crate::pool::WorkerPool;
use crate::topology::{Position, Topology};
use crate::trace::{Trace, TraceEvent, TraceKind, TraceMode};
use dess::{Calendar, SimDuration, SimTime, WakeQueue};
use snap_asm::Program;
use snap_core::CoreConfig;
use snap_isa::Word;
use snap_node::{Node, NodeConfig, NodeError, NodeId, NodeOutput};
use snap_telemetry::Histogram;

/// Work window granted to running nodes per synchronization round.
const RUN_QUANTUM: SimDuration = SimDuration::from_us(100);

/// Default node count at which windows run on the worker pool.
pub const PARALLEL_THRESHOLD: usize = 8;

/// Which scheduling strategy [`NetworkSim::run_until`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Advance every node every round (the original O(nodes)-per-round
    /// scheduler; reference implementation and bench baseline).
    Lockstep,
    /// Advance only nodes that are due, driven by the wake calendar
    /// (cost proportional to active nodes). The default.
    #[default]
    EventDriven,
}

/// An external stimulus injected into a node on schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stimulus {
    /// Assert the node's sensor-interrupt pin.
    SensorIrq,
    /// Change a sensor's reading.
    SensorReading {
        /// Sensor id.
        id: u16,
        /// New value.
        value: Word,
    },
}

/// The multi-node network simulator.
pub struct NetworkSim {
    nodes: Vec<Node>,
    topology: Topology,
    channel: Channel,
    deliveries: Calendar<Transmission>,
    stimuli: Calendar<(NodeId, Stimulus)>,
    trace: Trace,
    now: SimTime,
    pool: WorkerPool,
    parallel_threshold: usize,
    scheduler: Scheduler,
    /// Per-node-index wake instants (event-driven scheduler only).
    wake: WakeQueue,
    /// Scratch: node indices due in the current window, sorted.
    batch: Vec<usize>,
    /// When telemetry is on: distribution of nodes advanced per
    /// scheduler window, and every node gets per-dispatch sampling.
    window_activity: Option<Histogram>,
}

impl NetworkSim {
    /// An empty network with the given radio range.
    pub fn new(range: f64) -> NetworkSim {
        NetworkSim {
            nodes: Vec::new(),
            topology: Topology::new(range),
            channel: Channel::new(),
            deliveries: Calendar::new(),
            stimuli: Calendar::new(),
            trace: Trace::new(),
            now: SimTime::ZERO,
            pool: WorkerPool::new(),
            parallel_threshold: PARALLEL_THRESHOLD,
            scheduler: Scheduler::default(),
            wake: WakeQueue::new(),
            batch: Vec::new(),
            window_activity: None,
        }
    }

    /// Turn on the observability layer: per-dispatch handler sampling
    /// on every node (current and future) and the per-window
    /// active-node histogram. Observation only — simulated behaviour,
    /// timing and energy are unchanged (the determinism suites compare
    /// sampled and unsampled runs).
    pub fn enable_telemetry(&mut self) {
        for node in &mut self.nodes {
            node.cpu_mut()
                .enable_sampling(snap_telemetry::DEFAULT_RETAIN);
        }
        if self.window_activity.is_none() {
            self.window_activity = Some(Histogram::new());
        }
    }

    /// Whether [`NetworkSim::enable_telemetry`] was called.
    pub fn telemetry_enabled(&self) -> bool {
        self.window_activity.is_some()
    }

    /// The per-window active-node distribution (telemetry only).
    pub(crate) fn window_activity(&self) -> Option<&Histogram> {
        self.window_activity.as_ref()
    }

    /// Record how many nodes a scheduler window actually advanced.
    fn note_window(&mut self, active: usize) {
        if let Some(h) = &mut self.window_activity {
            h.record(active as f64);
        }
    }

    /// Override the node count at which windows run on the worker pool
    /// (tests force it low/high to compare parallel vs sequential runs;
    /// both must produce bit-identical traces and energy totals).
    pub fn set_parallel_threshold(&mut self, threshold: usize) {
        self.parallel_threshold = threshold.max(1);
    }

    /// Select the scheduling strategy (default:
    /// [`Scheduler::EventDriven`]). Both strategies produce
    /// bit-identical results; lockstep exists as the reference and
    /// baseline.
    pub fn set_scheduler(&mut self, scheduler: Scheduler) {
        self.scheduler = scheduler;
    }

    /// The active scheduling strategy.
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// Select how the trace stores events (default: keep everything).
    /// Bench scenarios use [`TraceMode::CountOnly`] so long sparse runs
    /// don't grow memory without bound.
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.trace.set_mode(mode);
    }

    /// Node ids are assigned sequentially from 1, so the node slot is
    /// directly addressable without a map lookup.
    fn idx(id: NodeId) -> usize {
        debug_assert!(id.0 >= 1, "node ids start at 1");
        usize::from(id.0) - 1
    }

    /// Add a node at `position` running `program`. Node ids are
    /// assigned sequentially from 1 — build each program with the
    /// matching MAC `node_id`.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit the node's memories.
    pub fn add_node(&mut self, program: &Program, position: Position) -> NodeId {
        self.add_node_with_core(program, position, CoreConfig::default())
    }

    /// [`NetworkSim::add_node`] with an explicit core configuration
    /// (operating point / timing model) — how `netsim --vdd` builds
    /// networks at 0.9 V or 0.6 V.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit the node's memories.
    pub fn add_node_with_core(
        &mut self,
        program: &Program,
        position: Position,
        core: CoreConfig,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u16 + 1);
        let cfg = NodeConfig {
            id,
            core,
            ..NodeConfig::default()
        };
        let mut node = Node::new(cfg);
        if self.telemetry_enabled() {
            node.cpu_mut()
                .enable_sampling(snap_telemetry::DEFAULT_RETAIN);
        }
        node.load(program).expect("program fits the node memories");
        self.topology.place(id, position);
        self.nodes.push(node);
        id
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node with this id.
    ///
    /// # Panics
    ///
    /// Panics for unknown ids.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[Self::idx(id)]
    }

    /// Mutable access to a node (fixtures: sensors, etc.).
    ///
    /// # Panics
    ///
    /// Panics for unknown ids.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[Self::idx(id)]
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The channel statistics.
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// Enable random per-word loss (fading) on the channel.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= probability <= 1.0`.
    pub fn set_loss(&mut self, probability: f64, seed: u64) {
        self.channel.set_loss(probability, seed);
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Global simulation time reached so far.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule a stimulus for `node` at absolute time `at`.
    pub fn schedule(&mut self, node: NodeId, at: SimTime, stimulus: Stimulus) {
        self.stimuli.schedule(at, (node, stimulus));
    }

    /// Run the network until `t_end`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`NodeError`] from any node.
    pub fn run_until(&mut self, t_end: SimTime) -> Result<(), NodeError> {
        match self.scheduler {
            Scheduler::Lockstep => self.run_lockstep(t_end),
            Scheduler::EventDriven => self.run_event_driven(t_end),
        }
    }

    /// Run the network for `duration` from the current time.
    ///
    /// # Errors
    ///
    /// See [`NetworkSim::run_until`].
    pub fn run_for(&mut self, duration: SimDuration) -> Result<(), NodeError> {
        self.run_until(self.now + duration)
    }

    // ---- lockstep scheduler (reference path) ----

    fn run_lockstep(&mut self, t_end: SimTime) -> Result<(), NodeError> {
        loop {
            let (next, later) = self.next_instants();
            let Some(t) = next else {
                self.advance_all(t_end)?;
                self.now = t_end;
                return Ok(());
            };
            if t >= t_end {
                self.advance_all(t_end)?;
                self.process_due(t_end);
                self.now = t_end;
                return Ok(());
            }
            let window_end = Self::window_end(t, later, t_end);
            self.note_window(self.nodes.len());
            self.advance_all(window_end)?;
            self.process_due(window_end);
            self.now = window_end;
        }
    }

    /// Window: up to the next *later* instant, capped by the quantum,
    /// so running nodes execute efficiently but no delivery or stimulus
    /// is overshot. Both schedulers use this formula — identical
    /// windows are what make their traces bit-identical.
    fn window_end(t: SimTime, later: Option<SimTime>, t_end: SimTime) -> SimTime {
        let mut window_end = t + RUN_QUANTUM;
        if let Some(l) = later {
            window_end = window_end.min(l);
        }
        window_end.min(t_end).max(t + SimDuration::from_ps(1))
    }

    /// The earliest instant anything can happen, and the earliest
    /// instant strictly after it, in one pass over the calendars and
    /// all node activities.
    fn next_instants(&self) -> (Option<SimTime>, Option<SimTime>) {
        let mut first: Option<SimTime> = None;
        let mut second: Option<SimTime> = None;
        let mut consider = |cand: Option<SimTime>| {
            let Some(c) = cand else { return };
            match first {
                None => first = Some(c),
                Some(f) if c < f => {
                    second = Some(second.map_or(f, |s| s.min(f)));
                    first = Some(c);
                }
                Some(f) if c > f => {
                    second = Some(second.map_or(c, |s| s.min(c)));
                }
                Some(_) => {} // duplicate of the minimum
            }
        };
        consider(self.deliveries.peek_time());
        consider(self.stimuli.peek_time());
        for node in &self.nodes {
            consider(node.next_activity());
        }
        (first, second)
    }

    /// Advance every node to `deadline` (in parallel for big networks)
    /// and fold their outputs into the channel/trace.
    fn advance_all(&mut self, deadline: SimTime) -> Result<(), NodeError> {
        let results: Vec<Result<Vec<NodeOutput>, NodeError>> =
            if self.nodes.len() >= self.parallel_threshold {
                self.pool.run(&mut self.nodes, deadline)
            } else {
                self.nodes
                    .iter_mut()
                    .map(|node| node.run_until(deadline))
                    .collect()
            };

        for (i, result) in results.into_iter().enumerate() {
            let from = self.nodes[i].id();
            let outputs = result?;
            self.fold_outputs(from, outputs);
        }
        Ok(())
    }

    // ---- event-driven scheduler (wake calendar) ----

    fn run_event_driven(&mut self, t_end: SimTime) -> Result<(), NodeError> {
        // Rebuild the calendar: anything may have changed through
        // `node_mut` (test fixtures poke sensors and CPUs directly)
        // since the last run. From here on it is maintained
        // incrementally — re-keyed only when something that can change
        // a node's wake time happens.
        self.wake.clear();
        for i in 0..self.nodes.len() {
            self.rekey(i);
        }
        loop {
            // The earliest instant anything can happen: the wake
            // calendar mirrors the per-node scan of the lockstep path.
            let mut first = self.wake.peek().map(|(t, _)| t);
            for cand in [self.deliveries.peek_time(), self.stimuli.peek_time()] {
                first = match (first, cand) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            let Some(t) = first else {
                // Nothing will ever happen again: sync clocks to the
                // horizon and stop (mirrors lockstep's tail).
                self.advance_all(t_end)?;
                self.now = t_end;
                return Ok(());
            };
            if t >= t_end {
                self.advance_all(t_end)?;
                self.process_due(t_end);
                self.now = t_end;
                return Ok(());
            }
            // Pop the nodes due at exactly `t`; the calendar's next
            // entry is then the earliest *later* node instant.
            self.batch.clear();
            while let Some((wt, i)) = self.wake.peek() {
                if wt > t {
                    break;
                }
                self.wake.pop();
                self.batch.push(i);
            }
            let mut later = self.wake.peek().map(|(wt, _)| wt);
            for c in [self.deliveries.peek_time(), self.stimuli.peek_time()]
                .into_iter()
                .flatten()
            {
                if c > t {
                    later = Some(later.map_or(c, |l| l.min(c)));
                }
            }
            let window_end = Self::window_end(t, later, t_end);
            // Nodes waking exactly at the window boundary belong to
            // this round too (lockstep advances them to `window_end`,
            // which wakes them).
            while let Some((wt, i)) = self.wake.peek() {
                if wt > window_end {
                    break;
                }
                self.wake.pop();
                self.batch.push(i);
            }
            // Outputs must fold in node-index order — the order the
            // lockstep fold over all nodes observes.
            self.batch.sort_unstable();
            self.note_window(self.batch.len());
            self.advance_batch(window_end)?;
            self.process_due_synced(window_end)?;
            self.now = window_end;
        }
    }

    /// Refresh node `i`'s wake-calendar entry from its current state.
    fn rekey(&mut self, i: usize) {
        match self.nodes[i].next_activity() {
            Some(t) => self.wake.set(i, t),
            None => self.wake.remove(i),
        }
    }

    /// Advance only the due nodes (in parallel when the batch is big)
    /// and fold their outputs; skipped nodes are untouched — that skip
    /// is the entire speedup.
    fn advance_batch(&mut self, deadline: SimTime) -> Result<(), NodeError> {
        let results: Vec<Result<Vec<NodeOutput>, NodeError>> =
            if self.batch.len() >= self.parallel_threshold {
                self.pool.run_subset(&mut self.nodes, &self.batch, deadline)
            } else {
                let nodes = &mut self.nodes;
                self.batch
                    .iter()
                    .map(|&i| nodes[i].run_until(deadline))
                    .collect()
            };
        for (b, result) in results.into_iter().enumerate() {
            let i = self.batch[b];
            let from = self.nodes[i].id();
            let outputs = result?;
            self.fold_outputs(from, outputs);
            self.rekey(i);
        }
        Ok(())
    }

    /// Bring a node that may have been skipped (lazily-synced clock) to
    /// the window boundary before an event is posted to it, exactly as
    /// the lockstep `advance_all` would have. For an already-advanced,
    /// halted, or quietly sleeping node this is a cheap no-op /
    /// `advance_idle`; it can execute no instructions and produce no
    /// outputs, because any node with work before `to` was in this
    /// window's batch.
    fn sync_node(&mut self, i: usize, to: SimTime) -> Result<(), NodeError> {
        let outputs = self.nodes[i].run_until(to)?;
        debug_assert!(outputs.is_empty(), "clock sync must not produce outputs");
        Ok(())
    }

    /// Deliver transmissions and apply stimuli due at or before `t`,
    /// fast-forwarding each involved node's clock to `t` first (the
    /// lockstep path has already advanced every node when its
    /// `process_due` runs; the event-driven path does it lazily, only
    /// for nodes events actually reach).
    fn process_due_synced(&mut self, t: SimTime) -> Result<(), NodeError> {
        while let Some(due) = self.deliveries.peek_time() {
            if due > t {
                break;
            }
            let (_, tx) = self.deliveries.pop().expect("peeked");
            for r in 0..self.topology.neighbours(tx.from).len() {
                let id = self.topology.neighbours(tx.from)[r];
                self.sync_node(Self::idx(id), t)?;
            }
            self.deliver(tx);
            for r in 0..self.topology.neighbours(tx.from).len() {
                let id = self.topology.neighbours(tx.from)[r];
                self.rekey(Self::idx(id));
            }
        }
        while let Some(due) = self.stimuli.peek_time() {
            if due > t {
                break;
            }
            let (_, (id, stimulus)) = self.stimuli.pop().expect("peeked");
            self.sync_node(Self::idx(id), t)?;
            self.apply_stimulus(id, stimulus, t);
            self.rekey(Self::idx(id));
        }
        // Keep a couple of word-times of history for overlap checks.
        self.expire_channel(t);
        Ok(())
    }

    // ---- shared machinery ----

    /// Fold one node's window outputs into the channel, delivery
    /// calendar and trace (identical for both schedulers — trace byte
    /// equality depends on it).
    fn fold_outputs(&mut self, from: NodeId, outputs: Vec<NodeOutput>) {
        for output in outputs {
            match output {
                NodeOutput::Transmitted { word, start, end } => {
                    let tx = Transmission {
                        from,
                        word,
                        start,
                        end,
                    };
                    self.channel.transmit(tx);
                    self.deliveries.schedule(end, tx);
                    self.trace.record(TraceEvent {
                        at_ps: start.as_ps(),
                        node: from,
                        kind: TraceKind::Transmit { word },
                    });
                }
                NodeOutput::LedWrite { value, at } => {
                    self.trace.record(TraceEvent {
                        at_ps: at.as_ps(),
                        node: from,
                        kind: TraceKind::Led { value },
                    });
                }
                NodeOutput::RadioModeChanged { .. } => {}
            }
        }
    }

    /// Deliver transmissions and apply stimuli due at or before `t`
    /// (lockstep path: every node is already at `t`).
    fn process_due(&mut self, t: SimTime) {
        while let Some(due) = self.deliveries.peek_time() {
            if due > t {
                break;
            }
            let (_, tx) = self.deliveries.pop().expect("peeked");
            self.deliver(tx);
        }
        while let Some(due) = self.stimuli.peek_time() {
            if due > t {
                break;
            }
            let (_, (id, stimulus)) = self.stimuli.pop().expect("peeked");
            self.apply_stimulus(id, stimulus, t);
        }
        self.expire_channel(t);
    }

    /// Keep a couple of word-times of history for overlap checks.
    fn expire_channel(&mut self, t: SimTime) {
        let cutoff = SimTime::from_ps(t.as_ps().saturating_sub(SimDuration::from_ms(2).as_ps()));
        self.channel.expire(cutoff);
    }

    fn deliver(&mut self, tx: Transmission) {
        // Cached neighbour slices borrow `topology`; the loop mutates
        // only the disjoint `channel`/`nodes`/`trace` fields.
        let receivers = self.topology.neighbours(tx.from);
        for &id in receivers {
            // By symmetry, what `id` hears is exactly its neighbours.
            let audible = self.topology.neighbours(id);
            let clean = self.channel.is_clean(&tx, audible) && !self.channel.fades();
            let idx = Self::idx(id);
            if clean {
                if self.nodes[idx].deliver_rx(tx.word) {
                    self.channel.note_delivery();
                    self.trace.record(TraceEvent {
                        at_ps: tx.end.as_ps(),
                        node: id,
                        kind: TraceKind::Deliver {
                            word: tx.word,
                            from: tx.from,
                        },
                    });
                }
            } else {
                self.channel.note_collision();
                self.trace.record(TraceEvent {
                    at_ps: tx.end.as_ps(),
                    node: id,
                    kind: TraceKind::Collision { from: tx.from },
                });
            }
        }
    }

    fn apply_stimulus(&mut self, id: NodeId, stimulus: Stimulus, at: SimTime) {
        let idx = Self::idx(id);
        match stimulus {
            Stimulus::SensorIrq => {
                self.nodes[idx].trigger_sensor_irq();
            }
            Stimulus::SensorReading { id: sensor, value } => {
                self.nodes[idx].sensors_mut().set_reading(sensor, value);
            }
        }
        self.trace.record(TraceEvent {
            at_ps: at.as_ps(),
            node: id,
            kind: TraceKind::Stimulus,
        });
    }
}
