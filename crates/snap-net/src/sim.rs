//! The network simulator: sleep-aware event-driven scheduling with a
//! lockstep reference path and a sharded engine for huge fleets.
//!
//! SNAP/LE's thesis is that an event-driven node does *zero* work while
//! idle — the simulator mirrors the hardware. The default scheduler
//! keeps a **wake calendar** ([`dess::WakeQueue`]) of per-node
//! `next_activity` instants; each synchronization round pops only the
//! nodes due in the window, so simulation cost is proportional to
//! *active* nodes, not node count. Sleeping nodes are skipped entirely
//! and their clocks lazily fast-forwarded when an event finally reaches
//! them.
//!
//! [`Scheduler::Sharded`] partitions the fleet spatially into shards
//! (grid cells of the [`Topology`] spatial hash, grouped contiguously),
//! each with its own wake calendar, and advances shards independently
//! through conservative *epochs*: since a radio word takes one full
//! word time (≈833 µs at 19.2 kbps) to serialize, no transmission
//! started after instant `t` can be delivered before `t + word_time`,
//! so shards can run to `min(t + word_time, next scheduled delivery)`
//! without hearing from each other. Cross-shard transmissions are
//! exchanged at the epoch barrier through the one global delivery
//! calendar.
//!
//! The original lockstep scheduler (advance *every* node each round)
//! survives as [`Scheduler::Lockstep`], both as the reference for the
//! equivalence property tests and as the recorded bench baseline. All
//! three schedulers produce bit-identical traces, energy totals and
//! architectural state. The invariant that makes this hold across
//! *different* window/epoch boundaries: every delivery and stimulus is
//! applied at its exact due instant, to a node synced to exactly that
//! instant; between applications a node's evolution is a pure function
//! of its own state (splitting an idle stretch at any set of interior
//! deadlines is bit-identical — no energy accrues while asleep and
//! timer expiries are never skipped); channel interaction (collision
//! checks, fade draws, counters) happens only at application, in the
//! delivery calendar's deterministic `(time, insertion)` order; and the
//! trace is canonically re-ordered chunk by chunk ([`Trace::seal`]), so
//! recording order within a window is free.

use crate::channel::{Channel, Transmission};
use crate::pool::WorkerPool;
use crate::topology::{Position, Topology};
use crate::trace::{Trace, TraceEvent, TraceKind, TraceMode};
use dess::{Calendar, SimDuration, SimTime, WakeQueue};
use snap_asm::Program;
use snap_core::CoreConfig;
use snap_energy::BatteryConfig;
use snap_isa::Word;
use snap_node::atmega::AvrCore;
use snap_node::{Node, NodeConfig, NodeError, NodeId, NodeKind, NodeOutput};
use snap_telemetry::Histogram;
use std::collections::VecDeque;

/// Work window granted to running nodes per synchronization round.
const RUN_QUANTUM: SimDuration = SimDuration::from_us(100);

/// Default node count at which windows run on the worker pool.
pub const PARALLEL_THRESHOLD: usize = 8;

/// Default shard count for [`Scheduler::Sharded`].
pub const DEFAULT_SHARDS: usize = 8;

/// Fleet size at which [`Scheduler::Auto`] switches from the
/// event-driven scheduler to the sharded engine. Below this the
/// sharded engine's epoch barriers cost more than they save (see
/// `DESIGN.md` §6d); at and above it the per-shard wake calendars win.
pub const AUTO_SHARDED_THRESHOLD: usize = 100_000;

/// Node count at which a `Full` trace is considered a mistake: the
/// simulator switches to [`TraceMode::CountOnly`] (unless the mode was
/// set explicitly) and logs loudly either way.
const FULL_TRACE_NODE_LIMIT: usize = 10_000;

/// Which scheduling strategy [`NetworkSim::run_until`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Advance every node every round (the original O(nodes)-per-round
    /// scheduler; reference implementation and bench baseline).
    Lockstep,
    /// Advance only nodes that are due, driven by the wake calendar
    /// (cost proportional to active nodes).
    EventDriven,
    /// Spatially sharded conservative-lookahead engine: per-shard wake
    /// calendars advance independently between delivery barriers. The
    /// scalable path for 10⁵–10⁶-node fleets; bit-identical to the
    /// sequential schedulers for any shard count.
    Sharded,
    /// Pick per fleet at [`NetworkSim::run_until`] time: event-driven
    /// below [`AUTO_SHARDED_THRESHOLD`] nodes, sharded (with a shard
    /// count scaled to the fleet) at or above it. The default — and
    /// bit-identical to whichever scheduler it resolves to.
    #[default]
    Auto,
}

/// An external stimulus injected into a node on schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stimulus {
    /// Assert the node's sensor-interrupt pin.
    SensorIrq,
    /// Change a sensor's reading.
    SensorReading {
        /// Sensor id.
        id: u16,
        /// New value.
        value: Word,
    },
}

/// When the core asks for the tier-2 engine, run snap-lint's
/// termination proof over `program` and compile every proved handler
/// region ahead of time (after the node is loaded — loading drops any
/// compiled image). No-op for the other engines.
fn install_aot(node: &mut Node, program: &Program, core: &CoreConfig) {
    if core.engine != snap_core::Engine::Aot {
        return;
    }
    let analysis = snap_lint::analyze_program(program, core.operating_point);
    let regions: Vec<snap_core::AotRegion> = analysis
        .regions
        .iter()
        .map(|r| snap_core::AotRegion {
            entry: r.entry,
            addrs: r.addrs.clone(),
        })
        .collect();
    node.cpu_mut().install_aot(&regions);
}

/// The multi-node network simulator.
///
/// Fields are `pub(crate)` for one consumer only: [`crate::snapshot`].
pub struct NetworkSim {
    pub(crate) nodes: Vec<Node>,
    pub(crate) topology: Topology,
    pub(crate) channel: Channel,
    pub(crate) deliveries: Calendar<Transmission>,
    pub(crate) stimuli: Calendar<(NodeId, Stimulus)>,
    pub(crate) trace: Trace,
    pub(crate) now: SimTime,
    pub(crate) pool: WorkerPool,
    pub(crate) parallel_threshold: usize,
    pub(crate) scheduler: Scheduler,
    pub(crate) num_shards: usize,
    /// Whether the caller picked the trace mode explicitly (suppresses
    /// the large-fleet downgrade in [`NetworkSim::guard_trace_mode`]).
    pub(crate) trace_mode_explicit: bool,
    /// Per-node-index wake instants (event-driven scheduler only).
    wake: WakeQueue,
    /// Scratch: node indices due in the current window, sorted.
    batch: Vec<usize>,
    /// When telemetry is on: distribution of nodes advanced per
    /// scheduler window, and every node gets per-dispatch sampling.
    window_activity: Option<Histogram>,
}

impl NetworkSim {
    /// An empty network with the given radio range.
    pub fn new(range: f64) -> NetworkSim {
        NetworkSim {
            nodes: Vec::new(),
            topology: Topology::new(range),
            channel: Channel::new(),
            deliveries: Calendar::new(),
            stimuli: Calendar::new(),
            trace: Trace::new(),
            now: SimTime::ZERO,
            pool: WorkerPool::new(),
            parallel_threshold: PARALLEL_THRESHOLD,
            scheduler: Scheduler::default(),
            num_shards: DEFAULT_SHARDS,
            trace_mode_explicit: false,
            wake: WakeQueue::new(),
            batch: Vec::new(),
            window_activity: None,
        }
    }

    /// Turn on the observability layer: per-dispatch handler sampling
    /// on every node (current and future) and the per-window
    /// active-node histogram. Observation only — simulated behaviour,
    /// timing and energy are unchanged (the determinism suites compare
    /// sampled and unsampled runs).
    pub fn enable_telemetry(&mut self) {
        for node in &mut self.nodes {
            // AVR motes have no SNAP dispatch sampler; the kind-aware
            // metrics report covers them from core counters instead.
            if node.kind() != NodeKind::Avr {
                node.cpu_mut()
                    .enable_sampling(snap_telemetry::DEFAULT_RETAIN);
            }
        }
        if self.window_activity.is_none() {
            self.window_activity = Some(Histogram::new());
        }
    }

    /// Whether [`NetworkSim::enable_telemetry`] was called.
    pub fn telemetry_enabled(&self) -> bool {
        self.window_activity.is_some()
    }

    /// The per-window active-node distribution (telemetry only).
    pub(crate) fn window_activity(&self) -> Option<&Histogram> {
        self.window_activity.as_ref()
    }

    /// Record how many nodes a scheduler window actually advanced.
    fn note_window(&mut self, active: usize) {
        if let Some(h) = &mut self.window_activity {
            h.record(active as f64);
        }
    }

    /// Override the node count at which windows run on the worker pool
    /// (tests force it low/high to compare parallel vs sequential runs;
    /// both must produce bit-identical traces and energy totals).
    pub fn set_parallel_threshold(&mut self, threshold: usize) {
        self.parallel_threshold = threshold.max(1);
    }

    /// Select the scheduling strategy (default: [`Scheduler::Auto`]).
    /// All strategies produce bit-identical results; lockstep exists as
    /// the reference and baseline, sharded as the scalable path.
    pub fn set_scheduler(&mut self, scheduler: Scheduler) {
        self.scheduler = scheduler;
    }

    /// The configured scheduling strategy (possibly
    /// [`Scheduler::Auto`]).
    pub fn scheduler(&self) -> Scheduler {
        self.scheduler
    }

    /// The scheduler [`NetworkSim::run_until`] will actually use for
    /// the current fleet: [`Scheduler::Auto`] resolves by node count,
    /// anything else passes through.
    pub fn resolved_scheduler(&self) -> Scheduler {
        match self.scheduler {
            Scheduler::Auto if self.nodes.len() >= AUTO_SHARDED_THRESHOLD => Scheduler::Sharded,
            Scheduler::Auto => Scheduler::EventDriven,
            explicit => explicit,
        }
    }

    /// Shard count for an auto-resolved sharded run: one shard per
    /// ~2048 nodes, rounded up to a power of two, clamped to
    /// [[`DEFAULT_SHARDS`], 128]. Any count is bit-identical; this one
    /// keeps shards big enough to amortize the epoch barrier and small
    /// enough that a mostly-idle shard's calendar stays cheap.
    fn auto_shards(nodes: usize) -> usize {
        (nodes / 2048)
            .next_power_of_two()
            .clamp(DEFAULT_SHARDS, 128)
    }

    /// The shard count a sharded run will use: the configured count,
    /// or the fleet-scaled count under [`Scheduler::Auto`].
    fn effective_shards(&self) -> usize {
        match self.scheduler {
            Scheduler::Auto => Self::auto_shards(self.nodes.len()),
            _ => self.num_shards,
        }
    }

    /// Shard count for [`Scheduler::Sharded`] (default:
    /// [`DEFAULT_SHARDS`]); clamped to at least 1. Results are
    /// bit-identical for every shard count.
    pub fn set_shards(&mut self, shards: usize) {
        self.num_shards = shards.max(1);
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.num_shards
    }

    /// Select how the trace stores events (default: keep everything).
    /// Bench scenarios use [`TraceMode::CountOnly`] so long sparse runs
    /// don't grow memory without bound.
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.trace_mode_explicit = true;
        self.trace.set_mode(mode);
    }

    /// Node ids are assigned sequentially from 1, so the node slot is
    /// directly addressable without a map lookup.
    fn idx(id: NodeId) -> usize {
        debug_assert!(id.0 >= 1, "node ids start at 1");
        id.0 as usize - 1
    }

    /// Add a node at `position` running `program`. Node ids are
    /// assigned sequentially from 1 — build each program with the
    /// matching MAC `node_id`.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit the node's memories.
    pub fn add_node(&mut self, program: &Program, position: Position) -> NodeId {
        self.add_node_with_core(program, position, CoreConfig::default())
    }

    /// [`NetworkSim::add_node`] with an explicit core configuration
    /// (operating point / timing model) — how `netsim --vdd` builds
    /// networks at 0.9 V or 0.6 V.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit the node's memories.
    pub fn add_node_with_core(
        &mut self,
        program: &Program,
        position: Position,
        core: CoreConfig,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32 + 1);
        let cfg = NodeConfig {
            id,
            core,
            ..NodeConfig::default()
        };
        let mut node = Node::new(cfg);
        if self.telemetry_enabled() {
            node.cpu_mut()
                .enable_sampling(snap_telemetry::DEFAULT_RETAIN);
        }
        node.load(program).expect("program fits the node memories");
        install_aot(&mut node, program, &core);
        self.topology.place(id, position);
        self.nodes.push(node);
        id
    }

    /// Add a whole fleet of nodes running the same program, cloned from
    /// one fully-loaded template. The program is loaded (and its decode
    /// cache warmed) exactly once; every clone shares the instruction
    /// memory, data memory and decode cache copy-on-write, so a
    /// mostly-idle million-node fleet costs per-node *state* (registers,
    /// radio, timers), not per-node memory images. Positions are placed
    /// through [`Topology::place_many`] (batched neighbour
    /// construction). Returns the new ids in `positions` order.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit the node memories.
    pub fn add_nodes_from<I>(
        &mut self,
        program: &Program,
        core: CoreConfig,
        positions: I,
    ) -> Vec<NodeId>
    where
        I: IntoIterator<Item = Position>,
    {
        let cfg = NodeConfig {
            id: NodeId(1), // placeholder; every clone gets its own id
            core,
            ..NodeConfig::default()
        };
        let mut template = Node::new(cfg);
        template
            .load(program)
            .expect("program fits the node memories");
        template.cpu_mut().predecode_all();
        // Analyze and compile once on the template; every clone shares
        // the compiled image copy-on-write like the memories.
        install_aot(&mut template, program, &core);
        let telemetry = self.telemetry_enabled();
        let mut placed = Vec::new();
        let mut ids = Vec::new();
        for position in positions {
            let id = NodeId(self.nodes.len() as u32 + 1);
            let mut node = template.clone_with_id(id);
            if telemetry {
                node.cpu_mut()
                    .enable_sampling(snap_telemetry::DEFAULT_RETAIN);
            }
            self.nodes.push(node);
            placed.push((id, position));
            ids.push(id);
        }
        self.topology.place_many(placed);
        ids
    }

    /// Add an ATmega-class mote at `position`. The core arrives fully
    /// programmed (see `atmega::tinyos`); its SPI-radio traffic goes on
    /// the same air, calendar and trace as every SNAP transmission.
    /// AVR motes carry no SNAP dispatch sampler — telemetry reports
    /// them through the kind-aware node metrics instead.
    pub fn add_avr_node(&mut self, core: AvrCore, position: Position) -> NodeId {
        let id = NodeId(self.nodes.len() as u32 + 1);
        let node = Node::new_avr(id, core);
        self.topology.place(id, position);
        self.nodes.push(node);
        id
    }

    /// Add a mains-powered gateway at `position`: a SNAP node whose
    /// receiver listens from boot and which logs every word it hears to
    /// its uplink buffer (drained by the serving layer via
    /// [`Node::take_uplink`]). Gateways never carry a battery budget.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit the node's memories.
    pub fn add_gateway(&mut self, program: &Program, position: Position) -> NodeId {
        self.add_gateway_with_core(program, position, CoreConfig::default())
    }

    /// [`NetworkSim::add_gateway`] with an explicit core configuration.
    ///
    /// # Panics
    ///
    /// Panics if the program does not fit the node's memories.
    pub fn add_gateway_with_core(
        &mut self,
        program: &Program,
        position: Position,
        core: CoreConfig,
    ) -> NodeId {
        let id = NodeId(self.nodes.len() as u32 + 1);
        let cfg = NodeConfig {
            id,
            core,
            ..NodeConfig::default()
        };
        let mut node = Node::new_gateway(cfg);
        if self.telemetry_enabled() {
            node.cpu_mut()
                .enable_sampling(snap_telemetry::DEFAULT_RETAIN);
        }
        node.load(program).expect("program fits the node memories");
        install_aot(&mut node, program, &core);
        self.topology.place(id, position);
        self.nodes.push(node);
        id
    }

    /// Attach (or remove) a battery budget on one node. A budgeted node
    /// that exhausts its battery mid-run dies at a deterministic,
    /// scheduler-invariant instant (a [`TraceKind::NodeDeath`] event)
    /// and is inert afterwards. No-op on gateways (mains-powered).
    ///
    /// # Panics
    ///
    /// Panics for unknown ids.
    pub fn set_battery(&mut self, id: NodeId, battery: Option<BatteryConfig>) {
        self.nodes[Self::idx(id)].set_battery(battery);
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node with this id.
    ///
    /// # Panics
    ///
    /// Panics for unknown ids.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[Self::idx(id)]
    }

    /// Mutable access to a node (fixtures: sensors, etc.).
    ///
    /// # Panics
    ///
    /// Panics for unknown ids.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[Self::idx(id)]
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The channel statistics.
    pub fn channel(&self) -> &Channel {
        &self.channel
    }

    /// Enable random per-word loss (fading) on the channel.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= probability <= 1.0`.
    pub fn set_loss(&mut self, probability: f64, seed: u64) {
        self.channel.set_loss(probability, seed);
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Global simulation time reached so far.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule a stimulus for `node` at absolute time `at`.
    pub fn schedule(&mut self, node: NodeId, at: SimTime, stimulus: Stimulus) {
        self.stimuli.schedule(at, (node, stimulus));
    }

    /// Run the network until `t_end`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`NodeError`] from any node.
    pub fn run_until(&mut self, t_end: SimTime) -> Result<(), NodeError> {
        self.guard_trace_mode();
        match self.resolved_scheduler() {
            Scheduler::Lockstep => self.run_lockstep(t_end),
            Scheduler::EventDriven => self.run_event_driven(t_end),
            Scheduler::Sharded => self.run_sharded(t_end),
            Scheduler::Auto => unreachable!("Auto resolves to a concrete scheduler"),
        }
    }

    /// Catch the classic footgun of launching a huge fleet with the
    /// default keep-everything trace. Unless the caller explicitly
    /// picked a mode, large runs are downgraded to
    /// [`TraceMode::CountOnly`]; either way the situation is loudly
    /// logged.
    fn guard_trace_mode(&mut self) {
        if self.nodes.len() < FULL_TRACE_NODE_LIMIT || self.trace.mode() != TraceMode::Full {
            return;
        }
        if self.trace_mode_explicit {
            eprintln!(
                "snap-net: WARNING: running {} nodes with TraceMode::Full; \
                 the trace will grow without bound (explicitly requested, keeping it)",
                self.nodes.len()
            );
        } else {
            eprintln!(
                "snap-net: WARNING: {} nodes >= {FULL_TRACE_NODE_LIMIT} with the default \
                 TraceMode::Full; switching to TraceMode::CountOnly \
                 (call set_trace_mode to override)",
                self.nodes.len()
            );
            self.trace.set_mode(TraceMode::CountOnly);
        }
    }

    /// Run the network for `duration` from the current time.
    ///
    /// # Errors
    ///
    /// See [`NetworkSim::run_until`].
    pub fn run_for(&mut self, duration: SimDuration) -> Result<(), NodeError> {
        self.run_until(self.now + duration)
    }

    // ---- lockstep scheduler (reference path) ----

    fn run_lockstep(&mut self, t_end: SimTime) -> Result<(), NodeError> {
        loop {
            let Some(t) = self.next_instant() else {
                // Nothing will ever happen again: sync clocks to the
                // horizon and stop.
                self.advance_all(t_end)?;
                self.now = t_end;
                self.trace.seal();
                return Ok(());
            };
            if t >= t_end {
                self.advance_all(t_end)?;
                self.process_due(t_end);
                self.now = t_end;
                self.trace.seal();
                return Ok(());
            }
            // Phase 1: apply anything due at exactly `t`, with every
            // clock synced to exactly `t`. The sync itself executes
            // nothing — `t` is the global minimum instant, so no node
            // has work before it.
            if self.deliveries.peek_time().is_some_and(|d| d <= t)
                || self.stimuli.peek_time().is_some_and(|d| d <= t)
            {
                self.advance_all(t)?;
                self.process_due(t);
            }
            // Phase 2: run a window. Its end never overshoots a
            // calendar instant, so phase 1 always lands exactly on due
            // events; node wakes inside the window need no boundary —
            // `advance_all` runs through them.
            let later = Self::min_time(self.deliveries.peek_time(), self.stimuli.peek_time());
            let window_end = Self::window_end(t, later, t_end);
            self.note_window(self.nodes.len());
            self.advance_all(window_end)?;
            self.now = window_end;
            self.trace.seal();
        }
    }

    /// Window: from `t` up to the next calendar instant, capped by the
    /// quantum. Schedulers need *not* agree on window boundaries:
    /// events are applied at exact instants and the trace is sealed
    /// canonically, so any partitioning yields the same results.
    fn window_end(t: SimTime, later: Option<SimTime>, t_end: SimTime) -> SimTime {
        let mut window_end = t + RUN_QUANTUM;
        if let Some(l) = later {
            window_end = window_end.min(l);
        }
        window_end.min(t_end).max(t + SimDuration::from_ps(1))
    }

    /// The earlier of two optional instants.
    fn min_time(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
        match (a, b) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// The earliest instant anything can happen, over the calendars and
    /// all node activities.
    fn next_instant(&self) -> Option<SimTime> {
        let mut first = Self::min_time(self.deliveries.peek_time(), self.stimuli.peek_time());
        for node in &self.nodes {
            first = Self::min_time(first, node.next_activity());
        }
        first
    }

    /// Advance every node to `deadline` (in parallel for big networks)
    /// and fold their outputs into the channel/trace.
    fn advance_all(&mut self, deadline: SimTime) -> Result<(), NodeError> {
        let results: Vec<Result<Vec<NodeOutput>, NodeError>> =
            if self.nodes.len() >= self.parallel_threshold {
                self.pool.run(&mut self.nodes, deadline)
            } else {
                self.nodes
                    .iter_mut()
                    .map(|node| node.run_until(deadline))
                    .collect()
            };

        for (i, result) in results.into_iter().enumerate() {
            let from = self.nodes[i].id();
            let outputs = result?;
            self.fold_outputs(from, outputs);
        }
        Ok(())
    }

    // ---- event-driven scheduler (wake calendar) ----

    fn run_event_driven(&mut self, t_end: SimTime) -> Result<(), NodeError> {
        // Rebuild the calendar: anything may have changed through
        // `node_mut` (test fixtures poke sensors and CPUs directly)
        // since the last run. From here on it is maintained
        // incrementally — re-keyed only when something that can change
        // a node's wake time happens.
        self.wake.clear();
        for i in 0..self.nodes.len() {
            self.rekey(i);
        }
        loop {
            // The earliest instant anything can happen: the wake
            // calendar mirrors the per-node scan of the lockstep path.
            let first = Self::min_time(
                self.wake.peek().map(|(t, _)| t),
                Self::min_time(self.deliveries.peek_time(), self.stimuli.peek_time()),
            );
            let Some(t) = first else {
                // Nothing will ever happen again: sync clocks to the
                // horizon and stop (mirrors lockstep's tail).
                self.advance_all(t_end)?;
                self.now = t_end;
                self.trace.seal();
                return Ok(());
            };
            if t >= t_end {
                self.advance_all(t_end)?;
                self.process_due(t_end);
                self.now = t_end;
                self.trace.seal();
                return Ok(());
            }
            // Phase 1: apply events due at exactly `t`, syncing only
            // the nodes they reach.
            self.process_due_synced(t)?;
            // Phase 2: pop the nodes due at `t` and run them through a
            // window. The window never overshoots a calendar instant or
            // a skipped node's wake.
            self.batch.clear();
            while let Some((wt, i)) = self.wake.peek() {
                if wt > t {
                    break;
                }
                self.wake.pop();
                self.batch.push(i);
            }
            let later = Self::min_time(
                self.wake.peek().map(|(wt, _)| wt),
                Self::min_time(self.deliveries.peek_time(), self.stimuli.peek_time()),
            );
            let window_end = Self::window_end(t, later, t_end);
            // Nodes waking exactly at the window boundary belong to
            // this round too (they would otherwise pin the next window
            // to zero width).
            while let Some((wt, i)) = self.wake.peek() {
                if wt > window_end {
                    break;
                }
                self.wake.pop();
                self.batch.push(i);
            }
            // Outputs must fold in node-index order — the order the
            // lockstep fold over all nodes observes.
            self.batch.sort_unstable();
            self.note_window(self.batch.len());
            self.advance_batch(window_end)?;
            self.now = window_end;
            self.trace.seal();
        }
    }

    /// Refresh node `i`'s wake-calendar entry from its current state.
    fn rekey(&mut self, i: usize) {
        match self.nodes[i].next_activity() {
            Some(t) => self.wake.set(i, t),
            None => self.wake.remove(i),
        }
    }

    /// Advance only the due nodes (in parallel when the batch is big)
    /// and fold their outputs; skipped nodes are untouched — that skip
    /// is the entire speedup.
    fn advance_batch(&mut self, deadline: SimTime) -> Result<(), NodeError> {
        let results: Vec<Result<Vec<NodeOutput>, NodeError>> =
            if self.batch.len() >= self.parallel_threshold {
                self.pool.run_subset(&mut self.nodes, &self.batch, deadline)
            } else {
                let nodes = &mut self.nodes;
                self.batch
                    .iter()
                    .map(|&i| nodes[i].run_until(deadline))
                    .collect()
            };
        for (b, result) in results.into_iter().enumerate() {
            let i = self.batch[b];
            let from = self.nodes[i].id();
            let outputs = result?;
            self.fold_outputs(from, outputs);
            self.rekey(i);
        }
        Ok(())
    }

    /// Bring a node that may have been skipped (lazily-synced clock) to
    /// the window boundary before an event is posted to it, exactly as
    /// the lockstep `advance_all` would have. For an already-advanced,
    /// halted, or quietly sleeping node this is a cheap no-op /
    /// `advance_idle`; it can execute no instructions and produce no
    /// outputs, because any node with work before `to` was in this
    /// window's batch.
    fn sync_node(&mut self, i: usize, to: SimTime) -> Result<(), NodeError> {
        let outputs = self.nodes[i].run_until(to)?;
        // The one output a pure clock sync can produce is battery
        // death: a skipped node's death instant can land inside the
        // stretch being fast-forwarded (its wake entry is the death
        // instant, but an event can reach it at the same instant first).
        debug_assert!(
            outputs.iter().all(|o| matches!(o, NodeOutput::Died { .. })),
            "clock sync must not produce outputs (beyond battery death)"
        );
        let from = self.nodes[i].id();
        self.fold_outputs(from, outputs);
        Ok(())
    }

    /// Deliver transmissions and apply stimuli due at or before `t`,
    /// fast-forwarding each involved node's clock to `t` first (the
    /// lockstep path has already advanced every node when its
    /// `process_due` runs; the event-driven path does it lazily, only
    /// for nodes events actually reach).
    fn process_due_synced(&mut self, t: SimTime) -> Result<(), NodeError> {
        while let Some(due) = self.deliveries.peek_time() {
            if due > t {
                break;
            }
            let (_, tx) = self.deliveries.pop().expect("peeked");
            for r in 0..self.topology.neighbours(tx.from).len() {
                let id = self.topology.neighbours(tx.from)[r];
                self.sync_node(Self::idx(id), t)?;
            }
            self.deliver(tx);
            for r in 0..self.topology.neighbours(tx.from).len() {
                let id = self.topology.neighbours(tx.from)[r];
                self.rekey(Self::idx(id));
            }
        }
        while let Some(due) = self.stimuli.peek_time() {
            if due > t {
                break;
            }
            let (due, (id, stimulus)) = self.stimuli.pop().expect("peeked");
            self.sync_node(Self::idx(id), t)?;
            self.apply_stimulus(id, stimulus, due);
            self.rekey(Self::idx(id));
        }
        // Keep a couple of word-times of history for overlap checks.
        self.expire_channel(t);
        Ok(())
    }

    // ---- sharded scheduler (conservative lookahead epochs) ----

    fn run_sharded(&mut self, t_end: SimTime) -> Result<(), NodeError> {
        let (mut shards, shard_of) = self.build_shards(t_end);
        let word_floor = self.min_word_time();
        loop {
            // The earliest instant anything can happen, over the global
            // delivery calendar and every shard's wakes and stimuli.
            let mut first = self.deliveries.peek_time();
            for shard in &shards {
                first = Self::min_time(first, shard.wake.peek().map(|(t, _)| t));
                first = Self::min_time(first, shard.stimuli.front().map(|s| s.0));
            }
            let Some(t) = first else {
                return self.finish_sharded(&mut shards, t_end);
            };
            if t >= t_end {
                return self.finish_sharded(&mut shards, t_end);
            }
            // Phase 1 (coordinator): deliveries, then boundary
            // stimuli, due at exactly `t` — the sequential order.
            self.apply_due_sharded(t, &mut shards, &shard_of)?;
            // Phase 2: every shard runs to the conservative epoch
            // bound. A word needs `word_floor` to serialize, so no
            // transmission started after `t` can be delivered before
            // `t + word_floor`; already-scheduled deliveries cap the
            // epoch explicitly. Within the bound shards cannot affect
            // each other, so they advance independently.
            let mut to = t + word_floor;
            if let Some(d) = self.deliveries.peek_time() {
                to = to.min(d);
            }
            to = to.min(t_end);
            self.run_epochs(&mut shards, to)?;
            self.now = to;
        }
    }

    /// The epoch lookahead: the shortest radio word time in the fleet.
    /// A word takes this long to serialize, so nothing a node does
    /// after `t` can reach another node before `t + word_floor`.
    fn min_word_time(&self) -> SimDuration {
        self.nodes
            .iter()
            .map(|n| n.radio().word_time())
            .min()
            .unwrap_or(RUN_QUANTUM)
    }

    /// Partition the fleet into shards along the topology's grid-cell
    /// order (whole cells stay together, so most radio neighbourhoods
    /// are shard-local), rebuild each shard's wake calendar, and hand
    /// each shard its slice of this run's stimuli in global pop order.
    /// Returns the shards plus the global-index → (shard, member
    /// position) map.
    #[allow(clippy::type_complexity)]
    fn build_shards(&mut self, t_end: SimTime) -> (Vec<Shard>, Vec<(u32, u32)>) {
        let n = self.nodes.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (self.topology.cell(self.nodes[i].id()), i));
        let shard_count = self.effective_shards().min(n.max(1)).max(1);
        let chunk = n.div_ceil(shard_count).max(1);
        let mut shards: Vec<Shard> = order
            .chunks(chunk)
            .map(|c| Shard::new(c.to_vec()))
            .collect();
        let mut shard_of = vec![(0u32, 0u32); n];
        for (s, shard) in shards.iter_mut().enumerate() {
            for (local, &gi) in shard.members.iter().enumerate() {
                shard_of[gi] = (s as u32, local as u32);
                if let Some(wt) = self.nodes[gi].next_activity() {
                    shard.wake.set(local, wt);
                }
            }
        }
        while let Some(due) = self.stimuli.peek_time() {
            if due > t_end {
                break;
            }
            let (due, (id, stim)) = self.stimuli.pop().expect("peeked");
            let (s, local) = shard_of[Self::idx(id)];
            shards[s as usize].push_stimulus(due, local as usize, stim);
        }
        (shards, shard_of)
    }

    /// Refresh one node's entry in its owning shard's wake calendar.
    fn rekey_sharded(shards: &mut [Shard], shard_of: &[(u32, u32)], node: &Node, gi: usize) {
        let (s, local) = shard_of[gi];
        match node.next_activity() {
            Some(wt) => shards[s as usize].wake.set(local as usize, wt),
            None => shards[s as usize].wake.remove(local as usize),
        }
    }

    /// Coordinator-side phase 1: deliveries due at exactly `t`, then
    /// stimuli left at the previous epoch's boundary (epochs consume
    /// interior stimuli themselves but stop strictly before their
    /// bound, preserving the deliveries-before-stimuli order here).
    fn apply_due_sharded(
        &mut self,
        t: SimTime,
        shards: &mut [Shard],
        shard_of: &[(u32, u32)],
    ) -> Result<(), NodeError> {
        while let Some(due) = self.deliveries.peek_time() {
            if due > t {
                break;
            }
            let (_, tx) = self.deliveries.pop().expect("peeked");
            for r in 0..self.topology.neighbours(tx.from).len() {
                let id = self.topology.neighbours(tx.from)[r];
                self.sync_node(Self::idx(id), t)?;
            }
            self.deliver(tx);
            for r in 0..self.topology.neighbours(tx.from).len() {
                let id = self.topology.neighbours(tx.from)[r];
                let gi = Self::idx(id);
                Self::rekey_sharded(shards, shard_of, &self.nodes[gi], gi);
            }
        }
        for s in 0..shards.len() {
            while let Some(&(due, local, stim)) = shards[s].stimuli.front() {
                if due > t {
                    break;
                }
                shards[s].pop_stimulus();
                let gi = shards[s].members[local];
                self.sync_node(gi, t)?;
                let id = self.nodes[gi].id();
                self.apply_stimulus(id, stim, due);
                Self::rekey_sharded(shards, shard_of, &self.nodes[gi], gi);
            }
        }
        self.expire_channel(t);
        Ok(())
    }

    /// Run every shard's epoch to `to` (on the pool when it helps) and
    /// merge the results at the barrier.
    fn run_epochs(&mut self, shards: &mut [Shard], to: SimTime) -> Result<(), NodeError> {
        if shards.len() > 1 && self.pool.parallelism() > 1 {
            self.pool.run_shards(&mut self.nodes, shards, to);
        } else {
            let base = self.nodes.as_mut_ptr();
            for shard in shards.iter_mut() {
                // SAFETY: shards own disjoint member index sets and run
                // one at a time here; `base` covers all of them.
                unsafe { shard.run_epoch(base, to) };
            }
        }
        self.barrier(shards)
    }

    /// Epoch barrier: flush shard traces, merge shard outputs into the
    /// global channel/calendar in a deterministic order, and propagate
    /// the lowest-node-index error, if any.
    fn barrier(&mut self, shards: &mut [Shard]) -> Result<(), NodeError> {
        let mut failed: Option<(usize, NodeError)> = None;
        let mut ran = 0;
        let mut merged: Vec<(u64, usize, NodeOutput)> = Vec::new();
        for shard in shards.iter_mut() {
            ran += std::mem::take(&mut shard.ran);
            for e in shard.trace.drain(..) {
                self.trace.record(e);
            }
            merged.append(&mut shard.outputs);
            if let Some((gi, e)) = shard.error.take() {
                if failed.as_ref().is_none_or(|(fi, _)| gi < *fi) {
                    failed = Some((gi, e));
                }
            }
        }
        self.note_window(ran);
        // Sort by output instant, then node index (stable, so one
        // node's outputs keep their chronological order). Everywhere
        // the global fold order is observable — FIFO ties in the
        // delivery calendar — this reproduces the sequential engines'
        // node-index fold order, because equal-length words that end
        // together also started together.
        merged.sort_by_key(|&(at, gi, _)| (at, gi));
        for (_, gi, output) in merged {
            let from = self.nodes[gi].id();
            self.fold_output(from, output);
        }
        self.trace.seal();
        match failed {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }

    /// Tail of a sharded run: bring every node to the horizon, then
    /// apply anything due at exactly `t_end` — the order the sequential
    /// engines use. Shard stimulus queues can only hold `t_end`-exact
    /// leftovers here (epochs consume everything earlier).
    fn finish_sharded(&mut self, shards: &mut [Shard], t_end: SimTime) -> Result<(), NodeError> {
        self.advance_all(t_end)?;
        self.process_due(t_end);
        for shard in shards.iter_mut() {
            while let Some((due, local, stim)) = shard.pop_stimulus() {
                debug_assert!(due == t_end, "interior stimuli are consumed by epochs");
                let id = self.nodes[shard.members[local]].id();
                self.apply_stimulus(id, stim, due);
            }
        }
        self.now = t_end;
        self.trace.seal();
        Ok(())
    }

    // ---- shared machinery ----

    /// Fold one node's window outputs into the channel, delivery
    /// calendar and trace (identical for every scheduler — trace byte
    /// equality depends on it).
    fn fold_outputs(&mut self, from: NodeId, outputs: Vec<NodeOutput>) {
        for output in outputs {
            self.fold_output(from, output);
        }
    }

    /// Fold a single node output (the sharded barrier merge interleaves
    /// outputs from different nodes, so it folds one at a time).
    fn fold_output(&mut self, from: NodeId, output: NodeOutput) {
        match output {
            NodeOutput::Transmitted { word, start, end } => {
                let tx = Transmission {
                    from,
                    word,
                    start,
                    end,
                };
                self.channel.transmit(tx);
                self.deliveries.schedule(end, tx);
                self.trace.record(TraceEvent {
                    at_ps: start.as_ps(),
                    node: from,
                    kind: TraceKind::Transmit { word },
                });
            }
            NodeOutput::LedWrite { value, at } => {
                self.trace.record(TraceEvent {
                    at_ps: at.as_ps(),
                    node: from,
                    kind: TraceKind::Led { value },
                });
            }
            NodeOutput::RadioModeChanged { .. } => {}
            NodeOutput::Died { at } => {
                self.trace.record(TraceEvent {
                    at_ps: at.as_ps(),
                    node: from,
                    kind: TraceKind::NodeDeath,
                });
            }
        }
    }

    /// Deliver transmissions and apply stimuli due at or before `t`
    /// (lockstep path: every node is already at `t`).
    fn process_due(&mut self, t: SimTime) {
        while let Some(due) = self.deliveries.peek_time() {
            if due > t {
                break;
            }
            let (_, tx) = self.deliveries.pop().expect("peeked");
            self.deliver(tx);
        }
        while let Some(due) = self.stimuli.peek_time() {
            if due > t {
                break;
            }
            let (due, (id, stimulus)) = self.stimuli.pop().expect("peeked");
            self.apply_stimulus(id, stimulus, due);
        }
        self.expire_channel(t);
    }

    /// Keep a couple of word-times of history for overlap checks.
    fn expire_channel(&mut self, t: SimTime) {
        let cutoff = SimTime::from_ps(t.as_ps().saturating_sub(SimDuration::from_ms(2).as_ps()));
        self.channel.expire(cutoff);
    }

    fn deliver(&mut self, tx: Transmission) {
        // Cached neighbour slices borrow `topology`; the loop mutates
        // only the disjoint `channel`/`nodes`/`trace` fields.
        let receivers = self.topology.neighbours(tx.from);
        for &id in receivers {
            // By symmetry, what `id` hears is exactly its neighbours.
            let audible = self.topology.neighbours(id);
            let clean = self.channel.is_clean(&tx, audible) && !self.channel.fades();
            let idx = Self::idx(id);
            if clean {
                if self.nodes[idx].deliver_rx(tx.word) {
                    self.channel.note_delivery();
                    self.trace.record(TraceEvent {
                        at_ps: tx.end.as_ps(),
                        node: id,
                        kind: TraceKind::Deliver {
                            word: tx.word,
                            from: tx.from,
                        },
                    });
                }
            } else {
                self.channel.note_collision();
                self.trace.record(TraceEvent {
                    at_ps: tx.end.as_ps(),
                    node: id,
                    kind: TraceKind::Collision { from: tx.from },
                });
            }
        }
    }

    fn apply_stimulus(&mut self, id: NodeId, stimulus: Stimulus, at: SimTime) {
        let idx = Self::idx(id);
        match stimulus {
            Stimulus::SensorIrq => {
                self.nodes[idx].trigger_sensor_irq();
            }
            Stimulus::SensorReading { id: sensor, value } => {
                self.nodes[idx].sensors_mut().set_reading(sensor, value);
            }
        }
        self.trace.record(TraceEvent {
            at_ps: at.as_ps(),
            node: id,
            kind: TraceKind::Stimulus,
        });
    }
}

/// One spatial shard of a [`Scheduler::Sharded`] run: a group of grid
/// cells' nodes with a private wake calendar, advanced independently of
/// every other shard inside each conservative epoch. All cross-shard
/// interaction flows through the coordinator at epoch barriers.
pub(crate) struct Shard {
    /// Global node indices owned by this shard (grid-cell order).
    members: Vec<usize>,
    /// Wake calendar keyed by position in `members`.
    wake: WakeQueue,
    /// This run's stimuli for member nodes — `(due, member position,
    /// stimulus)` — ascending by due time (global-calendar pop order).
    stimuli: VecDeque<(SimTime, usize, Stimulus)>,
    /// Pending-stimulus count per member position: lets `run_member`
    /// skip the queue scan for the (vast) majority of wakes whose node
    /// has no stimulus left this run.
    pending_stimuli: Vec<u32>,
    /// Outputs produced this epoch: `(output instant ps, global node
    /// index, output)`; the barrier merge sorts by that pair.
    outputs: Vec<(u64, usize, NodeOutput)>,
    /// Trace events produced this epoch (stimulus records), flushed
    /// into the global trace at the barrier.
    trace: Vec<TraceEvent>,
    /// Members advanced this epoch (telemetry).
    ran: usize,
    /// First node error this epoch, with the global node index.
    error: Option<(usize, NodeError)>,
}

impl Shard {
    fn new(members: Vec<usize>) -> Shard {
        Shard {
            pending_stimuli: vec![0; members.len()],
            members,
            wake: WakeQueue::new(),
            stimuli: VecDeque::new(),
            outputs: Vec::new(),
            trace: Vec::new(),
            ran: 0,
            error: None,
        }
    }

    /// Enqueue one stimulus (entries arrive in ascending due order).
    fn push_stimulus(&mut self, due: SimTime, local: usize, stim: Stimulus) {
        self.pending_stimuli[local] += 1;
        self.stimuli.push_back((due, local, stim));
    }

    /// Dequeue the earliest pending stimulus.
    fn pop_stimulus(&mut self) -> Option<(SimTime, usize, Stimulus)> {
        let entry = self.stimuli.pop_front()?;
        self.pending_stimuli[entry.1] -= 1;
        Some(entry)
    }

    /// Advance this shard's due members up to (but excluding) `to`.
    ///
    /// `to` is a conservative bound chosen by the coordinator: no radio
    /// delivery can become due strictly inside the epoch, so the shard
    /// needs nothing from the rest of the network until the barrier.
    /// Work falling exactly *at* `to` (wakes, stimuli) is left for the
    /// next epoch's phase 1, so deliveries at `to` keep the sequential
    /// deliveries-before-stimuli-before-execution order.
    ///
    /// # Safety
    ///
    /// `base` must point at the simulator's node slice, every index in
    /// `members` must be owned by this shard alone for the duration of
    /// the call, and the caller must not touch those nodes until the
    /// epoch completes.
    pub(crate) unsafe fn run_epoch(&mut self, base: *mut Node, to: SimTime) {
        while self.error.is_none() {
            let wake_t = self.wake.peek().map(|(wt, _)| wt).filter(|&wt| wt < to);
            let stim_t = self.stimuli.front().map(|s| s.0).filter(|&st| st < to);
            match (wake_t, stim_t) {
                (None, None) => return,
                // Stimuli win ties: the sequential engines apply a
                // stimulus due at `t` before running the batch due at
                // `t`.
                (w, Some(st)) if w.is_none_or(|wt| st <= wt) => {
                    let (due, local, stim) = self.pop_stimulus().expect("peeked");
                    unsafe { self.apply_stimulus(base, due, local, stim) };
                }
                _ => {
                    let (_, local) = self.wake.pop().expect("peeked");
                    unsafe { self.run_member(base, local, to) };
                }
            }
        }
    }

    /// Run one member to the epoch bound, collecting its outputs.
    ///
    /// A pending stimulus for this member caps its advance below the
    /// bound: the sequential engines end their window at the stimulus
    /// instant and interrupt the node there, so running past it would
    /// deliver the interrupt late in node-local time. The stimulus
    /// queue is time-ordered, so the first entry for this member is
    /// its earliest.
    unsafe fn run_member(&mut self, base: *mut Node, local: usize, to: SimTime) {
        let gi = self.members[local];
        // The scan is O(queue), but it only runs for members that
        // still have a stimulus pending this run — for everyone else
        // the per-member count short-circuits it.
        let cap = if self.pending_stimuli[local] == 0 {
            to
        } else {
            self.stimuli
                .iter()
                .find(|s| s.1 == local)
                .map_or(to, |s| s.0.min(to))
        };
        // SAFETY: `gi` is a member index, owned by this shard alone.
        let node = unsafe { &mut *base.add(gi) };
        self.ran += 1;
        match node.run_until(cap) {
            Ok(outputs) => {
                for output in outputs {
                    let at = match &output {
                        NodeOutput::Transmitted { start, .. } => start.as_ps(),
                        NodeOutput::LedWrite { at, .. } => at.as_ps(),
                        NodeOutput::Died { at } => at.as_ps(),
                        NodeOutput::RadioModeChanged { .. } => continue,
                    };
                    self.outputs.push((at, gi, output));
                }
                self.rekey(node, local);
            }
            Err(e) => self.error = Some((gi, e)),
        }
    }

    /// Apply one stimulus at its exact due instant.
    unsafe fn apply_stimulus(
        &mut self,
        base: *mut Node,
        due: SimTime,
        local: usize,
        stim: Stimulus,
    ) {
        let gi = self.members[local];
        // SAFETY: `gi` is a member index, owned by this shard alone.
        let node = unsafe { &mut *base.add(gi) };
        // Sync the target's clock to the stimulus instant. `due` is no
        // later than any member wake (the epoch loop always picks the
        // minimum instant), so this executes nothing.
        match node.run_until(due) {
            Ok(outputs) => {
                for output in outputs {
                    // As in `NetworkSim::sync_node`: battery death is
                    // the one output a pure clock sync can surface.
                    debug_assert!(
                        matches!(output, NodeOutput::Died { .. }),
                        "clock sync must not produce outputs (beyond battery death)"
                    );
                    if let NodeOutput::Died { at } = output {
                        self.outputs.push((at.as_ps(), gi, output));
                    }
                }
            }
            Err(e) => {
                self.error = Some((gi, e));
                return;
            }
        }
        match stim {
            Stimulus::SensorIrq => {
                node.trigger_sensor_irq();
            }
            Stimulus::SensorReading { id, value } => node.sensors_mut().set_reading(id, value),
        }
        self.trace.push(TraceEvent {
            at_ps: due.as_ps(),
            node: node.id(),
            kind: TraceKind::Stimulus,
        });
        self.rekey(node, local);
    }

    /// Refresh one member's wake-calendar entry from its node state.
    fn rekey(&mut self, node: &Node, local: usize) {
        match node.next_activity() {
            Some(wt) => self.wake.set(local, wt),
            None => self.wake.remove(local),
        }
    }
}
