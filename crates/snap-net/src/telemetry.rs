//! Network-level observability export.
//!
//! With [`NetworkSim::enable_telemetry`] turned on before a run, this
//! module renders the two documented export formats (see
//! `docs/OBSERVABILITY.md`):
//!
//! * [`NetworkSim::metrics_report`] — one `snap-metrics-v1` report:
//!   per-node counters / energy attribution / handler distributions,
//!   plus the network section (channel counters and the per-window
//!   active-node histogram);
//! * [`NetworkSim::chrome_trace`] — a Chrome `trace_event` file that
//!   opens in Perfetto with one track per node: slices are handler
//!   bursts (the gaps are sleep), instants are the network events the
//!   [`crate::trace::Trace`] retained (transmit/deliver/collision/
//!   led/stimulus).

use crate::sim::NetworkSim;
use crate::trace::TraceKind;
use dess::SimDuration;
use snap_node::{Node, NodeId, NodeKind};
use snap_telemetry::{ChromeTrace, NetworkCounters, Value};

/// Report string for a node kind.
fn kind_str(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::Snap => "snap",
        NodeKind::Avr => "avr",
        NodeKind::Gateway => "gateway",
    }
}

/// Metrics object for an AVR mote. The SNAP counter vocabulary
/// (handlers, event queue) does not apply; the AVR section carries the
/// cycle/energy split the lifetime comparison needs.
fn avr_node_metrics(id: i64, node: &Node) -> Value {
    let mote = node.avr().expect("avr metrics require an avr node");
    let core = mote.core();
    let mut o = Value::obj();
    o.set("node", Value::Int(id));
    let state = if core.halted() {
        "halted"
    } else if core.sleeping() {
        "sleeping"
    } else {
        "running"
    };
    o.set("state", Value::Str(state.to_string()));
    let mut counters = Value::obj();
    counters.set("active_cycles", Value::Int(core.active_cycles() as i64));
    counters.set("wall_cycles", Value::Int(core.wall_cycles() as i64));
    counters.set("sleep_ps", Value::Int(mote.sleep_ps() as i64));
    counters.set("now_ps", Value::Int(mote.now().as_ps() as i64));
    counters.set("spi_bytes_sent", Value::Int(core.spi_sent().len() as i64));
    o.set("counters", counters);
    let mut energy = Value::obj();
    energy.set("total_pj", Value::Float(mote.active_energy().as_pj()));
    o.set("energy", energy);
    o
}

/// The per-node battery section: consumption against capacity plus the
/// duty-cycle lifetime projection (see `docs/FLEETS.md`). `None` for
/// nodes without a budget (gateways, unconfigured fleets).
fn battery_metrics(node: &Node, elapsed: SimDuration) -> Option<Value> {
    let battery = node.battery()?;
    let (active, sleep_ps, words) = node.consumption_totals();
    let consumed = battery.consumed(active, sleep_ps, words);
    let mut b = Value::obj();
    b.set("capacity_pj", Value::Float(battery.capacity().as_pj()));
    b.set("consumed_pj", Value::Float(consumed.as_pj()));
    b.set(
        "remaining_pj",
        Value::Float(battery.remaining(active, sleep_ps, words).as_pj()),
    );
    if let Some(s) = battery.projected_lifetime_s(consumed, elapsed) {
        b.set("projected_lifetime_s", Value::Float(s));
    }
    if let Some(at) = node.died_at() {
        b.set("died_at_ps", Value::Int(at.as_ps() as i64));
    }
    Some(b)
}

impl NetworkSim {
    /// Render the network section of the metrics report: channel
    /// counters plus the window-activity histogram (empty when
    /// telemetry was never enabled).
    pub fn network_counters(&self) -> NetworkCounters {
        NetworkCounters {
            deliveries: self.channel().deliveries(),
            collisions: self.channel().collisions(),
            faded: self.channel().faded(),
            trace_recorded: self.trace().recorded(),
            window_active_nodes: self.window_activity().cloned().unwrap_or_default(),
        }
    }

    /// Assemble the complete `snap-metrics-v1` report for this run.
    ///
    /// `tool` names the producer (`netsim`, a test, a bench);
    /// `vdd_v` records the operating voltage the nodes ran at.
    pub fn metrics_report(&self, tool: &str, vdd_v: f64) -> Value {
        let elapsed = SimDuration::from_ps(self.now().as_ps());
        let nodes = (1..=self.node_count() as u32)
            .map(|id| {
                let node = self.node(NodeId(id));
                let mut m = match node.kind() {
                    NodeKind::Avr => avr_node_metrics(i64::from(id), node),
                    _ => snap_telemetry::node_metrics(i64::from(id), node.cpu()),
                };
                m.set("kind", Value::Str(kind_str(node.kind()).to_string()));
                if let Some(b) = battery_metrics(node, elapsed) {
                    m.set("battery", b);
                }
                m
            })
            .collect();
        snap_telemetry::report(
            tool,
            vdd_v,
            self.now().as_ps(),
            nodes,
            Some(self.network_counters().to_json()),
        )
    }

    /// Build the Chrome `trace_event` view of this run: one named
    /// track per node carrying its handler-burst slices (when sampling
    /// was enabled) and the retained network-trace events as instants.
    pub fn chrome_trace(&self) -> ChromeTrace {
        let mut chrome = ChromeTrace::new();
        chrome.process_name("snap-net");
        for id in 1..=self.node_count() as u32 {
            let tid = i64::from(id);
            let node = self.node(NodeId(id));
            chrome.thread_name(tid, &format!("node{id}"));
            if node.kind() != NodeKind::Avr {
                if let Some(sampler) = node.cpu().sampler() {
                    chrome.add_handler_samples(tid, sampler.samples());
                }
            }
        }
        for e in self.trace().events() {
            let mut args = Value::obj();
            let name = match e.kind {
                TraceKind::Transmit { word } => {
                    args.set("word", Value::Int(i64::from(word)));
                    "transmit"
                }
                TraceKind::Deliver { word, from } => {
                    args.set("word", Value::Int(i64::from(word)));
                    args.set("from", Value::Int(i64::from(from.0)));
                    "deliver"
                }
                TraceKind::Collision { from } => {
                    args.set("from", Value::Int(i64::from(from.0)));
                    "collision"
                }
                TraceKind::Led { value } => {
                    args.set("value", Value::Int(i64::from(value)));
                    "led"
                }
                TraceKind::Stimulus => "stimulus",
                TraceKind::NodeDeath => "node_death",
            };
            chrome.instant(i64::from(e.node.0), name, e.at_ps, args);
        }
        chrome
    }
}
