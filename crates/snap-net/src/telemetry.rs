//! Network-level observability export.
//!
//! With [`NetworkSim::enable_telemetry`] turned on before a run, this
//! module renders the two documented export formats (see
//! `docs/OBSERVABILITY.md`):
//!
//! * [`NetworkSim::metrics_report`] — one `snap-metrics-v1` report:
//!   per-node counters / energy attribution / handler distributions,
//!   plus the network section (channel counters and the per-window
//!   active-node histogram);
//! * [`NetworkSim::chrome_trace`] — a Chrome `trace_event` file that
//!   opens in Perfetto with one track per node: slices are handler
//!   bursts (the gaps are sleep), instants are the network events the
//!   [`crate::trace::Trace`] retained (transmit/deliver/collision/
//!   led/stimulus).

use crate::sim::NetworkSim;
use crate::trace::TraceKind;
use snap_node::NodeId;
use snap_telemetry::{ChromeTrace, NetworkCounters, Value};

impl NetworkSim {
    /// Render the network section of the metrics report: channel
    /// counters plus the window-activity histogram (empty when
    /// telemetry was never enabled).
    pub fn network_counters(&self) -> NetworkCounters {
        NetworkCounters {
            deliveries: self.channel().deliveries(),
            collisions: self.channel().collisions(),
            faded: self.channel().faded(),
            trace_recorded: self.trace().recorded(),
            window_active_nodes: self.window_activity().cloned().unwrap_or_default(),
        }
    }

    /// Assemble the complete `snap-metrics-v1` report for this run.
    ///
    /// `tool` names the producer (`netsim`, a test, a bench);
    /// `vdd_v` records the operating voltage the nodes ran at.
    pub fn metrics_report(&self, tool: &str, vdd_v: f64) -> Value {
        let nodes = (1..=self.node_count() as u32)
            .map(|id| snap_telemetry::node_metrics(i64::from(id), self.node(NodeId(id)).cpu()))
            .collect();
        snap_telemetry::report(
            tool,
            vdd_v,
            self.now().as_ps(),
            nodes,
            Some(self.network_counters().to_json()),
        )
    }

    /// Build the Chrome `trace_event` view of this run: one named
    /// track per node carrying its handler-burst slices (when sampling
    /// was enabled) and the retained network-trace events as instants.
    pub fn chrome_trace(&self) -> ChromeTrace {
        let mut chrome = ChromeTrace::new();
        chrome.process_name("snap-net");
        for id in 1..=self.node_count() as u32 {
            let tid = i64::from(id);
            chrome.thread_name(tid, &format!("node{id}"));
            if let Some(sampler) = self.node(NodeId(id)).cpu().sampler() {
                chrome.add_handler_samples(tid, sampler.samples());
            }
        }
        for e in self.trace().events() {
            let mut args = Value::obj();
            let name = match e.kind {
                TraceKind::Transmit { word } => {
                    args.set("word", Value::Int(i64::from(word)));
                    "transmit"
                }
                TraceKind::Deliver { word, from } => {
                    args.set("word", Value::Int(i64::from(word)));
                    args.set("from", Value::Int(i64::from(from.0)));
                    "deliver"
                }
                TraceKind::Collision { from } => {
                    args.set("from", Value::Int(i64::from(from.0)));
                    "collision"
                }
                TraceKind::Led { value } => {
                    args.set("value", Value::Int(i64::from(value)));
                    "led"
                }
                TraceKind::Stimulus => "stimulus",
            };
            chrome.instant(i64::from(e.node.0), name, e.at_ps, args);
        }
        chrome
    }
}
