//! # snap-net — multi-node sensor-network simulation
//!
//! Runs many [`snap_node::Node`]s against a shared broadcast radio
//! channel, reproducing the network context of the paper's §4.2
//! benchmarks: nodes exchange MAC packets, answer AODV route requests
//! and forward data across hops, all driven by the handlers in
//! `snap-apps` executing on simulated SNAP/LE cores.
//!
//! * [`topology`] — node positions and radio range.
//! * [`channel`] — the broadcast channel: a word transmitted by one
//!   node is heard by every in-range node whose receiver is on, unless
//!   another audible transmission overlaps in time (collision).
//! * [`sim`] — the network simulator: by default a sleep-aware
//!   event-driven scheduler (a wake calendar pops only the nodes that
//!   are due; idle nodes cost nothing), with the original lockstep
//!   scheduler kept as a bit-identical reference and a spatially
//!   sharded conservative-lookahead engine for 10⁵–10⁶-node fleets.
//!   Transmissions become deliveries; external stimuli (sensor
//!   interrupts, sensor readings) are injected on schedule.
//! * [`trace`] — a serializable event trace for analysis/debugging.
//! * [`telemetry`] — observability export: the `snap-metrics-v1`
//!   report and a Chrome `trace_event` view (one Perfetto track per
//!   node) of a run, via `snap-telemetry`.
//!
//! ## Example: two nodes, one packet
//!
//! ```
//! use snap_net::{NetworkSim, Position};
//! use snap_apps::aodv::relay_program;
//! use dess::{SimDuration, SimTime};
//!
//! let mut sim = NetworkSim::new(10.0); // radio range
//! let a = sim.add_node(&relay_program(1, &[]).unwrap(), Position::new(0.0, 0.0));
//! let _b = sim.add_node(&relay_program(2, &[]).unwrap(), Position::new(5.0, 0.0));
//! sim.run_until(SimTime::ZERO + SimDuration::from_ms(5)).unwrap();
//! assert!(sim.node(a).cpu().stats().instructions > 0);
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod pool;
pub mod sim;
pub mod snapshot;
pub mod telemetry;
pub mod topology;
pub mod trace;

pub use channel::Transmission;
pub use pool::WorkerPool;
pub use sim::{NetworkSim, Scheduler, Stimulus};
pub use topology::{Position, Topology};
pub use trace::{Trace, TraceEvent, TraceKind, TraceMode};
