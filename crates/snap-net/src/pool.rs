//! A persistent worker pool for parallel node windows.
//!
//! Between synchronization points nodes are independent, so
//! [`crate::NetworkSim`] advances them on worker threads. Spawning a
//! thread per node per 100 µs quantum (the old `scope`-based approach)
//! costs far more than the work in each window; this pool spawns its
//! threads once, on first use, and reuses them for every quantum.
//!
//! Determinism: nodes are partitioned into contiguous chunks (of the
//! node slice for [`WorkerPool::run`], of the caller's index list for
//! [`WorkerPool::run_subset`]), one chunk per worker, and each worker
//! advances its chunk in order. Results are reassembled by chunk index
//! — never by completion order — so the fold over node outputs observes
//! exactly the sequence the sequential path would produce.

use crate::sim::Shard;
use dess::SimTime;
use snap_node::{Node, NodeError, NodeOutput};
use std::sync::mpsc;
use std::thread::JoinHandle;

type NodeResult = Result<Vec<NodeOutput>, NodeError>;

/// A raw pointer to the base of the caller's node slice, asserted safe
/// to move across threads: each job touches a disjoint set of node
/// indices and the caller blocks until every worker reports back before
/// touching the nodes.
struct BasePtr(*mut Node);
unsafe impl Send for BasePtr {}

/// A raw pointer to one [`Shard`], asserted safe to move across
/// threads: every shard in a batch is distinct and owns a disjoint
/// member set, and the caller blocks until every epoch reports done.
struct ShardPtr(*mut Shard);
unsafe impl Send for ShardPtr {}

/// Which nodes (relative to the base pointer) one job advances.
enum Span {
    /// A contiguous range `offset..offset + len` (the dense path).
    Range { offset: usize, len: usize },
    /// An explicit strictly-increasing index list (the sparse path).
    Indices(Vec<usize>),
}

enum Job {
    /// Advance a set of nodes to a common deadline.
    Nodes {
        chunk: usize,
        base: BasePtr,
        span: Span,
        deadline: SimTime,
        results: mpsc::Sender<(usize, Vec<NodeResult>)>,
    },
    /// Run one shard's conservative epoch.
    Epoch {
        shard: ShardPtr,
        base: BasePtr,
        to: SimTime,
        done: mpsc::Sender<()>,
    },
}

/// The persistent pool. Threads start lazily on the first parallel run
/// and exit when the pool is dropped (the job senders hang up).
pub struct WorkerPool {
    senders: Vec<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl Default for WorkerPool {
    fn default() -> WorkerPool {
        WorkerPool::new()
    }
}

impl WorkerPool {
    /// A pool with no threads yet; they spawn on the first `run`.
    pub fn new() -> WorkerPool {
        WorkerPool {
            senders: Vec::new(),
            handles: Vec::new(),
        }
    }

    /// Worker threads currently alive (0 before the first `run`).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    fn spawn_workers(&mut self, count: usize) {
        for i in 0..count {
            let (tx, rx) = mpsc::channel::<Job>();
            let handle = std::thread::Builder::new()
                .name(format!("snap-net-worker-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        match job {
                            Job::Nodes {
                                chunk,
                                base,
                                span,
                                deadline,
                                results,
                            } => {
                                // SAFETY: jobs in one batch carry
                                // disjoint node indices, and the
                                // dispatching caller joins on every
                                // result before using the nodes again.
                                let node_at = |i: usize| unsafe { &mut *base.0.add(i) };
                                let out: Vec<NodeResult> = match &span {
                                    Span::Range { offset, len } => (*offset..offset + len)
                                        .map(|i| node_at(i).run_until(deadline))
                                        .collect(),
                                    Span::Indices(indices) => indices
                                        .iter()
                                        .map(|&i| node_at(i).run_until(deadline))
                                        .collect(),
                                };
                                // A send error means the caller died
                                // mid-run; nothing useful left to do
                                // with the result.
                                let _ = results.send((chunk, out));
                            }
                            Job::Epoch {
                                shard,
                                base,
                                to,
                                done,
                            } => {
                                // SAFETY: each shard in a batch is
                                // distinct and owns a disjoint member
                                // set; the caller blocks on `done`
                                // before touching shards or nodes.
                                unsafe { (*shard.0).run_epoch(base.0, to) };
                                let _ = done.send(());
                            }
                        }
                    }
                })
                .expect("spawn pool worker");
            self.senders.push(tx);
            self.handles.push(handle);
        }
    }

    fn ensure_workers(&mut self) {
        if self.handles.is_empty() {
            let workers = std::thread::available_parallelism()
                .map_or(2, usize::from)
                .min(8);
            self.spawn_workers(workers.max(1));
        }
    }

    /// Advance every node to `deadline` on the pool, returning each
    /// node's result in node-index order.
    pub fn run(&mut self, nodes: &mut [Node], deadline: SimTime) -> Vec<NodeResult> {
        self.ensure_workers();
        let chunk_len = nodes.len().div_ceil(self.handles.len()).max(1);
        let base = nodes.as_mut_ptr();
        let (results_tx, results_rx) = mpsc::channel();
        let mut jobs = 0;
        let mut offset = 0;
        while offset < nodes.len() {
            let len = chunk_len.min(nodes.len() - offset);
            let job = Job::Nodes {
                chunk: jobs,
                base: BasePtr(base),
                span: Span::Range { offset, len },
                deadline,
                results: results_tx.clone(),
            };
            self.senders[jobs].send(job).expect("pool worker alive");
            jobs += 1;
            offset += len;
        }
        drop(results_tx);
        Self::collect(results_rx, jobs)
    }

    /// Advance only the nodes named by `indices` (strictly increasing,
    /// in range) to `deadline`, returning results in `indices` order —
    /// the sparse-batch path of the event-driven scheduler.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `indices` is not strictly
    /// increasing; duplicate indices would alias `&mut Node` across
    /// workers.
    pub fn run_subset(
        &mut self,
        nodes: &mut [Node],
        indices: &[usize],
        deadline: SimTime,
    ) -> Vec<NodeResult> {
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be strictly increasing"
        );
        debug_assert!(indices.iter().all(|&i| i < nodes.len()));
        self.ensure_workers();
        let chunk_len = indices.len().div_ceil(self.handles.len()).max(1);
        let base = nodes.as_mut_ptr();
        let (results_tx, results_rx) = mpsc::channel();
        let mut jobs = 0;
        for chunk in indices.chunks(chunk_len) {
            let job = Job::Nodes {
                chunk: jobs,
                base: BasePtr(base),
                span: Span::Indices(chunk.to_vec()),
                deadline,
                results: results_tx.clone(),
            };
            self.senders[jobs].send(job).expect("pool worker alive");
            jobs += 1;
        }
        drop(results_tx);
        Self::collect(results_rx, jobs)
    }

    /// How many workers a parallel run would use (without forcing the
    /// threads to spawn yet). The sharded scheduler runs epochs inline
    /// when this is 1 — a single worker would only add channel hops.
    pub fn parallelism(&self) -> usize {
        if self.handles.is_empty() {
            std::thread::available_parallelism()
                .map_or(2, usize::from)
                .clamp(1, 8)
        } else {
            self.handles.len()
        }
    }

    /// Run every shard's epoch to `to` on the pool (round-robin over
    /// workers), blocking until all complete. Shard state and node
    /// mutations are the workers'; this only dispatches and joins.
    pub(crate) fn run_shards(&mut self, nodes: &mut [Node], shards: &mut [Shard], to: SimTime) {
        self.ensure_workers();
        let base = nodes.as_mut_ptr();
        let (done_tx, done_rx) = mpsc::channel();
        let mut jobs = 0;
        for shard in shards.iter_mut() {
            let job = Job::Epoch {
                shard: ShardPtr(shard as *mut Shard),
                base: BasePtr(base),
                to,
                done: done_tx.clone(),
            };
            self.senders[jobs % self.senders.len()]
                .send(job)
                .expect("pool worker alive");
            jobs += 1;
        }
        drop(done_tx);
        for _ in 0..jobs {
            done_rx.recv().expect("pool worker panicked");
        }
    }

    fn collect(
        results_rx: mpsc::Receiver<(usize, Vec<NodeResult>)>,
        jobs: usize,
    ) -> Vec<NodeResult> {
        let mut by_chunk: Vec<Option<Vec<NodeResult>>> = (0..jobs).map(|_| None).collect();
        for _ in 0..jobs {
            let (chunk, out) = results_rx.recv().expect("pool worker panicked");
            by_chunk[chunk] = Some(out);
        }
        by_chunk
            .into_iter()
            .flat_map(|r| r.expect("every chunk reported"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear(); // hang up: workers see Err(recv) and exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
