//! A persistent worker pool for parallel node windows.
//!
//! Between synchronization points nodes are independent, so
//! [`crate::NetworkSim`] advances them on worker threads. Spawning a
//! thread per node per 100 µs quantum (the old `scope`-based approach)
//! costs far more than the work in each window; this pool spawns its
//! threads once, on first use, and reuses them for every quantum.
//!
//! Determinism: nodes are partitioned into contiguous chunks, one per
//! worker, and each worker advances its chunk in index order. Results
//! are reassembled by chunk index — never by completion order — so the
//! fold over node outputs observes exactly the sequence the sequential
//! path would produce.

use dess::SimTime;
use snap_node::{Node, NodeError, NodeOutput};
use std::sync::mpsc;
use std::thread::JoinHandle;

type NodeResult = Result<Vec<NodeOutput>, NodeError>;

/// A raw pointer to a worker's chunk, asserted safe to move across
/// threads: chunks are disjoint `&mut [Node]` ranges and the caller
/// blocks until every worker reports back before touching the nodes.
struct ChunkPtr(*mut Node);
unsafe impl Send for ChunkPtr {}

struct Job {
    chunk: usize,
    nodes: ChunkPtr,
    len: usize,
    deadline: SimTime,
    results: mpsc::Sender<(usize, Vec<NodeResult>)>,
}

/// The persistent pool. Threads start lazily on the first parallel run
/// and exit when the pool is dropped (the job senders hang up).
pub struct WorkerPool {
    senders: Vec<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl Default for WorkerPool {
    fn default() -> WorkerPool {
        WorkerPool::new()
    }
}

impl WorkerPool {
    /// A pool with no threads yet; they spawn on the first `run`.
    pub fn new() -> WorkerPool {
        WorkerPool {
            senders: Vec::new(),
            handles: Vec::new(),
        }
    }

    /// Worker threads currently alive (0 before the first `run`).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    fn spawn_workers(&mut self, count: usize) {
        for i in 0..count {
            let (tx, rx) = mpsc::channel::<Job>();
            let handle = std::thread::Builder::new()
                .name(format!("snap-net-worker-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let nodes: &mut [Node] =
                            unsafe { std::slice::from_raw_parts_mut(job.nodes.0, job.len) };
                        let out: Vec<NodeResult> = nodes
                            .iter_mut()
                            .map(|n| n.run_until(job.deadline))
                            .collect();
                        // A send error means the caller died mid-run;
                        // nothing useful left to do with the result.
                        let _ = job.results.send((job.chunk, out));
                    }
                })
                .expect("spawn pool worker");
            self.senders.push(tx);
            self.handles.push(handle);
        }
    }

    /// Advance every node to `deadline` on the pool, returning each
    /// node's result in node-index order.
    pub fn run(&mut self, nodes: &mut [Node], deadline: SimTime) -> Vec<NodeResult> {
        if self.handles.is_empty() {
            let workers = std::thread::available_parallelism()
                .map_or(2, usize::from)
                .min(8);
            self.spawn_workers(workers.max(1));
        }
        let chunk_len = nodes.len().div_ceil(self.handles.len()).max(1);
        let (results_tx, results_rx) = mpsc::channel();
        let mut jobs = 0;
        for (chunk, slice) in nodes.chunks_mut(chunk_len).enumerate() {
            let job = Job {
                chunk,
                nodes: ChunkPtr(slice.as_mut_ptr()),
                len: slice.len(),
                deadline,
                results: results_tx.clone(),
            };
            self.senders[chunk].send(job).expect("pool worker alive");
            jobs += 1;
        }
        drop(results_tx);
        let mut by_chunk: Vec<Option<Vec<NodeResult>>> = (0..jobs).map(|_| None).collect();
        for _ in 0..jobs {
            let (chunk, out) = results_rx.recv().expect("pool worker panicked");
            by_chunk[chunk] = Some(out);
        }
        by_chunk
            .into_iter()
            .flat_map(|r| r.expect("every chunk reported"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear(); // hang up: workers see Err(recv) and exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}
