//! Compiler output must lint clean: `snapcc` programs may be slower
//! than hand-written handlers (the paper's unoptimized-lcc point) but
//! they must never trip an error-severity lint.

use snap_energy::OperatingPoint;
use snap_lint::Severity;
use snapcc::codegen::{BootEnd, CompileOptions};

/// The `c_handlers` example app: C boot + two event handlers.
const EVENT_APP: &str = r"
int avg;
int samples;
int log_buf[16];
int log_pos;

handler tick() {
    __msg_write(0x3000);
    __sched(0, 0, 500);
}

handler reading() {
    int x = __msg_read();
    avg = avg + (x - avg) / 8;
    log_buf[log_pos] = x;
    log_pos = (log_pos + 1) & 15;
    samples = samples + 1;
    __msg_write(0x4000 | (avg >> 5 & 7));
}

int main() {
    __setaddr(0, tick);
    __setaddr(6, reading);
    __sched(0, 0, 50);
    return 0;
}
";

/// A compute-only program that boots, runs and halts.
const BATCH_APP: &str = r"
int out;
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 20; i = i + 1) s = s + i * 3;
    out = s;
    return s;
}
";

fn assert_no_errors(name: &str, program: &snap_asm::Program) {
    let a = snap_lint::analyze_program(program, OperatingPoint::V0_6);
    let errors: Vec<_> = a
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(
        errors.is_empty(),
        "{name}: snapcc output tripped error lints: {errors:#?}"
    );
}

#[test]
fn event_driven_c_output_lints_clean() {
    let options = CompileOptions {
        end: BootEnd::Done,
        ..CompileOptions::default()
    };
    let program = snapcc::compile_to_program_with(EVENT_APP, options).expect("compiles");
    assert_no_errors("event app", &program);
}

#[test]
fn batch_c_output_lints_clean() {
    let program = snapcc::compile_to_program(BATCH_APP).expect("compiles");
    assert_no_errors("batch app", &program);
}

/// snapcc epilogues return through `jr`, which degrades the
/// whole-image analysis — and the flow layer's contract under
/// degradation is *withdrawal, not fabrication*: the report must be
/// marked degraded, every chain claim must be `None`, and none of the
/// interprocedural lints may fire on claims it no longer holds.
#[test]
fn event_driven_c_output_flow_degrades_soundly() {
    let options = CompileOptions {
        end: BootEnd::Done,
        ..CompileOptions::default()
    };
    let program = snapcc::compile_to_program_with(EVENT_APP, options).expect("compiles");
    let a = snap_lint::analyze_program(&program, OperatingPoint::V0_6);
    assert!(
        a.diagnostics.iter().any(|d| d.lint == "indirect-jump"),
        "expected snapcc's jr returns to be flagged; if codegen learned \
         direct returns, strengthen this test to demand bounded chains"
    );
    assert!(a.flow.degraded, "degraded base must degrade the flow layer");
    // One chain per installed handler plus boot still appear — the
    // graph shape is useful even when the claims are withdrawn.
    assert!(a.flow.chains.len() >= 3, "boot + tick + reading chains");
    for c in &a.flow.chains {
        assert!(
            c.peak_queue.is_none()
                && c.events_per_wake.is_none()
                && c.energy_pj_per_wake.is_none()
                && !c.overflow,
            "degraded flow must withdraw claims, found {c:?}"
        );
    }
    for lint in ["queue-overflow", "dmem-hazard", "unreachable-handler"] {
        assert!(
            a.diagnostics.iter().all(|d| d.lint != lint),
            "{lint} fired on a degraded analysis"
        );
    }
}
