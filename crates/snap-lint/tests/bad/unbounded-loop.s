; Stride-2 countdown tested with bnez: 0 can be stepped over, so the
; counter may wrap forever and no bound exists.
boot:
    li      r1, 7
    li      r2, h
    setaddr r1, r2
    done
h:
    lw      r1, 0(r0)
spin:
    subi    r1, 2
    bnez    r1, spin
    done
