; setaddr with a computed event number: the handler table cannot be
; recovered statically.
boot:
    lw      r1, 0(r0)
    li      r2, 0
    setaddr r1, r2
    done
