; Boot posts nine soft events back-to-back; the hardware event queue
; holds eight, so at least one is dropped.
boot:
    li      r1, 7
    li      r2, h
    setaddr r1, r2
    swev    r1
    swev    r1
    swev    r1
    swev    r1
    swev    r1
    swev    r1
    swev    r1
    swev    r1
    swev    r1
    done
h:
    done
