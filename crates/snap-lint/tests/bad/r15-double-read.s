; A sensor reply delivers one word; the second pop blocks on an empty
; FIFO.
boot:
    li      r1, 6
    li      r2, h
    setaddr r1, r2
    done
h:
    mov     r3, r15
    mov     r4, r15
    done
