; isw through a computed address could hit any code word.
boot:
    lw      r2, 0(r0)
    li      r1, 5
    isw     r1, 0(r2)
    done
