; r9 is never written anywhere: it always reads as the power-on zero.
boot:
    mov     r3, r9
    mov     r15, r3
    done
