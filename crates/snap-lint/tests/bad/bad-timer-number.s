; The hardware has timers 0-2; scheduling timer 3 is a hard fault.
boot:
    li      r1, 3
    schedhi r1, r0
    done
