; Self-recursive subroutine: no stack, r14 is a single link register,
; so the return address is lost and the analysis cannot bound it.
boot:
    call    f
    done
f:
    call    f
    ret                    ; lint:allow(indirect-jump)
