; Nothing jumps to `orphan` and no handler is installed there.
boot:
    done
orphan:
    li      r1, 1
    done
