; Boot patches the immediate word of a li inside the installed handler.
boot:
    li      r1, 7
    li      r2, h
    setaddr r1, r2
    li      r3, 99
    li      r4, h+1
    isw     r3, 0(r4)
    done
h:
    li      r5, 5
    mov     r15, r5
    done
