; Soft-event handler with no path to `done`: the activation never
; completes and the node wedges. (The loop lint is suppressed so this
; file isolates the termination finding.)
boot:
    li      r1, 7
    li      r2, h
    setaddr r1, r2
    done
h:
    jmp     h              ; lint:allow(unbounded-loop)
