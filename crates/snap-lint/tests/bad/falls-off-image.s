; No terminator: execution runs past the end of the image into
; zero-filled memory.
boot:
    li      r1, 1
    mov     r2, r1
