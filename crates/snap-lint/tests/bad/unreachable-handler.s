; All eight events have handlers, and boot arms the timers, enables the
; radio, transmits once and queries the sensor — so seven events can
; arrive. Nothing ever posts the soft event: its handler is dead code.
boot:
    li      r2, h
    li      r1, 0
    setaddr r1, r2
    li      r1, 1
    setaddr r1, r2
    li      r1, 2
    setaddr r1, r2
    li      r1, 3
    setaddr r1, r2
    li      r1, 4
    setaddr r1, r2
    li      r1, 5
    setaddr r1, r2
    li      r1, 6
    setaddr r1, r2
    li      r1, 7
    setaddr r1, r2
    li      r3, 1
    li      r1, 0
    schedlo r1, r3
    li      r1, 1
    schedlo r1, r3
    li      r1, 2
    schedlo r1, r3
    li      r4, 0x1001          ; radio rx on
    mov     r15, r4
    li      r4, 0x2000          ; radio tx ...
    mov     r15, r4
    li      r4, 42              ; ... and its payload
    mov     r15, r4
    li      r4, 0x3000          ; sensor query
    mov     r15, r4
    done
h:
    done
