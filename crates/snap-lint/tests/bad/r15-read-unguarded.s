; Reading the message port in boot faults: the FIFO is empty at
; power-on.
boot:
    mov     r1, r15
    done
