; Handlers of two different events both blind-write the shared word and
; neither ever reads it: dispatch order silently decides which write
; survives.
.data
shared: .word 0

.text
boot:
    li      r2, ha
    li      r1, 0
    setaddr r1, r2
    li      r2, hb
    li      r1, 1
    setaddr r1, r2
    done
ha:
    li      r4, 1
    sw      r4, shared(r0)
    done
hb:
    li      r5, 2
    sw      r5, shared(r0)
    done
