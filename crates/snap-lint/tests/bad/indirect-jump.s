; jr through a value loaded from memory: the analysis cannot follow it.
boot:
    lw      r1, 0(r0)
    jr      r1
    done
