; Each timer0 activation posts three soft copies of its own event: no
; single activation floods the eight-entry queue (that would be
; swev-flood), but the leftovers of successive dispatches add up —
; 3, 5, 7, then 9 pending — until an event is dropped.
boot:
    li      r1, 0
    li      r2, h
    setaddr r1, r2
    li      r3, 1
    schedlo r1, r3
    done
h:
    li      r4, 0
    swev    r4
    swev    r4
    swev    r4
    done
