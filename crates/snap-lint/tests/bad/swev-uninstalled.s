; The handler posts timer1 as a software event, but no handler is
; installed for it: the dispatch would run from address 0.
boot:
    li      r1, 7
    li      r2, h
    setaddr r1, r2
    done
h:
    li      r3, 1
    swev    r3
    done
