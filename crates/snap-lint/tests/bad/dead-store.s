; The first li is overwritten before anything reads r1.
boot:
    li      r1, 1
    li      r1, 2
    mov     r15, r1
    done
