//! Each file under `tests/bad/` is a minimal program that triggers
//! exactly one gating (warning-or-error) lint, named by the file stem.

use snap_energy::OperatingPoint;
use snap_lint::Severity;
use std::path::Path;

const EXPECT: &[(&str, Severity)] = &[
    ("bad-timer-number", Severity::Error),
    ("dead-store", Severity::Warning),
    ("dmem-hazard", Severity::Warning),
    ("falls-off-image", Severity::Error),
    ("indirect-jump", Severity::Warning),
    ("isw-dynamic-target", Severity::Warning),
    ("isw-reachable-code", Severity::Warning),
    ("no-done-path", Severity::Error),
    ("queue-overflow", Severity::Warning),
    ("r15-double-read", Severity::Warning),
    ("r15-read-unguarded", Severity::Error),
    ("read-never-written", Severity::Warning),
    ("recursion", Severity::Warning),
    ("setaddr-dynamic", Severity::Warning),
    ("swev-flood", Severity::Warning),
    ("swev-uninstalled", Severity::Warning),
    ("unbounded-loop", Severity::Warning),
    ("unreachable-code", Severity::Warning),
    ("unreachable-handler", Severity::Warning),
];

fn analyze(src: &str) -> snap_lint::Analysis {
    let program = snap_asm::assemble(src).expect("bad-corpus programs must assemble");
    snap_lint::analyze_program(&program, OperatingPoint::V0_6)
}

#[test]
fn each_bad_program_triggers_exactly_its_lint() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/bad");
    for (stem, severity) in EXPECT {
        let path = dir.join(format!("{stem}.s"));
        let src =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let a = analyze(&src);
        let gating: Vec<_> = a
            .diagnostics
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .collect();
        assert_eq!(
            gating.len(),
            1,
            "{stem}: expected exactly one gating finding, got {gating:#?}"
        );
        assert_eq!(gating[0].lint, *stem, "{stem}: wrong lint fired");
        assert_eq!(gating[0].severity, *severity, "{stem}: wrong severity");
        assert!(
            gating[0].pc.is_some() || *stem == "no-done-path" || *stem == "swev-flood",
            "{stem}: finding should carry a pc"
        );
    }
    // Every corpus file must have an expectation row (and vice versa,
    // checked by the read above).
    let on_disk = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "s")
        })
        .count();
    assert_eq!(
        on_disk,
        EXPECT.len(),
        "tests/bad has files not covered by EXPECT"
    );
}

/// The three interprocedural flow lints additionally pin their full
/// `--json` reports: the event-flow graph and chain claims surrounding
/// each finding are part of the contract, not just the diagnostic.
/// Regenerate with `SNAP_BLESS=1` and review the diff.
#[test]
fn flow_lint_reports_match_goldens() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    for stem in ["dmem-hazard", "queue-overflow", "unreachable-handler"] {
        let src = std::fs::read_to_string(dir.join(format!("tests/bad/{stem}.s"))).unwrap();
        let text = snap_lint::render_json(&analyze(&src), stem);
        let path = dir.join(format!("tests/golden/bad/{stem}.lint.json"));
        if std::env::var_os("SNAP_BLESS").is_some() {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, text).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{stem}: cannot read golden file {}: {e}\n(run with SNAP_BLESS=1 to create it)",
                path.display()
            )
        });
        assert_eq!(
            text, golden,
            "{stem}: lint report differs from golden file; if intentional, \
             regenerate with SNAP_BLESS=1 and review the diff"
        );
    }
}

#[test]
fn lint_allow_suppresses_the_marked_line() {
    let dirty = "boot:\n    li r1, 1\n    li r1, 2\n    mov r15, r1\n    done\n";
    let clean =
        "boot:\n    li r1, 1 ; lint:allow(dead-store)\n    li r1, 2\n    mov r15, r1\n    done\n";
    let a = analyze(dirty);
    assert!(
        a.diagnostics.iter().any(|d| d.lint == "dead-store"),
        "unsuppressed program must report the dead store"
    );
    let a = analyze(clean);
    assert!(
        !a.diagnostics.iter().any(|d| d.lint == "dead-store"),
        "lint:allow(dead-store) must silence the diagnostic"
    );
}
