//! Golden `--json` lint-report snapshots for the shipped applications.
//!
//! Pins the full `snap-lint-v1` report — handler table, termination
//! verdicts, bounds, paper-band classification and diagnostics — for
//! blink, sense and the mac sender at the paper's 0.6 V point. Any
//! drift in the analyzer, the energy model or the JSON renderer shows
//! up as a diff.
//!
//! Regenerating after an intentional change:
//!
//! ```text
//! SNAP_BLESS=1 cargo test -p snap-lint --test golden_lint
//! ```
//!
//! then review the golden-file diff like any other code change.

use snap_energy::OperatingPoint;

fn check(name: &str, program: &snap_asm::Program) {
    let a = snap_lint::analyze_program(program, OperatingPoint::V0_6);
    let text = snap_lint::render_json(&a, name);
    let path = format!(
        "{}/tests/golden/{name}.lint.json",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("SNAP_BLESS").is_some() {
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot bless {path}: {e}"));
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("{name}: cannot read golden file {path}: {e}\n(run with SNAP_BLESS=1 to create it)")
    });
    if text != golden {
        let mismatch = text
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .map_or("length".to_string(), |i| format!("line {}", i + 1));
        panic!(
            "{name}: lint report differs from golden file at {mismatch}.\n\
             If the change is intentional, regenerate with:\n\
             SNAP_BLESS=1 cargo test -p snap-lint --test golden_lint\n\
             and review the diff of {path}."
        );
    }
}

#[test]
fn blink_golden_lint() {
    check("blink", &snap_apps::blink::blink_program().unwrap());
}

#[test]
fn sense_golden_lint() {
    check("sense", &snap_apps::sense::sense_program().unwrap());
}

#[test]
fn mac_golden_lint() {
    let extra = snap_apps::prelude::install_handler("EV_IRQ", "app_send_irq");
    let app = format!(
        "{}{}",
        snap_apps::mac::send_on_irq_app(5),
        snap_apps::mac::RX_DISPATCH_STUB
    );
    check(
        "mac",
        &snap_apps::mac::mac_program(2, &extra, &app).unwrap(),
    );
}
