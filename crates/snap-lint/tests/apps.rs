//! Analyze the shipped applications: termination must be proved and the
//! bounds must land where the paper says handlers land.

use snap_energy::OperatingPoint;
use snap_lint::{PaperBand, Severity, Termination};

fn report(program: &snap_asm::Program) -> snap_lint::Analysis {
    snap_lint::analyze_program(program, OperatingPoint::V0_6)
}

/// The paper's Packet Transmission workload: sensor IRQ stages a DATA
/// packet and calls `mac_send` (same wiring as `measure.rs`).
fn mac_tx_program() -> snap_asm::Program {
    let extra = snap_apps::prelude::install_handler("EV_IRQ", "app_send_irq");
    let app = format!(
        "{}{}",
        snap_apps::mac::send_on_irq_app(5),
        snap_apps::mac::RX_DISPATCH_STUB
    );
    snap_apps::mac::mac_program(2, &extra, &app).unwrap()
}

#[test]
fn blink_is_clean_and_proved() {
    let program = snap_apps::blink::blink_program().unwrap();
    let a = report(&program);
    println!("{}", snap_lint::render_text(&a, "blink"));
    assert!(a.is_clean(), "blink must have no error diagnostics");
    assert!(!a.degraded);
    assert_eq!(a.boot.terminates, Termination::Proved);
    for h in a.handlers.iter().filter(|h| h.entry.is_some()) {
        assert_eq!(h.terminates, Termination::Proved, "handler {:?}", h.event);
        let b = h.bound.expect("installed handlers must have bounds");
        assert!(
            b.instructions > 0 && b.instructions < 70,
            "blink handlers are tiny"
        );
    }
}

#[test]
fn sense_is_clean_and_proved() {
    let program = snap_apps::sense::sense_program().unwrap();
    let a = report(&program);
    println!("{}", snap_lint::render_text(&a, "sense"));
    assert!(a.is_clean(), "sense must have no error diagnostics");
    assert!(!a.degraded);
    assert_eq!(a.boot.terminates, Termination::Proved);
    for h in a.handlers.iter().filter(|h| h.entry.is_some()) {
        assert_eq!(h.terminates, Termination::Proved, "handler {:?}", h.event);
        assert!(h.bound.is_some(), "handler {:?} has no bound", h.event);
    }
}

#[test]
fn mac_send_bound_is_in_the_paper_band() {
    let program = mac_tx_program();
    let a = report(&program);
    println!("{}", snap_lint::render_text(&a, "mac"));
    assert!(a.is_clean(), "mac must have no error diagnostics");
    assert!(!a.degraded);
    // The paper's Packet Transmission workload spans a fixed activation
    // sequence: the sensor-irq handler stages the packet and calls
    // mac_send, the backoff timer sends the first word, and a tx-done
    // activation clocks out each of the remaining 4 words plus the
    // final completion dispatch. Composing the per-activation static
    // bounds gives a static bound for the whole task, which must sit
    // inside the paper's 70-245 instruction / 1.6-5.8 nJ band.
    let bound_of = |event: snap_isa::EventKind| {
        let h = a
            .handlers
            .iter()
            .find(|h| h.event == Some(event))
            .unwrap_or_else(|| panic!("{event} handler installed"));
        assert_eq!(h.terminates, Termination::Proved, "{event}");
        assert!(!h.loose, "{event} bound must be exact");
        h.bound.unwrap_or_else(|| panic!("{event} handler bounded"))
    };
    let irq = bound_of(snap_isa::EventKind::SensorIrq);
    let backoff = bound_of(snap_isa::EventKind::Timer2);
    let txdone = bound_of(snap_isa::EventKind::RadioTxDone);
    // 4 staged words + appended checksum = 5 words on air, so 5 tx-done
    // dispatches end the task.
    let task_ins = irq.instructions + backoff.instructions + 5 * txdone.instructions;
    let task_pj = irq.energy_pj + backoff.energy_pj + 5.0 * txdone.energy_pj;
    assert_eq!(
        snap_lint::PaperBand::of(task_ins),
        PaperBand::Within,
        "send-task bound {task_ins} ins not in the paper's 70-245 band"
    );
    let nj = task_pj / 1000.0;
    assert!(
        (snap_lint::PAPER_BAND_NJ.0..=snap_lint::PAPER_BAND_NJ.1).contains(&nj),
        "send-task energy bound {nj:.2} nJ outside the paper band at 0.6 V"
    );
}

#[test]
fn apps_have_no_warning_noise() {
    // The shipped programs should be warning-free too, so `xtask
    // lint-asm --strict` stays meaningful.
    for (name, program) in [
        ("blink", snap_apps::blink::blink_program().unwrap()),
        ("sense", snap_apps::sense::sense_program().unwrap()),
        ("mac", mac_tx_program()),
        (
            "temperature",
            snap_apps::apps::temperature_program().unwrap(),
        ),
        ("threshold", snap_apps::apps::threshold_program(1).unwrap()),
    ] {
        let a = report(&program);
        let noisy: Vec<_> = a
            .diagnostics
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .collect();
        assert!(
            noisy.is_empty(),
            "{name}: unexpected warnings: {:#?}",
            noisy
        );
    }
}

#[test]
fn proved_programs_export_aot_regions() {
    let program = snap_apps::blink::blink_program().unwrap();
    let a = report(&program);
    // Boot and every installed handler are proved (asserted above), so
    // each must export a region covering its entry.
    assert!(
        !a.regions.is_empty(),
        "proved program must export AOT regions"
    );
    let boot = a
        .regions
        .iter()
        .find(|r| r.event.is_none())
        .expect("boot region");
    assert_eq!(boot.entry, 0);
    assert!(boot.addrs.contains(&boot.entry));
    for h in a.handlers.iter().filter(|h| h.entry.is_some()) {
        let entry = h.entry.unwrap();
        let region = a
            .regions
            .iter()
            .find(|r| r.event == h.event && r.entry == entry)
            .unwrap_or_else(|| panic!("missing region for {:?}", h.event));
        assert!(
            region.addrs.contains(&entry),
            "region must cover its own entry"
        );
        assert!(region.addrs.windows(2).all(|w| w[0] < w[1]), "ascending");
    }
}

#[test]
fn degraded_analysis_exports_no_regions() {
    // A program whose boot never reaches done: nothing is proved.
    let src = "boot:\n    jmp boot\n";
    let program = snap_asm::assemble(src).unwrap();
    let a = report(&program);
    assert_ne!(a.boot.terminates, Termination::Proved);
    assert!(a.regions.iter().all(|r| r.event.is_some() || r.entry != 0));
}
