//! Static handler analysis for SNAP programs.
//!
//! `snap-lint` decodes an assembled IMEM image into per-handler
//! control-flow graphs rooted at the event-handler table (recovered from
//! the boot code's `setaddr` instructions), then proves or refutes
//! `done`-termination, computes worst-case dynamic-instruction and
//! energy bounds per handler against the paper's 70–245-instruction /
//! 1.6–5.8 nJ handler band, and reports hazard lints (self-modifying
//! `isw` into live code, `swev` queue-overflow risk, `r15` FIFO misuse,
//! dead stores, unreachable code, ...). See `docs/LINTING.md` for the
//! catalogue.
//!
//! The analysis is a whole-program abstract interpretation over
//! constant/unknown register values with context-sensitive call
//! summaries; loop bounds come from the decrementing-counter idiom the
//! paper's handlers (and our apps) use. Soundness of the three verdicts
//! that matter — reachability, termination, bounds — is continuously
//! cross-checked against real executions by `snap-smith --soundness`.

mod absint;
mod analyzer;
mod flow;
mod lints;
mod loops;
mod report;

pub use report::{render_json, render_text};

use snap_energy::OperatingPoint;
use snap_isa::{Addr, EventKind};
use std::collections::BTreeSet;

/// Diagnostic severity. `Error` gates CI (`xtask lint-asm`); `Warning`
/// gates only under `--strict`; `Info` is never gating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Suspicious but possibly intended.
    Warning,
    /// Will (or is overwhelmingly likely to) fault or wedge at runtime.
    Error,
}

impl Severity {
    /// Lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, attributed to an IMEM word address when possible.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable lint id (kebab-case, e.g. `no-done-path`).
    pub lint: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// IMEM word address of the offending instruction, if any.
    pub pc: Option<Addr>,
    /// Source location, when the input carried a line table.
    pub line: Option<(String, usize)>,
    /// Handler the finding was discovered under (event name, `boot`,
    /// or `None` for whole-program findings).
    pub handler: Option<String>,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

/// Termination verdict for one handler (or boot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Every path from entry reaches `done` (or `halt`) in a bounded
    /// number of instructions.
    Proved,
    /// The analysis could not decide (unrecognized loop, indirect jump,
    /// recursion, ...).
    Unknown,
    /// No path from entry reaches `done` at all: the handler can never
    /// complete and wedges the node.
    Never,
}

impl Termination {
    /// Lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Termination::Proved => "proved",
            Termination::Unknown => "unknown",
            Termination::Never => "never",
        }
    }
}

/// Worst-case cost of one complete handler activation (entry through
/// its `done`, inclusive).
#[derive(Debug, Clone, Copy)]
pub struct Bound {
    /// Dynamic instruction count.
    pub instructions: u64,
    /// Energy at the analysis operating point, in pJ.
    pub energy_pj: f64,
}

/// Where a bound sits relative to the paper's measured 70–245
/// dynamic-instruction handler band (Fig. 7 of the SNAP/LE paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperBand {
    /// Cheaper than the smallest measured handler.
    Below,
    /// Inside the measured band.
    Within,
    /// Costlier than the largest measured handler — worth a look.
    Above,
}

/// The paper's handler band: 70–245 dynamic instructions.
pub const PAPER_BAND_INSTRUCTIONS: (u64, u64) = (70, 245);
/// The paper's handler band: 1.6–5.8 nJ per handler at 0.6 V.
pub const PAPER_BAND_NJ: (f64, f64) = (1.6, 5.8);

impl PaperBand {
    /// Classify an instruction count against the paper band.
    pub fn of(instructions: u64) -> PaperBand {
        if instructions < PAPER_BAND_INSTRUCTIONS.0 {
            PaperBand::Below
        } else if instructions <= PAPER_BAND_INSTRUCTIONS.1 {
            PaperBand::Within
        } else {
            PaperBand::Above
        }
    }

    /// Lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            PaperBand::Below => "below",
            PaperBand::Within => "within",
            PaperBand::Above => "above",
        }
    }
}

/// Per-handler analysis result.
#[derive(Debug, Clone)]
pub struct HandlerReport {
    /// The event this entry serves (`None` for boot).
    pub event: Option<EventKind>,
    /// Entry word address, when installed. Boot is always entry 0.
    pub entry: Option<Addr>,
    /// Symbol naming the entry, when the symbol table has one.
    pub symbol: Option<String>,
    /// Termination verdict.
    pub terminates: Termination,
    /// Worst-case activation cost, when bounded.
    pub bound: Option<Bound>,
    /// True when the bound used a 65536-iteration fallback trip count
    /// (counter loop with unknown initial value).
    pub loose: bool,
    /// Where the bound sits against the paper's handler band.
    pub paper_band: Option<PaperBand>,
}

/// One done-terminating code region, exported for ahead-of-time
/// translation (snap-core's tier-2 engine): the root entry plus every
/// instruction-start address the termination proof covered. Only
/// regions whose root verdict is [`Termination::Proved`] — and only
/// when the whole-program analysis is not degraded — are exported, so
/// a consumer may compile them without re-checking the proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvenRegion {
    /// The dispatching event (`None` for the boot path).
    pub event: Option<EventKind>,
    /// Root entry address of the proof.
    pub entry: Addr,
    /// Every instruction-start address in the proven CFG, ascending.
    pub addrs: Vec<Addr>,
}

/// How one handler (or boot) causes another event to be raised — one
/// edge kind per mechanism the hardware funnels into the event queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlowEdgeKind {
    /// `swev` posts the target event directly.
    Swev,
    /// `schedlo` arms a timer; its expiry raises the timer event later.
    TimerArm,
    /// `cancel` of an active timer raises the timer event immediately
    /// (the paper's always-token rule).
    TimerCancel,
    /// A `RadioTx` message command; completion raises `RadioTxDone`.
    RadioTx,
    /// A `QuerySensor` message command; the reading raises
    /// `SensorReply`.
    SensorQuery,
    /// A `RadioRxOn` message command; incoming words raise `RadioRx`.
    RadioRxEnable,
}

impl FlowEdgeKind {
    /// Lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            FlowEdgeKind::Swev => "swev",
            FlowEdgeKind::TimerArm => "timer-arm",
            FlowEdgeKind::TimerCancel => "timer-cancel",
            FlowEdgeKind::RadioTx => "radio-tx",
            FlowEdgeKind::SensorQuery => "sensor-query",
            FlowEdgeKind::RadioRxEnable => "radio-rx-enable",
        }
    }
}

/// One edge of the whole-image event-flow graph.
#[derive(Debug, Clone)]
pub struct FlowEdge {
    /// Source: the event whose handler raises `to` (`None` for boot).
    pub from: Option<EventKind>,
    /// The event raised.
    pub to: EventKind,
    /// The raising mechanism.
    pub kind: FlowEdgeKind,
    /// Worst-case raises per activation, when the path-cost analysis
    /// bounded it (`swev` edges only; arm/command edges are
    /// existence-level).
    pub count: Option<u64>,
}

/// Statically proven properties of one activation chain: the burst of
/// dispatches a single wake event can trigger through `swev` posts
/// alone, explored under adversarial dispatch order (any pending event
/// may be dispatched next — a superset of the hardware's FIFO).
#[derive(Debug, Clone)]
pub struct ChainReport {
    /// The wake event the chain starts from (`None` for the boot
    /// chain: the events boot itself posts before first sleeping).
    pub event: Option<EventKind>,
    /// Worst-case simultaneous pending events at any point in the
    /// chain. `None` when the chain reaches a handler with unknown
    /// posts, an uninstalled event, or overflows.
    pub peak_queue: Option<u64>,
    /// The chain alone (zero external load) can exceed the queue
    /// capacity: posts are dropped.
    pub overflow: bool,
    /// Worst-case dispatches per wake, including the root dispatch.
    /// `None` when unbounded (a post cycle) or unknown.
    pub events_per_wake: Option<u64>,
    /// Worst-case chain energy per wake in pJ (sum of per-handler
    /// worst-case activation energies along the worst chain).
    pub energy_pj_per_wake: Option<f64>,
    /// Worst-case `swev` posts by any single dispatch in the chain.
    pub max_swev_posts: Option<u64>,
}

/// The whole-image event-flow analysis: graph plus per-chain proofs.
#[derive(Debug, Clone, Default)]
pub struct FlowReport {
    /// True when whole-image flow claims are untrustworthy (the base
    /// analysis degraded). Chains carry `None` claims when set.
    pub degraded: bool,
    /// Hardware event-queue capacity the proofs are against.
    pub queue_capacity: u64,
    /// Edges of the event-flow graph, boot-sourced first, then by
    /// source event order.
    pub edges: Vec<FlowEdge>,
    /// One chain per installed event, in event order, preceded by the
    /// boot chain.
    pub chains: Vec<ChainReport>,
}

/// Whole-program analysis result.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Supply voltage the energy bounds were computed at.
    pub vdd_v: f64,
    /// True when the analysis had to give up on whole-program claims
    /// (indirect jump to an unknown address, dynamic `isw`/`setaddr`,
    /// control past the image end). Reachability and bounds are not
    /// trustworthy when set; termination verdicts degrade to Unknown.
    pub degraded: bool,
    /// Every IMEM word address that can be an instruction start.
    pub reachable: BTreeSet<Addr>,
    /// Boot-path report (power-on at pc 0 to the first `done`).
    pub boot: HandlerReport,
    /// One report per event-table entry, in `EventKind::ALL` order.
    pub handlers: Vec<HandlerReport>,
    /// All findings, errors first.
    pub diagnostics: Vec<Diagnostic>,
    /// Provided image size in words.
    pub imem_words: usize,
    /// Done-terminating regions safe for ahead-of-time translation
    /// (boot first when proved, then handler roots in event order).
    pub regions: Vec<ProvenRegion>,
    /// Whole-image event-flow graph and activation-chain proofs.
    pub flow: FlowReport,
}

impl Analysis {
    /// True when no error-severity diagnostics were found.
    pub fn is_clean(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Highest severity present, if any diagnostics at all.
    pub fn worst_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }
}

/// Analyze a raw IMEM image (little-endian words, as loaded at address
/// 0). No symbol names or source lines are available in this form.
pub fn analyze_image(imem: &[u16], point: OperatingPoint) -> Analysis {
    analyzer::analyze(imem, None, None, point, &[])
}

/// Analyze an assembled [`snap_asm::Program`]: symbols name handlers in
/// the report, and `; lint:allow(id)` markers recorded in the program's
/// source-line table suppress matching diagnostics.
pub fn analyze_program(program: &snap_asm::Program, point: OperatingPoint) -> Analysis {
    let imem = program.imem_image();
    // Only `.text` labels can name entries in the report; `.equ`
    // constants and DMEM labels share the symbol namespace and small
    // values collide with low code addresses.
    let code_symbols = program
        .symbols()
        .iter()
        .filter(|(name, _)| program.is_code_symbol(name))
        .map(|(name, &v)| (name.clone(), v))
        .collect();
    // Data-symbol ranges let the cross-handler DMEM conflict analysis
    // name the object a hazardous store hits.
    let data_ranges = program.data_symbol_ranges();
    analyzer::analyze(
        &imem,
        Some(&code_symbols),
        Some(program.source_lines()),
        point,
        &data_ranges,
    )
}
