//! Text and JSON rendering of an [`Analysis`].
//!
//! The JSON schema is `snap-lint-v1` and is covered by golden snapshots
//! in `tests/golden_lint.rs`; change it deliberately.

use crate::{Analysis, Bound, ChainReport, FlowEdge, HandlerReport, Severity};
use snap_isa::EventKind;
use std::fmt::Write as _;

/// Render a human-readable report. `source` names the input (file path
/// or a placeholder) and appears in the header.
pub fn render_text(analysis: &Analysis, source: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "snap-lint: {source} ({} words, {:.1} V{})",
        analysis.imem_words,
        analysis.vdd_v,
        if analysis.degraded { ", DEGRADED" } else { "" }
    );

    let _ = writeln!(out, "\nhandlers:");
    let _ = writeln!(out, "  {}", handler_line("boot", &analysis.boot));
    for h in &analysis.handlers {
        let name = h.event.map(|e| e.to_string()).unwrap_or_else(|| "?".into());
        if h.entry.is_none() {
            continue; // uninstalled: covered by handler-not-installed
        }
        let _ = writeln!(out, "  {}", handler_line(&name, h));
    }

    let flow = &analysis.flow;
    if !flow.edges.is_empty() || flow.chains.len() > 1 {
        let _ = writeln!(
            out,
            "\nevent flow ({} edges, queue capacity {}{}):",
            flow.edges.len(),
            flow.queue_capacity,
            if flow.degraded { ", DEGRADED" } else { "" }
        );
        for e in &flow.edges {
            let from = e
                .from
                .map(|k| k.to_string())
                .unwrap_or_else(|| "boot".into());
            let count = e.count.map(|n| format!(" x{n}")).unwrap_or_default();
            let _ = writeln!(out, "  {from} -> {} [{}{count}]", e.to, e.kind.label());
        }
        for c in &flow.chains {
            let _ = writeln!(out, "  {}", chain_line(c));
        }
    }

    if analysis.diagnostics.is_empty() {
        let _ = writeln!(out, "\nno findings");
    } else {
        let (e, w, i) = severity_counts(analysis);
        let _ = writeln!(out, "\nfindings: {e} error(s), {w} warning(s), {i} info(s)");
        for d in &analysis.diagnostics {
            let loc = match (&d.line, d.pc) {
                (Some((m, l)), Some(pc)) => format!("{m}:{l} (pc {pc:#05x})"),
                (Some((m, l)), None) => format!("{m}:{l}"),
                (None, Some(pc)) => format!("pc {pc:#05x}"),
                (None, None) => "program".to_string(),
            };
            let _ = writeln!(
                out,
                "  {}: [{}] {loc}: {}",
                d.severity.label(),
                d.lint,
                d.message
            );
            if !d.hint.is_empty() {
                let _ = writeln!(out, "      hint: {}", d.hint);
            }
        }
    }
    out
}

fn handler_line(name: &str, h: &HandlerReport) -> String {
    let mut s = String::new();
    let _ = write!(s, "{name:<14}");
    match h.entry {
        Some(e) => {
            let _ = write!(s, " @ {e:#05x}");
            if let Some(sym) = &h.symbol {
                let _ = write!(s, " ({sym})");
            }
        }
        None => {
            let _ = write!(s, " (boot)");
        }
    }
    let _ = write!(s, "  termination: {}", h.terminates.label());
    match h.bound {
        Some(b) => {
            let _ = write!(
                s,
                "  bound: {} ins{}, {}",
                b.instructions,
                if h.loose { " (loose)" } else { "" },
                fmt_energy(b.energy_pj)
            );
            if let Some(band) = h.paper_band {
                let _ = write!(s, " [{} paper band]", band.label());
            }
        }
        None => {
            let _ = write!(s, "  bound: none");
        }
    }
    s
}

fn chain_line(c: &ChainReport) -> String {
    let name = c
        .event
        .map(|e| e.to_string())
        .unwrap_or_else(|| "boot".into());
    let mut s = format!("chain {name:<9}");
    if c.overflow {
        let _ = write!(s, " OVERFLOWS the queue");
        return s;
    }
    match c.peak_queue {
        Some(p) => {
            let _ = write!(s, " peak queue: {p}");
        }
        None => {
            let _ = write!(s, " peak queue: unknown");
            return s;
        }
    }
    match c.events_per_wake {
        Some(n) => {
            let _ = write!(s, "  events/wake: {n}");
        }
        None => {
            let _ = write!(s, "  events/wake: unbounded");
        }
    }
    if let Some(pj) = c.energy_pj_per_wake {
        let _ = write!(s, "  energy/wake: {}", fmt_energy(pj));
    }
    s
}

fn fmt_energy(pj: f64) -> String {
    if pj >= 1000.0 {
        format!("{:.2} nJ", pj / 1000.0)
    } else {
        format!("{pj:.1} pJ")
    }
}

fn severity_counts(analysis: &Analysis) -> (usize, usize, usize) {
    let mut e = 0;
    let mut w = 0;
    let mut i = 0;
    for d in &analysis.diagnostics {
        match d.severity {
            Severity::Error => e += 1,
            Severity::Warning => w += 1,
            Severity::Info => i += 1,
        }
    }
    (e, w, i)
}

/// Render the `snap-lint-v1` JSON report. Deterministic: fixed key
/// order, floats with three decimals, no timestamps.
pub fn render_json(analysis: &Analysis, source: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"snap-lint-v1\",");
    let _ = writeln!(out, "  \"source\": {},", json_str(source));
    let _ = writeln!(out, "  \"vdd_v\": {},", fmt_f64(analysis.vdd_v));
    let _ = writeln!(out, "  \"degraded\": {},", analysis.degraded);
    let _ = writeln!(out, "  \"imem_words\": {},", analysis.imem_words);
    let _ = writeln!(out, "  \"reachable_words\": {},", analysis.reachable.len());

    let _ = writeln!(
        out,
        "  \"boot\": {},",
        handler_json(&analysis.boot, None, 4)
    );

    out.push_str("  \"handlers\": [");
    for (i, h) in analysis.handlers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&handler_json(h, EventKind::from_index(i), 6));
    }
    if analysis.handlers.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }

    let flow = &analysis.flow;
    out.push_str("  \"flow\": {\n");
    let _ = writeln!(out, "    \"degraded\": {},", flow.degraded);
    let _ = writeln!(out, "    \"queue_capacity\": {},", flow.queue_capacity);
    out.push_str("    \"edges\": [");
    for (i, e) in flow.edges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n      ");
        out.push_str(&edge_json(e));
    }
    if flow.edges.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n    ],\n");
    }
    out.push_str("    \"chains\": [");
    for (i, c) in flow.chains.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n      ");
        out.push_str(&chain_json(c));
    }
    if flow.chains.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n    ]\n");
    }
    out.push_str("  },\n");

    out.push_str("  \"diagnostics\": [");
    for (i, d) in analysis.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(out, "\"lint\": {}, ", json_str(d.lint));
        let _ = write!(out, "\"severity\": {}, ", json_str(d.severity.label()));
        match d.pc {
            Some(pc) => {
                let _ = write!(out, "\"pc\": {pc}, ");
            }
            None => out.push_str("\"pc\": null, "),
        }
        match &d.line {
            Some((module, line)) => {
                let _ = write!(
                    out,
                    "\"line\": {{\"module\": {}, \"line\": {line}}}, ",
                    json_str(module)
                );
            }
            None => out.push_str("\"line\": null, "),
        }
        match &d.handler {
            Some(h) => {
                let _ = write!(out, "\"handler\": {}, ", json_str(h));
            }
            None => out.push_str("\"handler\": null, "),
        }
        let _ = write!(out, "\"message\": {}, ", json_str(&d.message));
        let _ = write!(out, "\"hint\": {}}}", json_str(&d.hint));
    }
    if analysis.diagnostics.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

fn handler_json(h: &HandlerReport, event: Option<EventKind>, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let mut s = String::new();
    s.push_str("{\n");
    match event.or(h.event) {
        Some(e) => {
            let _ = writeln!(s, "{pad}\"event\": {},", json_str(&e.to_string()));
        }
        None => {
            let _ = writeln!(s, "{pad}\"event\": null,");
        }
    }
    match h.entry {
        Some(e) => {
            let _ = writeln!(s, "{pad}\"entry\": {e},");
        }
        None => {
            let _ = writeln!(s, "{pad}\"entry\": null,");
        }
    }
    match &h.symbol {
        Some(sym) => {
            let _ = writeln!(s, "{pad}\"symbol\": {},", json_str(sym));
        }
        None => {
            let _ = writeln!(s, "{pad}\"symbol\": null,");
        }
    }
    let _ = writeln!(
        s,
        "{pad}\"terminates\": {},",
        json_str(h.terminates.label())
    );
    match h.bound {
        Some(Bound {
            instructions,
            energy_pj,
        }) => {
            let _ = writeln!(
                s,
                "{pad}\"bound\": {{\"instructions\": {instructions}, \"energy_pj\": {}}},",
                fmt_f64(energy_pj)
            );
        }
        None => {
            let _ = writeln!(s, "{pad}\"bound\": null,");
        }
    }
    let _ = writeln!(s, "{pad}\"loose\": {},", h.loose);
    match h.paper_band {
        Some(band) => {
            let _ = writeln!(s, "{pad}\"paper_band\": {}", json_str(band.label()));
        }
        None => {
            let _ = writeln!(s, "{pad}\"paper_band\": null");
        }
    }
    let close = " ".repeat(indent.saturating_sub(2));
    let _ = write!(s, "{close}}}");
    s
}

fn edge_json(e: &FlowEdge) -> String {
    let mut s = String::new();
    s.push('{');
    match e.from {
        Some(k) => {
            let _ = write!(s, "\"from\": {}, ", json_str(&k.to_string()));
        }
        None => s.push_str("\"from\": null, "),
    }
    let _ = write!(s, "\"to\": {}, ", json_str(&e.to.to_string()));
    let _ = write!(s, "\"kind\": {}, ", json_str(e.kind.label()));
    match e.count {
        Some(n) => {
            let _ = write!(s, "\"count\": {n}}}");
        }
        None => s.push_str("\"count\": null}"),
    }
    s
}

fn chain_json(c: &ChainReport) -> String {
    let mut s = String::new();
    s.push('{');
    match c.event {
        Some(k) => {
            let _ = write!(s, "\"event\": {}, ", json_str(&k.to_string()));
        }
        None => s.push_str("\"event\": null, "),
    }
    match c.peak_queue {
        Some(p) => {
            let _ = write!(s, "\"peak_queue\": {p}, ");
        }
        None => s.push_str("\"peak_queue\": null, "),
    }
    let _ = write!(s, "\"overflow\": {}, ", c.overflow);
    match c.events_per_wake {
        Some(n) => {
            let _ = write!(s, "\"events_per_wake\": {n}, ");
        }
        None => s.push_str("\"events_per_wake\": null, "),
    }
    match c.energy_pj_per_wake {
        Some(pj) => {
            let _ = write!(s, "\"energy_pj_per_wake\": {}, ", fmt_f64(pj));
        }
        None => s.push_str("\"energy_pj_per_wake\": null, "),
    }
    match c.max_swev_posts {
        Some(n) => {
            let _ = write!(s, "\"max_swev_posts\": {n}}}");
        }
        None => s.push_str("\"max_swev_posts\": null}"),
    }
    s
}

/// Three-decimal fixed formatting keeps snapshots stable across
/// platforms (no shortest-round-trip float noise).
fn fmt_f64(v: f64) -> String {
    format!("{v:.3}")
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
