//! `snap-lint` — static analysis for SNAP programs.
//!
//! ```text
//! snap-lint [--json] [--strict] [--vdd 1.8|0.9|0.6] FILE
//! ```
//!
//! `FILE` is assembly (`.s` / `.sasm` / `.asm`, assembled in place with
//! full source-line attribution and `; lint:allow(...)` support) or a
//! raw little-endian IMEM image (anything else).
//!
//! Exit status: 0 clean, 1 findings at gating severity (errors, or
//! warnings too under `--strict`), 2 usage or I/O error.

use snap_energy::OperatingPoint;
use snap_lint::{render_json, render_text, Severity};
use std::process::ExitCode;

const USAGE: &str = "usage: snap-lint [--json] [--strict] [--vdd 1.8|0.9|0.6] FILE\n\
  FILE: .s/.sasm/.asm assembly, or a raw little-endian IMEM image\n\
  --json    machine-readable report (schema snap-lint-v1)\n\
  --strict  exit nonzero on warnings, not just errors\n\
  --vdd V   operating point for energy bounds (default 0.6)";

fn main() -> ExitCode {
    let mut json = false;
    let mut strict = false;
    let mut point = OperatingPoint::V0_6;
    let mut file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--strict" => strict = true,
            "--vdd" => {
                let Some(v) = args.next() else {
                    eprintln!("snap-lint: --vdd needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                point = match v.as_str() {
                    "1.8" => OperatingPoint::V1_8,
                    "0.9" => OperatingPoint::V0_9,
                    "0.6" => OperatingPoint::V0_6,
                    other => {
                        eprintln!("snap-lint: unsupported vdd {other:?} (use 1.8, 0.9 or 0.6)");
                        return ExitCode::from(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("snap-lint: unknown flag {arg:?}\n{USAGE}");
                return ExitCode::from(2);
            }
            _ => {
                if file.replace(arg).is_some() {
                    eprintln!("snap-lint: exactly one input file\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        }
    }

    let Some(path) = file else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let analysis = match load(&path, point) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("snap-lint: {path}: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", render_json(&analysis, &path));
    } else {
        print!("{}", render_text(&analysis, &path));
    }

    let gate = if strict {
        Severity::Warning
    } else {
        Severity::Error
    };
    match analysis.worst_severity() {
        Some(s) if s >= gate => ExitCode::from(1),
        _ => ExitCode::SUCCESS,
    }
}

fn load(path: &str, point: OperatingPoint) -> Result<snap_lint::Analysis, String> {
    let is_asm = [".s", ".sasm", ".asm"]
        .iter()
        .any(|ext| path.ends_with(ext));
    if is_asm {
        let source = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let program = snap_asm::assemble(&source).map_err(|e| e.to_string())?;
        Ok(snap_lint::analyze_program(&program, point))
    } else {
        let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
        if bytes.len() % 2 != 0 {
            return Err("raw image must be an even number of bytes (16-bit words)".into());
        }
        let imem: Vec<u16> = bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        Ok(snap_lint::analyze_image(&imem, point))
    }
}
