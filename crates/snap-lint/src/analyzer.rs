//! Whole-program abstract interpretation over the IMEM image.
//!
//! Values are tracked as known constants, the current call's return
//! address (`Link`), or unknown (`Top`). Contexts — boot, each handler
//! root, and each distinct (callee entry, entry state) pair — are
//! explored with a worklist to a join fixpoint; calls get memoized,
//! context-sensitive summaries. Branches are **never** pruned on
//! constant operands: the reachable set and the cost graph must
//! over-approximate every real execution, because `snap-smith
//! --soundness` holds us to that.
//!
//! The whole analysis iterates a few rounds so three global facts can
//! stabilize: the event-handler table (from reachable `setaddr`s), the
//! set of registers the program ever writes (never-written registers
//! keep their power-on zero, so handler entry states may assume
//! `Const(0)` for them), and the set of `li` immediate words targeted
//! by self-modifying `isw` (whose loads degrade to unknown).

use crate::{Analysis, Bound, Diagnostic, HandlerReport, PaperBand, Severity, Termination};
use snap_energy::model::InstrShape;
use snap_energy::{OperatingPoint, SnapEnergyModel};
use snap_isa::Addr;
use snap_isa::{AluImmOp, AluOp, Instruction, Reg, ShiftOp, Word, EVENT_TABLE_ENTRIES};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Maximum call depth before the analysis gives up on a call chain.
const MAX_CALL_DEPTH: usize = 32;
/// Rounds of the outer (table / written-set / poison) iteration.
const MAX_ROUNDS: usize = 5;
/// Hardware event-queue capacity (snap-core's default).
pub(crate) const EVENT_QUEUE_CAPACITY: u64 = 8;

/// Abstract register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Abs {
    /// Known 16-bit constant.
    Const(u16),
    /// The current call frame's return address (value unknown, but
    /// `jr` on it is a return).
    Link,
    /// Unknown.
    Top,
}

impl Abs {
    fn join(self, other: Abs) -> Abs {
        if self == other {
            self
        } else {
            Abs::Top
        }
    }
}

pub(crate) type RegState = [Abs; 16];

fn join_states(a: &RegState, b: &RegState) -> RegState {
    let mut out = *a;
    for (o, v) in out.iter_mut().zip(b.iter()) {
        *o = o.join(*v);
    }
    out
}

/// Map `Link` markers to `Top` — used when a state crosses a call
/// boundary, so return addresses of other frames are plain unknowns.
fn strip_links(state: &RegState) -> RegState {
    let mut out = *state;
    for v in out.iter_mut() {
        if *v == Abs::Link {
            *v = Abs::Top;
        }
    }
    out
}

/// Additive path cost: dynamic instructions, energy, and the event /
/// message-port side-channel counters the queue lints need.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct Cost {
    pub ins: u64,
    pub pj: f64,
    pub swev: u64,
    pub r15: u64,
    /// `swev` posts split by target event index, for the `swev rn`
    /// sites where the abstract value of `rn` is a known constant.
    pub swev_by: [u64; 8],
    /// True when some `swev rn` on the path had an unknown `rn`: the
    /// per-event split under-counts and the event-flow graph must not
    /// trust it.
    pub swev_unknown: bool,
}

impl Cost {
    pub(crate) fn add(self, o: Cost) -> Cost {
        let mut swev_by = self.swev_by;
        for (a, b) in swev_by.iter_mut().zip(o.swev_by.iter()) {
            *a = a.saturating_add(*b);
        }
        Cost {
            ins: self.ins.saturating_add(o.ins),
            pj: self.pj + o.pj,
            swev: self.swev.saturating_add(o.swev),
            r15: self.r15.saturating_add(o.r15),
            swev_by,
            swev_unknown: self.swev_unknown || o.swev_unknown,
        }
    }

    pub(crate) fn max(self, o: Cost) -> Cost {
        let mut swev_by = self.swev_by;
        for (a, b) in swev_by.iter_mut().zip(o.swev_by.iter()) {
            *a = (*a).max(*b);
        }
        Cost {
            ins: self.ins.max(o.ins),
            pj: self.pj.max(o.pj),
            swev: self.swev.max(o.swev),
            r15: self.r15.max(o.r15),
            swev_by,
            swev_unknown: self.swev_unknown || o.swev_unknown,
        }
    }

    pub(crate) fn scale(self, n: u64) -> Cost {
        let mut swev_by = self.swev_by;
        for a in swev_by.iter_mut() {
            *a = a.saturating_mul(n);
        }
        Cost {
            ins: self.ins.saturating_mul(n),
            pj: self.pj * n as f64,
            swev: self.swev.saturating_mul(n),
            r15: self.r15.saturating_mul(n),
            swev_by,
            swev_unknown: self.swev_unknown,
        }
    }
}

/// Cost of the worst path to some point: not reached at all, bounded,
/// or through an unboundable region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum PathCost {
    Unreached,
    Bounded(Cost),
    Unbounded,
}

impl PathCost {
    /// Max-join of two alternatives.
    pub(crate) fn join(self, o: PathCost) -> PathCost {
        match (self, o) {
            (PathCost::Unreached, x) | (x, PathCost::Unreached) => x,
            (PathCost::Unbounded, _) | (_, PathCost::Unbounded) => PathCost::Unbounded,
            (PathCost::Bounded(a), PathCost::Bounded(b)) => PathCost::Bounded(a.max(b)),
        }
    }

    /// Sequential composition.
    pub(crate) fn add(self, c: Cost) -> PathCost {
        match self {
            PathCost::Unreached => PathCost::Unreached,
            PathCost::Unbounded => PathCost::Unbounded,
            PathCost::Bounded(a) => PathCost::Bounded(a.add(c)),
        }
    }

    pub(crate) fn reached(self) -> bool {
        !matches!(self, PathCost::Unreached)
    }
}

/// A call site's view of its callee.
#[derive(Debug, Clone)]
pub(crate) struct CallInfo {
    /// Some path in the callee ends the whole handler with `done`.
    pub done_exists: bool,
    /// Worst callee-internal cost to that `done` (excluding the `jal`).
    pub done_cost: PathCost,
}

/// One explored instruction in one context.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub ins: Instruction,
    pub wc: usize,
    pub in_state: RegState,
    pub out_state: RegState,
    pub succs: Vec<Addr>,
    /// `done`/`halt`: ends the activation here.
    pub done_exit: bool,
    /// `jr` on a `Link` value: returns to the caller.
    pub ret_exit: bool,
    pub call: Option<CallInfo>,
    /// Cost of passing through this node (for calls: `jal` plus the
    /// callee's worst return cost).
    pub cost: Cost,
    /// Passing through cannot be bounded (callee return cost unknown).
    pub unbounded_through: bool,
    /// The instruction's own cost (without any callee contribution).
    pub base_cost: Cost,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CtxKind {
    Boot,
    Handler(usize),
    Sub,
}

/// One analyzed context: an entry point plus everything reachable from
/// it without returning.
pub(crate) struct Ctx {
    pub kind: CtxKind,
    pub entry: Addr,
    /// Register state at `entry` before any loop-carried joins — used
    /// by the loop-bound analysis for initial counter values.
    pub entry_state: RegState,
    pub nodes: BTreeMap<Addr, Node>,
    /// Context-local trust loss: indirect jump, recursion, degraded
    /// callee. Verdicts and bounds from this context are Unknown/None.
    pub degraded: bool,
    /// Some path dead-ends (decode error or control past the image).
    pub has_dead_end: bool,
    /// Some reachable call has an unboundable callee.
    pub has_unbounded_call: bool,
    /// Some reachable callee's bound used the 65536-trip fallback.
    pub has_loose_call: bool,
    /// Pcs (in this context or a callee, attributed to the call site)
    /// that pop the `r15` message port.
    pub r15_reads: Vec<Addr>,
}

/// Memoized per-(entry, entry-state) callee summary.
#[derive(Debug, Clone)]
pub(crate) struct Summary {
    pub ret_exists: bool,
    pub ret_cost: PathCost,
    pub done_exists: bool,
    pub done_cost: PathCost,
    pub ret_state: RegState,
    pub degraded: bool,
    pub has_unbounded: bool,
    pub dead_end: bool,
    pub reads_r15: bool,
    pub loose: bool,
}

impl Summary {
    /// Fallback when recursion or the depth cap stops the analysis:
    /// claims nothing and poisons the caller's verdict via `degraded`.
    fn degraded_fallback() -> Summary {
        Summary {
            ret_exists: true,
            ret_cost: PathCost::Unbounded,
            done_exists: false,
            done_cost: PathCost::Unreached,
            ret_state: [Abs::Top; 16],
            degraded: true,
            has_unbounded: true,
            dead_end: false,
            reads_r15: false,
            loose: false,
        }
    }
}

/// One analysis pass (one round of the outer iteration).
pub(crate) struct Pass<'a> {
    imem: &'a [Word],
    model: SnapEnergyModel,
    poison: &'a BTreeSet<Addr>,
    /// Registers assumed written somewhere (handler entry = Top);
    /// `None` means assume everything written.
    written: Option<[bool; 16]>,
    summaries: HashMap<(Addr, RegState), Summary>,
    in_progress: Vec<Addr>,
    pub ctxs: Vec<Ctx>,
    pub degraded_global: bool,
    pub diags: Vec<Diagnostic>,
    diag_seen: BTreeSet<(&'static str, Addr)>,
}

impl<'a> Pass<'a> {
    fn new(
        imem: &'a [Word],
        point: OperatingPoint,
        poison: &'a BTreeSet<Addr>,
        written: Option<[bool; 16]>,
    ) -> Pass<'a> {
        Pass {
            imem,
            model: SnapEnergyModel::new(point),
            poison,
            written,
            summaries: HashMap::new(),
            in_progress: Vec::new(),
            ctxs: Vec::new(),
            degraded_global: false,
            diags: Vec::new(),
            diag_seen: BTreeSet::new(),
        }
    }

    fn handler_entry_state(&self) -> RegState {
        let mut st = [Abs::Top; 16];
        if let Some(written) = self.written {
            for (r, v) in st.iter_mut().enumerate() {
                if !written[r] {
                    // Never written anywhere reachable: still holds its
                    // power-on zero when the handler runs.
                    *v = Abs::Const(0);
                }
            }
        }
        st[15] = Abs::Top;
        st
    }

    pub(crate) fn diag(
        &mut self,
        lint: &'static str,
        severity: Severity,
        pc: Addr,
        kind: CtxKind,
        message: String,
        hint: &str,
    ) {
        if !self.diag_seen.insert((lint, pc)) {
            return;
        }
        self.diags.push(Diagnostic {
            lint,
            severity,
            pc: Some(pc),
            line: None,
            handler: ctx_handler_name(kind),
            message,
            hint: hint.to_string(),
        });
    }

    fn base_cost(&self, ins: &Instruction, st: &RegState) -> Cost {
        let pj = self
            .model
            .instruction_energy(InstrShape {
                class: ins.class(),
                words: ins.word_count(),
                dmem: ins.accesses_dmem(),
                imem_data: ins.accesses_imem_data(),
            })
            .as_pj();
        let mut swev_by = [0u64; 8];
        let mut swev_unknown = false;
        if let Instruction::SwEvent { rn } = ins {
            match st[rn.index() as usize] {
                Abs::Const(v) => swev_by[(v & 7) as usize] = 1,
                _ => swev_unknown = true,
            }
        }
        Cost {
            ins: 1,
            pj,
            swev: u64::from(matches!(ins, Instruction::SwEvent { .. })),
            r15: u64::from(ins.reads_msg_port()),
            swev_by,
            swev_unknown,
        }
    }

    /// Explore one context to a fixpoint. Returns its index in `ctxs`.
    fn explore(
        &mut self,
        entry: Addr,
        entry_state: RegState,
        kind: CtxKind,
        depth: usize,
    ) -> usize {
        let mut nodes: BTreeMap<Addr, Node> = BTreeMap::new();
        let mut in_states: BTreeMap<Addr, RegState> = BTreeMap::new();
        let mut work: VecDeque<Addr> = VecDeque::new();
        let mut degraded = false;
        let mut has_dead_end = false;
        let mut has_unbounded_call = false;
        let mut has_loose_call = false;
        let mut r15_reads: Vec<Addr> = Vec::new();
        in_states.insert(entry, entry_state);
        work.push_back(entry);

        while let Some(pc) = work.pop_front() {
            let st = in_states[&pc];
            if let Some(n) = nodes.get(&pc) {
                if n.in_state == st {
                    continue; // already explored under this state
                }
            }
            if pc as usize >= self.imem.len() {
                // Control runs past the provided image into the
                // zero-filled remainder of the bank — we refuse to model
                // that, so the reachable set is no longer trustworthy.
                self.diag(
                    "falls-off-image",
                    Severity::Error,
                    pc,
                    kind,
                    format!("control reaches {pc:#05x}, past the end of the image"),
                    "end every path with `done` (handlers) or `halt`/`jmp` (boot)",
                );
                has_dead_end = true;
                self.degraded_global = true;
                degraded = true;
                continue;
            }
            let first = self.imem[pc as usize];
            let second = self.imem.get(pc as usize + 1).copied().unwrap_or(0);
            let ins = match Instruction::decode(first, Some(second)) {
                Ok(ins) => ins,
                Err(e) => {
                    self.diag(
                        "decode-error",
                        Severity::Error,
                        pc,
                        kind,
                        format!("word {first:#06x} at {pc:#05x} is not an instruction: {e}"),
                        "control flows into data or a misaligned immediate word",
                    );
                    has_dead_end = true;
                    nodes.insert(
                        pc,
                        Node {
                            ins: Instruction::Nop,
                            wc: 1,
                            in_state: st,
                            out_state: st,
                            succs: Vec::new(),
                            done_exit: false,
                            ret_exit: false,
                            call: None,
                            cost: Cost::default(),
                            unbounded_through: false,
                            base_cost: Cost::default(),
                        },
                    );
                    continue;
                }
            };
            let wc = ins.word_count();
            let out = transfer(&ins, &st, pc, self.poison);
            let base_cost = self.base_cost(&ins, &st);
            if ins.reads_msg_port() {
                r15_reads.push(pc);
            }
            let mut cost = base_cost;
            let mut succs: Vec<Addr> = Vec::new();
            let mut done_exit = false;
            let mut ret_exit = false;
            let mut call = None;
            let mut unbounded_through = false;
            // Successor in-state overrides (call returns).
            let mut succ_state: Option<RegState> = None;

            let fallthrough = pc + wc as Addr;
            match ins {
                Instruction::Branch { target, .. } => {
                    // Both ways, always: constant-folding a branch away
                    // would let the reachable set under-approximate.
                    succs.push(target);
                    succs.push(fallthrough);
                }
                Instruction::Jmp { target } => succs.push(target),
                Instruction::Done | Instruction::Halt => done_exit = true,
                Instruction::Jr { rs } => match st[rs.index() as usize] {
                    Abs::Link => ret_exit = true,
                    Abs::Const(a) => succs.push(a),
                    Abs::Top => {
                        self.diag(
                            "indirect-jump",
                            Severity::Warning,
                            pc,
                            kind,
                            format!("`jr {rs}` with an unknown target"),
                            "the analysis cannot follow this; verdicts and bounds degrade",
                        );
                        degraded = true;
                        self.degraded_global = true;
                    }
                },
                Instruction::Jal { rd, target } => {
                    let (s, c) = self.call(pc, rd, target, &out, kind, depth);
                    if s.ret_exists {
                        succs.push(fallthrough);
                        let mut rstate = strip_links(&s.ret_state);
                        rstate[15] = Abs::Top;
                        succ_state = Some(rstate);
                        match s.ret_cost {
                            PathCost::Bounded(rc) => cost = cost.add(rc),
                            _ => unbounded_through = true,
                        }
                    }
                    if s.reads_r15 {
                        r15_reads.push(pc);
                    }
                    if s.degraded {
                        degraded = true;
                    }
                    if s.dead_end {
                        has_dead_end = true;
                    }
                    if s.has_unbounded {
                        has_unbounded_call = true;
                    }
                    if s.loose {
                        has_loose_call = true;
                    }
                    call = Some(c);
                }
                Instruction::Jalr { rd, rs } => match st[rs.index() as usize] {
                    Abs::Const(target) => {
                        let (s, c) = self.call(pc, rd, target, &out, kind, depth);
                        if s.ret_exists {
                            succs.push(fallthrough);
                            let mut rstate = strip_links(&s.ret_state);
                            rstate[15] = Abs::Top;
                            succ_state = Some(rstate);
                            match s.ret_cost {
                                PathCost::Bounded(rc) => cost = cost.add(rc),
                                _ => unbounded_through = true,
                            }
                        }
                        if s.reads_r15 {
                            r15_reads.push(pc);
                        }
                        if s.degraded {
                            degraded = true;
                        }
                        if s.dead_end {
                            has_dead_end = true;
                        }
                        if s.has_unbounded {
                            has_unbounded_call = true;
                        }
                        if s.loose {
                            has_loose_call = true;
                        }
                        call = Some(c);
                    }
                    _ => {
                        self.diag(
                            "indirect-jump",
                            Severity::Warning,
                            pc,
                            kind,
                            format!("`jalr {rd}, {rs}` with an unknown target"),
                            "the analysis cannot follow this; verdicts and bounds degrade",
                        );
                        degraded = true;
                        self.degraded_global = true;
                    }
                },
                _ => succs.push(fallthrough),
            }

            for &s in &succs {
                let ns = succ_state.as_ref().unwrap_or(&out);
                match in_states.get_mut(&s) {
                    Some(existing) => {
                        let joined = join_states(existing, ns);
                        if joined != *existing {
                            *existing = joined;
                            work.push_back(s);
                        }
                    }
                    None => {
                        in_states.insert(s, *ns);
                        work.push_back(s);
                    }
                }
            }
            nodes.insert(
                pc,
                Node {
                    ins,
                    wc,
                    in_state: st,
                    out_state: out,
                    succs,
                    done_exit,
                    ret_exit,
                    call,
                    cost,
                    unbounded_through,
                    base_cost,
                },
            );
        }

        self.ctxs.push(Ctx {
            kind,
            entry,
            entry_state,
            nodes,
            degraded,
            has_dead_end,
            has_unbounded_call,
            has_loose_call,
            r15_reads,
        });
        self.ctxs.len() - 1
    }

    /// Analyze (or reuse) a callee summary for a call at `pc`.
    fn call(
        &mut self,
        pc: Addr,
        link: Reg,
        target: Addr,
        caller_out: &RegState,
        kind: CtxKind,
        depth: usize,
    ) -> (Summary, CallInfo) {
        let mut callee_state = strip_links(caller_out);
        if link.index() != 15 {
            callee_state[link.index() as usize] = Abs::Link;
        }
        let key = (target, callee_state);
        let summary = if let Some(s) = self.summaries.get(&key) {
            s.clone()
        } else if self.in_progress.contains(&target) || depth >= MAX_CALL_DEPTH {
            let lint = if self.in_progress.contains(&target) {
                "recursion"
            } else {
                "call-depth"
            };
            self.diag(
                lint,
                Severity::Warning,
                pc,
                kind,
                format!(
                    "call to {target:#05x} {}",
                    if lint == "recursion" {
                        "re-enters a function already on the call stack"
                    } else {
                        "exceeds the analyzable call depth"
                    }
                ),
                "the analysis cannot bound this call chain; verdicts degrade",
            );
            let s = Summary::degraded_fallback();
            self.summaries.insert(key, s.clone());
            s
        } else {
            self.in_progress.push(target);
            let idx = self.explore(target, callee_state, CtxKind::Sub, depth + 1);
            self.in_progress.pop();
            let s = self.summarize(idx);
            self.summaries.insert(key, s.clone());
            s
        };
        let info = CallInfo {
            done_exists: summary.done_exists,
            done_cost: summary.done_cost,
        };
        (summary, info)
    }

    /// Condense an explored callee context into a summary.
    fn summarize(&mut self, idx: usize) -> Summary {
        let ctx = &self.ctxs[idx];
        let cr = crate::loops::cost_of(ctx);
        let mut ret_state: Option<RegState> = None;
        let mut ret_exists = false;
        for node in ctx.nodes.values() {
            if node.ret_exit {
                ret_exists = true;
                ret_state = Some(match ret_state {
                    Some(s) => join_states(&s, &node.in_state),
                    None => node.in_state,
                });
            }
        }
        Summary {
            ret_exists,
            ret_cost: cr.ret,
            done_exists: cr.done.reached(),
            done_cost: cr.done,
            ret_state: ret_state.unwrap_or([Abs::Top; 16]),
            degraded: ctx.degraded,
            has_unbounded: cr.has_unbounded || ctx.has_unbounded_call,
            dead_end: ctx.has_dead_end,
            reads_r15: !ctx.r15_reads.is_empty(),
            loose: cr.loose || ctx.has_loose_call,
        }
    }
}

pub(crate) fn ctx_handler_name(kind: CtxKind) -> Option<String> {
    match kind {
        CtxKind::Boot => Some("boot".to_string()),
        CtxKind::Handler(i) => snap_isa::EventKind::from_index(i).map(|e| e.to_string()),
        CtxKind::Sub => None,
    }
}

/// Abstract transfer function: next register state after `ins`.
fn transfer(ins: &Instruction, st: &RegState, pc: Addr, poison: &BTreeSet<Addr>) -> RegState {
    let get = |r: Reg| st[r.index() as usize];
    let unop = |v: Abs, f: &dyn Fn(u16) -> u16| match v {
        Abs::Const(x) => Abs::Const(f(x)),
        _ => Abs::Top,
    };
    let binop = |a: Abs, b: Abs, f: &dyn Fn(u16, u16) -> u16| match (a, b) {
        (Abs::Const(x), Abs::Const(y)) => Abs::Const(f(x, y)),
        _ => Abs::Top,
    };
    let shift = |op: ShiftOp, x: u16, n: u16| -> u16 {
        let n = u32::from(n & 15);
        match op {
            ShiftOp::Sll => x.wrapping_shl(n),
            ShiftOp::Srl => x.wrapping_shr(n),
            ShiftOp::Sra => ((x as i16).wrapping_shr(n)) as u16,
            ShiftOp::Rol => x.rotate_left(n),
            ShiftOp::Ror => x.rotate_right(n),
        }
    };

    let write: Option<(Reg, Abs)> = match *ins {
        Instruction::AluImm { op, rd, imm } => {
            let v = match op {
                AluImmOp::Li => {
                    if poison.contains(&(pc + 1)) {
                        // A reachable `isw` targets this immediate word:
                        // the loaded value is whatever was last stored.
                        Abs::Top
                    } else {
                        Abs::Const(imm)
                    }
                }
                AluImmOp::Addi => unop(get(rd), &|x| x.wrapping_add(imm)),
                AluImmOp::Subi => unop(get(rd), &|x| x.wrapping_sub(imm)),
                AluImmOp::Andi => unop(get(rd), &|x| x & imm),
                AluImmOp::Ori => unop(get(rd), &|x| x | imm),
                AluImmOp::Xori => unop(get(rd), &|x| x ^ imm),
                AluImmOp::Slti => unop(get(rd), &|x| u16::from((x as i16) < (imm as i16))),
                AluImmOp::Sltiu => unop(get(rd), &|x| u16::from(x < imm)),
            };
            Some((rd, v))
        }
        Instruction::AluReg { op, rd, rs } => {
            let (a, b) = (get(rd), get(rs));
            let v = match op {
                AluOp::Mov => b, // propagates Link through register moves
                AluOp::Not => unop(b, &|x| !x),
                AluOp::Neg => unop(b, &|x| x.wrapping_neg()),
                AluOp::Add => binop(a, b, &u16::wrapping_add),
                AluOp::Sub => binop(a, b, &u16::wrapping_sub),
                AluOp::And => binop(a, b, &|x, y| x & y),
                AluOp::Or => binop(a, b, &|x, y| x | y),
                AluOp::Xor => binop(a, b, &|x, y| x ^ y),
                AluOp::Slt => binop(a, b, &|x, y| u16::from((x as i16) < (y as i16))),
                AluOp::Sltu => binop(a, b, &|x, y| u16::from(x < y)),
                // Carry flag is not tracked.
                AluOp::Addc | AluOp::Subc => Abs::Top,
            };
            Some((rd, v))
        }
        Instruction::ShiftImm { op, rd, amount } => {
            Some((rd, unop(get(rd), &|x| shift(op, x, u16::from(amount)))))
        }
        Instruction::ShiftReg { op, rd, rs } => {
            Some((rd, binop(get(rd), get(rs), &|x, n| shift(op, x, n))))
        }
        Instruction::Bfs { rd, rs, mask } => Some((
            rd,
            binop(get(rd), get(rs), &|a, b| (a & !mask) | (b & mask)),
        )),
        Instruction::Load { rd, .. }
        | Instruction::ImemLoad { rd, .. }
        | Instruction::Rand { rd } => Some((rd, Abs::Top)),
        // Calls are handled at the call site; everything else writes no
        // register.
        _ => None,
    };

    let mut out = *st;
    if let Some((rd, v)) = write {
        let i = rd.index() as usize;
        out[i] = if i == 15 { Abs::Top } else { v };
    }
    out
}

/// The verdict/bound for one root context.
fn root_report(ctx: &Ctx, global_degraded: bool) -> (Termination, Option<Bound>, bool) {
    let cr = crate::loops::cost_of(ctx);
    let degraded = global_degraded || ctx.degraded;
    let done_reached = cr.done.reached();
    let terminates = if degraded {
        Termination::Unknown
    } else if !done_reached {
        Termination::Never
    } else if !cr.has_unbounded && !ctx.has_unbounded_call && !ctx.has_dead_end {
        Termination::Proved
    } else {
        Termination::Unknown
    };
    let bound = match (degraded, cr.done) {
        (false, PathCost::Bounded(c)) => Some(Bound {
            instructions: c.ins,
            energy_pj: c.pj,
        }),
        _ => None,
    };
    (terminates, bound, cr.loose || ctx.has_loose_call)
}

/// Everything the outer iteration learns in one round.
struct RoundFacts {
    written: [bool; 16],
    table: BTreeMap<usize, BTreeSet<Addr>>,
    poison: BTreeSet<Addr>,
    /// `isw`/`setaddr` with unknown operands, or a store into live
    /// non-`li` code: the program rewrites itself in ways we can't
    /// model.
    dynamic_degrade: bool,
}

/// Harvest the global facts the next round needs from this round's
/// contexts.
fn harvest(pass: &Pass) -> RoundFacts {
    let mut written = [false; 16];
    let mut table: BTreeMap<usize, BTreeSet<Addr>> = BTreeMap::new();
    let mut poison: BTreeSet<Addr> = BTreeSet::new();
    let mut dynamic_degrade = false;

    // Word-accurate footprint of reachable code, and which words are
    // `li` immediates (patchable without degrading the analysis).
    let mut li_imm: BTreeSet<Addr> = BTreeSet::new();
    let mut code_words: BTreeSet<Addr> = BTreeSet::new();
    for ctx in &pass.ctxs {
        for (&pc, node) in &ctx.nodes {
            for w in 0..node.wc as Addr {
                code_words.insert(pc + w);
            }
            if matches!(
                node.ins,
                Instruction::AluImm {
                    op: AluImmOp::Li,
                    ..
                }
            ) {
                li_imm.insert(pc + 1);
            }
        }
    }

    for ctx in &pass.ctxs {
        for (&_pc, node) in &ctx.nodes {
            if let Some(rd) = node.ins.dest_reg() {
                written[rd.index() as usize] = true;
            }
            match node.ins {
                Instruction::SetAddr { rev, raddr } => {
                    let ev = node.in_state[rev.index() as usize];
                    let addr = node.in_state[raddr.index() as usize];
                    match (ev, addr) {
                        (Abs::Const(e), Abs::Const(a)) => {
                            table.entry((e & 7) as usize).or_default().insert(a);
                        }
                        _ => dynamic_degrade = true,
                    }
                }
                Instruction::ImemStore { base, offset, .. } => {
                    match node.in_state[base.index() as usize] {
                        Abs::Const(b) => {
                            let t = b.wrapping_add(offset);
                            if li_imm.contains(&t) {
                                poison.insert(t);
                            } else if code_words.contains(&t) {
                                dynamic_degrade = true;
                            }
                            // Stores outside reachable code are plain
                            // data patching — no impact on the analysis.
                        }
                        _ => dynamic_degrade = true,
                    }
                }
                _ => {}
            }
        }
    }

    RoundFacts {
        written,
        table,
        poison,
        dynamic_degrade,
    }
}

/// Run the outer iteration and assemble the final [`Analysis`].
pub(crate) fn analyze(
    imem: &[Word],
    symbols: Option<&BTreeMap<String, i64>>,
    lines: Option<&BTreeMap<Addr, snap_asm::SourceLine>>,
    point: OperatingPoint,
    data_ranges: &[(String, Addr, Addr)],
) -> Analysis {
    let mut poison: BTreeSet<Addr> = BTreeSet::new();
    let mut table: BTreeMap<usize, BTreeSet<Addr>> = BTreeMap::new();
    let mut written: Option<[bool; 16]> = None;
    let mut pass;
    let mut facts;
    let mut unstable = false;
    let mut round = 0;
    loop {
        pass = Pass::new(imem, point, &poison, written);
        if !imem.is_empty() {
            let mut boot_state = [Abs::Const(0); 16];
            boot_state[15] = Abs::Top;
            pass.explore(0, boot_state, CtxKind::Boot, 0);
            for (&ev, addrs) in &table {
                for &a in addrs {
                    let st = pass.handler_entry_state();
                    pass.explore(a, st, CtxKind::Handler(ev), 0);
                }
            }
        }
        facts = harvest(&pass);
        if facts.dynamic_degrade {
            pass.degraded_global = true;
        }
        let stable =
            facts.table == table && facts.poison == poison && Some(facts.written) == written;
        round += 1;
        if stable {
            break;
        }
        if round >= MAX_ROUNDS {
            unstable = true;
            break;
        }
        table = facts.table.clone();
        poison = facts.poison.clone();
        written = Some(facts.written);
    }
    if unstable {
        pass.degraded_global = true;
        pass.diags.push(Diagnostic {
            lint: "analysis-unstable",
            severity: Severity::Warning,
            pc: None,
            line: None,
            handler: None,
            message: format!("whole-program facts did not stabilize in {MAX_ROUNDS} rounds"),
            hint: "self-modifying handler-table or code rewrites defeat the analysis".to_string(),
        });
    }

    let global_degraded = pass.degraded_global;

    // Per-root reports.
    let name_of = |addr: Addr| -> Option<String> {
        let symbols = symbols?;
        symbols
            .iter()
            .filter(|(_, &v)| v == i64::from(addr))
            .map(|(k, _)| k.clone())
            .next()
    };
    let empty_boot = HandlerReport {
        event: None,
        entry: if imem.is_empty() { None } else { Some(0) },
        symbol: None,
        terminates: Termination::Unknown,
        bound: None,
        loose: false,
        paper_band: None,
    };
    let mut boot_report = empty_boot.clone();
    // Done-terminating regions exported for AOT translation: a root
    // qualifies only when its verdict is Proved (which root_report
    // already degrades to Unknown under global degradation).
    let mut regions: Vec<crate::ProvenRegion> = Vec::new();
    for ctx in &pass.ctxs {
        if ctx.kind == CtxKind::Boot {
            let (terminates, bound, loose) = root_report(ctx, global_degraded);
            if terminates == Termination::Proved {
                regions.push(crate::ProvenRegion {
                    event: None,
                    entry: ctx.entry,
                    addrs: ctx.nodes.keys().copied().collect(),
                });
            }
            boot_report = HandlerReport {
                event: None,
                entry: Some(0),
                symbol: name_of(0),
                terminates,
                bound,
                loose,
                paper_band: bound.map(|b| PaperBand::of(b.instructions)),
            };
        }
    }

    let mut handlers: Vec<HandlerReport> = Vec::with_capacity(EVENT_TABLE_ENTRIES);
    for (i, &event) in snap_isa::EventKind::ALL.iter().enumerate() {
        let roots = facts.table.get(&i).cloned().unwrap_or_default();
        if roots.is_empty() {
            handlers.push(HandlerReport {
                event: Some(event),
                entry: None,
                symbol: None,
                terminates: Termination::Unknown,
                bound: None,
                loose: false,
                paper_band: None,
            });
            continue;
        }
        // Join over every root this event can dispatch to: weakest
        // verdict, max bound.
        let mut terminates: Option<Termination> = None;
        let mut bound: Option<Bound> = None;
        let mut loose = false;
        let mut entry = None;
        let mut symbol = None;
        for (ri, &root) in roots.iter().enumerate() {
            entry.get_or_insert(root);
            if symbol.is_none() {
                symbol = name_of(root);
            }
            let ctx = pass
                .ctxs
                .iter()
                .find(|c| c.kind == CtxKind::Handler(i) && c.entry == root);
            let (t, b, l) = match ctx {
                Some(ctx) => root_report(ctx, global_degraded),
                // Root discovered on the (degraded) final round but
                // never explored: claim nothing.
                None => (Termination::Unknown, None, false),
            };
            if t == Termination::Proved {
                if let Some(ctx) = ctx {
                    regions.push(crate::ProvenRegion {
                        event: Some(event),
                        entry: root,
                        addrs: ctx.nodes.keys().copied().collect(),
                    });
                }
            }
            terminates = Some(match terminates {
                None => t,
                Some(acc) if acc == t => t,
                Some(_) => Termination::Unknown,
            });
            loose |= l;
            bound = match (if ri == 0 { b } else { bound }, b) {
                (Some(acc), Some(nb)) => Some(Bound {
                    instructions: acc.instructions.max(nb.instructions),
                    energy_pj: acc.energy_pj.max(nb.energy_pj),
                }),
                _ => None,
            };
        }
        let terminates = terminates.unwrap_or(Termination::Unknown);
        handlers.push(HandlerReport {
            event: Some(event),
            entry,
            symbol,
            terminates,
            bound,
            loose,
            paper_band: bound.map(|b| PaperBand::of(b.instructions)),
        });
    }

    let mut diagnostics = std::mem::take(&mut pass.diags);
    diagnostics.extend(crate::lints::run(
        &pass.ctxs,
        &facts.table,
        &facts.written,
        global_degraded,
        imem.len(),
    ));

    // Whole-image event-flow analysis: graph, activation-chain proofs,
    // and the interprocedural lints.
    let (flow, flow_diags) = crate::flow::analyze_flow(
        &pass.ctxs,
        &facts.table,
        global_degraded,
        &poison,
        data_ranges,
    );
    diagnostics.extend(flow_diags);

    // Reachable instruction starts, across every context.
    let mut reachable: BTreeSet<Addr> = BTreeSet::new();
    for ctx in &pass.ctxs {
        reachable.extend(ctx.nodes.keys().copied());
    }

    // Attach source lines and apply `lint:allow` suppressions.
    if let Some(lines) = lines {
        diagnostics.retain_mut(|d| {
            let Some(pc) = d.pc else { return true };
            let Some(sl) = lines.get(&pc) else {
                return true;
            };
            d.line = Some((sl.module.clone(), sl.line));
            !sl.allowed_lints.iter().any(|a| a == d.lint || a == "all")
        });
    }
    diagnostics.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then(a.pc.cmp(&b.pc))
            .then(a.lint.cmp(b.lint))
    });

    Analysis {
        vdd_v: vdd_of(point),
        degraded: global_degraded,
        reachable,
        boot: boot_report,
        handlers,
        diagnostics,
        imem_words: imem.len(),
        regions,
        flow,
    }
}

fn vdd_of(point: OperatingPoint) -> f64 {
    point.vdd()
}
