//! Worst-case path costs over a context's CFG.
//!
//! Strongly connected components are classified against the
//! counter-loop idiom: a single header, a single back-edge, and a
//! unique `addi rX, k`/`subi rX, k` on the tested register that runs on
//! every cycle. Both placements of the test are recognized —
//! bottom-tested (`top: ...; subi rX, 1; bnez rX, top`) and top-tested
//! (`top: bgeu rX, rK, out; ...; jmp top`). Recognized loops get a trip
//! count — exact when the counter's initial value and bound are known
//! constants, a sound 65536-iteration wrap bound otherwise (marked
//! *loose*). Anything else is reported unbounded and poisons every
//! path cost through it.

use crate::analyzer::{Abs, Cost, Ctx, Node, PathCost};
use snap_isa::{Addr, AluImmOp, BranchCond, Instruction, Reg};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Cost summary of one context.
pub(crate) struct CostResult {
    /// Worst cost from entry through a `done`/`halt` (inclusive), over
    /// paths that end the activation here or in a callee.
    pub done: PathCost,
    /// Worst cost from entry through a `jr <link>` (inclusive).
    pub ret: PathCost,
    /// Some reachable loop could not be bounded.
    pub has_unbounded: bool,
    /// Some bound used the 65536-iteration fallback trip count.
    pub loose: bool,
    /// Representative pc of each unrecognized (unbounded) loop.
    pub unbounded_sccs: Vec<Addr>,
}

/// Sequential composition of two path costs.
fn seq(a: PathCost, b: PathCost) -> PathCost {
    match (a, b) {
        (PathCost::Unreached, _) | (_, PathCost::Unreached) => PathCost::Unreached,
        (PathCost::Unbounded, _) | (_, PathCost::Unbounded) => PathCost::Unbounded,
        (PathCost::Bounded(x), PathCost::Bounded(y)) => PathCost::Bounded(x.add(y)),
    }
}

pub(crate) fn cost_of(ctx: &Ctx) -> CostResult {
    let mut result = CostResult {
        done: PathCost::Unreached,
        ret: PathCost::Unreached,
        has_unbounded: false,
        loose: false,
        unbounded_sccs: Vec::new(),
    };
    let nodes = &ctx.nodes;
    if nodes.is_empty() {
        return result;
    }
    // Successor lists restricted to explored nodes (edges to a pc that
    // fell off the image or was never materialized are dead ends,
    // already accounted for by `has_dead_end`).
    let succs: BTreeMap<Addr, Vec<Addr>> = nodes
        .iter()
        .map(|(&pc, n)| {
            (
                pc,
                n.succs
                    .iter()
                    .copied()
                    .filter(|s| nodes.contains_key(s))
                    .collect(),
            )
        })
        .collect();

    let sccs = tarjan(&succs);
    let mut comp_of: BTreeMap<Addr, usize> = BTreeMap::new();
    for (i, comp) in sccs.iter().enumerate() {
        for &pc in comp {
            comp_of.insert(pc, i);
        }
    }
    let mut enter: Vec<PathCost> = vec![PathCost::Unreached; sccs.len()];
    enter[comp_of[&ctx.entry]] = PathCost::Bounded(Cost::default());

    // Tarjan emits components callees-first (reverse topological
    // order); walking the list backwards visits sources before sinks.
    for ci in (0..sccs.len()).rev() {
        let comp = &sccs[ci];
        let e = enter[ci];
        if !e.reached() {
            continue;
        }
        let self_loop = comp.len() == 1 && succs[&comp[0]].contains(&comp[0]);
        if comp.len() == 1 && !self_loop {
            let pc = comp[0];
            let n = &nodes[&pc];
            exit_costs(&mut result, n, e);
            let through = if n.unbounded_through {
                PathCost::Unbounded
            } else {
                e.add(n.cost)
            };
            for &s in &succs[&pc] {
                let sc = comp_of[&s];
                enter[sc] = enter[sc].join(through);
            }
            continue;
        }

        let set: BTreeSet<Addr> = comp.iter().copied().collect();
        let shape = classify(ctx, comp, &set, &succs);
        match shape {
            Some(shape) => {
                // Longest acyclic path within the loop body (back-edge
                // removed), from the header.
                let dp = inner_paths(ctx, &set, &succs, shape.header, shape.latch);
                let iter_max = match dp.get(&shape.latch) {
                    Some(&(_, out)) => out,
                    None => PathCost::Unbounded,
                };
                let prefix = match iter_max {
                    PathCost::Bounded(c) => {
                        PathCost::Bounded(c.scale(shape.trips.saturating_sub(1)))
                    }
                    _ => PathCost::Unbounded,
                };
                if matches!(prefix, PathCost::Unbounded) {
                    // A call inside the loop body could not be bounded.
                    unbounded_component(&mut result, comp, nodes, &succs, &comp_of, &mut enter, ci);
                    continue;
                }
                result.loose |= shape.loose;
                for &pc in comp {
                    let n = &nodes[&pc];
                    let (dp_in, _) = dp[&pc];
                    let at = seq(seq(e, prefix), dp_in);
                    exit_costs(&mut result, n, at);
                    let through = if n.unbounded_through {
                        PathCost::Unbounded
                    } else {
                        at.add(n.cost)
                    };
                    for &s in &succs[&pc] {
                        let sc = comp_of[&s];
                        if sc != ci {
                            enter[sc] = enter[sc].join(through);
                        }
                    }
                }
            }
            None => {
                result
                    .unbounded_sccs
                    .push(comp.iter().copied().min().unwrap_or(ctx.entry));
                unbounded_component(&mut result, comp, nodes, &succs, &comp_of, &mut enter, ci);
            }
        }
    }
    result
}

/// Record the exits an unrecognized loop can take: every one of them
/// has an unboundable cost.
fn unbounded_component(
    result: &mut CostResult,
    comp: &[Addr],
    nodes: &BTreeMap<Addr, Node>,
    succs: &BTreeMap<Addr, Vec<Addr>>,
    comp_of: &BTreeMap<Addr, usize>,
    enter: &mut [PathCost],
    ci: usize,
) {
    result.has_unbounded = true;
    for &pc in comp {
        let n = &nodes[&pc];
        exit_costs(result, n, PathCost::Unbounded);
        for &s in &succs[&pc] {
            let sc = comp_of[&s];
            if sc != ci {
                enter[sc] = enter[sc].join(PathCost::Unbounded);
            }
        }
    }
}

/// Fold `n`'s activation-ending exits into the result. `at` is the
/// worst cost to *enter* the node.
fn exit_costs(result: &mut CostResult, n: &Node, at: PathCost) {
    if n.done_exit {
        result.done = result.done.join(at.add(n.base_cost));
    }
    if n.ret_exit {
        result.ret = result.ret.join(at.add(n.base_cost));
    }
    if let Some(call) = &n.call {
        if call.done_exists {
            // Handler ends inside the callee: jal itself plus the
            // callee's worst internal path to its `done`.
            result.done = result.done.join(seq(at.add(n.base_cost), call.done_cost));
        }
    }
}

/// A recognized counter loop.
struct Shape {
    header: Addr,
    latch: Addr,
    trips: u64,
    loose: bool,
}

fn negate(cond: BranchCond) -> BranchCond {
    match cond {
        BranchCond::Eq => BranchCond::Ne,
        BranchCond::Ne => BranchCond::Eq,
        BranchCond::Lt => BranchCond::Ge,
        BranchCond::Ge => BranchCond::Lt,
        BranchCond::Ltu => BranchCond::Geu,
        BranchCond::Geu => BranchCond::Ltu,
        BranchCond::Eqz => BranchCond::Nez,
        BranchCond::Nez => BranchCond::Eqz,
    }
}

/// Try to match the component against the counter-loop idiom.
fn classify(
    ctx: &Ctx,
    comp: &[Addr],
    set: &BTreeSet<Addr>,
    succs: &BTreeMap<Addr, Vec<Addr>>,
) -> Option<Shape> {
    let nodes = &ctx.nodes;
    // Single entry point (the header): every edge from outside the
    // component, and the context entry if it lies inside, must land on
    // the same node.
    let mut header: Option<Addr> = None;
    let set_header = |h: Addr, header: &mut Option<Addr>| -> bool {
        match *header {
            None => {
                *header = Some(h);
                true
            }
            Some(prev) => prev == h,
        }
    };
    if set.contains(&ctx.entry) && !set_header(ctx.entry, &mut header) {
        return None;
    }
    for (&pc, n) in nodes {
        if set.contains(&pc) {
            continue;
        }
        for s in &n.succs {
            if set.contains(s) && !set_header(*s, &mut header) {
                return None;
            }
        }
    }
    let header = header?;

    // Exactly one back-edge.
    let latches: Vec<Addr> = comp
        .iter()
        .copied()
        .filter(|pc| succs[pc].contains(&header))
        .collect();
    if latches.len() != 1 {
        return None;
    }
    let latch = latches[0];

    // Locate the loop test. Bottom-tested: the latch is a conditional
    // branch whose other successor leaves the component. Top-tested:
    // the back-edge is unconditional and the header is a conditional
    // branch with one successor outside.
    let latch_node = &nodes[&latch];
    let (test, cont_cond, ra, rb, top_tested) = match latch_node.ins {
        Instruction::Branch {
            cond,
            ra,
            rb,
            target,
        } => {
            let fallthrough = latch + latch_node.wc as Addr;
            let (other, cont) = if target == header && fallthrough != header {
                (fallthrough, cond)
            } else if fallthrough == header && target != header {
                (target, negate(cond))
            } else {
                return None;
            };
            if set.contains(&other) {
                return None;
            }
            (latch, cont, ra, rb, false)
        }
        _ if succs[&latch].len() == 1 => {
            let hn = &nodes[&header];
            let Instruction::Branch {
                cond,
                ra,
                rb,
                target,
            } = hn.ins
            else {
                return None;
            };
            let fallthrough = header + hn.wc as Addr;
            let cont = if set.contains(&target) && !set.contains(&fallthrough) {
                cond
            } else if set.contains(&fallthrough) && !set.contains(&target) {
                negate(cond)
            } else {
                return None;
            };
            (header, cont, ra, rb, true)
        }
        _ => return None,
    };
    if !cont_cond.is_unary() && ra == rb {
        return None; // `beq r, r`-style: condition never changes
    }

    // The body (back-edge removed) must be acyclic — nested loops are
    // not bounded by this idiom.
    if !is_acyclic(set, succs, header, latch) {
        return None;
    }

    // Counter candidates: the tested register(s).
    let mut cands: Vec<Reg> = vec![ra];
    if matches!(cont_cond, BranchCond::Ne | BranchCond::Eq) && !cont_cond.is_unary() {
        cands.push(rb);
    }
    'cand: for counter in cands {
        let writes: Vec<Addr> = comp
            .iter()
            .copied()
            .filter(|pc| nodes[pc].ins.dest_reg() == Some(counter))
            .collect();
        if writes.len() != 1 {
            continue;
        }
        let cnode = writes[0];
        let Instruction::AluImm { op, rd, imm } = nodes[&cnode].ins else {
            continue;
        };
        if rd != counter || imm == 0 || !matches!(op, AluImmOp::Addi | AluImmOp::Subi) {
            continue;
        }
        // The bound (binary conditions): its abstract value at the test
        // is the join over every iteration, so a constant there is a
        // sound invariant bound even if the register is re-materialized
        // inside the loop (`li rK, 16` each pass). A *non-constant*
        // bound is only safe if nothing in the loop writes it — a
        // moving unknown bound (`addi rK, 1` chasing the counter) may
        // never be reached.
        let kval = if cont_cond.is_unary() {
            None
        } else {
            let k = if counter == ra { rb } else { ra };
            let v = nodes[&test].in_state[k.index() as usize];
            match v {
                Abs::Const(_) => Some(v),
                _ => {
                    for pc in comp {
                        if nodes[pc].ins.dest_reg() == Some(k) {
                            continue 'cand;
                        }
                    }
                    Some(Abs::Top)
                }
            }
        };
        // The counter update must run on every cycle: the latch must be
        // unreachable from the header without passing it.
        if cnode != header && reaches_avoiding(set, succs, header, latch, cnode) {
            continue;
        }
        // Initial value, joined over every edge entering the loop.
        let init = entry_value(ctx, set, header, counter);
        if let Some((trips, loose)) = trip_count(cont_cond, op, imm, init, kval, top_tested) {
            return Some(Shape {
                header,
                latch,
                trips,
                loose,
            });
        }
    }
    None
}

/// Join of a register's abstract value over every edge entering the
/// component from outside (plus the context entry state, if the header
/// is the context entry).
fn entry_value(ctx: &Ctx, set: &BTreeSet<Addr>, header: Addr, reg: Reg) -> Abs {
    let mut val: Option<Abs> = None;
    let join = |v: Abs, val: &mut Option<Abs>| {
        *val = Some(match *val {
            None => v,
            Some(prev) if prev == v => v,
            _ => Abs::Top,
        });
    };
    if ctx.entry == header {
        join(ctx.entry_state[reg.index() as usize], &mut val);
    }
    for (&pc, n) in &ctx.nodes {
        if set.contains(&pc) {
            continue;
        }
        if n.succs.contains(&header) {
            join(n.out_state[reg.index() as usize], &mut val);
        }
    }
    val.unwrap_or(Abs::Top)
}

/// Worst-case number of full header-to-latch cycles: `(trips, loose)`.
/// The cost model charges `(trips - 1)` whole cycles as a prefix before
/// the exiting partial traversal, so an exit at the latch pays exactly
/// `trips` cycles and an exit at the header of a top-tested loop pays
/// `trips - 1` full bodies plus the final test.
///
/// Returns `None` when the (condition, update, stride) combination is
/// not one whose termination we can prove.
fn trip_count(
    cond: BranchCond,
    update: AluImmOp,
    step: u16,
    init: Abs,
    k: Option<Abs>,
    top_tested: bool,
) -> Option<(u64, bool)> {
    use BranchCond::*;
    // The boundary cases differ by placement: a bottom-tested body runs
    // once before the first test (a `subi` countdown from 0 wraps for a
    // full 65536 iterations), while a top-tested loop can run the body
    // zero times but pays one extra header pass. `fin(b, t)` takes the
    // body-execution count under each placement.
    let fin = |bottom: u64, top: u64, loose: bool| {
        if top_tested {
            Some((top + 1, loose))
        } else {
            Some((bottom, loose))
        }
    };
    // Unknown values: a ±1 counter visits every value mod 2^16, so any
    // of the shapes below exits within one wrap.
    let loose = || fin(65536, 65536, true);
    // Post-test distance `d` for the `Nez`/`Ne` shapes: a bottom-tested
    // loop that starts *at* the exit value still runs a full wrap.
    let dist = |d: u16| {
        fin(
            if d == 0 { 65536 } else { u64::from(d) },
            u64::from(d),
            false,
        )
    };

    if step != 1 {
        // Only the stride-k `bltu` scan terminates provably: the
        // counter must land exactly on the bound, or overshoot it
        // without wrapping past 0xffff (a wrapped overshoot restarts
        // the scan below the bound, forever).
        if !matches!((cond, update), (Ltu, AluImmOp::Addi)) {
            return None;
        }
        let (Abs::Const(i), Abs::Const(kv)) = (init, k?) else {
            return None;
        };
        if i >= kv {
            return fin(1, 0, false);
        }
        let s = u32::from(step);
        let n = u32::from(kv - i).div_ceil(s);
        if u32::from(i) + n * s > 0xffff {
            return None;
        }
        return fin(u64::from(n), u64::from(n), false);
    }

    match (cond, update) {
        // `subi rX, 1; bnez rX, top` — the classic countdown.
        (Nez, AluImmOp::Subi) => match init {
            Abs::Const(x) => dist(x),
            _ => loose(),
        },
        (Nez, AluImmOp::Addi) => match init {
            Abs::Const(x) => dist(x.wrapping_neg()),
            _ => loose(),
        },
        // `bne` against an invariant bound: one wrap at most.
        (Ne, AluImmOp::Subi) => match (init, k?) {
            (Abs::Const(i), Abs::Const(kv)) => dist(i.wrapping_sub(kv)),
            _ => loose(),
        },
        (Ne, AluImmOp::Addi) => match (init, k?) {
            (Abs::Const(i), Abs::Const(kv)) => dist(kv.wrapping_sub(i)),
            _ => loose(),
        },
        // `bltu` with an incrementing counter: reaches the bound (or
        // 65535, which is `>=` everything) within one wrap.
        (Ltu, AluImmOp::Addi) => match (init, k?) {
            (Abs::Const(i), Abs::Const(kv)) => {
                let n = u64::from(kv.saturating_sub(i));
                fin(n.max(1), n, false)
            }
            _ => loose(),
        },
        // Continue-while-equal: the counter moves off the bound after
        // one update and (with a constant or invariant bound) never
        // returns before exiting.
        (Eqz, AluImmOp::Subi | AluImmOp::Addi) => fin(2, 1, false),
        (Eq, AluImmOp::Subi | AluImmOp::Addi) => {
            k?;
            fin(2, 1, false)
        }
        _ => None,
    }
}

/// Is the body acyclic once the `latch -> header` back-edge is removed?
fn is_acyclic(
    set: &BTreeSet<Addr>,
    succs: &BTreeMap<Addr, Vec<Addr>>,
    header: Addr,
    latch: Addr,
) -> bool {
    // Kahn's algorithm over the inner edges.
    let inner = |pc: Addr| {
        succs[&pc]
            .iter()
            .copied()
            .filter(move |s| set.contains(s) && !(pc == latch && *s == header))
    };
    let mut indeg: BTreeMap<Addr, usize> = set.iter().map(|&pc| (pc, 0)).collect();
    for &pc in set {
        for s in inner(pc) {
            *indeg.get_mut(&s).unwrap() += 1;
        }
    }
    let mut queue: VecDeque<Addr> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&pc, _)| pc)
        .collect();
    let mut seen = 0;
    while let Some(pc) = queue.pop_front() {
        seen += 1;
        for s in inner(pc) {
            let d = indeg.get_mut(&s).unwrap();
            *d -= 1;
            if *d == 0 {
                queue.push_back(s);
            }
        }
    }
    seen == set.len()
}

/// Can `to` be reached from `from` inside the body without passing
/// through `avoid`? (Back-edge excluded.)
fn reaches_avoiding(
    set: &BTreeSet<Addr>,
    succs: &BTreeMap<Addr, Vec<Addr>>,
    from: Addr,
    to: Addr,
    avoid: Addr,
) -> bool {
    let mut seen = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(pc) = stack.pop() {
        if pc == to {
            return true;
        }
        if pc == avoid || !seen.insert(pc) {
            continue;
        }
        for &s in &succs[&pc] {
            if set.contains(&s) {
                stack.push(s);
            }
        }
    }
    false
}

/// Longest-path DP over the loop body: `pc -> (cost to enter, cost
/// through)`, relative to the header.
fn inner_paths(
    ctx: &Ctx,
    set: &BTreeSet<Addr>,
    succs: &BTreeMap<Addr, Vec<Addr>>,
    header: Addr,
    latch: Addr,
) -> BTreeMap<Addr, (PathCost, PathCost)> {
    let inner = |pc: Addr| {
        succs[&pc]
            .iter()
            .copied()
            .filter(move |s| set.contains(s) && !(pc == latch && *s == header))
    };
    // Topological order via Kahn (the caller checked acyclicity).
    let mut indeg: BTreeMap<Addr, usize> = set.iter().map(|&pc| (pc, 0)).collect();
    for &pc in set {
        for s in inner(pc) {
            *indeg.get_mut(&s).unwrap() += 1;
        }
    }
    let mut queue: VecDeque<Addr> = VecDeque::new();
    queue.push_back(header);
    let mut dp: BTreeMap<Addr, (PathCost, PathCost)> = set
        .iter()
        .map(|&pc| (pc, (PathCost::Unreached, PathCost::Unreached)))
        .collect();
    dp.get_mut(&header).unwrap().0 = PathCost::Bounded(Cost::default());
    // Process in topo order starting from header; other zero-indegree
    // nodes (none in an SCC, but be safe) stay Unreached.
    let mut order: Vec<Addr> = Vec::with_capacity(set.len());
    let mut indeg2 = indeg.clone();
    let mut q2: VecDeque<Addr> = indeg2
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&pc, _)| pc)
        .collect();
    while let Some(pc) = q2.pop_front() {
        order.push(pc);
        for s in inner(pc) {
            let d = indeg2.get_mut(&s).unwrap();
            *d -= 1;
            if *d == 0 {
                q2.push_back(s);
            }
        }
    }
    for pc in order {
        let n = &ctx.nodes[&pc];
        let (enter, _) = dp[&pc];
        let through = if n.unbounded_through {
            match enter {
                PathCost::Unreached => PathCost::Unreached,
                _ => PathCost::Unbounded,
            }
        } else {
            enter.add(n.cost)
        };
        dp.get_mut(&pc).unwrap().1 = through;
        for s in inner(pc) {
            let e = &mut dp.get_mut(&s).unwrap().0;
            *e = e.join(through);
        }
    }
    dp
}

/// Iterative Tarjan SCC. Components are emitted callees-first (reverse
/// topological order of the condensation).
fn tarjan(succs: &BTreeMap<Addr, Vec<Addr>>) -> Vec<Vec<Addr>> {
    #[derive(Clone, Copy)]
    struct Meta {
        index: u32,
        low: u32,
        on_stack: bool,
    }
    let mut meta: BTreeMap<Addr, Meta> = BTreeMap::new();
    let mut stack: Vec<Addr> = Vec::new();
    let mut sccs: Vec<Vec<Addr>> = Vec::new();
    let mut counter: u32 = 0;

    for &root in succs.keys() {
        if meta.contains_key(&root) {
            continue;
        }
        // (node, next child index)
        let mut frames: Vec<(Addr, usize)> = vec![(root, 0)];
        meta.insert(
            root,
            Meta {
                index: counter,
                low: counter,
                on_stack: true,
            },
        );
        stack.push(root);
        counter += 1;
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci < succs[&v].len() {
                let w = succs[&v][*ci];
                *ci += 1;
                match meta.get(&w) {
                    None => {
                        meta.insert(
                            w,
                            Meta {
                                index: counter,
                                low: counter,
                                on_stack: true,
                            },
                        );
                        stack.push(w);
                        counter += 1;
                        frames.push((w, 0));
                    }
                    Some(mw) => {
                        if mw.on_stack {
                            let wi = mw.index;
                            let mv = meta.get_mut(&v).unwrap();
                            mv.low = mv.low.min(wi);
                        }
                    }
                }
            } else {
                frames.pop();
                let mv = meta[&v];
                if let Some(&mut (p, _)) = frames.last_mut() {
                    let mp = meta.get_mut(&p).unwrap();
                    mp.low = mp.low.min(mv.low);
                }
                if mv.low == mv.index {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        meta.get_mut(&w).unwrap().on_stack = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}
