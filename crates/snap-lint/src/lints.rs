//! Hazard lints over the explored contexts.
//!
//! Structural problems (decode errors, indirect jumps, recursion, code
//! running off the image) are reported during exploration; this module
//! adds the whole-program checks that need the final fixpoint: event
//! queue pressure, `r15` FIFO discipline, self-modifying stores,
//! never-written register reads, dead stores, and unreachable code.

use crate::analyzer::{ctx_handler_name, Abs, Ctx, CtxKind, PathCost, EVENT_QUEUE_CAPACITY};
use crate::{Diagnostic, Severity};
use snap_isa::{Addr, AluImmOp, EventKind, Instruction};
use std::collections::{BTreeMap, BTreeSet};

/// Event-table indices whose handlers are dispatched by a message
/// arrival, and so may legitimately pop `r15`.
const MSG_EVENTS: [usize; 2] = [3, 6]; // RadioRx, SensorReply

struct Sink {
    diags: Vec<Diagnostic>,
    seen: BTreeSet<(&'static str, Option<Addr>)>,
}

impl Sink {
    fn push(
        &mut self,
        lint: &'static str,
        severity: Severity,
        pc: Option<Addr>,
        handler: Option<String>,
        message: String,
        hint: &str,
    ) {
        if !self.seen.insert((lint, pc)) {
            return;
        }
        self.diags.push(Diagnostic {
            lint,
            severity,
            pc,
            line: None,
            handler,
            message,
            hint: hint.to_string(),
        });
    }
}

pub(crate) fn run(
    ctxs: &[Ctx],
    table: &BTreeMap<usize, BTreeSet<Addr>>,
    written: &[bool; 16],
    degraded: bool,
    imem_words: usize,
) -> Vec<Diagnostic> {
    let mut sink = Sink {
        diags: Vec::new(),
        seen: BTreeSet::new(),
    };

    // Word-accurate footprint of reachable code and `li` immediates.
    let mut code_words: BTreeSet<Addr> = BTreeSet::new();
    let mut li_imm: BTreeSet<Addr> = BTreeSet::new();
    let mut imem_data_unknown = false;
    let mut imem_data_words: BTreeSet<Addr> = BTreeSet::new();
    for ctx in ctxs {
        for (&pc, node) in &ctx.nodes {
            for w in 0..node.wc as Addr {
                code_words.insert(pc + w);
            }
            match node.ins {
                Instruction::AluImm {
                    op: AluImmOp::Li, ..
                } => {
                    li_imm.insert(pc + 1);
                }
                Instruction::ImemLoad { base, offset, .. }
                | Instruction::ImemStore { base, offset, .. } => {
                    match node.in_state[base.index() as usize] {
                        Abs::Const(b) => {
                            imem_data_words.insert(b.wrapping_add(offset));
                        }
                        _ => imem_data_unknown = true,
                    }
                }
                _ => {}
            }
        }
    }

    for ctx in ctxs {
        let handler = ctx_handler_name(ctx.kind);
        let is_root = !matches!(ctx.kind, CtxKind::Sub);

        // Per-root verdict lints and queue/FIFO pressure.
        if is_root {
            let cr = crate::loops::cost_of(ctx);
            let never = !cr.done.reached() && !ctx.degraded && !degraded;
            if never {
                sink.push(
                    "no-done-path",
                    Severity::Error,
                    Some(ctx.entry),
                    handler.clone(),
                    format!(
                        "no path from {} entry at {:#05x} reaches `done`: the activation can never complete",
                        handler.as_deref().unwrap_or("handler"),
                        ctx.entry
                    ),
                    "every handler path must end in `done`; boot must reach `done` or `halt`",
                );
            }
            if let PathCost::Bounded(c) = cr.done {
                if c.swev > EVENT_QUEUE_CAPACITY {
                    sink.push(
                        "swev-flood",
                        Severity::Warning,
                        Some(ctx.entry),
                        handler.clone(),
                        format!(
                            "one activation can post up to {} software events; the event queue holds {}",
                            c.swev, EVENT_QUEUE_CAPACITY
                        ),
                        "events posted beyond the queue capacity are dropped; batch work or rate-limit `swev`",
                    );
                }
                if matches!(ctx.kind, CtxKind::Handler(i) if i == 6) && c.r15 > 1 {
                    sink.push(
                        "r15-double-read",
                        Severity::Warning,
                        Some(ctx.entry),
                        handler.clone(),
                        format!(
                            "worst-case path pops `r15` {} times, but a sensor reply delivers one word",
                            c.r15
                        ),
                        "a second read blocks on an empty FIFO (MsgPortEmpty fault)",
                    );
                }
            }
            // r15 FIFO discipline: only message-dispatched handlers may
            // pop the port. In boot the FIFO is guaranteed empty.
            let guarded = matches!(ctx.kind, CtxKind::Handler(i) if MSG_EVENTS.contains(&i));
            if !guarded {
                let severity = if ctx.kind == CtxKind::Boot {
                    Severity::Error
                } else {
                    Severity::Warning
                };
                for &pc in &ctx.r15_reads {
                    sink.push(
                        "r15-read-unguarded",
                        severity,
                        Some(pc),
                        handler.clone(),
                        format!(
                            "`r15` is popped at {pc:#05x} in {}, where no message event guards the FIFO",
                            handler.as_deref().unwrap_or("this context")
                        ),
                        "reading an empty message port faults; only radio-rx / sensor-reply handlers should pop r15",
                    );
                }
            }
        }

        // Per-node lints (all contexts, including callees).
        for (&pc, node) in &ctx.nodes {
            match node.ins {
                Instruction::SchedHi { rt, .. }
                | Instruction::SchedLo { rt, .. }
                | Instruction::Cancel { rt } => {
                    if let Abs::Const(t) = node.in_state[rt.index() as usize] {
                        if t >= 3 {
                            sink.push(
                                "bad-timer-number",
                                Severity::Error,
                                Some(pc),
                                handler.clone(),
                                format!("timer number {t} at {pc:#05x}: hardware has timers 0-2"),
                                "scheduling a timer >= 3 is a hard fault (BadTimer)",
                            );
                        }
                    }
                }
                Instruction::SwEvent { rn } => {
                    if let Abs::Const(e) = node.in_state[rn.index() as usize] {
                        let ev = (e & 7) as usize;
                        if table.get(&ev).is_none_or(BTreeSet::is_empty) {
                            let name = EventKind::from_index(ev)
                                .map(|k| k.to_string())
                                .unwrap_or_default();
                            sink.push(
                                "swev-uninstalled",
                                Severity::Warning,
                                Some(pc),
                                handler.clone(),
                                format!(
                                    "`swev` posts event {name} at {pc:#05x}, but no handler is installed for it"
                                ),
                                "dispatching an uninstalled event runs from address 0 (the boot code)",
                            );
                        }
                    }
                }
                Instruction::SetAddr { rev, raddr } => {
                    let ev = node.in_state[rev.index() as usize];
                    let addr = node.in_state[raddr.index() as usize];
                    if !matches!((ev, addr), (Abs::Const(_), Abs::Const(_))) {
                        sink.push(
                            "setaddr-dynamic",
                            Severity::Warning,
                            Some(pc),
                            handler.clone(),
                            format!(
                                "`setaddr` at {pc:#05x} with a computed event or address: the handler table cannot be recovered"
                            ),
                            "the analysis degrades; install handlers with constant event numbers and labels",
                        );
                    } else if ctx.kind != CtxKind::Boot {
                        sink.push(
                            "setaddr-in-handler",
                            Severity::Info,
                            Some(pc),
                            handler.clone(),
                            format!("handler table rewritten outside boot at {pc:#05x}"),
                            "mode-switching is legal; the analysis joins all installed targets",
                        );
                    }
                }
                Instruction::ImemStore { base, offset, .. } => {
                    match node.in_state[base.index() as usize] {
                        Abs::Const(b) => {
                            let t = b.wrapping_add(offset);
                            if li_imm.contains(&t) {
                                sink.push(
                                    "isw-reachable-code",
                                    Severity::Warning,
                                    Some(pc),
                                    handler.clone(),
                                    format!(
                                        "`isw` at {pc:#05x} patches the immediate word at {t:#05x} of a reachable `li`"
                                    ),
                                    "self-modifying constant; the analysis treats that li as loading an unknown value",
                                );
                            } else if code_words.contains(&t) {
                                sink.push(
                                    "isw-reachable-code",
                                    Severity::Warning,
                                    Some(pc),
                                    handler.clone(),
                                    format!(
                                        "`isw` at {pc:#05x} overwrites reachable code at {t:#05x}"
                                    ),
                                    "rewriting opcodes defeats static analysis; verdicts and bounds degrade",
                                );
                            }
                        }
                        _ => {
                            sink.push(
                                "isw-dynamic-target",
                                Severity::Warning,
                                Some(pc),
                                handler.clone(),
                                format!("`isw` at {pc:#05x} stores to a computed IMEM address"),
                                "the store could hit any code; verdicts and bounds degrade",
                            );
                        }
                    }
                }
                _ => {}
            }
        }

        dead_stores(&mut sink, ctx, handler.as_deref());
    }

    unbounded_loops(&mut sink, ctxs);
    read_never_written(&mut sink, ctxs, written);
    if !degraded && !imem_data_unknown {
        unreachable_code(&mut sink, &code_words, &imem_data_words, imem_words);
    }
    handler_coverage(&mut sink, table);

    sink.diags
}

fn unbounded_loops(sink: &mut Sink, ctxs: &[Ctx]) {
    for ctx in ctxs {
        let cr = crate::loops::cost_of(ctx);
        let handler = ctx_handler_name(ctx.kind);
        for pc in cr.unbounded_sccs {
            sink.push(
                "unbounded-loop",
                Severity::Warning,
                Some(pc),
                handler.clone(),
                format!("the loop at {pc:#05x} does not match a bounded counter idiom"),
                "use a dedicated `subi rX, 1; bnez rX, top` countdown so the analysis can bound it",
            );
        }
    }
}

/// Registers read somewhere but written nowhere in reachable code.
/// Well-defined (registers power on zeroed and persist), so a warning:
/// usually it means a typo'd register number. `r0` is exempt — reading
/// it as a constant zero is idiomatic.
fn read_never_written(sink: &mut Sink, ctxs: &[Ctx], written: &[bool; 16]) {
    let mut first_read: BTreeMap<u8, Addr> = BTreeMap::new();
    for ctx in ctxs {
        for (&pc, node) in &ctx.nodes {
            for r in node.ins.source_regs() {
                let i = r.index();
                if i == 0 || i == 15 || written[i as usize] {
                    continue;
                }
                let e = first_read.entry(i).or_insert(pc);
                *e = (*e).min(pc);
            }
        }
    }
    for (r, pc) in first_read {
        sink.push(
            "read-never-written",
            Severity::Warning,
            Some(pc),
            None,
            format!("r{r} is read (first at {pc:#05x}) but no reachable instruction writes it"),
            "it always reads as the power-on zero; if that is intended, use r0 or `; lint:allow(read-never-written)`",
        );
    }
}

/// A register written and then provably overwritten before any read,
/// within an extended basic block.
fn dead_stores(sink: &mut Sink, ctx: &Ctx, handler: Option<&str>) {
    // Global (per-context) predecessor counts: the walk must not cross
    // a join point, where another path could read the value.
    let mut preds: BTreeMap<Addr, usize> = BTreeMap::new();
    for node in ctx.nodes.values() {
        for &s in &node.succs {
            *preds.entry(s).or_insert(0) += 1;
        }
    }
    for (&pc, node) in &ctx.nodes {
        let Some(rd) = node.ins.dest_reg() else {
            continue;
        };
        if rd.index() == 15
            || node.ins.reads_msg_port() // the r15 pop is the point
            || matches!(
                node.ins,
                Instruction::Rand { .. } // advances the LFSR
                    | Instruction::Jal { .. }
                    | Instruction::Jalr { .. }
            )
        {
            continue;
        }
        let mut cur = pc;
        let mut cur_node = node;
        for _ in 0..64 {
            if cur_node.succs.len() != 1 || cur_node.call.is_some() {
                break; // join/branch/call: another path may read it
            }
            let next = cur_node.succs[0];
            if preds.get(&next).copied().unwrap_or(0) != 1 {
                break;
            }
            let Some(n) = ctx.nodes.get(&next) else { break };
            if n.ins.source_regs().contains(&rd) || n.call.is_some() {
                break; // live (or unknown through a call)
            }
            if n.ins.dest_reg() == Some(rd) {
                sink.push(
                    "dead-store",
                    Severity::Warning,
                    Some(pc),
                    handler.map(str::to_string),
                    format!(
                        "the value written to {rd} at {pc:#05x} is overwritten at {next:#05x} without being read"
                    ),
                    "drop the first write, or check for a typo'd register",
                );
                break;
            }
            cur = next;
            cur_node = n;
        }
        let _ = cur;
    }
}

/// IMEM words that are neither reachable code nor known data targets.
fn unreachable_code(
    sink: &mut Sink,
    code_words: &BTreeSet<Addr>,
    imem_data_words: &BTreeSet<Addr>,
    imem_words: usize,
) {
    let mut run_start: Option<Addr> = None;
    let flush = |start: Option<Addr>, end: Addr, sink: &mut Sink| {
        if let Some(s) = start {
            sink.push(
                "unreachable-code",
                Severity::Warning,
                Some(s),
                None,
                format!(
                    "IMEM words {s:#05x}..{end:#05x} are never executed or read",
                    end = end
                ),
                "dead code costs IMEM; delete it, or point a handler/jump at it if it should run",
            );
        }
    };
    for w in 0..imem_words as Addr {
        let covered = code_words.contains(&w) || imem_data_words.contains(&w);
        match (covered, run_start) {
            (false, None) => run_start = Some(w),
            (true, Some(_)) => {
                flush(run_start.take(), w, sink);
            }
            _ => {}
        }
    }
    flush(run_start, imem_words as Addr, sink);
}

/// Event-table coverage: one info listing uninstalled events, when at
/// least one handler is installed; plus Never verdicts are reported by
/// `no-done-path` already.
fn handler_coverage(sink: &mut Sink, table: &BTreeMap<usize, BTreeSet<Addr>>) {
    let installed: Vec<usize> = table
        .iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|(&k, _)| k)
        .collect();
    if installed.is_empty() {
        return;
    }
    let missing: Vec<String> = (0..snap_isa::EVENT_TABLE_ENTRIES)
        .filter(|i| !installed.contains(i))
        .filter_map(|i| EventKind::from_index(i).map(|k| k.to_string()))
        .collect();
    if missing.is_empty() {
        return;
    }
    sink.push(
        "handler-not-installed",
        Severity::Info,
        None,
        None,
        format!("events with no handler installed: {}", missing.join(", ")),
        "dispatching one of these runs from address 0 (the boot code); install a handler or never post them",
    );
}
