//! Per-root side-effect extraction for the event-flow analysis.
//!
//! Walks each explored root context (and, transitively, its callees)
//! and abstracts every instruction that can influence the event queue
//! or shared DMEM into a [`RootEffects`] summary: worst-case `swev`
//! post vectors (from the path-cost analysis), timer arms/cancels,
//! message-port commands classified by the abstract value written to
//! `r15`, and the constant-address DMEM read/write footprint. Every
//! field is an over-approximation of what a real activation can do —
//! except the DMEM footprint, whose `*_unknown` flags record when it
//! is not (an unknown-base access) so consumers can bail out.

use crate::analyzer::{Abs, Ctx, CtxKind, PathCost};
use snap_isa::{Addr, AluImmOp, AluOp, Instruction, MsgCommand, Reg};
use std::collections::{BTreeMap, BTreeSet};

/// Everything one root (boot or a handler entry) can do to the rest of
/// the image in a single activation.
#[derive(Debug, Clone, Default)]
pub(crate) struct RootEffects {
    /// Worst-case `swev` posts per target event over one activation
    /// (elementwise max across paths). `None` when the activation cost
    /// is unbounded/unreached, the context degraded, or some `swev`
    /// had an unknown target register.
    pub posts: Option<[u64; 8]>,
    /// Worst-case activation energy in pJ, when bounded.
    pub energy_pj: Option<f64>,
    /// Worst-case activation instruction count, when bounded.
    pub instructions: Option<u64>,
    /// Events some reachable `swev` can post (existence only — known
    /// even when the activation cost is unbounded).
    pub swev_targets: [bool; 8],
    /// Some reachable `swev` had an unknown target register.
    pub swev_unknown: bool,
    /// Timers armable by this root (`schedlo` with a constant timer
    /// register).
    pub timer_arms: [bool; 3],
    /// Timers cancellable by this root (`cancel` posts the timer event
    /// immediately when the timer was active).
    pub timer_cancels: [bool; 3],
    /// Some timer instruction had an unknown timer-number register.
    pub timer_unknown: bool,
    /// Can enable the radio receiver (`RadioRxOn`).
    pub rx_enable: bool,
    /// Can start a radio transmit (completion raises `RadioTxDone`).
    pub radio_tx: bool,
    /// Can query a sensor (the reading raises `SensorReply`).
    pub sensor_query: bool,
    /// Some `r15` write carried an unknown value: any message command
    /// is possible.
    pub r15_unknown: bool,
    /// DMEM word addresses stored to through a constant base.
    pub writes: BTreeSet<u16>,
    /// DMEM word addresses loaded from through a constant base.
    pub reads: BTreeSet<u16>,
    /// Some load used an unknown base: the root may read anything.
    pub reads_unknown: bool,
    /// Some store used an unknown base: the root may write anything.
    pub writes_unknown: bool,
    /// First store pc seen per written DMEM address (for diagnostics).
    pub store_pcs: BTreeMap<u16, Addr>,
    /// The effect scan lost track of a callee (degraded context or a
    /// call the exploration never summarized): claim nothing.
    pub scan_degraded: bool,
}

impl RootEffects {
    fn absorb_local(&mut self, fx: &LocalFx) {
        for (a, b) in self.swev_targets.iter_mut().zip(fx.swev_targets) {
            *a |= b;
        }
        self.swev_unknown |= fx.swev_unknown;
        for (a, b) in self.timer_arms.iter_mut().zip(fx.timer_arms) {
            *a |= b;
        }
        for (a, b) in self.timer_cancels.iter_mut().zip(fx.timer_cancels) {
            *a |= b;
        }
        self.timer_unknown |= fx.timer_unknown;
        self.rx_enable |= fx.rx_enable;
        self.radio_tx |= fx.radio_tx;
        self.sensor_query |= fx.sensor_query;
        self.r15_unknown |= fx.r15_unknown;
        self.reads_unknown |= fx.reads_unknown;
        self.writes_unknown |= fx.writes_unknown;
        self.reads.extend(fx.reads.iter().copied());
        for (&addr, &pc) in &fx.store_pcs {
            self.writes.insert(addr);
            self.store_pcs.entry(addr).or_insert(pc);
        }
    }
}

/// Instruction-level effects of one context, before callee closure.
#[derive(Debug, Clone, Default)]
struct LocalFx {
    swev_targets: [bool; 8],
    swev_unknown: bool,
    timer_arms: [bool; 3],
    timer_cancels: [bool; 3],
    timer_unknown: bool,
    rx_enable: bool,
    radio_tx: bool,
    sensor_query: bool,
    r15_unknown: bool,
    reads: BTreeSet<u16>,
    reads_unknown: bool,
    writes_unknown: bool,
    store_pcs: BTreeMap<u16, Addr>,
    /// Entry addresses of direct callees (`jal` targets).
    callees: BTreeSet<Addr>,
    degraded: bool,
}

/// The abstract value an instruction writes into `r15`, when it is the
/// destination. The message port interprets the word as a command (or,
/// after `RadioTx`, as payload — which we conservatively also classify
/// as a command: extra graph edges are sound for reachability).
fn r15_written_value(ins: &Instruction, st: &[Abs; 16]) -> Option<Abs> {
    let dest = ins.dest_reg()?;
    if dest != Reg::R15 {
        return None;
    }
    Some(match ins {
        Instruction::AluImm {
            op: AluImmOp::Li,
            imm,
            ..
        } => Abs::Const(*imm),
        Instruction::AluReg {
            op: AluOp::Mov, rs, ..
        } => st[rs.index() as usize],
        _ => Abs::Top,
    })
}

fn scan_ctx(ctx: &Ctx, poison: &BTreeSet<Addr>) -> LocalFx {
    let mut fx = LocalFx {
        degraded: ctx.degraded || ctx.has_dead_end,
        ..LocalFx::default()
    };
    for (&pc, node) in &ctx.nodes {
        let st = &node.in_state;
        match node.ins {
            Instruction::SwEvent { rn } => match st[rn.index() as usize] {
                Abs::Const(v) => fx.swev_targets[(v & 7) as usize] = true,
                _ => fx.swev_unknown = true,
            },
            Instruction::SchedLo { rt, .. } => match st[rt.index() as usize] {
                Abs::Const(t) if (t as usize) < 3 => fx.timer_arms[t as usize] = true,
                Abs::Const(_) => {} // faults at runtime (BadTimer)
                _ => fx.timer_unknown = true,
            },
            Instruction::Cancel { rt } => match st[rt.index() as usize] {
                Abs::Const(t) if (t as usize) < 3 => fx.timer_cancels[t as usize] = true,
                Abs::Const(_) => {}
                _ => fx.timer_unknown = true,
            },
            Instruction::Load { base, offset, .. } => match st[base.index() as usize] {
                Abs::Const(b) => {
                    fx.reads.insert(b.wrapping_add(offset));
                }
                _ => fx.reads_unknown = true,
            },
            Instruction::Store { base, offset, .. } => match st[base.index() as usize] {
                Abs::Const(b) => {
                    fx.store_pcs.entry(b.wrapping_add(offset)).or_insert(pc);
                }
                _ => fx.writes_unknown = true,
            },
            Instruction::Jal { target, .. } => {
                fx.callees.insert(target);
            }
            _ => {}
        }
        // Message-port commands: classify by the value written to r15.
        // A patched `li` immediate (poisoned word) is unknown.
        let value = match r15_written_value(&node.ins, st) {
            Some(Abs::Const(_))
                if matches!(node.ins, Instruction::AluImm { .. }) && poison.contains(&(pc + 1)) =>
            {
                Some(Abs::Top)
            }
            v => v,
        };
        match value {
            Some(Abs::Const(w)) => match MsgCommand::decode(w) {
                Some(MsgCommand::RadioRxOn) => fx.rx_enable = true,
                Some(MsgCommand::RadioTx) => fx.radio_tx = true,
                Some(MsgCommand::QuerySensor(_)) => fx.sensor_query = true,
                Some(MsgCommand::RadioOff) | Some(MsgCommand::PortWrite(_)) | None => {}
            },
            Some(_) => fx.r15_unknown = true,
            None => {}
        }
    }
    fx
}

/// Compute the transitive effect summary for every root context.
/// Returns one entry per root, in `ctxs` order, `None` for `Sub`
/// contexts.
pub(crate) fn root_effects(ctxs: &[Ctx], poison: &BTreeSet<Addr>) -> Vec<Option<RootEffects>> {
    // Local scans, plus a merged per-entry view of subroutine contexts
    // (several Sub contexts can share an entry under different entry
    // states; their union over-approximates any callee behavior).
    let locals: Vec<LocalFx> = ctxs.iter().map(|c| scan_ctx(c, poison)).collect();
    let mut sub_by_entry: BTreeMap<Addr, LocalFx> = BTreeMap::new();
    for (ctx, fx) in ctxs.iter().zip(&locals) {
        if ctx.kind == CtxKind::Sub {
            let merged = sub_by_entry.entry(ctx.entry).or_default();
            for i in 0..8 {
                merged.swev_targets[i] |= fx.swev_targets[i];
            }
            merged.swev_unknown |= fx.swev_unknown;
            merged.timer_unknown |= fx.timer_unknown;
            for i in 0..3 {
                merged.timer_arms[i] |= fx.timer_arms[i];
                merged.timer_cancels[i] |= fx.timer_cancels[i];
            }
            merged.rx_enable |= fx.rx_enable;
            merged.radio_tx |= fx.radio_tx;
            merged.sensor_query |= fx.sensor_query;
            merged.r15_unknown |= fx.r15_unknown;
            merged.reads_unknown |= fx.reads_unknown;
            merged.writes_unknown |= fx.writes_unknown;
            merged.reads.extend(fx.reads.iter().copied());
            for (&a, &p) in &fx.store_pcs {
                merged.store_pcs.entry(a).or_insert(p);
            }
            merged.callees.extend(fx.callees.iter().copied());
            merged.degraded |= fx.degraded;
        }
    }

    ctxs.iter()
        .zip(&locals)
        .map(|(ctx, fx)| {
            if ctx.kind == CtxKind::Sub {
                return None;
            }
            let mut out = RootEffects {
                scan_degraded: fx.degraded,
                ..RootEffects::default()
            };
            out.absorb_local(fx);
            // Close over the callee graph.
            let mut visited: BTreeSet<Addr> = BTreeSet::new();
            let mut work: Vec<Addr> = fx.callees.iter().copied().collect();
            while let Some(entry) = work.pop() {
                if !visited.insert(entry) {
                    continue;
                }
                match sub_by_entry.get(&entry) {
                    Some(callee) => {
                        out.absorb_local(callee);
                        out.scan_degraded |= callee.degraded;
                        work.extend(callee.callees.iter().copied());
                    }
                    // A call the exploration never summarized as a Sub
                    // context (recursion/depth-cap fallback).
                    None => out.scan_degraded = true,
                }
            }
            // Worst-case activation cost: only a bounded `done` cost
            // yields post/energy claims.
            match crate::loops::cost_of(ctx).done {
                PathCost::Bounded(c) if !ctx.degraded => {
                    out.energy_pj = Some(c.pj);
                    out.instructions = Some(c.ins);
                    if !c.swev_unknown {
                        out.posts = Some(c.swev_by);
                    }
                }
                _ => {}
            }
            if out.scan_degraded {
                out.posts = None;
                out.energy_pj = None;
                out.instructions = None;
            }
            Some(out)
        })
        .collect()
}
