//! Whole-image event-flow analysis.
//!
//! Builds the event-flow graph — nodes are installed handlers (plus
//! boot), edges the `swev` posts, timer arms and message commands each
//! can issue (extracted by [`crate::absint`]) — and proves three
//! whole-image properties on top of it:
//!
//! 1. **Queue-depth bounds.** For each wake event, the burst of
//!    dispatches its `swev` posts alone can trigger is explored as a
//!    multiset of pending tokens under *adversarial dispatch order*:
//!    from any state, any pending event may be dispatched next. That
//!    is a strict superset of the hardware's FIFO behaviors (the post
//!    order within a handler, which fixes the FIFO's future pops, is
//!    not tracked statically), so the worst occupancy found bounds
//!    every real burst. A state whose dispatch would push occupancy
//!    past the 8-entry capacity is an overflow proof
//!    (`queue-overflow`); a revisited state means the chain never
//!    drains (dispatches unbounded, occupancy still bounded).
//! 2. **Cross-handler DMEM hazards.** Handlers of different events
//!    interleave at dispatch granularity (run-to-completion): two
//!    roots that both blind-write the same DMEM word — neither ever
//!    reads it — lose one of the writes with no reader ordering to
//!    save them (`dmem-hazard`).
//! 3. **Per-wake energy / events-per-wake.** The per-handler worst
//!    case activation energies (PR-5 bounds) composed along the worst
//!    chain give a statically derived nJ-per-wake, checked dynamically
//!    by `snap-smith --soundness`.
//!
//! Timer arms and message commands appear as graph edges but are
//! excluded from the chain exploration: their tokens arrive by
//! environment action (expiry, radio completion, sensor latency), not
//! inside the software burst — and the dynamic oracle's burst-purity
//! filter excludes exactly those interleavings too.

use crate::absint::{root_effects, RootEffects};
use crate::analyzer::{ctx_handler_name, Ctx, CtxKind, EVENT_QUEUE_CAPACITY};
use crate::{ChainReport, Diagnostic, FlowEdge, FlowEdgeKind, FlowReport, Severity};
use snap_isa::{Addr, EventKind, EVENT_TABLE_ENTRIES};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Safety valve on the multiset exploration. The true state space is
/// small (multisets of ≤ 8 tokens over 8 kinds), so hitting this means
/// a bug — claims degrade to unknown rather than trusting a partial
/// sweep.
const MAX_CHAIN_STATES: usize = 100_000;

/// A multiset of pending event tokens, by event index.
type QState = [u8; EVENT_TABLE_ENTRIES];

fn occupancy(s: &QState) -> u64 {
    s.iter().map(|&c| u64::from(c)).sum()
}

/// The merged per-event dispatch model: what dispatching event `e` can
/// post back into the queue, joined (elementwise max) over every root
/// installed for `e`.
struct DispatchModel {
    /// Worst-case `swev` post vector per dispatch of each event;
    /// `None` = uninstalled event or a root with unknown posts.
    p: [Option<[u64; 8]>; 8],
    /// Worst-case activation energy per dispatch of each event (pJ).
    energy: [Option<f64>; 8],
}

struct ChainResult {
    /// Worst occupancy over every dispatch in the chain (raw: on an
    /// overflowing dispatch this exceeds the capacity the hardware
    /// would clip it to).
    peak: u64,
    overflow: bool,
    /// Some reachable dispatch had an unknown post vector (or the
    /// state cap tripped): no claims.
    unknown: bool,
    /// Worst-case dispatch count until the queue drains; `None` when a
    /// state repeats (the chain sustains itself forever).
    dispatches: Option<u64>,
    energy_pj: Option<f64>,
    /// Worst-case `swev` posts by any single dispatch in the chain.
    max_swev_posts: u64,
}

/// Explore every burst the start state can produce under adversarial
/// dispatch order. `initial_peak` accounts for the tokens pending
/// before the first dispatch (boot's own posts).
fn simulate_chain(start: QState, model: &DispatchModel, initial_peak: u64) -> ChainResult {
    let cap = EVENT_QUEUE_CAPACITY;
    let mut result = ChainResult {
        peak: initial_peak,
        overflow: initial_peak > cap,
        unknown: false,
        dispatches: None,
        energy_pj: None,
        max_swev_posts: 0,
    };
    let mut transitions: HashMap<QState, Vec<(usize, QState)>> = HashMap::new();
    let mut work: VecDeque<QState> = VecDeque::new();
    let mut seen: BTreeSet<QState> = BTreeSet::new();
    if occupancy(&start) > 0 {
        seen.insert(start);
        work.push_back(start);
    }
    while let Some(s) = work.pop_front() {
        if seen.len() > MAX_CHAIN_STATES {
            result.unknown = true;
            break;
        }
        let out = transitions.entry(s).or_default();
        for e in 0..EVENT_TABLE_ENTRIES {
            if s[e] == 0 {
                continue;
            }
            let Some(pv) = model.p[e] else {
                // Unknown posts (or an uninstalled event, which would
                // run boot code under arbitrary registers): no claims.
                result.unknown = true;
                continue;
            };
            let posts: u64 = pv.iter().sum();
            result.max_swev_posts = result.max_swev_posts.max(posts);
            let occ = occupancy(&s) - 1 + posts;
            result.peak = result.peak.max(occ);
            if occ > cap {
                result.overflow = true;
                continue;
            }
            // occ ≤ 8, so every count fits the u8 state.
            let mut s2 = s;
            s2[e] -= 1;
            for (slot, &n) in s2.iter_mut().zip(pv.iter()) {
                *slot += n as u8;
            }
            out.push((e, s2));
            if occupancy(&s2) > 0 && seen.insert(s2) {
                work.push_back(s2);
            }
        }
    }
    if result.overflow || result.unknown {
        return result;
    }

    // Longest dispatch/energy path over the (finite) transition graph.
    // Kahn's algorithm doubles as the cycle check: a leftover state
    // means the chain can revisit it and never drain.
    let mut indegree: HashMap<QState, usize> = HashMap::new();
    for (s, outs) in &transitions {
        indegree.entry(*s).or_insert(0);
        for (_, s2) in outs {
            if occupancy(s2) > 0 {
                *indegree.entry(*s2).or_insert(0) += 1;
            }
        }
    }
    let mut ready: VecDeque<QState> = indegree
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(s, _)| *s)
        .collect();
    let mut topo: Vec<QState> = Vec::with_capacity(indegree.len());
    while let Some(s) = ready.pop_front() {
        topo.push(s);
        if let Some(outs) = transitions.get(&s) {
            for (_, s2) in outs {
                if occupancy(s2) > 0 {
                    let d = indegree.get_mut(s2).expect("indexed above");
                    *d -= 1;
                    if *d == 0 {
                        ready.push_back(*s2);
                    }
                }
            }
        }
    }
    if topo.len() < indegree.len() {
        return result; // cyclic: dispatches/energy unbounded
    }
    let mut best_n: HashMap<QState, u64> = HashMap::new();
    let mut best_pj: HashMap<QState, f64> = HashMap::new();
    for s in topo.iter().rev() {
        let (mut n, mut pj) = (0u64, 0.0f64);
        if let Some(outs) = transitions.get(s) {
            for (e, s2) in outs {
                let tail_n = best_n.get(s2).copied().unwrap_or(0);
                let tail_pj = best_pj.get(s2).copied().unwrap_or(0.0);
                // p[e] was known for every expanded dispatch, so the
                // energy bound is too (both come from a bounded cost).
                let epj = model.energy[*e].unwrap_or(0.0);
                n = n.max(1 + tail_n);
                pj = pj.max(epj + tail_pj);
            }
        }
        best_n.insert(*s, n);
        best_pj.insert(*s, pj);
    }
    result.dispatches = Some(best_n.get(&start).copied().unwrap_or(0));
    result.energy_pj = Some(best_pj.get(&start).copied().unwrap_or(0.0));
    result
}

/// Name the data object containing DMEM word `addr`, when the symbol
/// table has one.
fn data_object_name(addr: u16, data_ranges: &[(String, Addr, Addr)]) -> Option<String> {
    for (name, base, end) in data_ranges {
        let (base, end) = (*base, *end);
        if base <= addr && (addr < end || addr == base) {
            return Some(if addr == base {
                name.clone()
            } else {
                format!("{name}+{}", addr - base)
            });
        }
    }
    None
}

fn event_name(i: usize) -> String {
    EventKind::from_index(i)
        .map(|k| k.to_string())
        .unwrap_or_default()
}

/// One root's contribution to the merged flow picture.
struct Root<'a> {
    event: Option<usize>,
    entry: Addr,
    fx: &'a RootEffects,
}

/// Run the whole-image flow analysis: graph, chain proofs, and the
/// three interprocedural lints.
pub(crate) fn analyze_flow(
    ctxs: &[Ctx],
    table: &BTreeMap<usize, BTreeSet<Addr>>,
    global_degraded: bool,
    poison: &BTreeSet<Addr>,
    data_ranges: &[(String, Addr, Addr)],
) -> (FlowReport, Vec<Diagnostic>) {
    let effects = root_effects(ctxs, poison);
    let mut diags: Vec<Diagnostic> = Vec::new();

    // Collect roots: boot plus every explored handler root. A root in
    // the final-round table that was never explored leaves its event
    // without a dispatch model (claims degrade to unknown).
    let mut roots: Vec<Root> = Vec::new();
    let mut explored: BTreeMap<(usize, Addr), usize> = BTreeMap::new();
    for (idx, (ctx, fx)) in ctxs.iter().zip(&effects).enumerate() {
        let Some(fx) = fx else { continue };
        match ctx.kind {
            CtxKind::Boot => roots.push(Root {
                event: None,
                entry: ctx.entry,
                fx,
            }),
            CtxKind::Handler(ev) => {
                explored.insert((ev, ctx.entry), idx);
                roots.push(Root {
                    event: Some(ev),
                    entry: ctx.entry,
                    fx,
                });
            }
            CtxKind::Sub => {}
        }
    }
    let installed: Vec<usize> = (0..EVENT_TABLE_ENTRIES)
        .filter(|i| table.get(i).is_some_and(|r| !r.is_empty()))
        .collect();

    // ---- the merged dispatch model ----
    let mut model = DispatchModel {
        p: [None; 8],
        energy: [None; 8],
    };
    for &ev in &installed {
        let mut p: Option<[u64; 8]> = None;
        let mut energy: Option<f64> = None;
        let mut complete = true;
        for &root in &table[&ev] {
            let Some(&idx) = explored.get(&(ev, root)) else {
                complete = false;
                break;
            };
            let fx = effects[idx].as_ref().expect("explored roots have effects");
            match (fx.posts, fx.energy_pj) {
                (Some(pv), Some(pj)) => {
                    let acc = p.get_or_insert([0; 8]);
                    for (a, b) in acc.iter_mut().zip(pv.iter()) {
                        *a = (*a).max(*b);
                    }
                    let e = energy.get_or_insert(0.0);
                    *e = e.max(pj);
                }
                _ => {
                    complete = false;
                    break;
                }
            }
        }
        if complete && !global_degraded {
            model.p[ev] = p;
            model.energy[ev] = energy;
        }
    }

    // ---- graph edges ----
    // Keyed for dedup across multiple roots of the same event:
    // Some(count) merges by max, None (existence-only) stays None.
    let mut edge_map: BTreeMap<(Option<usize>, usize, FlowEdgeKind), Option<u64>> = BTreeMap::new();
    for r in &roots {
        let mut add = |to: usize, kind: FlowEdgeKind, count: Option<u64>| {
            let slot = edge_map.entry((r.event, to, kind)).or_insert(count);
            *slot = match (*slot, count) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            };
        };
        match r.fx.posts {
            Some(pv) => {
                for (j, &n) in pv.iter().enumerate() {
                    if n > 0 {
                        add(j, FlowEdgeKind::Swev, Some(n));
                    }
                }
            }
            None => {
                for (j, &t) in r.fx.swev_targets.iter().enumerate() {
                    if t {
                        add(j, FlowEdgeKind::Swev, None);
                    }
                }
            }
        }
        for t in 0..3 {
            if r.fx.timer_arms[t] {
                add(t, FlowEdgeKind::TimerArm, None);
            }
            if r.fx.timer_cancels[t] {
                add(t, FlowEdgeKind::TimerCancel, None);
            }
        }
        if r.fx.rx_enable {
            add(
                EventKind::RadioRx.index(),
                FlowEdgeKind::RadioRxEnable,
                None,
            );
        }
        if r.fx.radio_tx {
            add(EventKind::RadioTxDone.index(), FlowEdgeKind::RadioTx, None);
        }
        if r.fx.sensor_query {
            add(
                EventKind::SensorReply.index(),
                FlowEdgeKind::SensorQuery,
                None,
            );
        }
    }
    let edges: Vec<FlowEdge> = edge_map
        .into_iter()
        .map(|((from, to, kind), count)| FlowEdge {
            from: from.and_then(EventKind::from_index),
            to: EventKind::from_index(to).expect("index < 8"),
            kind,
            count,
        })
        .collect();

    // ---- chain proofs ----
    let mut chains: Vec<ChainReport> = Vec::new();
    let boot = roots.iter().find(|r| r.event.is_none());
    let boot_chain = boot.and_then(|b| {
        let pv = b.fx.posts?;
        if global_degraded {
            return None;
        }
        let mut start = [0u8; 8];
        let boot_occ: u64 = pv.iter().sum();
        if boot_occ > EVENT_QUEUE_CAPACITY {
            // Boot alone floods the queue; don't build the (invalid,
            // >capacity) start state.
            return Some((
                b.entry,
                ChainResult {
                    peak: boot_occ,
                    overflow: true,
                    unknown: false,
                    dispatches: None,
                    energy_pj: None,
                    max_swev_posts: 0,
                },
            ));
        }
        for (slot, &n) in start.iter_mut().zip(pv.iter()) {
            *slot = n as u8;
        }
        Some((b.entry, simulate_chain(start, &model, boot_occ)))
    });
    // A root whose own activation already posts past capacity is
    // `swev-flood`'s case; `queue-overflow` reports only floods that
    // need the chain (several dispatches' leftovers adding up).
    let root_floods = |event: Option<usize>| -> bool {
        let pv = match event {
            Some(ev) => model.p[ev],
            None => boot.and_then(|b| b.fx.posts),
        };
        pv.is_some_and(|pv| pv.iter().sum::<u64>() > EVENT_QUEUE_CAPACITY)
    };
    let mut push_chain = |event: Option<usize>, entry: Addr, r: Option<ChainResult>| {
        let claims_ok = |r: &ChainResult| !r.overflow && !r.unknown && !global_degraded;
        if let Some(r) = &r {
            if r.overflow && !global_degraded && !root_floods(event) {
                diags.push(Diagnostic {
                    lint: "queue-overflow",
                    severity: Severity::Warning,
                    pc: Some(entry),
                    line: None,
                    handler: event
                        .map(|e| ctx_handler_name(CtxKind::Handler(e)))
                        .unwrap_or_else(|| ctx_handler_name(CtxKind::Boot)),
                    message: format!(
                        "the {} activation chain can have {} events pending at once; the queue holds {}",
                        event.map(event_name).unwrap_or_else(|| "boot".into()),
                        r.peak,
                        EVENT_QUEUE_CAPACITY
                    ),
                    hint: "events posted past capacity are dropped; shorten the swev chain or batch work"
                        .to_string(),
                });
            }
        }
        chains.push(ChainReport {
            event: event.and_then(EventKind::from_index),
            peak_queue: r.as_ref().filter(|r| claims_ok(r)).map(|r| r.peak),
            overflow: r.as_ref().is_some_and(|r| r.overflow),
            events_per_wake: r
                .as_ref()
                .filter(|r| claims_ok(r))
                .and_then(|r| r.dispatches),
            energy_pj_per_wake: r
                .as_ref()
                .filter(|r| claims_ok(r))
                .and_then(|r| r.energy_pj),
            max_swev_posts: r
                .as_ref()
                .filter(|r| claims_ok(r))
                .map(|r| r.max_swev_posts),
        });
    };
    match boot_chain {
        Some((entry, r)) => push_chain(None, entry, Some(r)),
        None => {
            if let Some(b) = boot {
                push_chain(None, b.entry, None);
            }
        }
    }
    for &ev in &installed {
        let entry = table[&ev].iter().next().copied().unwrap_or(0);
        if model.p[ev].is_none() || global_degraded {
            push_chain(Some(ev), entry, None);
            continue;
        }
        let mut start = [0u8; 8];
        start[ev] = 1;
        push_chain(Some(ev), entry, Some(simulate_chain(start, &model, 1)));
    }

    // ---- cross-handler DMEM hazards ----
    let handler_roots: Vec<&Root> = roots.iter().filter(|r| r.event.is_some()).collect();
    for (i, a) in handler_roots.iter().enumerate() {
        for b in handler_roots.iter().skip(i + 1) {
            if a.event == b.event || a.entry == b.entry {
                continue; // alternatives for one event, or shared code
            }
            if a.fx.reads_unknown || b.fx.reads_unknown {
                continue; // cannot establish "never read"
            }
            let conflict =
                a.fx.writes
                    .intersection(&b.fx.writes)
                    .find(|w| !a.fx.reads.contains(w) && !b.fx.reads.contains(w));
            let Some(&w) = conflict else { continue };
            let pc = a.fx.store_pcs.get(&w).copied();
            let object = data_object_name(w, data_ranges)
                .map(|n| format!(" ({n})"))
                .unwrap_or_default();
            diags.push(Diagnostic {
                lint: "dmem-hazard",
                severity: Severity::Warning,
                pc,
                line: None,
                handler: a.event.map(event_name),
                message: format!(
                    "{} and {} handlers both write DMEM word {w:#05x}{object} and neither reads it",
                    event_name(a.event.expect("handler root")),
                    event_name(b.event.expect("handler root")),
                ),
                hint: "dispatch order decides which write survives; read-modify-write or split the locations"
                    .to_string(),
            });
        }
    }

    // ---- unreachable handlers ----
    // Events only become pending through an effect the graph saw:
    // externally (the sensor-interrupt pin needs no software arming),
    // from boot, or from a reachable handler. Any unknown effect — or
    // a reachable *uninstalled* event, which would run boot code under
    // arbitrary registers — voids the whole argument, so report
    // nothing in that case.
    let sound = !global_degraded
        && roots.iter().all(|r| {
            !r.fx.scan_degraded && !r.fx.swev_unknown && !r.fx.timer_unknown && !r.fx.r15_unknown
        })
        && installed
            .iter()
            .all(|ev| table[ev].iter().all(|&a| explored.contains_key(&(*ev, a))));
    if sound && !installed.is_empty() {
        let mut reachable = [false; EVENT_TABLE_ENTRIES];
        reachable[EventKind::SensorIrq.index()] = true;
        let fx_events = |fx: &RootEffects, reach: &mut [bool; EVENT_TABLE_ENTRIES]| {
            for (j, &t) in fx.swev_targets.iter().enumerate() {
                reach[j] |= t;
            }
            for (t, r) in reach.iter_mut().take(3).enumerate() {
                *r |= fx.timer_arms[t] || fx.timer_cancels[t];
            }
            reach[EventKind::RadioRx.index()] |= fx.rx_enable;
            reach[EventKind::RadioTxDone.index()] |= fx.radio_tx;
            reach[EventKind::SensorReply.index()] |= fx.sensor_query;
        };
        if let Some(b) = boot {
            fx_events(b.fx, &mut reachable);
        }
        loop {
            let mut next = reachable;
            for r in &handler_roots {
                let ev = r.event.expect("handler root");
                if reachable[ev] {
                    fx_events(r.fx, &mut next);
                }
            }
            if next == reachable {
                break;
            }
            reachable = next;
        }
        let escaped = reachable
            .iter()
            .enumerate()
            .any(|(i, &r)| r && !installed.contains(&i));
        if !escaped {
            let dead: Vec<usize> = installed
                .iter()
                .copied()
                .filter(|&i| !reachable[i])
                .collect();
            if let Some(&first) = dead.first() {
                let names: Vec<String> = dead.iter().map(|&i| event_name(i)).collect();
                let pc = table[&first].iter().next().copied();
                diags.push(Diagnostic {
                    lint: "unreachable-handler",
                    severity: Severity::Warning,
                    pc,
                    line: None,
                    handler: None,
                    message: format!(
                        "handlers installed for {} can never be dispatched: nothing arms, posts, or commands those events",
                        names.join(", ")
                    ),
                    hint: "delete the dead handlers, or add the swev/timer/message path meant to raise them"
                        .to_string(),
                });
            }
        }
    }

    (
        FlowReport {
            degraded: global_degraded,
            queue_capacity: EVENT_QUEUE_CAPACITY,
            edges,
            chains,
        },
        diags,
    )
}
