//! Little-endian wire primitives for the snapshot format.
//!
//! Everything in a snapshot bottoms out in five scalar shapes: `u8`,
//! `u16`, `u32`, `u64` and `bool`. Floating-point values are *never*
//! written as floats — callers convert through [`f64::to_bits`] so a
//! snapshot round-trip is bit-exact by construction (NaN payloads,
//! signed zeros and all). Sequences are a `u64` length prefix followed
//! by the elements.
//!
//! The reader is fail-closed: every read checks the remaining length
//! and decoding never panics on foreign bytes.

use std::fmt;

/// Errors produced while decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the structure did.
    Truncated {
        /// Byte offset at which more data was needed.
        at: usize,
    },
    /// The magic bytes don't identify a SNAP snapshot.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The payload checksum does not match the header.
    BadChecksum,
    /// A field held a value outside its legal range.
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { at } => {
                write!(f, "snapshot truncated at byte offset {at}")
            }
            SnapshotError::BadMagic => write!(f, "not a SNAP snapshot (bad magic)"),
            SnapshotError::BadVersion { found, expected } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads version {expected})"
            ),
            SnapshotError::BadChecksum => write!(f, "snapshot payload checksum mismatch"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot field: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Append-only little-endian writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Write a `u64` length prefix.
    pub fn len(&mut self, n: usize) {
        self.u64(n as u64);
    }

    /// Write an optional `u64` (presence byte + value).
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    /// Write an optional `u16` (presence byte + value).
    pub fn opt_u16(&mut self, v: Option<u16>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u16(x);
            }
            None => self.bool(false),
        }
    }

    /// Write an optional `u8` (presence byte + value).
    pub fn opt_u8(&mut self, v: Option<u8>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u8(x);
            }
            None => self.bool(false),
        }
    }

    /// Write a length-prefixed opaque byte blob.
    pub fn bytes(&mut self, b: &[u8]) {
        self.len(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Write a length-prefixed `u16` sequence.
    pub fn seq_u16(&mut self, vs: &[u16]) {
        self.len(vs.len());
        for &v in vs {
            self.u16(v);
        }
    }

    /// Write a length-prefixed `u64` sequence.
    pub fn seq_u64(&mut self, vs: &[u64]) {
        self.len(vs.len());
        for &v in vs {
            self.u64(v);
        }
    }
}

/// Bounds-checked little-endian reader.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.buf.len() {
            return Err(SnapshotError::Truncated { at: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a bool; any byte other than 0/1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("bool flag")),
        }
    }

    /// Read a `u64` length prefix, rejecting lengths that cannot fit in
    /// the remaining buffer (cheap defense against hostile lengths —
    /// every element is at least one byte).
    pub fn len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        if n > (self.buf.len() - self.pos) as u64 {
            return Err(SnapshotError::Corrupt("sequence length"));
        }
        Ok(n as usize)
    }

    /// Read an optional `u64`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    /// Read an optional `u16`.
    pub fn opt_u16(&mut self) -> Result<Option<u16>, SnapshotError> {
        Ok(if self.bool()? {
            Some(self.u16()?)
        } else {
            None
        })
    }

    /// Read an optional `u8`.
    pub fn opt_u8(&mut self) -> Result<Option<u8>, SnapshotError> {
        Ok(if self.bool()? { Some(self.u8()?) } else { None })
    }

    /// Read a length-prefixed opaque byte blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Read a length-prefixed `u16` sequence.
    pub fn seq_u16(&mut self) -> Result<Vec<u16>, SnapshotError> {
        let n = self.len()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u16()?);
        }
        Ok(v)
    }

    /// Read a length-prefixed `u64` sequence.
    pub fn seq_u64(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.len()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }
}

/// FNV-1a 64-bit checksum over the payload, stored in the header so
/// that truncation or bit rot fails loudly instead of resurrecting a
/// subtly wrong simulation.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.bool(true);
        w.opt_u64(Some(9));
        w.opt_u64(None);
        w.seq_u16(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert!(r.bool().unwrap());
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.seq_u16().unwrap(), vec![1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = Writer::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..4]);
        assert_eq!(r.u64(), Err(SnapshotError::Truncated { at: 0 }));
    }

    #[test]
    fn hostile_length_rejected() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // claimed sequence length
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.seq_u16(), Err(SnapshotError::Corrupt("sequence length")));
    }

    #[test]
    fn bad_bool_rejected() {
        let mut r = Reader::new(&[2]);
        assert_eq!(r.bool(), Err(SnapshotError::Corrupt("bool flag")));
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned values: the checksum is part of the on-disk format.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"snap"), fnv1a(b"snap"));
        assert_ne!(fnv1a(b"snap"), fnv1a(b"snbp"));
    }
}
