//! Snapshot of a whole `snap-net` fleet.
//!
//! The fleet snapshot is taken at a `run_until` boundary, which is what
//! makes it small: the wake calendar, the batch scratch vector and the
//! sharded per-epoch structures are all rebuilt from node state at the
//! start of the next run, so none of them appear here (see DESIGN.md
//! §11 for the safety argument). What *does* appear is everything with
//! history: the nodes, the in-flight transmissions, the delivery and
//! stimulus calendars, the channel's loss RNG, and the trace.

use crate::node::NodeSnapshot;
use crate::wire::{Reader, SnapshotError, Writer};

/// Wire values for the network scheduler.
pub mod scheduler {
    /// Fixed-quantum lockstep reference scheduler.
    pub const LOCKSTEP: u8 = 0;
    /// Sleep-aware event-driven scheduler.
    pub const EVENT_DRIVEN: u8 = 1;
    /// Spatially sharded epoch scheduler.
    pub const SHARDED: u8 = 2;
    /// Pick per fleet size at run time.
    pub const AUTO: u8 = 3;
}

/// Wire values for trace recording modes.
pub mod trace_mode {
    /// Record every event.
    pub const FULL: u8 = 0;
    /// Keep only the last `cap` events.
    pub const RING: u8 = 1;
    /// Count only.
    pub const COUNT_ONLY: u8 = 2;
}

/// Wire values for external stimuli.
pub mod stimulus {
    /// Raise the sensor-interrupt pin.
    pub const SENSOR_IRQ: u8 = 0;
    /// Set a sensor reading, then raise the pin.
    pub const SENSOR_READING: u8 = 1;
}

/// Wire values for trace event kinds.
pub mod trace_kind {
    /// A node started transmitting a word.
    pub const TRANSMIT: u8 = 0;
    /// A word was delivered cleanly.
    pub const DELIVER: u8 = 1;
    /// A delivery was lost to a collision.
    pub const COLLISION: u8 = 2;
    /// An LED write.
    pub const LED: u8 = 3;
    /// An external stimulus was applied.
    pub const STIMULUS: u8 = 4;
    /// A node exhausted its battery budget (format v2).
    pub const NODE_DEATH: u8 = 5;
}

/// One in-flight or scheduled transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransmissionSnap {
    /// Sending node id.
    pub from: u32,
    /// The 16-bit payload.
    pub word: u16,
    /// Transmission start, ps.
    pub start_ps: u64,
    /// Transmission end, ps.
    pub end_ps: u64,
}

impl TransmissionSnap {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.from);
        w.u16(self.word);
        w.u64(self.start_ps);
        w.u64(self.end_ps);
    }

    fn decode(r: &mut Reader) -> Result<TransmissionSnap, SnapshotError> {
        Ok(TransmissionSnap {
            from: r.u32()?,
            word: r.u16()?,
            start_ps: r.u64()?,
            end_ps: r.u64()?,
        })
    }
}

/// The shared radio channel: carrier state, loss model and counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSnapshot {
    /// Transmissions still on the air.
    pub active: Vec<TransmissionSnap>,
    /// Collisions, lifetime.
    pub collisions: u64,
    /// Clean deliveries, lifetime.
    pub deliveries: u64,
    /// Deliveries lost to fading, lifetime.
    pub faded: u64,
    /// Fade probability, IEEE-754 bits.
    pub loss_bits: u64,
    /// SplitMix64 fade-RNG state.
    pub rng_state: u64,
}

impl ChannelSnapshot {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.len(self.active.len());
        for t in &self.active {
            t.encode(w);
        }
        w.u64(self.collisions);
        w.u64(self.deliveries);
        w.u64(self.faded);
        w.u64(self.loss_bits);
        w.u64(self.rng_state);
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<ChannelSnapshot, SnapshotError> {
        let n = r.len()?;
        let mut active = Vec::with_capacity(n);
        for _ in 0..n {
            active.push(TransmissionSnap::decode(r)?);
        }
        Ok(ChannelSnapshot {
            active,
            collisions: r.u64()?,
            deliveries: r.u64()?,
            faded: r.u64()?,
            loss_bits: r.u64()?,
            rng_state: r.u64()?,
        })
    }
}

/// One calendar entry: a delivery due at `at_ps`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliverySnap {
    /// When the delivery is due, ps.
    pub at_ps: u64,
    /// The transmission being delivered.
    pub tx: TransmissionSnap,
}

/// One scheduled external stimulus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StimulusSnap {
    /// When the stimulus fires, ps.
    pub at_ps: u64,
    /// Target node id.
    pub node: u32,
    /// Stimulus kind (see [`stimulus`]).
    pub kind: u8,
    /// `SENSOR_READING` sensor id (0 otherwise).
    pub id: u16,
    /// `SENSOR_READING` value (0 otherwise).
    pub value: u16,
}

/// One recorded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEventSnap {
    /// Event time, ps.
    pub at_ps: u64,
    /// Node the event belongs to.
    pub node: u32,
    /// Event kind (see [`trace_kind`]).
    pub kind: u8,
    /// Payload word (`TRANSMIT`/`DELIVER` word, `LED` value; else 0).
    pub payload: u16,
    /// Peer node id (`DELIVER`/`COLLISION` sender; else 0).
    pub from: u32,
}

/// The fleet trace: recorded events plus mode and counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Recording mode (see [`trace_mode`]).
    pub mode: u8,
    /// Ring capacity when `mode == RING`.
    pub ring_cap: u64,
    /// Events recorded, lifetime (may exceed `events.len()`).
    pub recorded: u64,
    /// Events protected from ring eviction.
    pub sealed: u64,
    /// The retained events, oldest first.
    pub events: Vec<TraceEventSnap>,
}

impl TraceSnapshot {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.u8(self.mode);
        w.u64(self.ring_cap);
        w.u64(self.recorded);
        w.u64(self.sealed);
        w.len(self.events.len());
        for e in &self.events {
            w.u64(e.at_ps);
            w.u32(e.node);
            w.u8(e.kind);
            w.u16(e.payload);
            w.u32(e.from);
        }
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<TraceSnapshot, SnapshotError> {
        let mode = r.u8()?;
        if mode > trace_mode::COUNT_ONLY {
            return Err(SnapshotError::Corrupt("trace mode discriminant"));
        }
        let ring_cap = r.u64()?;
        let recorded = r.u64()?;
        let sealed = r.u64()?;
        let n = r.len()?;
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            let e = TraceEventSnap {
                at_ps: r.u64()?,
                node: r.u32()?,
                kind: r.u8()?,
                payload: r.u16()?,
                from: r.u32()?,
            };
            if e.kind > trace_kind::NODE_DEATH {
                return Err(SnapshotError::Corrupt("trace kind discriminant"));
            }
            events.push(e);
        }
        Ok(TraceSnapshot {
            mode,
            ring_cap,
            recorded,
            sealed,
            events,
        })
    }
}

/// A node's position on the plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PositionSnap {
    /// Node id.
    pub node: u32,
    /// X coordinate, IEEE-754 bits of metres.
    pub x_bits: u64,
    /// Y coordinate, IEEE-754 bits of metres.
    pub y_bits: u64,
}

/// Full fleet state at a `run_until` boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSnapshot {
    /// Global simulation clock, ps.
    pub now_ps: u64,
    /// Configured scheduler (see [`scheduler`]).
    pub scheduler: u8,
    /// Explicit shard count (0 = auto).
    pub num_shards: u64,
    /// Node-count threshold for the parallel worker pool.
    pub parallel_threshold: u64,
    /// Whether the trace mode was set explicitly by the embedder.
    pub trace_mode_explicit: bool,
    /// Radio range, IEEE-754 bits of metres.
    pub range_bits: u64,
    /// Node positions.
    pub positions: Vec<PositionSnap>,
    /// The nodes, in id order.
    pub nodes: Vec<NodeSnapshot>,
    /// The shared channel.
    pub channel: ChannelSnapshot,
    /// Pending deliveries in calendar pop order.
    pub deliveries: Vec<DeliverySnap>,
    /// Scheduled stimuli in calendar pop order.
    pub stimuli: Vec<StimulusSnap>,
    /// The trace.
    pub trace: TraceSnapshot,
}

impl FleetSnapshot {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.u64(self.now_ps);
        w.u8(self.scheduler);
        w.u64(self.num_shards);
        w.u64(self.parallel_threshold);
        w.bool(self.trace_mode_explicit);
        w.u64(self.range_bits);
        w.len(self.positions.len());
        for p in &self.positions {
            w.u32(p.node);
            w.u64(p.x_bits);
            w.u64(p.y_bits);
        }
        w.len(self.nodes.len());
        for n in &self.nodes {
            n.encode(w);
        }
        self.channel.encode(w);
        w.len(self.deliveries.len());
        for d in &self.deliveries {
            w.u64(d.at_ps);
            d.tx.encode(w);
        }
        w.len(self.stimuli.len());
        for s in &self.stimuli {
            w.u64(s.at_ps);
            w.u32(s.node);
            w.u8(s.kind);
            w.u16(s.id);
            w.u16(s.value);
        }
        self.trace.encode(w);
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<FleetSnapshot, SnapshotError> {
        let now_ps = r.u64()?;
        let sched = r.u8()?;
        if sched > scheduler::AUTO {
            return Err(SnapshotError::Corrupt("scheduler discriminant"));
        }
        let num_shards = r.u64()?;
        let parallel_threshold = r.u64()?;
        let trace_mode_explicit = r.bool()?;
        let range_bits = r.u64()?;
        let n = r.len()?;
        let mut positions = Vec::with_capacity(n);
        for _ in 0..n {
            positions.push(PositionSnap {
                node: r.u32()?,
                x_bits: r.u64()?,
                y_bits: r.u64()?,
            });
        }
        let n = r.len()?;
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            nodes.push(NodeSnapshot::decode(r)?);
        }
        let channel = ChannelSnapshot::decode(r)?;
        let n = r.len()?;
        let mut deliveries = Vec::with_capacity(n);
        for _ in 0..n {
            deliveries.push(DeliverySnap {
                at_ps: r.u64()?,
                tx: TransmissionSnap::decode(r)?,
            });
        }
        let n = r.len()?;
        let mut stimuli = Vec::with_capacity(n);
        for _ in 0..n {
            let s = StimulusSnap {
                at_ps: r.u64()?,
                node: r.u32()?,
                kind: r.u8()?,
                id: r.u16()?,
                value: r.u16()?,
            };
            if s.kind > stimulus::SENSOR_READING {
                return Err(SnapshotError::Corrupt("stimulus discriminant"));
            }
            stimuli.push(s);
        }
        let trace = TraceSnapshot::decode(r)?;
        Ok(FleetSnapshot {
            now_ps,
            scheduler: sched,
            num_shards,
            parallel_threshold,
            trace_mode_explicit,
            range_bits,
            positions,
            nodes,
            channel,
            deliveries,
            stimuli,
            trace,
        })
    }
}
