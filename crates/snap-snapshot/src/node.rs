//! Snapshot of one network node: core + radio + sensors + LED port +
//! the node's private delivery calendar.

use crate::core::CoreSnapshot;
use crate::wire::{Reader, SnapshotError, Writer};

/// Wire values for the radio mode.
pub mod radio_mode {
    /// Radio powered down.
    pub const OFF: u8 = 0;
    /// Receiver listening.
    pub const RX: u8 = 1;
    /// Transmitter serializing a word.
    pub const TX: u8 = 2;
}

/// Wire values for a node's pending self-events.
pub mod pending {
    /// Radio finishes serializing the in-flight word.
    pub const TX_DONE: u8 = 0;
    /// A sensor query reply becomes due.
    pub const SENSOR_REPLY: u8 = 1;
}

/// The node's radio front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RadioSnapshot {
    /// Serial bit rate, IEEE-754 bits of bits/second.
    pub bit_rate_bits: u64,
    /// Current mode (see [`radio_mode`]).
    pub mode: u8,
    /// When the in-flight transmission completes, ps.
    pub tx_done_at_ps: Option<u64>,
    /// The word being serialized, if any.
    pub tx_word: Option<u16>,
    /// Words sent, lifetime.
    pub words_sent: u64,
    /// Words heard, lifetime.
    pub words_heard: u64,
}

impl RadioSnapshot {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.u64(self.bit_rate_bits);
        w.u8(self.mode);
        w.opt_u64(self.tx_done_at_ps);
        w.opt_u16(self.tx_word);
        w.u64(self.words_sent);
        w.u64(self.words_heard);
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<RadioSnapshot, SnapshotError> {
        let snap = RadioSnapshot {
            bit_rate_bits: r.u64()?,
            mode: r.u8()?,
            tx_done_at_ps: r.opt_u64()?,
            tx_word: r.opt_u16()?,
            words_sent: r.u64()?,
            words_heard: r.u64()?,
        };
        if snap.mode > radio_mode::TX {
            return Err(SnapshotError::Corrupt("radio mode discriminant"));
        }
        Ok(snap)
    }
}

/// The node's sensor bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SensorSnapshot {
    /// `(sensor id, reading)` pairs in ascending id order.
    pub readings: Vec<(u16, u16)>,
    /// Query reply latency, ps.
    pub reply_latency_ps: u64,
    /// Queries answered, lifetime.
    pub queries: u64,
}

impl SensorSnapshot {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.len(self.readings.len());
        for &(id, v) in &self.readings {
            w.u16(id);
            w.u16(v);
        }
        w.u64(self.reply_latency_ps);
        w.u64(self.queries);
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<SensorSnapshot, SnapshotError> {
        let n = r.len()?;
        let mut readings = Vec::with_capacity(n);
        for _ in 0..n {
            readings.push((r.u16()?, r.u16()?));
        }
        Ok(SensorSnapshot {
            readings,
            reply_latency_ps: r.u64()?,
            queries: r.u64()?,
        })
    }
}

/// The node's LED output port, history included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedSnapshot {
    /// Current port value.
    pub value: u16,
    /// `(time ps, value)` write history.
    pub history: Vec<(u64, u16)>,
}

impl LedSnapshot {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.u16(self.value);
        w.len(self.history.len());
        for &(at, v) in &self.history {
            w.u64(at);
            w.u16(v);
        }
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<LedSnapshot, SnapshotError> {
        let value = r.u16()?;
        let n = r.len()?;
        let mut history = Vec::with_capacity(n);
        for _ in 0..n {
            history.push((r.u64()?, r.u16()?));
        }
        Ok(LedSnapshot { value, history })
    }
}

/// One entry of the node's pending-event calendar, in FIFO pop order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingSnap {
    /// When the event becomes due, ps.
    pub at_ps: u64,
    /// Event kind (see [`pending`]).
    pub kind: u8,
    /// `SENSOR_REPLY` payload word (0 for `TX_DONE`).
    pub value: u16,
}

/// One node of the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// Node id (1-based, as assigned by the sim).
    pub id: u32,
    /// The processor.
    pub core: CoreSnapshot,
    /// The radio front-end.
    pub radio: RadioSnapshot,
    /// The sensor bank.
    pub sensors: SensorSnapshot,
    /// The LED port.
    pub led: LedSnapshot,
    /// Pending self-events in calendar pop order.
    pub pending: Vec<PendingSnap>,
    /// Step budget per logical run.
    pub step_limit: u64,
    /// Steps consumed against the budget so far.
    pub run_steps: u64,
}

impl NodeSnapshot {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.u32(self.id);
        self.core.encode(w);
        self.radio.encode(w);
        self.sensors.encode(w);
        self.led.encode(w);
        w.len(self.pending.len());
        for p in &self.pending {
            w.u64(p.at_ps);
            w.u8(p.kind);
            w.u16(p.value);
        }
        w.u64(self.step_limit);
        w.u64(self.run_steps);
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<NodeSnapshot, SnapshotError> {
        let id = r.u32()?;
        let core = CoreSnapshot::decode(r)?;
        let radio = RadioSnapshot::decode(r)?;
        let sensors = SensorSnapshot::decode(r)?;
        let led = LedSnapshot::decode(r)?;
        let n = r.len()?;
        let mut pending_events = Vec::with_capacity(n);
        for _ in 0..n {
            let p = PendingSnap {
                at_ps: r.u64()?,
                kind: r.u8()?,
                value: r.u16()?,
            };
            if p.kind > pending::SENSOR_REPLY {
                return Err(SnapshotError::Corrupt("pending event discriminant"));
            }
            pending_events.push(p);
        }
        Ok(NodeSnapshot {
            id,
            core,
            radio,
            sensors,
            led,
            pending: pending_events,
            step_limit: r.u64()?,
            run_steps: r.u64()?,
        })
    }
}
