//! Snapshot of one network node: core + radio + sensors + LED port +
//! the node's private delivery calendar.

use crate::core::CoreSnapshot;
use crate::wire::{Reader, SnapshotError, Writer};

/// Wire values for the radio mode.
pub mod radio_mode {
    /// Radio powered down.
    pub const OFF: u8 = 0;
    /// Receiver listening.
    pub const RX: u8 = 1;
    /// Transmitter serializing a word.
    pub const TX: u8 = 2;
}

/// Wire values for the node kind (format v2).
pub mod node_kind {
    /// SNAP/LE core (battery-powered by default).
    pub const SNAP: u8 = 0;
    /// ATmega-class baseline mote core.
    pub const AVR: u8 = 1;
    /// Mains-powered SNAP gateway bridging radio traffic uplink.
    pub const GATEWAY: u8 = 2;
}

/// Wire values for a node's pending self-events.
pub mod pending {
    /// Radio finishes serializing the in-flight word.
    pub const TX_DONE: u8 = 0;
    /// A sensor query reply becomes due.
    pub const SENSOR_REPLY: u8 = 1;
}

/// The node's radio front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RadioSnapshot {
    /// Serial bit rate, IEEE-754 bits of bits/second.
    pub bit_rate_bits: u64,
    /// Current mode (see [`radio_mode`]).
    pub mode: u8,
    /// When the in-flight transmission completes, ps.
    pub tx_done_at_ps: Option<u64>,
    /// The word being serialized, if any.
    pub tx_word: Option<u16>,
    /// Words sent, lifetime.
    pub words_sent: u64,
    /// Words heard, lifetime.
    pub words_heard: u64,
}

impl RadioSnapshot {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.u64(self.bit_rate_bits);
        w.u8(self.mode);
        w.opt_u64(self.tx_done_at_ps);
        w.opt_u16(self.tx_word);
        w.u64(self.words_sent);
        w.u64(self.words_heard);
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<RadioSnapshot, SnapshotError> {
        let snap = RadioSnapshot {
            bit_rate_bits: r.u64()?,
            mode: r.u8()?,
            tx_done_at_ps: r.opt_u64()?,
            tx_word: r.opt_u16()?,
            words_sent: r.u64()?,
            words_heard: r.u64()?,
        };
        if snap.mode > radio_mode::TX {
            return Err(SnapshotError::Corrupt("radio mode discriminant"));
        }
        Ok(snap)
    }
}

/// The node's sensor bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SensorSnapshot {
    /// `(sensor id, reading)` pairs in ascending id order.
    pub readings: Vec<(u16, u16)>,
    /// Query reply latency, ps.
    pub reply_latency_ps: u64,
    /// Queries answered, lifetime.
    pub queries: u64,
}

impl SensorSnapshot {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.len(self.readings.len());
        for &(id, v) in &self.readings {
            w.u16(id);
            w.u16(v);
        }
        w.u64(self.reply_latency_ps);
        w.u64(self.queries);
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<SensorSnapshot, SnapshotError> {
        let n = r.len()?;
        let mut readings = Vec::with_capacity(n);
        for _ in 0..n {
            readings.push((r.u16()?, r.u16()?));
        }
        Ok(SensorSnapshot {
            readings,
            reply_latency_ps: r.u64()?,
            queries: r.u64()?,
        })
    }
}

/// The node's LED output port, history included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedSnapshot {
    /// Current port value.
    pub value: u16,
    /// `(time ps, value)` write history.
    pub history: Vec<(u64, u16)>,
}

impl LedSnapshot {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.u16(self.value);
        w.len(self.history.len());
        for &(at, v) in &self.history {
            w.u64(at);
            w.u16(v);
        }
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<LedSnapshot, SnapshotError> {
        let value = r.u16()?;
        let n = r.len()?;
        let mut history = Vec::with_capacity(n);
        for _ in 0..n {
            history.push((r.u64()?, r.u16()?));
        }
        Ok(LedSnapshot { value, history })
    }
}

/// One entry of the node's pending-event calendar, in FIFO pop order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingSnap {
    /// When the event becomes due, ps.
    pub at_ps: u64,
    /// Event kind (see [`pending`]).
    pub kind: u8,
    /// `SENSOR_REPLY` payload word (0 for `TX_DONE`).
    pub value: u16,
}

/// Battery budget attached to a node, if any.
///
/// All four fields are [`f64::to_bits`] patterns of the live
/// `BatteryConfig` so the round-trip is bit-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatterySnapshot {
    /// Rated capacity, µAh (f64 bits).
    pub capacity_uah_bits: u64,
    /// Nominal cell voltage, V (f64 bits).
    pub voltage_v_bits: u64,
    /// Sleep-mode current draw, µA (f64 bits).
    pub sleep_ua_bits: u64,
    /// Radio transmit surcharge per word, pJ (f64 bits).
    pub tx_pj_per_word_bits: u64,
}

impl BatterySnapshot {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.capacity_uah_bits);
        w.u64(self.voltage_v_bits);
        w.u64(self.sleep_ua_bits);
        w.u64(self.tx_pj_per_word_bits);
    }

    fn decode(r: &mut Reader) -> Result<BatterySnapshot, SnapshotError> {
        Ok(BatterySnapshot {
            capacity_uah_bits: r.u64()?,
            voltage_v_bits: r.u64()?,
            sleep_ua_bits: r.u64()?,
            tx_pj_per_word_bits: r.u64()?,
        })
    }
}

/// One node of the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// Node id (1-based, as assigned by the sim).
    pub id: u32,
    /// Node kind (see [`node_kind`]).
    pub kind: u8,
    /// The SNAP processor; `None` exactly when `kind` is AVR.
    pub core: Option<CoreSnapshot>,
    /// Opaque `atmega` core state blob (its own versioned format);
    /// non-empty exactly when `kind` is AVR.
    pub avr_state: Vec<u8>,
    /// SPI bytes already drained into radio words (AVR motes; 0 otherwise).
    pub avr_tx_emitted: u64,
    /// Whether the AVR mote re-enables its receiver after transmitting.
    pub avr_listen: bool,
    /// The radio front-end.
    pub radio: RadioSnapshot,
    /// The sensor bank.
    pub sensors: SensorSnapshot,
    /// The LED port.
    pub led: LedSnapshot,
    /// Pending self-events in calendar pop order.
    pub pending: Vec<PendingSnap>,
    /// Step budget per logical run.
    pub step_limit: u64,
    /// Steps consumed against the budget so far.
    pub run_steps: u64,
    /// Battery budget, if the node is battery-powered.
    pub battery: Option<BatterySnapshot>,
    /// When the node exhausted its battery, ps (dead nodes only).
    pub died_at_ps: Option<u64>,
    /// Gateway uplink frames not yet drained: `(at_ps, word)`.
    pub uplink: Vec<(u64, u16)>,
}

impl NodeSnapshot {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.u32(self.id);
        w.u8(self.kind);
        match &self.core {
            Some(core) => {
                w.bool(true);
                core.encode(w);
            }
            None => w.bool(false),
        }
        w.bytes(&self.avr_state);
        w.u64(self.avr_tx_emitted);
        w.bool(self.avr_listen);
        self.radio.encode(w);
        self.sensors.encode(w);
        self.led.encode(w);
        w.len(self.pending.len());
        for p in &self.pending {
            w.u64(p.at_ps);
            w.u8(p.kind);
            w.u16(p.value);
        }
        w.u64(self.step_limit);
        w.u64(self.run_steps);
        match &self.battery {
            Some(b) => {
                w.bool(true);
                b.encode(w);
            }
            None => w.bool(false),
        }
        w.opt_u64(self.died_at_ps);
        w.len(self.uplink.len());
        for &(at, word) in &self.uplink {
            w.u64(at);
            w.u16(word);
        }
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<NodeSnapshot, SnapshotError> {
        let id = r.u32()?;
        let kind = r.u8()?;
        if kind > node_kind::GATEWAY {
            return Err(SnapshotError::Corrupt("node kind discriminant"));
        }
        let core = if r.bool()? {
            Some(CoreSnapshot::decode(r)?)
        } else {
            None
        };
        let avr_state = r.bytes()?;
        if (kind == node_kind::AVR) != core.is_none() {
            return Err(SnapshotError::Corrupt("node kind / core presence mismatch"));
        }
        if (kind == node_kind::AVR) == avr_state.is_empty() {
            return Err(SnapshotError::Corrupt("node kind / avr state mismatch"));
        }
        let avr_tx_emitted = r.u64()?;
        let avr_listen = r.bool()?;
        let radio = RadioSnapshot::decode(r)?;
        let sensors = SensorSnapshot::decode(r)?;
        let led = LedSnapshot::decode(r)?;
        let n = r.len()?;
        let mut pending_events = Vec::with_capacity(n);
        for _ in 0..n {
            let p = PendingSnap {
                at_ps: r.u64()?,
                kind: r.u8()?,
                value: r.u16()?,
            };
            if p.kind > pending::SENSOR_REPLY {
                return Err(SnapshotError::Corrupt("pending event discriminant"));
            }
            pending_events.push(p);
        }
        let step_limit = r.u64()?;
        let run_steps = r.u64()?;
        let battery = if r.bool()? {
            Some(BatterySnapshot::decode(r)?)
        } else {
            None
        };
        let died_at_ps = r.opt_u64()?;
        let n = r.len()?;
        let mut uplink = Vec::with_capacity(n);
        for _ in 0..n {
            uplink.push((r.u64()?, r.u16()?));
        }
        Ok(NodeSnapshot {
            id,
            kind,
            core,
            avr_state,
            avr_tx_emitted,
            avr_listen,
            radio,
            sensors,
            led,
            pending: pending_events,
            step_limit,
            run_steps,
            battery,
            died_at_ps,
            uplink,
        })
    }
}
