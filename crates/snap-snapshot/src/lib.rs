//! # snap-snapshot — versioned, deterministic simulator checkpoints
//!
//! A snapshot captures the *complete* observable state of a simulation
//! — a single core, a node, or a whole fleet — such that
//! `restore(snapshot(S))` followed by running to time `T` is
//! **bit-identical** to running `S` straight to `T`: same registers,
//! same memories, same event order, same trace, same energy `f64`
//! bits. That property is enforced by `snap-net/tests/snapshot_equiv.rs`
//! across every engine × scheduler combination.
//!
//! ## Design rules
//!
//! * **Plain data only.** This crate depends on nothing and contains no
//!   simulator types — just integers. Enum discriminants are pinned
//!   `u8` constants, floats travel as [`f64::to_bits`] patterns, times
//!   as picoseconds. The conversions live next to the live state
//!   (`snap_core::snapshot`, `snap_node::snapshot`,
//!   `snap_net::snapshot`), which keeps private fields private.
//! * **Caches are not state.** Predecode, fusion and AOT artifacts are
//!   pure functions of IMEM + config; they rebuild on restore. All
//!   execution tiers are bit-identical, so this is invisible.
//! * **Fail closed.** Decoding foreign bytes never panics; every
//!   discriminant, length and checksum is validated.
//! * **Versioned.** The header carries [`FORMAT_VERSION`]. Any change
//!   to the byte layout — even adding a field — must bump it; readers
//!   reject versions they don't understand rather than guessing. The
//!   golden-snapshot test pins the current layout.
//!
//! ## File format
//!
//! ```text
//! [0..4)   magic  "SNPS"
//! [4..8)   format version, u32 LE
//! [8..9)   payload kind: 1 = core, 2 = node, 3 = fleet
//! [9..17)  FNV-1a 64 checksum of the payload, u64 LE
//! [17..]   payload (see core/node/fleet modules)
//! ```

#![warn(missing_docs)]

pub mod core;
pub mod fleet;
pub mod node;
pub mod wire;

pub use crate::core::{
    AcctSnapshot, ClassStatSnap, CoreConfigSnap, CoreSnapshot, HandlerStatSnap, MsgSnapshot,
    ProfileSnapshot, QueueSnapshot, TimerRegSnap, TimerSnapshot,
};
pub use crate::fleet::{
    ChannelSnapshot, DeliverySnap, FleetSnapshot, PositionSnap, StimulusSnap, TraceEventSnap,
    TraceSnapshot, TransmissionSnap,
};
pub use crate::node::{
    BatterySnapshot, LedSnapshot, NodeSnapshot, PendingSnap, RadioSnapshot, SensorSnapshot,
};
pub use crate::wire::{fnv1a, Reader, SnapshotError, Writer};

/// The four magic bytes opening every snapshot file.
pub const MAGIC: [u8; 4] = *b"SNPS";

/// Current snapshot format version. Bump on **any** byte-layout change;
/// see the crate docs for the versioning rules.
pub const FORMAT_VERSION: u32 = 2;

const KIND_CORE: u8 = 1;
const KIND_NODE: u8 = 2;
const KIND_FLEET: u8 = 3;

/// A decoded snapshot of any granularity.
#[derive(Debug, Clone, PartialEq)]
pub enum Snapshot {
    /// A single processor (boxed, like [`Snapshot::Node`]: the inline
    /// payload dwarfs the `Vec`-backed fleet variant).
    Core(Box<CoreSnapshot>),
    /// A single network node (boxed: with the fleet-era battery and
    /// uplink state a node is by far the largest inline payload).
    Node(Box<NodeSnapshot>),
    /// A whole fleet (boxed like the others, keeping the enum one
    /// pointer wide per variant).
    Fleet(Box<FleetSnapshot>),
}

impl Snapshot {
    /// Serialize with header and checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Writer::new();
        let kind = match self {
            Snapshot::Core(c) => {
                c.encode(&mut payload);
                KIND_CORE
            }
            Snapshot::Node(n) => {
                n.encode(&mut payload);
                KIND_NODE
            }
            Snapshot::Fleet(f) => {
                f.encode(&mut payload);
                KIND_FLEET
            }
        };
        let payload = payload.into_bytes();
        let mut out = Vec::with_capacity(17 + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(kind);
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parse a snapshot, validating magic, version and checksum.
    ///
    /// # Errors
    ///
    /// Any malformed input yields a [`SnapshotError`]; this never
    /// panics on foreign bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < 17 {
            return Err(SnapshotError::Truncated { at: bytes.len() });
        }
        if bytes[0..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != FORMAT_VERSION {
            return Err(SnapshotError::BadVersion {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let kind = bytes[8];
        let checksum = u64::from_le_bytes([
            bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15], bytes[16],
        ]);
        let payload = &bytes[17..];
        if fnv1a(payload) != checksum {
            return Err(SnapshotError::BadChecksum);
        }
        let mut r = Reader::new(payload);
        let snap = match kind {
            KIND_CORE => Snapshot::Core(Box::new(CoreSnapshot::decode(&mut r)?)),
            KIND_NODE => Snapshot::Node(Box::new(NodeSnapshot::decode(&mut r)?)),
            KIND_FLEET => Snapshot::Fleet(Box::new(FleetSnapshot::decode(&mut r)?)),
            _ => return Err(SnapshotError::Corrupt("payload kind")),
        };
        if !r.is_empty() {
            return Err(SnapshotError::Corrupt("trailing bytes"));
        }
        Ok(snap)
    }

    /// The fleet payload, if this is a fleet snapshot.
    pub fn as_fleet(&self) -> Option<&FleetSnapshot> {
        match self {
            Snapshot::Fleet(f) => Some(f.as_ref()),
            _ => None,
        }
    }

    /// The core payload, if this is a core snapshot.
    pub fn as_core(&self) -> Option<&CoreSnapshot> {
        match self {
            Snapshot::Core(c) => Some(c.as_ref()),
            _ => None,
        }
    }

    /// The node payload, if this is a node snapshot.
    pub fn as_node(&self) -> Option<&NodeSnapshot> {
        match self {
            Snapshot::Node(n) => Some(n.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_core() -> CoreSnapshot {
        CoreSnapshot {
            config: CoreConfigSnap {
                vdd_bits: 1.8f64.to_bits(),
                delay_factor_bits: 1.0f64.to_bits(),
                bus_flat: false,
                event_queue_capacity: 8,
                timer_tick_ps: 1_000_000,
                lfsr_seed: 0xACE1,
                predecode: true,
                engine: core::engine::FUSED,
            },
            regs: vec![0; 15],
            carry: false,
            imem: vec![0x1234; 2048],
            dmem: vec![0; 2048],
            pc: 7,
            state: core::state::ASLEEP,
            now_ps: 123_456,
            handler_table: vec![0; 8],
            lfsr: 0xACE1,
            current_event: Some(5),
            queue: QueueSnapshot {
                fifo: vec![5, 3],
                stamps: None,
                dropped: 1,
                inserted: 9,
            },
            timers: TimerSnapshot {
                timers: vec![
                    TimerRegSnap {
                        staged_hi: 0,
                        expiry_ps: Some(999)
                    };
                    3
                ],
                scheduled: 4,
                expired: 3,
                cancelled: 1,
            },
            msg: MsgSnapshot {
                outgoing: vec![0xbeef],
                awaiting_tx_payload: false,
                rx_enabled: true,
                port: 0x2a,
                words_tx: 5,
                words_rx: 6,
            },
            acct: AcctSnapshot {
                components: vec![1.5f64.to_bits(); 7],
                per_class: vec![
                    ClassStatSnap {
                        count: 10,
                        energy_bits: 2.25f64.to_bits()
                    };
                    5
                ],
                total_energy_bits: 218.017f64.to_bits(),
                busy_ps: 42,
                instructions: 100,
                cycles: 100,
            },
            profile: ProfileSnapshot {
                boot: HandlerStatSnap {
                    dispatches: 1,
                    instructions: 4,
                    energy_bits: 0,
                    busy_ps: 10,
                },
                per_event: vec![
                    HandlerStatSnap {
                        dispatches: 0,
                        instructions: 0,
                        energy_bits: 0,
                        busy_ps: 0
                    };
                    8
                ],
            },
            sleep_ps: 1000,
            wakeup_ps: 2500,
            wakeups: 1,
            handlers_dispatched: 2,
        }
    }

    #[test]
    fn core_round_trip_is_exact() {
        let snap = Snapshot::Core(Box::new(sample_core()));
        let bytes = snap.to_bytes();
        assert_eq!(Snapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn header_fields_are_pinned() {
        let bytes = Snapshot::Core(Box::new(sample_core())).to_bytes();
        assert_eq!(&bytes[0..4], b"SNPS");
        assert_eq!(
            u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]),
            FORMAT_VERSION
        );
        assert_eq!(bytes[8], KIND_CORE);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Snapshot::Core(Box::new(sample_core())).to_bytes();
        bytes[0] = b'X';
        assert_eq!(Snapshot::from_bytes(&bytes), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = Snapshot::Core(Box::new(sample_core())).to_bytes();
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert_eq!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::BadVersion {
                found: FORMAT_VERSION + 1,
                expected: FORMAT_VERSION
            })
        );
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let mut bytes = Snapshot::Core(Box::new(sample_core())).to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::BadChecksum)
        );
    }

    #[test]
    fn truncated_payload_fails() {
        let bytes = Snapshot::Core(Box::new(sample_core())).to_bytes();
        // Chopping the payload flips the checksum first; chop before
        // the checksum can see a Truncated error instead.
        assert!(Snapshot::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(Snapshot::from_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn nan_energy_bits_survive() {
        let mut c = sample_core();
        c.acct.total_energy_bits = f64::NAN.to_bits();
        let snap = Snapshot::Core(Box::new(c));
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        match back {
            Snapshot::Core(c) => {
                assert_eq!(c.acct.total_energy_bits, f64::NAN.to_bits());
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn fleet_round_trip_is_exact() {
        let fleet = FleetSnapshot {
            now_ps: 1,
            scheduler: fleet::scheduler::EVENT_DRIVEN,
            num_shards: 0,
            parallel_threshold: 8,
            trace_mode_explicit: false,
            range_bits: 10.0f64.to_bits(),
            positions: vec![PositionSnap {
                node: 1,
                x_bits: 0.0f64.to_bits(),
                y_bits: (-0.0f64).to_bits(),
            }],
            nodes: vec![NodeSnapshot {
                id: 1,
                kind: node::node_kind::SNAP,
                core: Some(sample_core()),
                avr_state: vec![],
                avr_tx_emitted: 0,
                avr_listen: false,
                radio: RadioSnapshot {
                    bit_rate_bits: 19_200.0f64.to_bits(),
                    mode: node::radio_mode::RX,
                    tx_done_at_ps: None,
                    tx_word: None,
                    words_sent: 0,
                    words_heard: 0,
                },
                sensors: SensorSnapshot {
                    readings: vec![(1, 77)],
                    reply_latency_ps: 1000,
                    queries: 0,
                },
                led: LedSnapshot {
                    value: 1,
                    history: vec![(5, 1)],
                },
                pending: vec![PendingSnap {
                    at_ps: 9,
                    kind: node::pending::SENSOR_REPLY,
                    value: 3,
                }],
                step_limit: 10_000_000,
                run_steps: 12,
                battery: Some(BatterySnapshot {
                    capacity_uah_bits: 620_000.0f64.to_bits(),
                    voltage_v_bits: 3.0f64.to_bits(),
                    sleep_ua_bits: 0.0033f64.to_bits(),
                    tx_pj_per_word_bits: 0.0f64.to_bits(),
                }),
                died_at_ps: None,
                uplink: vec![],
            }],
            channel: ChannelSnapshot {
                active: vec![TransmissionSnap {
                    from: 1,
                    word: 0xffff,
                    start_ps: 0,
                    end_ps: 9,
                }],
                collisions: 0,
                deliveries: 1,
                faded: 0,
                loss_bits: 0.3f64.to_bits(),
                rng_state: 0x1055,
            },
            deliveries: vec![DeliverySnap {
                at_ps: 9,
                tx: TransmissionSnap {
                    from: 1,
                    word: 2,
                    start_ps: 3,
                    end_ps: 9,
                },
            }],
            stimuli: vec![StimulusSnap {
                at_ps: 50,
                node: 1,
                kind: fleet::stimulus::SENSOR_READING,
                id: 4,
                value: 0xfff,
            }],
            trace: TraceSnapshot {
                mode: fleet::trace_mode::RING,
                ring_cap: 64,
                recorded: 100,
                sealed: 2,
                events: vec![TraceEventSnap {
                    at_ps: 1,
                    node: 1,
                    kind: fleet::trace_kind::DELIVER,
                    payload: 7,
                    from: 2,
                }],
            },
        };
        let snap = Snapshot::Fleet(Box::new(fleet));
        let bytes = snap.to_bytes();
        assert_eq!(bytes[8], KIND_FLEET);
        assert_eq!(Snapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn node_round_trip_is_exact() {
        let n = NodeSnapshot {
            id: 3,
            kind: node::node_kind::GATEWAY,
            core: Some(sample_core()),
            avr_state: vec![],
            avr_tx_emitted: 0,
            avr_listen: false,
            radio: RadioSnapshot {
                bit_rate_bits: 19_200.0f64.to_bits(),
                mode: node::radio_mode::TX,
                tx_done_at_ps: Some(833_333_333),
                tx_word: Some(0xbeef),
                words_sent: 2,
                words_heard: 1,
            },
            sensors: SensorSnapshot {
                readings: vec![],
                reply_latency_ps: 0,
                queries: 9,
            },
            led: LedSnapshot {
                value: 0,
                history: vec![],
            },
            pending: vec![],
            step_limit: 1,
            run_steps: 0,
            battery: None,
            died_at_ps: None,
            uplink: vec![(40, 0xabcd)],
        };
        let snap = Snapshot::Node(Box::new(n));
        assert_eq!(Snapshot::from_bytes(&snap.to_bytes()).unwrap(), snap);
    }

    #[test]
    fn garbage_never_panics() {
        // Fail-closed sweep over corrupted prefixes of a real snapshot.
        let bytes = Snapshot::Core(Box::new(sample_core())).to_bytes();
        for cut in 0..bytes.len().min(64) {
            let _ = Snapshot::from_bytes(&bytes[..cut]);
        }
        let mut garbage = bytes.clone();
        for i in 0..garbage.len().min(256) {
            garbage[i] = garbage[i].wrapping_add(0x5a);
            let _ = Snapshot::from_bytes(&garbage);
        }
    }
}
