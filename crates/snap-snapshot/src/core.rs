//! Snapshot of one SNAP/LE core.
//!
//! Every field is a plain integer — enum discriminants travel as `u8`
//! (the constants below pin the wire values), floats travel as IEEE-754
//! bit patterns, times travel as picoseconds. The conversion to and
//! from live `snap_core::Processor` state lives in `snap-core` itself
//! (`snap_core::snapshot`); this crate only defines the portable shape
//! and its byte layout, so leaf binaries and the server can read
//! checkpoints without dragging in the simulator.
//!
//! Simulator *caches* (predecode verdicts, fused traces, AOT images)
//! are deliberately absent: they are pure functions of IMEM and the
//! config and rebuild lazily on restore, which keeps the format small
//! and — because every execution tier is bit-identical — is invisible
//! to the resumed simulation.

use crate::wire::{Reader, SnapshotError, Writer};

/// Wire values for `CoreState` (`Running`/`Asleep`/`Halted`).
pub mod state {
    /// Core executing instructions.
    pub const RUNNING: u8 = 0;
    /// Core asleep, waiting on the event queue.
    pub const ASLEEP: u8 = 1;
    /// Core halted.
    pub const HALTED: u8 = 2;
}

/// Wire values for the execution engine.
pub mod engine {
    /// Plain interpreter.
    pub const INTERP: u8 = 0;
    /// Tier-1 superinstruction fusion.
    pub const FUSED: u8 = 1;
    /// Tier-2 AOT translation.
    pub const AOT: u8 = 2;
}

/// Core configuration, captured so a restore rebuilds the identical
/// energy/timing models before replaying a single instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConfigSnap {
    /// Supply voltage, IEEE-754 bits.
    pub vdd_bits: u64,
    /// Delay factor relative to nominal, IEEE-754 bits.
    pub delay_factor_bits: u64,
    /// `true` for the flat-bus ablation model, `false` hierarchical.
    pub bus_flat: bool,
    /// Hardware event-queue capacity.
    pub event_queue_capacity: u64,
    /// Timer coprocessor tick, picoseconds.
    pub timer_tick_ps: u64,
    /// LFSR seed from the config (the *live* LFSR state is in
    /// [`CoreSnapshot::lfsr`]).
    pub lfsr_seed: u16,
    /// Whether the predecode cache is enabled.
    pub predecode: bool,
    /// Execution engine (see [`engine`]).
    pub engine: u8,
}

impl CoreConfigSnap {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.u64(self.vdd_bits);
        w.u64(self.delay_factor_bits);
        w.bool(self.bus_flat);
        w.u64(self.event_queue_capacity);
        w.u64(self.timer_tick_ps);
        w.u16(self.lfsr_seed);
        w.bool(self.predecode);
        w.u8(self.engine);
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<CoreConfigSnap, SnapshotError> {
        let snap = CoreConfigSnap {
            vdd_bits: r.u64()?,
            delay_factor_bits: r.u64()?,
            bus_flat: r.bool()?,
            event_queue_capacity: r.u64()?,
            timer_tick_ps: r.u64()?,
            lfsr_seed: r.u16()?,
            predecode: r.bool()?,
            engine: r.u8()?,
        };
        if snap.engine > engine::AOT {
            return Err(SnapshotError::Corrupt("engine discriminant"));
        }
        if snap.event_queue_capacity == 0 {
            return Err(SnapshotError::Corrupt("event queue capacity"));
        }
        Ok(snap)
    }
}

/// The hardware event queue: tokens as handler-table indices, in FIFO
/// order, plus the optional arrival stamps and lifetime counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueSnapshot {
    /// Queued tokens, front first, as handler-table indices (0–7).
    pub fifo: Vec<u8>,
    /// Arrival stamps (ps) parallel to `fifo`, when stamping is on.
    pub stamps: Option<Vec<u64>>,
    /// Tokens dropped on overflow, lifetime.
    pub dropped: u64,
    /// Tokens accepted, lifetime.
    pub inserted: u64,
}

impl QueueSnapshot {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.len(self.fifo.len());
        for &t in &self.fifo {
            w.u8(t);
        }
        match &self.stamps {
            Some(s) => {
                w.bool(true);
                w.seq_u64(s);
            }
            None => w.bool(false),
        }
        w.u64(self.dropped);
        w.u64(self.inserted);
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<QueueSnapshot, SnapshotError> {
        let n = r.len()?;
        let mut fifo = Vec::with_capacity(n);
        for _ in 0..n {
            let t = r.u8()?;
            if t >= 8 {
                return Err(SnapshotError::Corrupt("event token index"));
            }
            fifo.push(t);
        }
        let stamps = if r.bool()? { Some(r.seq_u64()?) } else { None };
        if let Some(s) = &stamps {
            if s.len() != fifo.len() {
                return Err(SnapshotError::Corrupt("stamp count"));
            }
        }
        Ok(QueueSnapshot {
            fifo,
            stamps,
            dropped: r.u64()?,
            inserted: r.u64()?,
        })
    }
}

/// One timer register of the timer coprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerRegSnap {
    /// Staged high byte from `schedhi`.
    pub staged_hi: u8,
    /// Absolute expiry time (ps) when armed.
    pub expiry_ps: Option<u64>,
}

/// The timer coprocessor: three registers plus lifetime counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerSnapshot {
    /// The three timer registers.
    pub timers: Vec<TimerRegSnap>,
    /// Timers armed, lifetime.
    pub scheduled: u64,
    /// Timers expired, lifetime.
    pub expired: u64,
    /// Timers cancelled, lifetime.
    pub cancelled: u64,
}

impl TimerSnapshot {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.len(self.timers.len());
        for t in &self.timers {
            w.u8(t.staged_hi);
            w.opt_u64(t.expiry_ps);
        }
        w.u64(self.scheduled);
        w.u64(self.expired);
        w.u64(self.cancelled);
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<TimerSnapshot, SnapshotError> {
        let n = r.len()?;
        let mut timers = Vec::with_capacity(n);
        for _ in 0..n {
            timers.push(TimerRegSnap {
                staged_hi: r.u8()?,
                expiry_ps: r.opt_u64()?,
            });
        }
        Ok(TimerSnapshot {
            timers,
            scheduled: r.u64()?,
            expired: r.u64()?,
            cancelled: r.u64()?,
        })
    }
}

/// The message coprocessor: the `r15` FIFO and radio/sensor port state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgSnapshot {
    /// Words waiting to be read through `r15`, front first.
    pub outgoing: Vec<u16>,
    /// A `RadioTx` command was written and the payload word is pending.
    pub awaiting_tx_payload: bool,
    /// Radio receiver enabled.
    pub rx_enabled: bool,
    /// Last `PortWrite` value.
    pub port: u16,
    /// Words transmitted, lifetime.
    pub words_tx: u64,
    /// Words received, lifetime.
    pub words_rx: u64,
}

impl MsgSnapshot {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.seq_u16(&self.outgoing);
        w.bool(self.awaiting_tx_payload);
        w.bool(self.rx_enabled);
        w.u16(self.port);
        w.u64(self.words_tx);
        w.u64(self.words_rx);
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<MsgSnapshot, SnapshotError> {
        Ok(MsgSnapshot {
            outgoing: r.seq_u16()?,
            awaiting_tx_payload: r.bool()?,
            rx_enabled: r.bool()?,
            port: r.u16()?,
            words_tx: r.u64()?,
            words_rx: r.u64()?,
        })
    }
}

/// Per-instruction-class counters of the energy accountant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassStatSnap {
    /// Instructions retired in this class.
    pub count: u64,
    /// Energy attributed to this class, IEEE-754 bits of picojoules.
    pub energy_bits: u64,
}

/// The energy accountant's accumulators. Every energy value is the
/// IEEE-754 bit pattern of the picojoule `f64` — the format's
/// bit-identity guarantee lives or dies here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcctSnapshot {
    /// Per-component energy (Component::ALL order), pJ bits.
    pub components: Vec<u64>,
    /// Per-instruction-class counters (InstructionClass::ALL order).
    pub per_class: Vec<ClassStatSnap>,
    /// Total energy, pJ bits.
    pub total_energy_bits: u64,
    /// Busy time, ps.
    pub busy_ps: u64,
    /// Instructions retired, lifetime.
    pub instructions: u64,
    /// Cycles, lifetime.
    pub cycles: u64,
}

impl AcctSnapshot {
    pub(crate) fn encode(&self, w: &mut Writer) {
        w.seq_u64(&self.components);
        w.len(self.per_class.len());
        for c in &self.per_class {
            w.u64(c.count);
            w.u64(c.energy_bits);
        }
        w.u64(self.total_energy_bits);
        w.u64(self.busy_ps);
        w.u64(self.instructions);
        w.u64(self.cycles);
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<AcctSnapshot, SnapshotError> {
        let components = r.seq_u64()?;
        let n = r.len()?;
        let mut per_class = Vec::with_capacity(n);
        for _ in 0..n {
            per_class.push(ClassStatSnap {
                count: r.u64()?,
                energy_bits: r.u64()?,
            });
        }
        Ok(AcctSnapshot {
            components,
            per_class,
            total_energy_bits: r.u64()?,
            busy_ps: r.u64()?,
            instructions: r.u64()?,
            cycles: r.u64()?,
        })
    }
}

/// One bucket of the per-handler profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandlerStatSnap {
    /// Handler dispatches.
    pub dispatches: u64,
    /// Instructions retired under this handler.
    pub instructions: u64,
    /// Energy attributed, pJ bits.
    pub energy_bits: u64,
    /// Busy time attributed, ps.
    pub busy_ps: u64,
}

impl HandlerStatSnap {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.dispatches);
        w.u64(self.instructions);
        w.u64(self.energy_bits);
        w.u64(self.busy_ps);
    }

    fn decode(r: &mut Reader) -> Result<HandlerStatSnap, SnapshotError> {
        Ok(HandlerStatSnap {
            dispatches: r.u64()?,
            instructions: r.u64()?,
            energy_bits: r.u64()?,
            busy_ps: r.u64()?,
        })
    }
}

/// The per-handler profile: boot bucket + one bucket per event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// The boot-code bucket.
    pub boot: HandlerStatSnap,
    /// Per-event buckets in handler-table order.
    pub per_event: Vec<HandlerStatSnap>,
}

impl ProfileSnapshot {
    pub(crate) fn encode(&self, w: &mut Writer) {
        self.boot.encode(w);
        w.len(self.per_event.len());
        for s in &self.per_event {
            s.encode(w);
        }
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<ProfileSnapshot, SnapshotError> {
        let boot = HandlerStatSnap::decode(r)?;
        let n = r.len()?;
        let mut per_event = Vec::with_capacity(n);
        for _ in 0..n {
            per_event.push(HandlerStatSnap::decode(r)?);
        }
        Ok(ProfileSnapshot { boot, per_event })
    }
}

/// Full architectural + accounting state of one core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreSnapshot {
    /// Configuration (models are derived from this on restore).
    pub config: CoreConfigSnap,
    /// `r0`–`r14`.
    pub regs: Vec<u16>,
    /// Carry flag.
    pub carry: bool,
    /// The 2048-word instruction memory.
    pub imem: Vec<u16>,
    /// The 2048-word data memory.
    pub dmem: Vec<u16>,
    /// Program counter.
    pub pc: u16,
    /// Core state (see [`state`]).
    pub state: u8,
    /// Core-local clock, ps.
    pub now_ps: u64,
    /// Event-handler table, one address per event.
    pub handler_table: Vec<u16>,
    /// Live LFSR state (`rand`/`seed`).
    pub lfsr: u16,
    /// Event whose handler is currently executing, as a table index.
    pub current_event: Option<u8>,
    /// Hardware event queue.
    pub queue: QueueSnapshot,
    /// Timer coprocessor.
    pub timers: TimerSnapshot,
    /// Message coprocessor.
    pub msg: MsgSnapshot,
    /// Energy accountant accumulators.
    pub acct: AcctSnapshot,
    /// Per-handler profile.
    pub profile: ProfileSnapshot,
    /// Accumulated sleep time, ps.
    pub sleep_ps: u64,
    /// Accumulated wake-up latency, ps.
    pub wakeup_ps: u64,
    /// Wake-ups, lifetime.
    pub wakeups: u64,
    /// Handlers dispatched, lifetime.
    pub handlers_dispatched: u64,
}

impl CoreSnapshot {
    pub(crate) fn encode(&self, w: &mut Writer) {
        self.config.encode(w);
        w.seq_u16(&self.regs);
        w.bool(self.carry);
        w.seq_u16(&self.imem);
        w.seq_u16(&self.dmem);
        w.u16(self.pc);
        w.u8(self.state);
        w.u64(self.now_ps);
        w.seq_u16(&self.handler_table);
        w.u16(self.lfsr);
        w.opt_u8(self.current_event);
        self.queue.encode(w);
        self.timers.encode(w);
        self.msg.encode(w);
        self.acct.encode(w);
        self.profile.encode(w);
        w.u64(self.sleep_ps);
        w.u64(self.wakeup_ps);
        w.u64(self.wakeups);
        w.u64(self.handlers_dispatched);
    }

    pub(crate) fn decode(r: &mut Reader) -> Result<CoreSnapshot, SnapshotError> {
        let config = CoreConfigSnap::decode(r)?;
        let snap = CoreSnapshot {
            config,
            regs: r.seq_u16()?,
            carry: r.bool()?,
            imem: r.seq_u16()?,
            dmem: r.seq_u16()?,
            pc: r.u16()?,
            state: r.u8()?,
            now_ps: r.u64()?,
            handler_table: r.seq_u16()?,
            lfsr: r.u16()?,
            current_event: r.opt_u8()?,
            queue: QueueSnapshot::decode(r)?,
            timers: TimerSnapshot::decode(r)?,
            msg: MsgSnapshot::decode(r)?,
            acct: AcctSnapshot::decode(r)?,
            profile: ProfileSnapshot::decode(r)?,
            sleep_ps: r.u64()?,
            wakeup_ps: r.u64()?,
            wakeups: r.u64()?,
            handlers_dispatched: r.u64()?,
        };
        if snap.state > state::HALTED {
            return Err(SnapshotError::Corrupt("core state discriminant"));
        }
        if let Some(ev) = snap.current_event {
            if ev >= 8 {
                return Err(SnapshotError::Corrupt("current event index"));
            }
        }
        Ok(snap)
    }
}
