//! A small AVR assembler.
//!
//! Reuses the lexer and constant-expression engine from `snap-asm`.
//! Two passes: sizes are fixed per mnemonic (`lds`/`sts` are two flash
//! words, everything else one), so pass 1 assigns label addresses and
//! pass 2 resolves operands. Supported directives: `.org`, `.equ`.

use crate::isa::{AvrBranch, AvrInstr, Ptr};
use snap_asm::expr::{Cursor, Expr};
use snap_asm::lexer::{tokenize, Token};
use snap_asm::AsmError;
use std::collections::BTreeMap;

/// An assembled AVR program: a sparse flash image plus symbols.
#[derive(Debug, Clone)]
pub struct AvrProgram {
    /// Flash image indexed by word address; two-word instructions
    /// occupy their first slot (the second is `None`).
    pub flash: Vec<Option<AvrInstr>>,
    /// Label and `.equ` values.
    pub symbols: BTreeMap<String, i64>,
}

impl AvrProgram {
    /// Look up a symbol as a flash/SRAM address.
    pub fn symbol(&self, name: &str) -> Option<u16> {
        self.symbols.get(name).map(|&v| v as u16)
    }

    /// Number of flash words occupied (code size; ×2 for bytes).
    pub fn words_used(&self) -> usize {
        self.flash
            .iter()
            .filter(|s| s.is_some())
            .map(|s| s.unwrap().words() as usize)
            .sum()
    }

    /// Code size in bytes.
    pub fn code_bytes(&self) -> usize {
        self.words_used() * 2
    }
}

enum Operand {
    Reg(u8),
    Expr(Expr),
    Pointer { ptr: Ptr, post_inc: bool },
}

struct Stmt {
    line: usize,
    addr: u16,
    mnemonic: String,
    operands: Vec<Operand>,
}

const MODULE: &str = "<avr>";

/// Assemble AVR source.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered.
pub fn assemble_avr(source: &str) -> Result<AvrProgram, AsmError> {
    let mut symbols: BTreeMap<String, i64> = BTreeMap::new();
    let mut stmts: Vec<Stmt> = Vec::new();
    let mut lc: u16 = 0;

    // ---- pass 1 ----
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let tokens = tokenize(MODULE, line, raw)?;
        let mut rest: &[Token] = &tokens;
        while let [Token::Ident(name), Token::Colon, tail @ ..] = rest {
            if name.starts_with('.') {
                break;
            }
            if parse_reg(name).is_some() {
                return Err(AsmError::new(
                    MODULE,
                    line,
                    format!("`{name}` is a register"),
                ));
            }
            if symbols.insert(name.clone(), lc as i64).is_some() {
                return Err(AsmError::new(
                    MODULE,
                    line,
                    format!("duplicate symbol `{name}`"),
                ));
            }
            rest = tail;
        }
        if rest.is_empty() {
            continue;
        }
        match rest {
            [Token::Ident(d), tail @ ..] if d.starts_with('.') => match d.as_str() {
                ".org" => {
                    let v = eval_now(tail, &symbols, line)?;
                    lc = v as u16;
                }
                ".equ" => match tail {
                    [Token::Ident(name), Token::Comma, expr @ ..] if !expr.is_empty() => {
                        let v = eval_now(expr, &symbols, line)?;
                        if symbols.insert(name.clone(), v).is_some() {
                            return Err(AsmError::new(
                                MODULE,
                                line,
                                format!("duplicate symbol `{name}`"),
                            ));
                        }
                    }
                    _ => return Err(AsmError::new(MODULE, line, ".equ expects `name, expr`")),
                },
                other => {
                    return Err(AsmError::new(
                        MODULE,
                        line,
                        format!("unknown directive `{other}`"),
                    ))
                }
            },
            [Token::Ident(m), tail @ ..] => {
                let size = mnemonic_words(m).ok_or_else(|| {
                    AsmError::new(MODULE, line, format!("unknown mnemonic `{m}`"))
                })?;
                let operands = parse_operands(tail, line)?;
                stmts.push(Stmt {
                    line,
                    addr: lc,
                    mnemonic: m.clone(),
                    operands,
                });
                lc = lc.wrapping_add(size);
            }
            _ => {
                return Err(AsmError::new(
                    MODULE,
                    line,
                    "expected label, directive or instruction",
                ))
            }
        }
    }

    // ---- pass 2 ----
    let top = stmts.iter().map(|s| s.addr as usize + 2).max().unwrap_or(0);
    let mut flash: Vec<Option<AvrInstr>> = vec![None; top];
    for stmt in &stmts {
        let ins = build(stmt, &symbols)?;
        flash[stmt.addr as usize] = Some(ins);
    }
    Ok(AvrProgram { flash, symbols })
}

fn eval_now(
    tokens: &[Token],
    symbols: &BTreeMap<String, i64>,
    line: usize,
) -> Result<i64, AsmError> {
    let mut c = Cursor::new(tokens, MODULE, line);
    let e = c.parse_expr()?;
    if !c.at_end() {
        return Err(c.error("trailing tokens"));
    }
    e.eval(symbols, MODULE, line)
}

fn parse_reg(name: &str) -> Option<u8> {
    let rest = name.strip_prefix('r').or_else(|| name.strip_prefix('R'))?;
    let n: u8 = rest.parse().ok()?;
    (n < 32).then_some(n)
}

fn parse_operands(tokens: &[Token], line: usize) -> Result<Vec<Operand>, AsmError> {
    let mut out = Vec::new();
    if tokens.is_empty() {
        return Ok(out);
    }
    let mut start = 0;
    let mut chunks = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if matches!(t, Token::Comma) {
            chunks.push(&tokens[start..i]);
            start = i + 1;
        }
    }
    chunks.push(&tokens[start..]);
    for chunk in chunks {
        out.push(parse_operand(chunk, line)?);
    }
    Ok(out)
}

fn parse_operand(tokens: &[Token], line: usize) -> Result<Operand, AsmError> {
    match tokens {
        [Token::Ident(name)] => {
            if let Some(r) = parse_reg(name) {
                return Ok(Operand::Reg(r));
            }
            if let Some(ptr) = parse_ptr(name) {
                return Ok(Operand::Pointer {
                    ptr,
                    post_inc: false,
                });
            }
            Ok(Operand::Expr(Expr::Sym(name.clone())))
        }
        [Token::Ident(name), Token::Plus] if parse_ptr(name).is_some() => Ok(Operand::Pointer {
            ptr: parse_ptr(name).unwrap(),
            post_inc: true,
        }),
        _ => {
            let mut c = Cursor::new(tokens, MODULE, line);
            let e = c.parse_expr()?;
            if !c.at_end() {
                return Err(c.error("trailing tokens in operand"));
            }
            Ok(Operand::Expr(e))
        }
    }
}

fn parse_ptr(name: &str) -> Option<Ptr> {
    match name {
        "X" | "x" => Some(Ptr::X),
        "Y" | "y" => Some(Ptr::Y),
        "Z" | "z" => Some(Ptr::Z),
        _ => None,
    }
}

fn mnemonic_words(m: &str) -> Option<u16> {
    Some(match m {
        "lds" | "sts" => 2,
        "ldi" | "mov" | "add" | "adc" | "sub" | "sbc" | "and" | "or" | "eor" | "subi" | "sbci"
        | "andi" | "ori" | "inc" | "dec" | "com" | "neg" | "lsr" | "ror" | "asr" | "swap"
        | "cp" | "cpc" | "cpi" | "breq" | "brne" | "brcs" | "brcc" | "brlt" | "brge" | "rjmp"
        | "ijmp" | "rcall" | "icall" | "ret" | "reti" | "ld" | "st" | "push" | "pop" | "in"
        | "out" | "adiw" | "sbiw" | "sei" | "cli" | "sleep" | "nop" | "break" => 1,
        _ => return None,
    })
}

fn build(stmt: &Stmt, symbols: &BTreeMap<String, i64>) -> Result<AvrInstr, AsmError> {
    let line = stmt.line;
    let m = stmt.mnemonic.as_str();
    let ops = &stmt.operands;
    let bad = || AsmError::new(MODULE, line, format!("invalid operands for `{m}`"));

    let imm8 = |e: &Expr| -> Result<u8, AsmError> {
        let v = e.eval(symbols, MODULE, line)?;
        if !(-128..=255).contains(&v) {
            return Err(AsmError::new(
                MODULE,
                line,
                format!("{v} does not fit in 8 bits"),
            ));
        }
        Ok(v as u8)
    };
    let imm16 = |e: &Expr| -> Result<u16, AsmError> { e.eval_word(symbols, MODULE, line) };

    let rr2 = |f: fn(u8, u8) -> AvrInstr| match ops.as_slice() {
        [Operand::Reg(a), Operand::Reg(b)] => Ok(f(*a, *b)),
        _ => Err(bad()),
    };
    let ri = |hi_only: bool, f: &dyn Fn(u8, u8) -> AvrInstr| match ops.as_slice() {
        [Operand::Reg(a), Operand::Expr(e)] => {
            if hi_only && *a < 16 {
                return Err(AsmError::new(
                    MODULE,
                    line,
                    format!("`{m}` requires r16-r31, got r{a}"),
                ));
            }
            Ok(f(*a, imm8(e)?))
        }
        _ => Err(bad()),
    };
    let r1 = |f: fn(u8) -> AvrInstr| match ops.as_slice() {
        [Operand::Reg(a)] => Ok(f(*a)),
        _ => Err(bad()),
    };
    let br = |cond: AvrBranch| match ops.as_slice() {
        [Operand::Expr(e)] => Ok(AvrInstr::Br {
            cond,
            target: imm16(e)?,
        }),
        _ => Err(bad()),
    };

    match m {
        "ldi" => ri(true, &|rd, k| AvrInstr::Ldi { rd, k }),
        "mov" => rr2(|rd, rr| AvrInstr::Mov { rd, rr }),
        "add" => rr2(|rd, rr| AvrInstr::Add { rd, rr }),
        "adc" => rr2(|rd, rr| AvrInstr::Adc { rd, rr }),
        "sub" => rr2(|rd, rr| AvrInstr::Sub { rd, rr }),
        "sbc" => rr2(|rd, rr| AvrInstr::Sbc { rd, rr }),
        "and" => rr2(|rd, rr| AvrInstr::And { rd, rr }),
        "or" => rr2(|rd, rr| AvrInstr::Or { rd, rr }),
        "eor" => rr2(|rd, rr| AvrInstr::Eor { rd, rr }),
        "subi" => ri(true, &|rd, k| AvrInstr::Subi { rd, k }),
        "sbci" => ri(true, &|rd, k| AvrInstr::Sbci { rd, k }),
        "andi" => ri(true, &|rd, k| AvrInstr::Andi { rd, k }),
        "ori" => ri(true, &|rd, k| AvrInstr::Ori { rd, k }),
        "cpi" => ri(true, &|rd, k| AvrInstr::Cpi { rd, k }),
        "inc" => r1(|rd| AvrInstr::Inc { rd }),
        "dec" => r1(|rd| AvrInstr::Dec { rd }),
        "com" => r1(|rd| AvrInstr::Com { rd }),
        "neg" => r1(|rd| AvrInstr::Neg { rd }),
        "lsr" => r1(|rd| AvrInstr::Lsr { rd }),
        "ror" => r1(|rd| AvrInstr::Ror { rd }),
        "asr" => r1(|rd| AvrInstr::Asr { rd }),
        "swap" => r1(|rd| AvrInstr::Swap { rd }),
        "push" => r1(|rr| AvrInstr::Push { rr }),
        "pop" => r1(|rd| AvrInstr::Pop { rd }),
        "cp" => rr2(|rd, rr| AvrInstr::Cp { rd, rr }),
        "cpc" => rr2(|rd, rr| AvrInstr::Cpc { rd, rr }),
        "breq" => br(AvrBranch::Eq),
        "brne" => br(AvrBranch::Ne),
        "brcs" => br(AvrBranch::Cs),
        "brcc" => br(AvrBranch::Cc),
        "brlt" => br(AvrBranch::Lt),
        "brge" => br(AvrBranch::Ge),
        "rjmp" => match ops.as_slice() {
            [Operand::Expr(e)] => Ok(AvrInstr::Rjmp { target: imm16(e)? }),
            _ => Err(bad()),
        },
        "rcall" => match ops.as_slice() {
            [Operand::Expr(e)] => Ok(AvrInstr::Rcall { target: imm16(e)? }),
            _ => Err(bad()),
        },
        "ijmp" => Ok(AvrInstr::Ijmp),
        "icall" => Ok(AvrInstr::Icall),
        "ret" => Ok(AvrInstr::Ret),
        "reti" => Ok(AvrInstr::Reti),
        "lds" => match ops.as_slice() {
            [Operand::Reg(rd), Operand::Expr(e)] => Ok(AvrInstr::Lds {
                rd: *rd,
                addr: imm16(e)?,
            }),
            _ => Err(bad()),
        },
        "sts" => match ops.as_slice() {
            [Operand::Expr(e), Operand::Reg(rr)] => Ok(AvrInstr::Sts {
                addr: imm16(e)?,
                rr: *rr,
            }),
            _ => Err(bad()),
        },
        "ld" => match ops.as_slice() {
            [Operand::Reg(rd), Operand::Pointer { ptr, post_inc }] => Ok(AvrInstr::Ld {
                rd: *rd,
                ptr: *ptr,
                post_inc: *post_inc,
            }),
            _ => Err(bad()),
        },
        "st" => match ops.as_slice() {
            [Operand::Pointer { ptr, post_inc }, Operand::Reg(rr)] => Ok(AvrInstr::St {
                ptr: *ptr,
                rr: *rr,
                post_inc: *post_inc,
            }),
            _ => Err(bad()),
        },
        "in" => match ops.as_slice() {
            [Operand::Reg(rd), Operand::Expr(e)] => Ok(AvrInstr::In {
                rd: *rd,
                io: imm8(e)?,
            }),
            _ => Err(bad()),
        },
        "out" => match ops.as_slice() {
            [Operand::Expr(e), Operand::Reg(rr)] => Ok(AvrInstr::Out {
                io: imm8(e)?,
                rr: *rr,
            }),
            _ => Err(bad()),
        },
        "adiw" | "sbiw" => match ops.as_slice() {
            [Operand::Reg(pair), Operand::Expr(e)] => {
                if ![24, 26, 28, 30].contains(pair) {
                    return Err(AsmError::new(
                        MODULE,
                        line,
                        "adiw/sbiw need r24/r26/r28/r30",
                    ));
                }
                let k = imm8(e)?;
                Ok(if m == "adiw" {
                    AvrInstr::Adiw { pair: *pair, k }
                } else {
                    AvrInstr::Sbiw { pair: *pair, k }
                })
            }
            _ => Err(bad()),
        },
        "sei" => Ok(AvrInstr::Sei),
        "cli" => Ok(AvrInstr::Cli),
        "sleep" => Ok(AvrInstr::Sleep),
        "nop" => Ok(AvrInstr::Nop),
        "break" => Ok(AvrInstr::Break),
        other => Err(AsmError::new(
            MODULE,
            line,
            format!("unknown mnemonic `{other}`"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_sizes() {
        let p = assemble_avr("start:\nldi r16, 1\nsts 0x100, r16\nend:\nbreak").unwrap();
        assert_eq!(p.symbol("start"), Some(0));
        // ldi = 1 word, sts = 2 words.
        assert_eq!(p.symbol("end"), Some(3));
        assert_eq!(p.code_bytes(), 8);
    }

    #[test]
    fn equ_and_expressions() {
        let p = assemble_avr(".equ PORTB, 0x05\nout PORTB, r16\nldi r17, 1<<3\nbreak").unwrap();
        assert_eq!(p.flash[0], Some(AvrInstr::Out { io: 5, rr: 16 }));
        assert_eq!(p.flash[1], Some(AvrInstr::Ldi { rd: 17, k: 8 }));
    }

    #[test]
    fn pointer_operands() {
        let p = assemble_avr("ld r0, X+\nst Y, r1\nld r2, Z+").unwrap();
        assert_eq!(
            p.flash[0],
            Some(AvrInstr::Ld {
                rd: 0,
                ptr: Ptr::X,
                post_inc: true
            })
        );
        assert_eq!(
            p.flash[1],
            Some(AvrInstr::St {
                ptr: Ptr::Y,
                rr: 1,
                post_inc: false
            })
        );
        assert_eq!(
            p.flash[2],
            Some(AvrInstr::Ld {
                rd: 2,
                ptr: Ptr::Z,
                post_inc: true
            })
        );
    }

    #[test]
    fn branch_targets_resolve() {
        let p = assemble_avr("loop:\ndec r16\nbrne loop\nbreak").unwrap();
        assert_eq!(
            p.flash[1],
            Some(AvrInstr::Br {
                cond: AvrBranch::Ne,
                target: 0
            })
        );
    }

    #[test]
    fn ldi_low_register_rejected() {
        let err = assemble_avr("ldi r2, 5").unwrap_err();
        assert!(err.to_string().contains("r16-r31"));
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        assert!(assemble_avr("frob r1").is_err());
    }

    #[test]
    fn adiw_pair_check() {
        assert!(assemble_avr("adiw r26, 1").is_ok());
        assert!(assemble_avr("adiw r20, 1").is_err());
    }

    #[test]
    fn negative_immediates_allowed_as_bytes() {
        let p = assemble_avr("ldi r16, -1").unwrap();
        assert_eq!(p.flash[0], Some(AvrInstr::Ldi { rd: 16, k: 0xff }));
    }
}
