//! The TinyOS-like runtime, in AVR assembly.
//!
//! "TinyOS is not an operating system in the traditional sense; rather,
//! it provides a set of software components that abstracts a hardware
//! interrupt as an event, and implements a simple FIFO task scheduler"
//! (paper §3). This module rebuilds that software layer the way the
//! paper measured it with AVR Studio:
//!
//! * a **FIFO task queue** of function pointers in SRAM with an
//!   interrupt-safe `post` (`tos_post` / `tos_post_isr`);
//! * a **scheduler main loop** that pops tasks, `icall`s them, and
//!   executes `sleep` when the queue is empty;
//! * **virtualized timers**: the hardware compare-match ISR saves the
//!   caller-saved registers (as avr-gcc ISRs must), scans eight
//!   software timer slots, decrements the active ones and, on expiry,
//!   reloads the period, marks the slot fired and posts the generic
//!   timer-dispatch task — which later (in task context) calls each
//!   fired slot's `fired` handler;
//! * the three §4.6 applications: **Blink** (fired handler posts the
//!   LED-toggle task), **Sense** (fired handler starts an ADC
//!   conversion; the ADC ISR buffers the sample and posts the averaging
//!   task) and the **radio stack** (per-byte CRC-16 + SEC-DED encode,
//!   SPI byte interface driven by the SPI-complete ISR).
//!
//! Every layer costs cycles on this platform precisely because it is
//! software; on SNAP/LE the equivalents (event queue, timer registers,
//! word-wide radio FIFO) are hardware.

use crate::asm::{assemble_avr, AvrProgram};
use crate::core::{AvrCore, Irq};
use snap_asm::AsmError;

/// SRAM layout and I/O equates shared by all TinyOS-like programs.
pub const TOS_DEFS: &str = "
.equ PORTB,   0x05
.equ TCCR,    0x10
.equ OCRL,    0x11
.equ OCRH,    0x12
.equ ADCSRA,  0x15
.equ ADCD,    0x16
.equ SPDR,    0x18

; task queue: 8 function pointers at 0x0200, head/tail bytes
.equ TQ_PAGE, 0x02
.equ TQ_HEAD, 0x0210
.equ TQ_TAIL, 0x0211
; virtual timers: 8 slots x 8 bytes at 0x0240
; slot: [0]=active [1]=rem_lo [2]=rem_hi [3]=fn_lo [4]=fn_hi
;       [5]=per_lo [6]=per_hi [7]=fired
.equ VT_LO,   0x40
.equ VT_HI,   0x02
";

/// The scheduler, task queue and virtual-timer ISR.
pub const TOS_RUNTIME: &str = "
; ---- post a task (Z = function pointer) ----
tos_post:               ; from task context: mask interrupts around it
    cli
    rcall tos_post_isr
    sei
    ret
tos_post_isr:           ; from ISR context (interrupts already off)
    lds  r18, TQ_TAIL
    mov  r26, r18
    add  r26, r18       ; tail * 2
    ldi  r27, TQ_PAGE
    st   X+, r30
    st   X, r31
    inc  r18
    andi r18, 7
    sts  TQ_TAIL, r18
    ret

; ---- scheduler main loop ----
tos_main:
    cli
    lds  r18, TQ_HEAD
    lds  r19, TQ_TAIL
    cp   r18, r19
    brne tos_run
    sei
    sleep
    rjmp tos_main
tos_run:
    mov  r26, r18
    add  r26, r18
    ldi  r27, TQ_PAGE
    ld   r30, X+
    ld   r31, X
    inc  r18
    andi r18, 7
    sts  TQ_HEAD, r18
    sei
    icall
    rjmp tos_main

; ---- hardware timer ISR: scan the virtual timers ----
tos_timer_isr:
    push r18
    push r19
    push r20
    push r21
    push r22
    push r24
    push r25
    push r26
    push r27
    push r30
    push r31
    ldi  r21, 0
    ldi  r26, VT_LO
    ldi  r27, VT_HI
    ldi  r20, 8
tos_vt_loop:
    ld   r18, X+        ; active?            (X at 1)
    cpi  r18, 1
    brne tos_vt_skip
    ld   r18, X+        ; rem_lo             (X at 2)
    ld   r19, X+        ; rem_hi             (X at 3)
    subi r18, 1
    sbci r19, 0
    cp   r18, r21
    cpc  r19, r21
    breq tos_vt_fire
    sbiw r26, 2         ; back to rem_lo     (X at 1)
    st   X+, r18
    st   X+, r19        ;                    (X at 3)
    adiw r26, 5         ; next slot          (X at 8)
    rjmp tos_vt_next
tos_vt_fire:
    adiw r26, 2         ; to per_lo          (X at 5)
    ld   r18, X+        ; per_lo             (X at 6)
    ld   r19, X+        ; per_hi             (X at 7)
    ldi  r30, 1
    st   X+, r30        ; fired = 1          (X at 8)
    sbiw r26, 7         ; to rem_lo          (X at 1)
    st   X+, r18        ; rem = period
    st   X+, r19        ;                    (X at 3)
    adiw r26, 5         ; next slot          (X at 8)
    push r26
    push r27
    ldi  r30, tos_timer_task & 0xff
    ldi  r31, tos_timer_task >> 8
    rcall tos_post_isr
    pop  r27
    pop  r26
    rjmp tos_vt_next
tos_vt_skip:
    adiw r26, 7         ; next slot          (X at 8)
tos_vt_next:
    dec  r20
    brne tos_vt_loop
    pop  r31
    pop  r30
    pop  r27
    pop  r26
    pop  r25
    pop  r24
    pop  r22
    pop  r21
    pop  r20
    pop  r19
    pop  r18
    reti

; ---- timer dispatch task: call every fired slot's handler ----
tos_timer_task:
    ldi  r26, VT_LO
    ldi  r27, VT_HI
    ldi  r20, 8
tos_tt_loop:
    adiw r26, 7         ; to fired flag      (X at 7)
    ld   r18, X
    cpi  r18, 1
    brne tos_tt_next
    ldi  r18, 0
    st   X, r18         ; clear fired
    sbiw r26, 4         ; to fn_lo           (X at 3)
    ld   r30, X+
    ld   r31, X+        ;                    (X at 5)
    push r26
    push r27
    push r20
    icall               ; the app's fired handler
    pop  r20
    pop  r27
    pop  r26
    adiw r26, 2         ;                    (X at 7)
tos_tt_next:
    adiw r26, 1         ; next slot          (X at 8)
    dec  r20
    brne tos_tt_loop
    ret
";

/// Boot code: clear the queue, configure virtual timer 0 with period
/// `vt_period` ticks and handler `fired_label`, start the hardware
/// timer with compare value `ocr` (period = `ocr` × 64 cycles), enable
/// interrupts and enter the scheduler.
pub fn tos_boot(fired_label: &str, vt_period: u16, ocr: u16) -> String {
    format!(
        "
boot:
    ldi  r18, 0
    sts  TQ_HEAD, r18
    sts  TQ_TAIL, r18
    ldi  r26, VT_LO
    ldi  r27, VT_HI
    ldi  r18, 1
    st   X+, r18        ; active
    ldi  r18, {per_lo}
    st   X+, r18        ; rem_lo
    ldi  r18, {per_hi}
    st   X+, r18        ; rem_hi
    ldi  r18, {fired} & 0xff
    st   X+, r18        ; fn_lo
    ldi  r18, {fired} >> 8
    st   X+, r18        ; fn_hi
    ldi  r18, {per_lo}
    st   X+, r18        ; per_lo
    ldi  r18, {per_hi}
    st   X+, r18        ; per_hi
    ldi  r18, 0
    st   X+, r18        ; fired = 0
    ldi  r18, {ocr_lo}
    out  OCRL, r18
    ldi  r18, {ocr_hi}
    out  OCRH, r18
    ldi  r18, 1
    out  TCCR, r18
    sei
    rjmp tos_main
",
        fired = fired_label,
        per_lo = vt_period & 0xff,
        per_hi = vt_period >> 8,
        ocr_lo = ocr & 0xff,
        ocr_hi = ocr >> 8,
    )
}

/// The Blink application: the fired handler posts the toggle task.
pub const BLINK_APP: &str = "
.equ BLINK_STATE, 0x0300
blink_fired:
    ldi  r30, blink_task & 0xff
    ldi  r31, blink_task >> 8
    rcall tos_post
    ret
blink_task:
    lds  r18, BLINK_STATE
    ldi  r19, 1
    eor  r18, r19
    sts  BLINK_STATE, r18
    out  PORTB, r18
    ret
";

/// The Sense application: sample the ADC, keep the last 16 readings,
/// display the averaged high bits.
pub const SENSE_APP: &str = "
.equ SENSE_BUF,  0x0310
.equ SENSE_POS,  0x0320
sense_fired:
    ldi  r18, 1
    out  ADCSRA, r18    ; start a conversion; completion is an interrupt
    ret
sense_adc_isr:
    push r18
    push r19
    push r26
    push r27
    push r30
    push r31
    in   r18, ADCD
    lds  r19, SENSE_POS
    mov  r26, r19
    ori  r26, 0x10      ; SENSE_BUF | pos (buffer is 16-aligned)
    ldi  r27, 0x03
    st   X, r18
    inc  r19
    andi r19, 15
    sts  SENSE_POS, r19
    ldi  r30, sense_task & 0xff
    ldi  r31, sense_task >> 8
    rcall tos_post_isr
    pop  r31
    pop  r30
    pop  r27
    pop  r26
    pop  r19
    pop  r18
    reti
sense_task:
    ldi  r26, 0x10
    ldi  r27, 0x03
    ldi  r20, 16
    ldi  r18, 0         ; sum lo
    ldi  r19, 0         ; sum hi
    ldi  r21, 0
sense_sum:
    ld   r24, X+
    add  r18, r24
    adc  r19, r21
    dec  r20
    brne sense_sum
    ldi  r20, 4         ; /16
sense_shift:
    lsr  r19
    ror  r18
    dec  r20
    brne sense_shift
    mov  r24, r18       ; display bits 7..5 of the 8-bit average
    ldi  r20, 5
sense_disp:
    lsr  r24
    dec  r20
    brne sense_disp
    andi r24, 7
    out  PORTB, r24
    ret
";

/// The radio-stack application: per-byte CRC-16 + bit-serial SEC-DED
/// encode (tap table in SRAM, as the 8-bit code keeps it), expanding
/// each data byte into three radio bytes (data, parity, complement
/// check) shipped through the SPI byte interface; the SPI-complete ISR
/// sequences the three bytes and posts the next byte's send task.
pub const RADIOSTACK_APP: &str = "
.equ RS_MSG,   0x0330
.equ RS_POS,   0x0338
.equ RS_CRCL,  0x033a
.equ RS_CRCH,  0x033b
.equ RS_PAR,   0x033c
.equ RS_PHASE, 0x033d
.equ RS_DONE,  0x033e
.equ RS_CHECK, 0x033f
.equ RS_TAPS,  0x0340

; one-time init of the SEC-DED tap table (H-matrix columns per data bit)
rs_init_taps:
    ldi  r26, 0x40
    ldi  r27, 0x03
    ldi  r18, 0x3
    st   X+, r18
    ldi  r18, 0x5
    st   X+, r18
    ldi  r18, 0x6
    st   X+, r18
    ldi  r18, 0x7
    st   X+, r18
    ldi  r18, 0x9
    st   X+, r18
    ldi  r18, 0xa
    st   X+, r18
    ldi  r18, 0xb
    st   X+, r18
    ldi  r18, 0xc
    st   X+, r18
    ret

rs_send_task:
    lds  r18, RS_POS
    mov  r26, r18
    ori  r26, 0x30      ; RS_MSG | pos (8-byte message, 8-aligned)
    ldi  r27, 0x03
    ld   r24, X         ; the data byte
    inc  r18
    andi r18, 7
    sts  RS_POS, r18
    ; CRC-16/CCITT over the byte
    lds  r19, RS_CRCL
    lds  r20, RS_CRCH
    eor  r20, r24       ; crc ^= byte << 8
    ldi  r21, 8
rs_crc_loop:
    add  r19, r19       ; crc <<= 1
    adc  r20, r20
    brcc rs_crc_noxor
    ldi  r22, 0x21
    eor  r19, r22
    ldi  r22, 0x10
    eor  r20, r22
rs_crc_noxor:
    dec  r21
    brne rs_crc_loop
    sts  RS_CRCL, r19
    sts  RS_CRCH, r20
    ; SEC-DED, bit-serial with the SRAM tap table (like the 8-bit code):
    ; for each set data bit, xor the corresponding H column into the
    ; parity accumulator.
    ldi  r23, 0         ; parity accumulator
    ldi  r21, 8
    mov  r25, r24       ; working copy
    ldi  r28, 0x40      ; Y -> RS_TAPS
    ldi  r29, 0x03
rs_sec_loop:
    lsr  r25
    brcc rs_sec_skip
    ld   r18, Y
    eor  r23, r18
rs_sec_skip:
    adiw r28, 1
    dec  r21
    brne rs_sec_loop
    ; overall parity bit over data + parity nibble
    mov  r25, r24
    eor  r25, r23
    rcall rs_parity
    add  r23, r23
    or   r23, r22
    sts  RS_PAR, r23
    ; complement check byte (double-error detection across the triple)
    mov  r25, r24
    com  r25
    sts  RS_CHECK, r25
    ldi  r18, 0
    sts  RS_PHASE, r18
    out  SPDR, r24      ; ship the data byte; SPI completion interrupts
    ret

rs_spi_isr:
    push r18
    push r26
    push r27
    push r30
    push r31
    lds  r18, RS_PHASE
    cpi  r18, 0
    brne rs_spi_not_first
    lds  r18, RS_PAR
    out  SPDR, r18      ; ship the parity byte
    ldi  r18, 1
    sts  RS_PHASE, r18
    rjmp rs_spi_out
rs_spi_not_first:
    cpi  r18, 1
    brne rs_spi_third
    lds  r18, RS_CHECK
    out  SPDR, r18      ; ship the complement check byte
    ldi  r18, 2
    sts  RS_PHASE, r18
    rjmp rs_spi_out
rs_spi_third:
    ldi  r18, 0
    sts  RS_PHASE, r18
    lds  r18, RS_DONE
    inc  r18
    sts  RS_DONE, r18
    ldi  r30, rs_send_task & 0xff
    ldi  r31, rs_send_task >> 8
    rcall tos_post_isr  ; chain the next byte
rs_spi_out:
    pop  r31
    pop  r30
    pop  r27
    pop  r26
    pop  r18
    reti

; parity of r25 -> r22; clobbers r21
rs_parity:
    mov  r22, r25
    mov  r21, r22
    swap r21
    eor  r22, r21
    mov  r21, r22
    lsr  r21
    lsr  r21
    eor  r22, r21
    mov  r21, r22
    lsr  r21
    eor  r22, r21
    andi r22, 1
    ret
";

/// The Beacon application source for one fleet node, parameterised by
/// its header byte: virtual timer 0 fires periodically, each fire
/// starts an ADC conversion, the ADC ISR posts the send task, and the
/// send task ships two SPI bytes — the header (`0x80 | node tag`, so a
/// gateway can frame the stream) then the sample — sequenced by the
/// SPI-complete ISR exactly like the radio stack.
pub fn beacon_app(header: u8) -> String {
    format!(
        "
.equ BK_SAMPLE, 0x0360
.equ BK_PHASE,  0x0361
.equ BK_SENT,   0x0362

beacon_fired:
    ldi  r18, 1
    out  ADCSRA, r18    ; start a conversion; completion is an interrupt
    ret
beacon_adc_isr:
    push r18
    push r26
    push r27
    push r30
    push r31
    in   r18, ADCD
    sts  BK_SAMPLE, r18
    ldi  r30, beacon_send_task & 0xff
    ldi  r31, beacon_send_task >> 8
    rcall tos_post_isr
    pop  r31
    pop  r30
    pop  r27
    pop  r26
    pop  r18
    reti
beacon_send_task:
    ldi  r18, 0
    sts  BK_PHASE, r18
    ldi  r18, 0x{header:02x}
    out  SPDR, r18      ; ship the header; SPI completion interrupts
    ret
beacon_spi_isr:
    push r18
    lds  r18, BK_PHASE
    cpi  r18, 0
    brne beacon_spi_done
    ldi  r18, 1
    sts  BK_PHASE, r18
    lds  r18, BK_SAMPLE
    out  SPDR, r18      ; ship the sample byte
    rjmp beacon_spi_out
beacon_spi_done:
    lds  r18, BK_SENT
    inc  r18
    sts  BK_SENT, r18
beacon_spi_out:
    pop  r18
    reti
"
    )
}

/// Assemble the Beacon program for one fleet node and wire its vectors.
///
/// Virtual timer 0 fires every `period_ticks` ≈1 ms ticks (OCR 62);
/// each fire samples the ADC and ships `0x80 | node_tag` then the
/// sample through the SPI byte interface.
pub fn beacon_system(node_tag: u8, period_ticks: u16) -> Result<(AvrCore, AvrProgram), AsmError> {
    let src = format!(
        "{TOS_DEFS}{}{TOS_RUNTIME}{}",
        tos_boot("beacon_fired", period_ticks, 62),
        beacon_app(0x80 | (node_tag & 0x7f)),
    );
    let program = assemble_avr(&src)?;
    let mut core = AvrCore::new(program.flash.clone());
    core.set_vector(
        Irq::Timer,
        program.symbol("tos_timer_isr").expect("isr symbol"),
    );
    core.set_vector(
        Irq::Adc,
        program.symbol("beacon_adc_isr").expect("isr symbol"),
    );
    core.set_vector(
        Irq::Spi,
        program.symbol("beacon_spi_isr").expect("isr symbol"),
    );
    Ok((core, program))
}

/// Assemble the Blink program and wire its vectors.
///
/// The virtual-timer tick is ≈1 ms (OCR 62 → 3968 cycles at 4 MHz) and
/// Blink fires every tick.
pub fn blink_system() -> Result<(AvrCore, AvrProgram), AsmError> {
    let src = format!(
        "{TOS_DEFS}{}{TOS_RUNTIME}{BLINK_APP}",
        tos_boot("blink_fired", 1, 62)
    );
    let program = assemble_avr(&src)?;
    let mut core = AvrCore::new(program.flash.clone());
    core.set_vector(
        Irq::Timer,
        program.symbol("tos_timer_isr").expect("isr symbol"),
    );
    Ok((core, program))
}

/// Assemble the Sense program and wire its vectors.
pub fn sense_system() -> Result<(AvrCore, AvrProgram), AsmError> {
    let src = format!(
        "{TOS_DEFS}{}{TOS_RUNTIME}{SENSE_APP}",
        tos_boot("sense_fired", 1, 62)
    );
    let program = assemble_avr(&src)?;
    let mut core = AvrCore::new(program.flash.clone());
    core.set_vector(
        Irq::Timer,
        program.symbol("tos_timer_isr").expect("isr symbol"),
    );
    core.set_vector(
        Irq::Adc,
        program.symbol("sense_adc_isr").expect("isr symbol"),
    );
    Ok((core, program))
}

/// Assemble the radio-stack program (no periodic timer; the benchmark
/// driver posts `rs_send_task` per byte) and wire its vectors.
pub fn radiostack_system() -> Result<(AvrCore, AvrProgram), AsmError> {
    // Boot: clear queue, post the first send task, enter the scheduler.
    let boot = "
boot:
    ldi  r18, 0
    sts  TQ_HEAD, r18
    sts  TQ_TAIL, r18
    rcall rs_init_taps
    ldi  r30, rs_send_task & 0xff
    ldi  r31, rs_send_task >> 8
    rcall tos_post
    sei
    rjmp tos_main
";
    let src = format!("{TOS_DEFS}{boot}{TOS_RUNTIME}{RADIOSTACK_APP}");
    let program = assemble_avr(&src)?;
    let mut core = AvrCore::new(program.flash.clone());
    core.set_vector(Irq::Spi, program.symbol("rs_spi_isr").expect("isr symbol"));
    Ok((core, program))
}

/// Measured cycles for one steady-state Blink iteration, split into
/// the ISR+scheduler overhead and the LED-toggling task itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TosCycles {
    /// Active cycles of a whole iteration.
    pub total: u64,
    /// Cycles spent in the application task proper.
    pub useful: u64,
}

impl TosCycles {
    /// Scheduling/ISR overhead cycles.
    pub fn overhead(&self) -> u64 {
        self.total - self.useful
    }
}

/// Measure one steady-state Blink iteration (paper Fig. 5: 523 cycles,
/// 16 useful).
///
/// # Panics
///
/// Panics if the runtime misbehaves (assembled from constants, so this
/// indicates a bug, not bad input).
pub fn measure_blink_cycles() -> TosCycles {
    let (mut core, _) = blink_system().expect("blink assembles");
    // Warm up two blinks, then measure between consecutive toggles.
    run_until_toggles(&mut core, 2);
    let start = core.active_cycles();
    run_until_toggles(&mut core, 1);
    let total = core.active_cycles() - start;
    // The useful work is blink_task: lds(2) eor(1) ldi(1) sts(2) out(1)
    // ret(4) + icall(3) = 14 cycles.
    TosCycles { total, useful: 14 }
}

/// Measure one steady-state Sense iteration (paper: 1118 cycles, 781
/// overhead).
///
/// # Panics
///
/// Panics on runtime misbehaviour (see [`measure_blink_cycles`]).
pub fn measure_sense_cycles() -> TosCycles {
    let (mut core, _) = sense_system().expect("sense assembles");
    core.set_adc_reading(128);
    run_until_port_writes(&mut core, 2);
    let start = core.active_cycles();
    run_until_port_writes(&mut core, 1);
    let total = core.active_cycles() - start;
    // Useful work: the sense_task body (sum 16 + shifts + display),
    // measured structurally: 16*(2+1+1+1+2)-1 + setup ~ 10 + shifts ~24
    // + display ~18 + ret 4 + icall 3. Use the paper's framing: task
    // cycles are "useful", ISR + scheduler are overhead.
    let useful = sense_task_cycles();
    TosCycles { total, useful }
}

fn sense_task_cycles() -> u64 {
    // Run the task in isolation on a scratch core to count its cycles.
    let src = format!(
        "{TOS_DEFS}
boot:
    rcall sense_task
    break
{SENSE_APP}{TOS_RUNTIME}"
    );
    let program = assemble_avr(&src).expect("assembles");
    let mut core = AvrCore::new(program.flash.clone());
    core.run_until_break(100_000).expect("runs");
    core.active_cycles() - 4 // minus rcall+break framing (3+1)
}

/// Measure the steady-state cost of sending one data byte through the
/// radio stack (paper: ≈780 cycles/byte on the mote), excluding the
/// dead time while SPI shifts bits.
///
/// # Panics
///
/// Panics on runtime misbehaviour (see [`measure_blink_cycles`]).
pub fn measure_radiostack_cycles_per_byte() -> u64 {
    let (mut core, program) = radiostack_system().expect("assembles");
    // Preload the message and a driver hook: after each byte completes,
    // post the next send. We emulate the driver by re-posting from Rust
    // between runs (the ISR counts completions in RS_DONE).
    for (i, b) in [0x12u8, 0x34, 0x56, 0x78].iter().enumerate() {
        core.sram_write(0x0330 + i as u16, *b);
    }
    let done_addr = program.symbol("RS_DONE").expect("equ symbol");
    // Byte 1 (warm-up); the SPI ISR chains the next byte's task.
    run_until_sram_equals(&mut core, done_addr, 1);
    let start = core.active_cycles();
    run_until_sram_equals(&mut core, done_addr, 2);
    core.active_cycles() - start
}

fn run_until_toggles(core: &mut AvrCore, n: usize) {
    let target = core.ports().portb_history.len() + n;
    while core.ports().portb_history.len() < target {
        core.step().expect("blink runs clean");
    }
}

fn run_until_port_writes(core: &mut AvrCore, n: usize) {
    run_until_toggles(core, n);
}

fn run_until_sram_equals(core: &mut AvrCore, addr: u16, value: u8) {
    let mut guard = 0u64;
    while core.sram(addr) != value {
        core.step().expect("radio stack runs clean");
        guard += 1;
        assert!(guard < 2_000_000, "radio stack did not progress");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blink_toggles_the_led() {
        let (mut core, _) = blink_system().unwrap();
        run_until_toggles(&mut core, 4);
        let hist = &core.ports().portb_history;
        let values: Vec<u8> = hist.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, vec![1, 0, 1, 0]);
        // Blinks are ~3968 wall cycles apart (OCR 62 x 64).
        let dt = hist[2].0 - hist[1].0;
        assert!((3800..4200).contains(&dt), "period {dt}");
    }

    #[test]
    fn blink_cycles_match_fig5_band() {
        let c = measure_blink_cycles();
        // Paper: 523 total, 16 useful, 507 overhead. Same shape: a few
        // hundred total, overhead ~95%.
        assert!((250..=700).contains(&c.total), "total {}", c.total);
        assert!(c.useful < 20);
        let overhead_frac = c.overhead() as f64 / c.total as f64;
        assert!(overhead_frac > 0.9, "overhead {overhead_frac}");
    }

    #[test]
    fn sense_displays_average_high_bits() {
        let (mut core, _) = sense_system().unwrap();
        core.set_adc_reading(224); // high bits 224>>5 = 7
        run_until_port_writes(&mut core, 20);
        assert_eq!(core.ports().portb(), 7);
    }

    #[test]
    fn sense_cycles_match_paper_band() {
        let c = measure_sense_cycles();
        // Paper: 1118 total with 781 overhead (>70%).
        assert!((500..=1500).contains(&c.total), "total {}", c.total);
        let overhead_frac = c.overhead() as f64 / c.total as f64;
        assert!(overhead_frac > 0.55, "overhead {overhead_frac}");
    }

    #[test]
    fn radiostack_sends_data_and_parity_bytes() {
        let (mut core, program) = radiostack_system().unwrap();
        for (i, b) in [0xabu8, 0xcd].iter().enumerate() {
            core.sram_write(0x0330 + i as u16, *b);
        }
        let done = program.symbol("RS_DONE").unwrap();
        run_until_sram_equals(&mut core, done, 1);
        // Three SPI bytes per data byte: data, parity, complement check.
        assert_eq!(core.spi_sent().len(), 3);
        assert_eq!(core.spi_sent()[0], 0xab);
        assert_eq!(core.spi_sent()[2], !0xabu8);
    }

    #[test]
    fn radiostack_cycles_match_paper_band() {
        let cycles = measure_radiostack_cycles_per_byte();
        // Paper: ~780 cycles per byte on the mote.
        assert!((350..=1100).contains(&cycles), "cycles {cycles}");
    }

    #[test]
    fn radiostack_crc_matches_reference() {
        // Cross-check the AVR CRC against the SNAP-side reference.
        let (mut core, program) = radiostack_system().unwrap();
        for (i, b) in [0x12u8, 0x34].iter().enumerate() {
            core.sram_write(0x0330 + i as u16, *b);
        }
        let done = program.symbol("RS_DONE").unwrap();
        run_until_sram_equals(&mut core, done, 2);
        let crc = (core.sram(program.symbol("RS_CRCH").unwrap()) as u16) << 8
            | core.sram(program.symbol("RS_CRCL").unwrap()) as u16;
        // Reference CRC-16/CCITT of [0x12, 0x34] from init 0.
        let mut expect = 0u16;
        for &b in &[0x12u8, 0x34] {
            expect ^= (b as u16) << 8;
            for _ in 0..8 {
                expect = if expect & 0x8000 != 0 {
                    (expect << 1) ^ 0x1021
                } else {
                    expect << 1
                };
            }
        }
        assert_eq!(crc, expect);
    }

    #[test]
    fn beacon_ships_header_then_sample_each_period() {
        let (mut core, _) = beacon_system(5, 4).unwrap();
        core.set_adc_reading(0x42);
        // 3 periods of 4 ticks ≈ 48k wall cycles; allow slack.
        core.run_until_wall(80_000).unwrap();
        let sent = core.spi_sent();
        assert!(sent.len() >= 4, "sent {} bytes", sent.len());
        assert_eq!(&sent[..4], &[0x85, 0x42, 0x85, 0x42]);
        // Byte timestamps are strictly increasing and pair-spaced by
        // the SPI byte time.
        let at = core.spi_sent_cycles();
        assert!(at.windows(2).all(|w| w[0] < w[1]));
        assert!(at[1] - at[0] >= crate::core::SPI_BYTE_CYCLES);
    }

    #[test]
    fn two_virtual_timers_multiplex_one_hardware_timer() {
        // vt0 (period 1 tick) drives blink_fired; vt1 (period 3 ticks)
        // drives a second handler that counts into SRAM — both served
        // by the single compare-match ISR, like TinyOS's timer module.
        let second_app = "
second_fired:
    lds  r18, 0x0308
    inc  r18
    sts  0x0308, r18
    ret
";
        let boot = tos_boot("blink_fired", 1, 62);
        // Extend boot: before `rjmp tos_main`, configure vt slot 1.
        let boot = boot.replace(
            "    sei\n    rjmp tos_main",
            "
    ldi  r26, VT_LO + 8
    ldi  r27, VT_HI
    ldi  r18, 1
    st   X+, r18        ; active
    ldi  r18, 3
    st   X+, r18        ; rem_lo
    ldi  r18, 0
    st   X+, r18        ; rem_hi
    ldi  r18, second_fired & 0xff
    st   X+, r18
    ldi  r18, second_fired >> 8
    st   X+, r18
    ldi  r18, 3
    st   X+, r18        ; per_lo
    ldi  r18, 0
    st   X+, r18        ; per_hi
    st   X+, r18        ; fired = 0
    sei
    rjmp tos_main",
        );
        let src = format!("{TOS_DEFS}{boot}{TOS_RUNTIME}{BLINK_APP}{second_app}");
        let program = assemble_avr(&src).unwrap();
        let mut core = AvrCore::new(program.flash.clone());
        core.set_vector(Irq::Timer, program.symbol("tos_timer_isr").unwrap());
        // 12 hardware ticks: vt0 fires 12x, vt1 fires 4x.
        run_until_toggles(&mut core, 12);
        let seconds = core.sram(0x0308);
        assert!(
            (3..=5).contains(&seconds),
            "vt1 fired {seconds} times over 12 ticks"
        );
    }

    #[test]
    fn scheduler_sleeps_between_events() {
        let (mut core, _) = blink_system().unwrap();
        run_until_toggles(&mut core, 5);
        // Over 5 blinks (~20k wall cycles) the core was active for only
        // a few thousand.
        let duty = core.active_cycles() as f64 / core.wall_cycles() as f64;
        assert!(duty < 0.25, "duty {duty}");
    }
}
