//! The clocked AVR-subset core with interrupts, sleep and peripherals.
//!
//! Everything the §4.6 comparison needs from a MICA mote's ATmega128L:
//! a 4 MHz core whose event-driven behaviour must be built from
//! interrupts + software: interrupt entry costs cycles (about 7 — the
//! 4-cycle response plus the vector jump), ISRs must save and restore
//! registers, a software scheduler dispatches tasks, and peripherals
//! (compare timer, ADC, SPI byte interface, LED port) signal
//! completion by interrupt.

use crate::isa::{AvrBranch, AvrInstr, Ptr};

/// SRAM size in bytes (the ATmega128L has 4 KB internal SRAM).
pub const SRAM_BYTES: usize = 4096;

/// Interrupt-entry cost in cycles: 4-cycle response plus the 3-cycle
/// jump in the vector slot.
pub const IRQ_ENTRY_CYCLES: u64 = 7;

/// I/O register addresses used by the simulated peripherals.
pub mod io {
    /// LED port.
    pub const PORTB: u8 = 0x05;
    /// Timer control: bit 0 enables the compare-match timer.
    pub const TCCR: u8 = 0x10;
    /// Timer compare value, low byte (period = OCR × 64 cycles).
    pub const OCRL: u8 = 0x11;
    /// Timer compare value, high byte.
    pub const OCRH: u8 = 0x12;
    /// ADC control: writing 1 starts a conversion.
    pub const ADCSRA: u8 = 0x15;
    /// ADC data (valid after the ADC interrupt).
    pub const ADCD: u8 = 0x16;
    /// SPI data register: writing starts a byte transfer to the radio.
    pub const SPDR: u8 = 0x18;
    /// Stack pointer low byte.
    pub const SPL: u8 = 0x3d;
    /// Stack pointer high byte.
    pub const SPH: u8 = 0x3e;
}

/// Timer prescaler: the compare period is `OCR × 64` CPU cycles.
pub const TIMER_PRESCALE: u64 = 64;

/// Default ADC conversion time in cycles (≈100 µs at 4 MHz).
pub const ADC_CONVERSION_CYCLES: u64 = 400;

/// Default SPI byte time in cycles: 8 bits at the TR1000's serial rate
/// (≈19.2 kbps) under a 4 MHz clock.
pub const SPI_BYTE_CYCLES: u64 = 1667;

/// Interrupt sources, in priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Irq {
    /// Timer compare match.
    Timer,
    /// ADC conversion complete.
    Adc,
    /// SPI byte transfer complete.
    Spi,
}

impl Irq {
    const ALL: [Irq; 3] = [Irq::Timer, Irq::Adc, Irq::Spi];

    fn index(self) -> usize {
        self as usize
    }
}

/// Execution faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AvrCoreError {
    /// PC ran into flash with no instruction.
    NoInstruction {
        /// The word address.
        at: u16,
    },
    /// An interrupt fired with no vector configured.
    NoVector {
        /// The source.
        irq: &'static str,
    },
    /// Asleep with no enabled peripheral that could ever wake the core.
    Stuck,
    /// The active-cycle budget was exhausted before `break`.
    CycleLimit {
        /// The exhausted budget.
        limit: u64,
    },
}

impl std::fmt::Display for AvrCoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AvrCoreError::NoInstruction { at } => write!(f, "no instruction at {at:#06x}"),
            AvrCoreError::NoVector { irq } => write!(f, "unconfigured interrupt vector for {irq}"),
            AvrCoreError::Stuck => write!(f, "asleep forever: no peripheral can wake the core"),
            AvrCoreError::CycleLimit { limit } => write!(f, "exceeded {limit} active cycles"),
        }
    }
}

impl std::error::Error for AvrCoreError {}

#[derive(Debug, Clone, Default)]
pub(crate) struct Timer {
    pub(crate) enabled: bool,
    pub(crate) ocr: u16,
    pub(crate) next_fire: u64,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct Adc {
    pub(crate) done_at: Option<u64>,
    pub(crate) value: u8,
    pub(crate) reading: u8,
}

#[derive(Debug, Clone)]
pub(crate) struct Spi {
    pub(crate) done_at: Option<u64>,
    pub(crate) byte_cycles: u64,
    pub(crate) sent: Vec<u8>,
    /// Wall cycle at which each sent byte was written (parallel to
    /// `sent`): the network adapter turns byte writes into radio words
    /// at their exact write instants.
    pub(crate) sent_at: Vec<u64>,
    /// Last byte delivered by [`AvrCore::post_spi_rx`], readable at
    /// [`io::SPDR`].
    pub(crate) rx: u8,
}

/// Observable peripheral outputs.
#[derive(Debug, Clone, Default)]
pub struct IoPorts {
    /// `(wall cycle, value)` history of PORTB writes.
    pub portb_history: Vec<(u64, u8)>,
}

impl IoPorts {
    /// Current PORTB value.
    pub fn portb(&self) -> u8 {
        self.portb_history.last().map(|&(_, v)| v).unwrap_or(0)
    }
}

/// The AVR-subset core.
#[derive(Debug, Clone)]
pub struct AvrCore {
    pub(crate) regs: [u8; 32],
    pub(crate) sram: Box<[u8; SRAM_BYTES]>,
    pub(crate) flash: Vec<Option<AvrInstr>>,
    pub(crate) pc: u16,
    pub(crate) sp: u16,
    pub(crate) flag_c: bool,
    pub(crate) flag_z: bool,
    pub(crate) flag_n: bool,
    pub(crate) flag_v: bool,
    pub(crate) flag_i: bool,
    pub(crate) sleeping: bool,
    pub(crate) halted: bool,
    pub(crate) wall_cycles: u64,
    pub(crate) active_cycles: u64,
    pub(crate) vectors: [Option<u16>; 3],
    pub(crate) pending: [bool; 3],
    pub(crate) timer: Timer,
    pub(crate) adc: Adc,
    pub(crate) spi: Spi,
    pub(crate) ports: IoPorts,
    pub(crate) irqs_taken: u64,
}

impl AvrCore {
    /// A core with the given flash image (from [`crate::asm::assemble_avr`]).
    pub fn new(flash: Vec<Option<AvrInstr>>) -> AvrCore {
        AvrCore {
            regs: [0; 32],
            sram: Box::new([0; SRAM_BYTES]),
            flash,
            pc: 0,
            sp: (SRAM_BYTES - 1) as u16,
            flag_c: false,
            flag_z: false,
            flag_n: false,
            flag_v: false,
            flag_i: false,
            sleeping: false,
            halted: false,
            wall_cycles: 0,
            active_cycles: 0,
            vectors: [None; 3],
            pending: [false; 3],
            timer: Timer::default(),
            adc: Adc::default(),
            spi: Spi {
                done_at: None,
                byte_cycles: SPI_BYTE_CYCLES,
                sent: Vec::new(),
                sent_at: Vec::new(),
                rx: 0,
            },
            ports: IoPorts::default(),
            irqs_taken: 0,
        }
    }

    /// Configure an interrupt vector (handler word address).
    pub fn set_vector(&mut self, irq: Irq, addr: u16) {
        self.vectors[irq.index()] = Some(addr);
    }

    /// Set the value the next ADC conversion will return.
    pub fn set_adc_reading(&mut self, value: u8) {
        self.adc.reading = value;
    }

    /// Bytes shifted out over SPI so far.
    pub fn spi_sent(&self) -> &[u8] {
        &self.spi.sent
    }

    /// Wall cycle at which each SPI byte write happened (parallel to
    /// [`AvrCore::spi_sent`]).
    pub fn spi_sent_cycles(&self) -> &[u64] {
        &self.spi.sent_at
    }

    /// Deliver a byte *into* the SPI interface (a radio word arriving
    /// at the mote): the byte becomes readable at [`io::SPDR`] and the
    /// SPI interrupt is raised — the same completion interrupt a real
    /// transceiver strobes when a received byte has shifted in.
    pub fn post_spi_rx(&mut self, byte: u8) {
        self.spi.rx = byte;
        self.pending[Irq::Spi.index()] = true;
    }

    /// Is the core in its sleep state?
    pub fn sleeping(&self) -> bool {
        self.sleeping
    }

    /// Is any interrupt pending?
    pub fn irq_pending(&self) -> bool {
        self.pending.iter().any(|&p| p)
    }

    /// Is the global interrupt flag set?
    pub fn irqs_enabled(&self) -> bool {
        self.flag_i
    }

    /// Wall cycle of the next peripheral event (timer fire, ADC or SPI
    /// completion), if any peripheral is armed.
    pub fn next_event_cycle(&self) -> Option<u64> {
        self.next_peripheral_event()
    }

    /// Peripheral output ports.
    pub fn ports(&self) -> &IoPorts {
        &self.ports
    }

    /// Current program counter (word address).
    pub fn pc(&self) -> u16 {
        self.pc
    }

    /// Wall-clock cycles elapsed (including sleep).
    pub fn wall_cycles(&self) -> u64 {
        self.wall_cycles
    }

    /// Cycles the core was actively executing (the §4.6 metric).
    pub fn active_cycles(&self) -> u64 {
        self.active_cycles
    }

    /// Interrupts taken so far.
    pub fn irqs_taken(&self) -> u64 {
        self.irqs_taken
    }

    /// `true` after `break`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Read a byte of SRAM (test observability).
    pub fn sram(&self, addr: u16) -> u8 {
        self.sram[addr as usize % SRAM_BYTES]
    }

    /// Write a byte of SRAM (test fixtures).
    pub fn sram_write(&mut self, addr: u16, value: u8) {
        self.sram[addr as usize % SRAM_BYTES] = value;
    }

    fn spend(&mut self, cycles: u64) {
        self.wall_cycles += cycles;
        self.active_cycles += cycles;
        self.poll_peripherals();
    }

    fn poll_peripherals(&mut self) {
        if self.timer.enabled && self.wall_cycles >= self.timer.next_fire {
            self.pending[Irq::Timer.index()] = true;
            let period = (self.timer.ocr as u64).max(1) * TIMER_PRESCALE;
            self.timer.next_fire += period;
        }
        if let Some(at) = self.adc.done_at {
            if self.wall_cycles >= at {
                self.adc.done_at = None;
                self.adc.value = self.adc.reading;
                self.pending[Irq::Adc.index()] = true;
            }
        }
        if let Some(at) = self.spi.done_at {
            if self.wall_cycles >= at {
                self.spi.done_at = None;
                self.pending[Irq::Spi.index()] = true;
            }
        }
    }

    fn next_peripheral_event(&self) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |t: u64| {
            next = Some(next.map_or(t, |n: u64| n.min(t)));
        };
        if self.timer.enabled {
            consider(self.timer.next_fire);
        }
        if let Some(t) = self.adc.done_at {
            consider(t);
        }
        if let Some(t) = self.spi.done_at {
            consider(t);
        }
        next
    }

    /// Execute until `break`, with an active-cycle budget.
    ///
    /// # Errors
    ///
    /// See [`AvrCoreError`].
    pub fn run_until_break(&mut self, max_active: u64) -> Result<(), AvrCoreError> {
        while !self.halted {
            if self.active_cycles > max_active {
                return Err(AvrCoreError::CycleLimit { limit: max_active });
            }
            self.step()?;
        }
        Ok(())
    }

    /// Execute until the wall-clock cycle counter reaches `deadline`.
    ///
    /// # Errors
    ///
    /// See [`AvrCoreError`] (a fully idle core with no enabled
    /// peripheral reports `Stuck`).
    pub fn run_until_wall(&mut self, deadline: u64) -> Result<(), AvrCoreError> {
        while !self.halted && self.wall_cycles < deadline {
            if self.sleeping && self.pending.iter().all(|&p| !p) {
                match self.next_peripheral_event() {
                    Some(at) if at <= deadline => {
                        self.wall_cycles = at;
                        self.poll_peripherals();
                    }
                    Some(_) | None => {
                        // Idle to the deadline; wall time passes, no
                        // active cycles.
                        self.wall_cycles = deadline;
                        return Ok(());
                    }
                }
                continue;
            }
            self.step()?;
        }
        Ok(())
    }

    /// Like [`AvrCore::run_until_wall`], but also returns control at
    /// every active→idle boundary: the moment the core is asleep with
    /// nothing pending, instead of idling forward internally. A node
    /// layer with its own idle-time policy (battery budgets, external
    /// event calendars) re-evaluates at each such boundary and decides
    /// itself how far to idle.
    ///
    /// # Errors
    ///
    /// See [`AvrCoreError`].
    pub fn run_active_until_wall(&mut self, deadline: u64) -> Result<(), AvrCoreError> {
        while !self.halted && self.wall_cycles < deadline {
            if self.sleeping && self.pending.iter().all(|&p| !p) {
                return Ok(());
            }
            self.step()?;
        }
        Ok(())
    }

    /// Advance the wall clock without executing anything and without
    /// firing peripheral events — terminal bookkeeping for a core whose
    /// node ceased operating mid-sleep (battery exhaustion). The clock
    /// never moves backwards.
    pub fn freeze_at_wall(&mut self, cycle: u64) {
        self.wall_cycles = self.wall_cycles.max(cycle);
    }

    /// One step: take a pending interrupt, wake from sleep, or execute
    /// the instruction at PC.
    ///
    /// # Errors
    ///
    /// See [`AvrCoreError`].
    pub fn step(&mut self) -> Result<(), AvrCoreError> {
        if self.halted {
            return Ok(());
        }
        // Interrupt dispatch (also the wake path out of sleep).
        if self.flag_i {
            if let Some(irq) = Irq::ALL.into_iter().find(|i| self.pending[i.index()]) {
                let Some(target) = self.vectors[irq.index()] else {
                    return Err(AvrCoreError::NoVector { irq: irq_name(irq) });
                };
                self.pending[irq.index()] = false;
                self.sleeping = false;
                self.flag_i = false;
                self.push16(self.pc);
                self.pc = target;
                self.irqs_taken += 1;
                self.spend(IRQ_ENTRY_CYCLES);
                return Ok(());
            }
        }
        if self.sleeping {
            // Nothing pending: advance to the next peripheral event.
            match self.next_peripheral_event() {
                Some(at) => {
                    self.wall_cycles = self.wall_cycles.max(at);
                    self.poll_peripherals();
                    Ok(())
                }
                None => Err(AvrCoreError::Stuck),
            }
        } else {
            self.exec_one()
        }
    }

    fn push8(&mut self, v: u8) {
        self.sram[self.sp as usize % SRAM_BYTES] = v;
        self.sp = self.sp.wrapping_sub(1);
    }

    fn pop8(&mut self) -> u8 {
        self.sp = self.sp.wrapping_add(1);
        self.sram[self.sp as usize % SRAM_BYTES]
    }

    fn push16(&mut self, v: u16) {
        self.push8((v & 0xff) as u8);
        self.push8((v >> 8) as u8);
    }

    fn pop16(&mut self) -> u16 {
        let hi = self.pop8() as u16;
        let lo = self.pop8() as u16;
        (hi << 8) | lo
    }

    fn ptr_read(&self, ptr: Ptr) -> u16 {
        let lo = ptr.lo_reg();
        (self.regs[lo + 1] as u16) << 8 | self.regs[lo] as u16
    }

    fn ptr_write(&mut self, ptr: Ptr, v: u16) {
        let lo = ptr.lo_reg();
        self.regs[lo] = (v & 0xff) as u8;
        self.regs[lo + 1] = (v >> 8) as u8;
    }

    fn set_zn(&mut self, r: u8) {
        self.flag_z = r == 0;
        self.flag_n = r & 0x80 != 0;
    }

    fn do_add(&mut self, a: u8, b: u8, carry_in: bool) -> u8 {
        let c = carry_in as u16;
        let sum = a as u16 + b as u16 + c;
        let r = sum as u8;
        self.flag_c = sum > 0xff;
        self.flag_v = ((a ^ r) & (b ^ r) & 0x80) != 0;
        self.set_zn(r);
        r
    }

    fn do_sub(&mut self, a: u8, b: u8, carry_in: bool, keep_z: bool) -> u8 {
        let diff = a as i16 - b as i16 - carry_in as i16;
        let r = diff as u8;
        self.flag_c = diff < 0;
        self.flag_v = ((a ^ b) & (a ^ r) & 0x80) != 0;
        let old_z = self.flag_z;
        self.set_zn(r);
        if keep_z {
            // cpc/sbc: Z only stays set if it was already set (AVR).
            self.flag_z = self.flag_z && old_z;
        }
        r
    }

    fn branch_taken(&self, cond: AvrBranch) -> bool {
        match cond {
            AvrBranch::Eq => self.flag_z,
            AvrBranch::Ne => !self.flag_z,
            AvrBranch::Cs => self.flag_c,
            AvrBranch::Cc => !self.flag_c,
            AvrBranch::Lt => self.flag_n != self.flag_v,
            AvrBranch::Ge => self.flag_n == self.flag_v,
        }
    }

    fn io_read(&mut self, io: u8) -> u8 {
        match io {
            io::PORTB => self.ports.portb(),
            io::ADCD => self.adc.value,
            io::SPDR => self.spi.rx,
            io::SPL => (self.sp & 0xff) as u8,
            io::SPH => (self.sp >> 8) as u8,
            io::OCRL => (self.timer.ocr & 0xff) as u8,
            io::OCRH => (self.timer.ocr >> 8) as u8,
            _ => 0,
        }
    }

    fn io_write(&mut self, io: u8, v: u8) {
        match io {
            io::PORTB => self.ports.portb_history.push((self.wall_cycles, v)),
            io::TCCR => {
                let enable = v & 1 != 0;
                if enable && !self.timer.enabled {
                    let period = (self.timer.ocr as u64).max(1) * TIMER_PRESCALE;
                    self.timer.next_fire = self.wall_cycles + period;
                }
                self.timer.enabled = enable;
            }
            io::OCRL => self.timer.ocr = (self.timer.ocr & 0xff00) | v as u16,
            io::OCRH => self.timer.ocr = (self.timer.ocr & 0x00ff) | ((v as u16) << 8),
            io::ADCSRA if v & 1 != 0 => {
                self.adc.done_at = Some(self.wall_cycles + ADC_CONVERSION_CYCLES);
            }
            io::SPDR => {
                self.spi.sent.push(v);
                self.spi.sent_at.push(self.wall_cycles);
                self.spi.done_at = Some(self.wall_cycles + self.spi.byte_cycles);
            }
            io::SPL => self.sp = (self.sp & 0xff00) | v as u16,
            io::SPH => self.sp = (self.sp & 0x00ff) | ((v as u16) << 8),
            _ => {}
        }
    }

    fn exec_one(&mut self) -> Result<(), AvrCoreError> {
        use AvrInstr as I;
        let at = self.pc;
        let ins = self
            .flash
            .get(at as usize)
            .copied()
            .flatten()
            .ok_or(AvrCoreError::NoInstruction { at })?;
        let mut cycles = ins.cycles();
        let mut next = at.wrapping_add(ins.words());

        match ins {
            I::Ldi { rd, k } => self.regs[rd as usize] = k,
            I::Mov { rd, rr } => self.regs[rd as usize] = self.regs[rr as usize],
            I::Add { rd, rr } => {
                self.regs[rd as usize] =
                    self.do_add(self.regs[rd as usize], self.regs[rr as usize], false)
            }
            I::Adc { rd, rr } => {
                let c = self.flag_c;
                self.regs[rd as usize] =
                    self.do_add(self.regs[rd as usize], self.regs[rr as usize], c)
            }
            I::Sub { rd, rr } => {
                self.regs[rd as usize] =
                    self.do_sub(self.regs[rd as usize], self.regs[rr as usize], false, false)
            }
            I::Sbc { rd, rr } => {
                let c = self.flag_c;
                self.regs[rd as usize] =
                    self.do_sub(self.regs[rd as usize], self.regs[rr as usize], c, true)
            }
            I::And { rd, rr } => {
                let r = self.regs[rd as usize] & self.regs[rr as usize];
                self.regs[rd as usize] = r;
                self.flag_v = false;
                self.set_zn(r);
            }
            I::Or { rd, rr } => {
                let r = self.regs[rd as usize] | self.regs[rr as usize];
                self.regs[rd as usize] = r;
                self.flag_v = false;
                self.set_zn(r);
            }
            I::Eor { rd, rr } => {
                let r = self.regs[rd as usize] ^ self.regs[rr as usize];
                self.regs[rd as usize] = r;
                self.flag_v = false;
                self.set_zn(r);
            }
            I::Subi { rd, k } => {
                self.regs[rd as usize] = self.do_sub(self.regs[rd as usize], k, false, false)
            }
            I::Sbci { rd, k } => {
                let c = self.flag_c;
                self.regs[rd as usize] = self.do_sub(self.regs[rd as usize], k, c, true)
            }
            I::Andi { rd, k } => {
                let r = self.regs[rd as usize] & k;
                self.regs[rd as usize] = r;
                self.flag_v = false;
                self.set_zn(r);
            }
            I::Ori { rd, k } => {
                let r = self.regs[rd as usize] | k;
                self.regs[rd as usize] = r;
                self.flag_v = false;
                self.set_zn(r);
            }
            I::Inc { rd } => {
                let r = self.regs[rd as usize].wrapping_add(1);
                self.regs[rd as usize] = r;
                self.flag_v = r == 0x80;
                self.set_zn(r);
            }
            I::Dec { rd } => {
                let r = self.regs[rd as usize].wrapping_sub(1);
                self.regs[rd as usize] = r;
                self.flag_v = r == 0x7f;
                self.set_zn(r);
            }
            I::Com { rd } => {
                let r = !self.regs[rd as usize];
                self.regs[rd as usize] = r;
                self.flag_c = true;
                self.flag_v = false;
                self.set_zn(r);
            }
            I::Neg { rd } => {
                let r = self.regs[rd as usize].wrapping_neg();
                self.regs[rd as usize] = r;
                self.flag_c = r != 0;
                self.flag_v = r == 0x80;
                self.set_zn(r);
            }
            I::Lsr { rd } => {
                let a = self.regs[rd as usize];
                let r = a >> 1;
                self.regs[rd as usize] = r;
                self.flag_c = a & 1 != 0;
                self.flag_n = false;
                self.flag_z = r == 0;
                self.flag_v = self.flag_c; // N ^ C with N = 0
            }
            I::Ror { rd } => {
                let a = self.regs[rd as usize];
                let r = (a >> 1) | ((self.flag_c as u8) << 7);
                self.regs[rd as usize] = r;
                self.flag_c = a & 1 != 0;
                self.set_zn(r);
                self.flag_v = self.flag_n != self.flag_c;
            }
            I::Asr { rd } => {
                let a = self.regs[rd as usize];
                let r = ((a as i8) >> 1) as u8;
                self.regs[rd as usize] = r;
                self.flag_c = a & 1 != 0;
                self.set_zn(r);
                self.flag_v = self.flag_n != self.flag_c;
            }
            I::Swap { rd } => {
                let a = self.regs[rd as usize];
                self.regs[rd as usize] = a.rotate_right(4);
            }
            I::Cp { rd, rr } => {
                self.do_sub(self.regs[rd as usize], self.regs[rr as usize], false, false);
            }
            I::Cpc { rd, rr } => {
                let c = self.flag_c;
                self.do_sub(self.regs[rd as usize], self.regs[rr as usize], c, true);
            }
            I::Cpi { rd, k } => {
                self.do_sub(self.regs[rd as usize], k, false, false);
            }
            I::Br { cond, target } => {
                if self.branch_taken(cond) {
                    next = target;
                    cycles += 1;
                }
            }
            I::Rjmp { target } => next = target,
            I::Ijmp => next = self.ptr_read(Ptr::Z),
            I::Rcall { target } => {
                self.push16(next);
                next = target;
            }
            I::Icall => {
                self.push16(next);
                next = self.ptr_read(Ptr::Z);
            }
            I::Ret => next = self.pop16(),
            I::Reti => {
                next = self.pop16();
                self.flag_i = true;
            }
            I::Lds { rd, addr } => self.regs[rd as usize] = self.sram[addr as usize % SRAM_BYTES],
            I::Sts { addr, rr } => self.sram[addr as usize % SRAM_BYTES] = self.regs[rr as usize],
            I::Ld { rd, ptr, post_inc } => {
                let a = self.ptr_read(ptr);
                self.regs[rd as usize] = self.sram[a as usize % SRAM_BYTES];
                if post_inc {
                    self.ptr_write(ptr, a.wrapping_add(1));
                }
            }
            I::St { ptr, rr, post_inc } => {
                let a = self.ptr_read(ptr);
                self.sram[a as usize % SRAM_BYTES] = self.regs[rr as usize];
                if post_inc {
                    self.ptr_write(ptr, a.wrapping_add(1));
                }
            }
            I::Push { rr } => self.push8(self.regs[rr as usize]),
            I::Pop { rd } => self.regs[rd as usize] = self.pop8(),
            I::In { rd, io } => self.regs[rd as usize] = self.io_read(io),
            I::Out { io, rr } => self.io_write(io, self.regs[rr as usize]),
            I::Adiw { pair, k } => {
                let lo = pair as usize;
                let v =
                    ((self.regs[lo + 1] as u16) << 8 | self.regs[lo] as u16).wrapping_add(k as u16);
                self.regs[lo] = (v & 0xff) as u8;
                self.regs[lo + 1] = (v >> 8) as u8;
                self.flag_z = v == 0;
            }
            I::Sbiw { pair, k } => {
                let lo = pair as usize;
                let a = (self.regs[lo + 1] as u16) << 8 | self.regs[lo] as u16;
                let v = a.wrapping_sub(k as u16);
                self.regs[lo] = (v & 0xff) as u8;
                self.regs[lo + 1] = (v >> 8) as u8;
                self.flag_z = v == 0;
                self.flag_c = (k as u16) > a;
            }
            I::Sei => self.flag_i = true,
            I::Cli => self.flag_i = false,
            I::Sleep => self.sleeping = true,
            I::Nop => {}
            I::Break => self.halted = true,
        }

        self.pc = next;
        self.spend(cycles);
        Ok(())
    }
}

fn irq_name(irq: Irq) -> &'static str {
    match irq {
        Irq::Timer => "timer",
        Irq::Adc => "adc",
        Irq::Spi => "spi",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble_avr;

    fn run(src: &str, max: u64) -> AvrCore {
        let p = assemble_avr(src).unwrap();
        let mut core = AvrCore::new(p.flash.clone());
        core.run_until_break(max).unwrap();
        core
    }

    #[test]
    fn arithmetic_and_break() {
        let core = run("ldi r16, 40\nldi r17, 2\nadd r16, r17\nbreak", 100);
        assert_eq!(core.sram(0), 0); // untouched
        assert!(core.halted());
        assert_eq!(core.active_cycles(), 3 + 1); // 3 x 1cy + break
    }

    #[test]
    fn sram_load_store_cycles() {
        let core = run("ldi r16, 7\nsts 0x100, r16\nlds r17, 0x100\nbreak", 100);
        assert_eq!(core.sram(0x100), 7);
        assert_eq!(core.active_cycles(), 1 + 2 + 2 + 1);
    }

    #[test]
    fn carry_chain_16_bit() {
        // 0x00ff + 0x0001 = 0x0100 across two bytes.
        let core = run(
            "ldi r16, 0xff\nldi r17, 0\nldi r18, 1\nldi r19, 0\nadd r16, r18\nadc r17, r19\nbreak",
            100,
        );
        // r16 = 0, r17 = 1 -> store to observe
        // (inspect via another run that stores)
        let core2 = run(
            "ldi r16, 0xff\nldi r17, 0\nldi r18, 1\nldi r19, 0\nadd r16, r18\nadc r17, r19\nsts 0x80, r16\nsts 0x81, r17\nbreak",
            100,
        );
        assert_eq!(core2.sram(0x80), 0);
        assert_eq!(core2.sram(0x81), 1);
        drop(core);
    }

    #[test]
    fn branches_and_loops() {
        // Sum 1..=5 in r20.
        let core = run(
            "ldi r20, 0\nldi r16, 5\nloop:\nadd r20, r16\ndec r16\nbrne loop\nsts 0x90, r20\nbreak",
            200,
        );
        assert_eq!(core.sram(0x90), 15);
    }

    #[test]
    fn taken_branch_costs_extra_cycle() {
        let not_taken = run("ldi r16, 1\ncpi r16, 2\nbreq skip\nskip: break", 100);
        let taken = run("ldi r16, 2\ncpi r16, 2\nbreq skip\nskip: break", 100);
        assert_eq!(taken.active_cycles(), not_taken.active_cycles() + 1);
    }

    #[test]
    fn call_ret_stack() {
        let core = run("rcall f\nsts 0xa0, r16\nbreak\nf:\nldi r16, 9\nret", 100);
        assert_eq!(core.sram(0xa0), 9);
        assert_eq!(core.active_cycles(), 3 + 1 + 4 + 2 + 1);
    }

    #[test]
    fn timer_interrupt_fires_and_counts_entry_cost() {
        let src = "
            ldi r16, 4
            out 0x11, r16      ; OCRL = 4 -> period 256 cycles
            ldi r16, 0
            out 0x12, r16
            ldi r16, 1
            out 0x10, r16      ; enable timer
            sei
        spin:
            rjmp spin
        isr:
            ldi r17, 0xaa
            sts 0xb0, r17
            break
        ";
        let p = assemble_avr(src).unwrap();
        let mut core = AvrCore::new(p.flash.clone());
        core.set_vector(Irq::Timer, p.symbol("isr").unwrap());
        core.run_until_break(5_000).unwrap();
        assert_eq!(core.sram(0xb0), 0xaa);
        assert_eq!(core.irqs_taken(), 1);
        // Fired roughly at the 256-cycle mark, not immediately.
        assert!(core.active_cycles() > 200, "{}", core.active_cycles());
    }

    #[test]
    fn sleep_wakes_on_interrupt_without_active_cycles() {
        let src = "
            ldi r16, 100
            out 0x11, r16      ; period 6400 cycles
            ldi r16, 0
            out 0x12, r16
            ldi r16, 1
            out 0x10, r16
            sei
            sleep
            nop                ; resumed here after reti
            break
        isr:
            reti
        ";
        let p = assemble_avr(src).unwrap();
        let mut core = AvrCore::new(p.flash.clone());
        core.set_vector(Irq::Timer, p.symbol("isr").unwrap());
        core.run_until_break(1_000).unwrap();
        // Wall time covers the sleep; active cycles only the handful of
        // executed instructions.
        assert!(core.wall_cycles() >= 6400, "wall {}", core.wall_cycles());
        assert!(core.active_cycles() < 50, "active {}", core.active_cycles());
    }

    #[test]
    fn adc_conversion_completes_by_interrupt() {
        let src = "
            sei
            ldi r16, 1
            out 0x15, r16      ; start conversion
            sleep
            break              ; (never reached; isr breaks)
        isr:
            in r18, 0x16
            sts 0xc0, r18
            break
        ";
        let p = assemble_avr(src).unwrap();
        let mut core = AvrCore::new(p.flash.clone());
        core.set_vector(Irq::Adc, p.symbol("isr").unwrap());
        core.set_adc_reading(123);
        core.run_until_break(10_000).unwrap();
        assert_eq!(core.sram(0xc0), 123);
        assert!(core.wall_cycles() >= ADC_CONVERSION_CYCLES);
    }

    #[test]
    fn spi_byte_interface() {
        let src = "
            sei
            ldi r16, 0x5a
            out 0x18, r16      ; shift a byte to the radio
            sleep
            break
        isr:
            break
        ";
        let p = assemble_avr(src).unwrap();
        let mut core = AvrCore::new(p.flash.clone());
        core.set_vector(Irq::Spi, p.symbol("isr").unwrap());
        core.run_until_break(10_000).unwrap();
        assert_eq!(core.spi_sent(), &[0x5a]);
        assert!(core.wall_cycles() >= SPI_BYTE_CYCLES);
    }

    #[test]
    fn cli_defers_interrupts_until_sei() {
        // The timer fires while interrupts are masked; the ISR must not
        // run until `sei`, and then exactly once.
        let src = "
            ldi r16, 2
            out 0x11, r16      ; OCRL = 2 -> period 128 cycles
            ldi r16, 0
            out 0x12, r16
            ldi r16, 1
            out 0x10, r16      ; enable timer (interrupts still masked)
            ldi r17, 0
        spin:
            inc r17
            cpi r17, 200       ; ~600 cycles: several timer periods pass
            brne spin
            lds r20, 0xb0      ; ISR must not have run yet
            sts 0xb1, r20
            sei
            nop
            nop
            break
        isr:
            lds r18, 0xb0
            inc r18
            sts 0xb0, r18
            reti
        ";
        let p = assemble_avr(src).unwrap();
        let mut core = AvrCore::new(p.flash.clone());
        core.set_vector(Irq::Timer, p.symbol("isr").unwrap());
        core.run_until_break(10_000).unwrap();
        assert_eq!(
            core.sram(0xb1),
            0,
            "masked: ISR must not have run before sei"
        );
        // Only one pending flag exists per source, so the several missed
        // periods collapse into a single delivery after sei.
        assert_eq!(core.sram(0xb0), 1);
        assert_eq!(core.irqs_taken(), 1);
    }

    #[test]
    fn stuck_sleep_is_detected() {
        let p = assemble_avr("sleep\nbreak").unwrap();
        let mut core = AvrCore::new(p.flash.clone());
        let err = core.run_until_break(100).unwrap_err();
        assert_eq!(err, AvrCoreError::Stuck);
    }

    #[test]
    fn missing_vector_is_detected() {
        let src = "
            ldi r16, 1
            out 0x11, r16
            ldi r16, 1
            out 0x10, r16
            sei
        spin:
            rjmp spin
        ";
        let p = assemble_avr(src).unwrap();
        let mut core = AvrCore::new(p.flash.clone());
        let err = core.run_until_break(10_000).unwrap_err();
        assert_eq!(err, AvrCoreError::NoVector { irq: "timer" });
    }

    #[test]
    fn pointer_post_increment() {
        let src = "
            ldi r26, 0x00      ; X = 0x0120
            ldi r27, 0x01
            ldi r26, 0x20
            ldi r16, 5
            st X+, r16
            ldi r16, 6
            st X, r16
            ldi r26, 0x20
            ld r20, X+
            ld r21, X
            sts 0xd0, r20
            sts 0xd1, r21
            break
        ";
        let core = run(src, 200);
        assert_eq!(core.sram(0xd0), 5);
        assert_eq!(core.sram(0xd1), 6);
    }

    #[test]
    fn led_port_history() {
        let core = run(
            "ldi r16, 1\nout 0x05, r16\nldi r16, 0\nout 0x05, r16\nbreak",
            100,
        );
        assert_eq!(core.ports().portb_history.len(), 2);
        assert_eq!(core.ports().portb(), 0);
    }
}
