//! # atmega — the baseline: an AVR-subset microcontroller with a
//! TinyOS-like runtime
//!
//! The paper compares SNAP/LE against the Berkeley MICA motes: an Atmel
//! ATmega128L (8-bit AVR RISC, 4 MIPS at 3 V, ≈1500 pJ/ins) running
//! TinyOS, whose event-driven programming model is built from hardware
//! interrupts plus a software FIFO task scheduler. This crate rebuilds
//! that baseline at the level the paper measures it — *cycle counts of
//! interrupt service routines, the scheduler, and application tasks*:
//!
//! * [`isa`] — an AVR-subset instruction set with per-instruction cycle
//!   costs taken from the AVR datasheet (1-cycle ALU, 2-cycle SRAM
//!   load/store, 2-cycle push/pop, 4-cycle ret/reti, ...).
//! * [`asm`] — a small AVR assembler (reusing `snap-asm`'s lexer and
//!   expression engine).
//! * [`core`] — the clocked core: SREG flags, 32 registers, SRAM,
//!   stack, interrupt dispatch with AVR-style entry cost, `sleep`, and
//!   the peripherals the benchmarks need (compare-match timer, ADC,
//!   SPI byte interface, LED port).
//! * [`tinyos`] — the TinyOS-like runtime written in AVR assembly:
//!   virtualized timers scanned in the timer ISR, a FIFO task queue
//!   with interrupt-safe post, the main scheduler loop, and the
//!   Blink / Sense / radio-stack applications of §4.6.
//!
//! Energy uses the ATmega128L constants from `snap-energy::avr`.

#![warn(missing_docs)]

pub mod asm;
pub mod core;
pub mod isa;
pub mod state;
pub mod tinyos;

pub use crate::core::{AvrCore, AvrCoreError, IoPorts, Irq};
pub use asm::{assemble_avr, AvrProgram};
pub use isa::AvrInstr;
pub use state::AvrStateError;
