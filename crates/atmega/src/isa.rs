//! The AVR-subset instruction set.
//!
//! Enough of the ATmega128 ISA to express a TinyOS-style runtime, with
//! datasheet cycle costs. Program-counter-relative encodings are
//! resolved to absolute word addresses by the assembler (cycle counts,
//! not bit patterns, are what the paper's comparison measures).

/// Pointer registers for indirect loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ptr {
    /// `X` = r27:r26.
    X,
    /// `Y` = r29:r28.
    Y,
    /// `Z` = r31:r30.
    Z,
}

impl Ptr {
    /// Index of the low register of the pair.
    pub fn lo_reg(self) -> usize {
        match self {
            Ptr::X => 26,
            Ptr::Y => 28,
            Ptr::Z => 30,
        }
    }
}

/// Branch conditions (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AvrBranch {
    /// `breq` — Z set.
    Eq,
    /// `brne` — Z clear.
    Ne,
    /// `brcs` — C set (unsigned <).
    Cs,
    /// `brcc` — C clear (unsigned >=).
    Cc,
    /// `brlt` — signed <.
    Lt,
    /// `brge` — signed >=.
    Ge,
}

/// One AVR instruction (decoded form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AvrInstr {
    /// `ldi Rd, K` (Rd in r16–r31).
    Ldi {
        rd: u8,
        k: u8,
    },
    Mov {
        rd: u8,
        rr: u8,
    },
    Add {
        rd: u8,
        rr: u8,
    },
    Adc {
        rd: u8,
        rr: u8,
    },
    Sub {
        rd: u8,
        rr: u8,
    },
    Sbc {
        rd: u8,
        rr: u8,
    },
    And {
        rd: u8,
        rr: u8,
    },
    Or {
        rd: u8,
        rr: u8,
    },
    Eor {
        rd: u8,
        rr: u8,
    },
    /// `subi Rd, K` (Rd in r16–r31).
    Subi {
        rd: u8,
        k: u8,
    },
    Sbci {
        rd: u8,
        k: u8,
    },
    Andi {
        rd: u8,
        k: u8,
    },
    Ori {
        rd: u8,
        k: u8,
    },
    Inc {
        rd: u8,
    },
    Dec {
        rd: u8,
    },
    Com {
        rd: u8,
    },
    Neg {
        rd: u8,
    },
    Lsr {
        rd: u8,
    },
    /// Rotate right through carry.
    Ror {
        rd: u8,
    },
    Asr {
        rd: u8,
    },
    Swap {
        rd: u8,
    },
    Cp {
        rd: u8,
        rr: u8,
    },
    Cpc {
        rd: u8,
        rr: u8,
    },
    Cpi {
        rd: u8,
        k: u8,
    },
    /// Conditional branch to an absolute word address.
    Br {
        cond: AvrBranch,
        target: u16,
    },
    /// Unconditional jump (absolute word address).
    Rjmp {
        target: u16,
    },
    /// Indirect jump via Z.
    Ijmp,
    /// Call (absolute word address).
    Rcall {
        target: u16,
    },
    /// Indirect call via Z.
    Icall,
    Ret,
    Reti,
    /// Direct SRAM load (two words).
    Lds {
        rd: u8,
        addr: u16,
    },
    /// Direct SRAM store (two words).
    Sts {
        addr: u16,
        rr: u8,
    },
    /// Indirect load, optional post-increment.
    Ld {
        rd: u8,
        ptr: Ptr,
        post_inc: bool,
    },
    /// Indirect store, optional post-increment.
    St {
        ptr: Ptr,
        rr: u8,
        post_inc: bool,
    },
    Push {
        rr: u8,
    },
    Pop {
        rd: u8,
    },
    /// Read an I/O register.
    In {
        rd: u8,
        io: u8,
    },
    /// Write an I/O register.
    Out {
        io: u8,
        rr: u8,
    },
    /// Add immediate to word pair (r24/r26/r28/r30).
    Adiw {
        pair: u8,
        k: u8,
    },
    Sbiw {
        pair: u8,
        k: u8,
    },
    Sei,
    Cli,
    Sleep,
    Nop,
    /// Stop the simulation (the AVR `break` instruction, which halts
    /// the OCD; the test harness uses it as "benchmark done").
    Break,
}

impl AvrInstr {
    /// Base cycle cost (taken branches add one in the core).
    pub fn cycles(&self) -> u64 {
        use AvrInstr as I;
        match self {
            I::Rjmp { .. } | I::Ijmp => 2,
            I::Rcall { .. } | I::Icall => 3,
            I::Ret | I::Reti => 4,
            I::Lds { .. } | I::Sts { .. } | I::Ld { .. } | I::St { .. } => 2,
            I::Push { .. } | I::Pop { .. } => 2,
            I::Adiw { .. } | I::Sbiw { .. } => 2,
            _ => 1,
        }
    }

    /// Flash footprint in 16-bit words.
    pub fn words(&self) -> u16 {
        match self {
            AvrInstr::Lds { .. } | AvrInstr::Sts { .. } => 2,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_costs_match_datasheet() {
        assert_eq!(AvrInstr::Ldi { rd: 16, k: 0 }.cycles(), 1);
        assert_eq!(AvrInstr::Add { rd: 0, rr: 1 }.cycles(), 1);
        assert_eq!(AvrInstr::Lds { rd: 0, addr: 0 }.cycles(), 2);
        assert_eq!(AvrInstr::Push { rr: 0 }.cycles(), 2);
        assert_eq!(AvrInstr::Rcall { target: 0 }.cycles(), 3);
        assert_eq!(AvrInstr::Ret.cycles(), 4);
        assert_eq!(AvrInstr::Reti.cycles(), 4);
        assert_eq!(AvrInstr::Out { io: 0, rr: 0 }.cycles(), 1);
    }

    #[test]
    fn word_sizes() {
        assert_eq!(AvrInstr::Lds { rd: 0, addr: 0 }.words(), 2);
        assert_eq!(AvrInstr::Sts { addr: 0, rr: 0 }.words(), 2);
        assert_eq!(AvrInstr::Rjmp { target: 0 }.words(), 1);
    }

    #[test]
    fn pointer_pairs() {
        assert_eq!(Ptr::X.lo_reg(), 26);
        assert_eq!(Ptr::Y.lo_reg(), 28);
        assert_eq!(Ptr::Z.lo_reg(), 30);
    }
}
