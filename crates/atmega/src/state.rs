//! Byte-exact export/restore of an [`AvrCore`].
//!
//! `snap-snapshot` checkpoints heterogeneous fleets; AVR nodes carry
//! their core state as an *opaque blob* inside the fleet snapshot so
//! the snapshot crate never learns the AVR ISA. This module defines
//! that blob: a versioned, fail-closed, little-endian byte format
//! covering every field that influences execution — registers, SRAM,
//! flash (the decoded program, re-encoded instruction by instruction),
//! flags, peripherals, and the cycle counters.
//!
//! Restoring a blob and continuing is bit-identical to never having
//! snapshotted: the golden-file and snapshot-equivalence suites in
//! `snap-net` prove this end-to-end for mixed fleets.

use crate::core::{AvrCore, IoPorts, SRAM_BYTES};
use crate::isa::{AvrBranch, AvrInstr, Ptr};

/// Magic prefix of an AVR core blob.
pub const AVR_STATE_MAGIC: [u8; 4] = *b"AVRS";

/// Blob format version. Bump on any layout change; decode rejects
/// mismatches rather than guessing.
pub const AVR_STATE_VERSION: u16 = 1;

/// Decode failure: the blob is truncated, from a different version, or
/// encodes a state the core cannot represent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvrStateError(pub &'static str);

impl std::fmt::Display for AvrStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "avr state blob: {}", self.0)
    }
}

impl std::error::Error for AvrStateError {}

struct W(Vec<u8>);

impl W {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn flag(&mut self, v: bool) {
        self.0.push(v as u8);
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
    fn opt_u16(&mut self, v: Option<u16>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u16(x);
            }
        }
    }
    fn len(&mut self, n: usize) {
        self.u32(n as u32);
    }
}

struct R<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], AvrStateError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(AvrStateError("truncated"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, AvrStateError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, AvrStateError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, AvrStateError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, AvrStateError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn flag(&mut self) -> Result<bool, AvrStateError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(AvrStateError("flag byte out of range")),
        }
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, AvrStateError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(AvrStateError("option tag out of range")),
        }
    }
    fn opt_u16(&mut self) -> Result<Option<u16>, AvrStateError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u16()?)),
            _ => Err(AvrStateError("option tag out of range")),
        }
    }
    fn len(&mut self) -> Result<usize, AvrStateError> {
        let n = self.u32()? as usize;
        // A length prefix can never promise more data than remains.
        if n > self.bytes.len().saturating_sub(self.pos) {
            return Err(AvrStateError("length prefix exceeds blob"));
        }
        Ok(n)
    }
}

fn branch_code(b: AvrBranch) -> u8 {
    match b {
        AvrBranch::Eq => 0,
        AvrBranch::Ne => 1,
        AvrBranch::Cs => 2,
        AvrBranch::Cc => 3,
        AvrBranch::Lt => 4,
        AvrBranch::Ge => 5,
    }
}

fn branch_from(code: u8) -> Result<AvrBranch, AvrStateError> {
    Ok(match code {
        0 => AvrBranch::Eq,
        1 => AvrBranch::Ne,
        2 => AvrBranch::Cs,
        3 => AvrBranch::Cc,
        4 => AvrBranch::Lt,
        5 => AvrBranch::Ge,
        _ => return Err(AvrStateError("branch condition out of range")),
    })
}

fn ptr_code(p: Ptr) -> u8 {
    match p {
        Ptr::X => 0,
        Ptr::Y => 1,
        Ptr::Z => 2,
    }
}

fn ptr_from(code: u8) -> Result<Ptr, AvrStateError> {
    Ok(match code {
        0 => Ptr::X,
        1 => Ptr::Y,
        2 => Ptr::Z,
        _ => return Err(AvrStateError("pointer register out of range")),
    })
}

fn reg(v: u8) -> Result<u8, AvrStateError> {
    if v < 32 {
        Ok(v)
    } else {
        Err(AvrStateError("register index out of range"))
    }
}

fn pair(v: u8) -> Result<u8, AvrStateError> {
    if matches!(v, 24 | 26 | 28 | 30) {
        Ok(v)
    } else {
        Err(AvrStateError("adiw/sbiw pair out of range"))
    }
}

/// Every flash slot is `tag` then `(a: u8, b: u8, c: u16)` operands;
/// tag 0 marks an empty slot (the second word of a two-word
/// instruction) and carries no operands.
fn encode_instr(w: &mut W, i: AvrInstr) {
    use AvrInstr as I;
    let (tag, a, b, c): (u8, u8, u8, u16) = match i {
        I::Ldi { rd, k } => (1, rd, k, 0),
        I::Mov { rd, rr } => (2, rd, rr, 0),
        I::Add { rd, rr } => (3, rd, rr, 0),
        I::Adc { rd, rr } => (4, rd, rr, 0),
        I::Sub { rd, rr } => (5, rd, rr, 0),
        I::Sbc { rd, rr } => (6, rd, rr, 0),
        I::And { rd, rr } => (7, rd, rr, 0),
        I::Or { rd, rr } => (8, rd, rr, 0),
        I::Eor { rd, rr } => (9, rd, rr, 0),
        I::Subi { rd, k } => (10, rd, k, 0),
        I::Sbci { rd, k } => (11, rd, k, 0),
        I::Andi { rd, k } => (12, rd, k, 0),
        I::Ori { rd, k } => (13, rd, k, 0),
        I::Inc { rd } => (14, rd, 0, 0),
        I::Dec { rd } => (15, rd, 0, 0),
        I::Com { rd } => (16, rd, 0, 0),
        I::Neg { rd } => (17, rd, 0, 0),
        I::Lsr { rd } => (18, rd, 0, 0),
        I::Ror { rd } => (19, rd, 0, 0),
        I::Asr { rd } => (20, rd, 0, 0),
        I::Swap { rd } => (21, rd, 0, 0),
        I::Cp { rd, rr } => (22, rd, rr, 0),
        I::Cpc { rd, rr } => (23, rd, rr, 0),
        I::Cpi { rd, k } => (24, rd, k, 0),
        I::Br { cond, target } => (25, branch_code(cond), 0, target),
        I::Rjmp { target } => (26, 0, 0, target),
        I::Ijmp => (27, 0, 0, 0),
        I::Rcall { target } => (28, 0, 0, target),
        I::Icall => (29, 0, 0, 0),
        I::Ret => (30, 0, 0, 0),
        I::Reti => (31, 0, 0, 0),
        I::Lds { rd, addr } => (32, rd, 0, addr),
        I::Sts { addr, rr } => (33, rr, 0, addr),
        I::Ld { rd, ptr, post_inc } => (34, rd, ptr_code(ptr) | ((post_inc as u8) << 4), 0),
        I::St { ptr, rr, post_inc } => (35, rr, ptr_code(ptr) | ((post_inc as u8) << 4), 0),
        I::Push { rr } => (36, rr, 0, 0),
        I::Pop { rd } => (37, rd, 0, 0),
        I::In { rd, io } => (38, rd, io, 0),
        I::Out { io, rr } => (39, rr, io, 0),
        I::Adiw { pair, k } => (40, pair, k, 0),
        I::Sbiw { pair, k } => (41, pair, k, 0),
        I::Sei => (42, 0, 0, 0),
        I::Cli => (43, 0, 0, 0),
        I::Sleep => (44, 0, 0, 0),
        I::Nop => (45, 0, 0, 0),
        I::Break => (46, 0, 0, 0),
    };
    w.u8(tag);
    w.u8(a);
    w.u8(b);
    w.u16(c);
}

fn decode_instr(r: &mut R<'_>) -> Result<Option<AvrInstr>, AvrStateError> {
    use AvrInstr as I;
    let tag = r.u8()?;
    if tag == 0 {
        return Ok(None);
    }
    let a = r.u8()?;
    let b = r.u8()?;
    let c = r.u16()?;
    let ptr_post = |b: u8| -> Result<(Ptr, bool), AvrStateError> {
        let post = match b >> 4 {
            0 => false,
            1 => true,
            _ => return Err(AvrStateError("post-increment bit out of range")),
        };
        Ok((ptr_from(b & 0x0f)?, post))
    };
    Ok(Some(match tag {
        1 => I::Ldi { rd: reg(a)?, k: b },
        2 => I::Mov {
            rd: reg(a)?,
            rr: reg(b)?,
        },
        3 => I::Add {
            rd: reg(a)?,
            rr: reg(b)?,
        },
        4 => I::Adc {
            rd: reg(a)?,
            rr: reg(b)?,
        },
        5 => I::Sub {
            rd: reg(a)?,
            rr: reg(b)?,
        },
        6 => I::Sbc {
            rd: reg(a)?,
            rr: reg(b)?,
        },
        7 => I::And {
            rd: reg(a)?,
            rr: reg(b)?,
        },
        8 => I::Or {
            rd: reg(a)?,
            rr: reg(b)?,
        },
        9 => I::Eor {
            rd: reg(a)?,
            rr: reg(b)?,
        },
        10 => I::Subi { rd: reg(a)?, k: b },
        11 => I::Sbci { rd: reg(a)?, k: b },
        12 => I::Andi { rd: reg(a)?, k: b },
        13 => I::Ori { rd: reg(a)?, k: b },
        14 => I::Inc { rd: reg(a)? },
        15 => I::Dec { rd: reg(a)? },
        16 => I::Com { rd: reg(a)? },
        17 => I::Neg { rd: reg(a)? },
        18 => I::Lsr { rd: reg(a)? },
        19 => I::Ror { rd: reg(a)? },
        20 => I::Asr { rd: reg(a)? },
        21 => I::Swap { rd: reg(a)? },
        22 => I::Cp {
            rd: reg(a)?,
            rr: reg(b)?,
        },
        23 => I::Cpc {
            rd: reg(a)?,
            rr: reg(b)?,
        },
        24 => I::Cpi { rd: reg(a)?, k: b },
        25 => I::Br {
            cond: branch_from(a)?,
            target: c,
        },
        26 => I::Rjmp { target: c },
        27 => I::Ijmp,
        28 => I::Rcall { target: c },
        29 => I::Icall,
        30 => I::Ret,
        31 => I::Reti,
        32 => I::Lds {
            rd: reg(a)?,
            addr: c,
        },
        33 => I::Sts {
            addr: c,
            rr: reg(a)?,
        },
        34 => {
            let (ptr, post_inc) = ptr_post(b)?;
            I::Ld {
                rd: reg(a)?,
                ptr,
                post_inc,
            }
        }
        35 => {
            let (ptr, post_inc) = ptr_post(b)?;
            I::St {
                ptr,
                rr: reg(a)?,
                post_inc,
            }
        }
        36 => I::Push { rr: reg(a)? },
        37 => I::Pop { rd: reg(a)? },
        38 => I::In { rd: reg(a)?, io: b },
        39 => I::Out { io: b, rr: reg(a)? },
        40 => I::Adiw {
            pair: pair(a)?,
            k: b,
        },
        41 => I::Sbiw {
            pair: pair(a)?,
            k: b,
        },
        42 => I::Sei,
        43 => I::Cli,
        44 => I::Sleep,
        45 => I::Nop,
        46 => I::Break,
        _ => return Err(AvrStateError("instruction tag out of range")),
    }))
}

impl AvrCore {
    /// Serialize the complete core state (program included) to a
    /// self-describing byte blob.
    pub fn export_state(&self) -> Vec<u8> {
        let mut w = W(Vec::with_capacity(SRAM_BYTES + self.flash.len() * 5 + 256));
        w.0.extend_from_slice(&AVR_STATE_MAGIC);
        w.u16(AVR_STATE_VERSION);
        w.0.extend_from_slice(&self.regs);
        w.0.extend_from_slice(&self.sram[..]);
        w.u16(self.pc);
        w.u16(self.sp);
        w.flag(self.flag_c);
        w.flag(self.flag_z);
        w.flag(self.flag_n);
        w.flag(self.flag_v);
        w.flag(self.flag_i);
        w.flag(self.sleeping);
        w.flag(self.halted);
        w.u64(self.wall_cycles);
        w.u64(self.active_cycles);
        w.u64(self.irqs_taken);
        for v in self.vectors {
            w.opt_u16(v);
        }
        for p in self.pending {
            w.flag(p);
        }
        w.flag(self.timer.enabled);
        w.u16(self.timer.ocr);
        w.u64(self.timer.next_fire);
        w.opt_u64(self.adc.done_at);
        w.u8(self.adc.value);
        w.u8(self.adc.reading);
        w.opt_u64(self.spi.done_at);
        w.u64(self.spi.byte_cycles);
        w.u8(self.spi.rx);
        w.len(self.spi.sent.len());
        for (&b, &at) in self.spi.sent.iter().zip(&self.spi.sent_at) {
            w.u8(b);
            w.u64(at);
        }
        w.len(self.ports.portb_history.len());
        for &(at, v) in &self.ports.portb_history {
            w.u64(at);
            w.u8(v);
        }
        w.len(self.flash.len());
        for slot in &self.flash {
            match slot {
                None => w.u8(0),
                Some(i) => encode_instr(&mut w, *i),
            }
        }
        w.0
    }

    /// Reconstruct a core from an [`AvrCore::export_state`] blob.
    /// Fail-closed: truncation, trailing bytes, version or range
    /// violations are all errors.
    pub fn restore_state(bytes: &[u8]) -> Result<AvrCore, AvrStateError> {
        let mut r = R { bytes, pos: 0 };
        if r.take(4)? != AVR_STATE_MAGIC {
            return Err(AvrStateError("bad magic"));
        }
        if r.u16()? != AVR_STATE_VERSION {
            return Err(AvrStateError("unsupported version"));
        }
        let mut regs = [0u8; 32];
        regs.copy_from_slice(r.take(32)?);
        let mut sram = Box::new([0u8; SRAM_BYTES]);
        sram.copy_from_slice(r.take(SRAM_BYTES)?);
        let pc = r.u16()?;
        let sp = r.u16()?;
        let flag_c = r.flag()?;
        let flag_z = r.flag()?;
        let flag_n = r.flag()?;
        let flag_v = r.flag()?;
        let flag_i = r.flag()?;
        let sleeping = r.flag()?;
        let halted = r.flag()?;
        let wall_cycles = r.u64()?;
        let active_cycles = r.u64()?;
        let irqs_taken = r.u64()?;
        let mut vectors = [None; 3];
        for v in &mut vectors {
            *v = r.opt_u16()?;
        }
        let mut pending = [false; 3];
        for p in &mut pending {
            *p = r.flag()?;
        }
        let timer = crate::core::Timer {
            enabled: r.flag()?,
            ocr: r.u16()?,
            next_fire: r.u64()?,
        };
        let adc = crate::core::Adc {
            done_at: r.opt_u64()?,
            value: r.u8()?,
            reading: r.u8()?,
        };
        let spi_done_at = r.opt_u64()?;
        let spi_byte_cycles = r.u64()?;
        let spi_rx = r.u8()?;
        let n = r.len()?;
        let mut sent = Vec::with_capacity(n);
        let mut sent_at = Vec::with_capacity(n);
        for _ in 0..n {
            sent.push(r.u8()?);
            sent_at.push(r.u64()?);
        }
        let n = r.len()?;
        let mut portb_history = Vec::with_capacity(n);
        for _ in 0..n {
            portb_history.push((r.u64()?, r.u8()?));
        }
        let n = r.len()?;
        let mut flash = Vec::with_capacity(n);
        for _ in 0..n {
            flash.push(decode_instr(&mut r)?);
        }
        if r.pos != bytes.len() {
            return Err(AvrStateError("trailing bytes"));
        }
        Ok(AvrCore {
            regs,
            sram,
            flash,
            pc,
            sp,
            flag_c,
            flag_z,
            flag_n,
            flag_v,
            flag_i,
            sleeping,
            halted,
            wall_cycles,
            active_cycles,
            vectors,
            pending,
            timer,
            adc,
            spi: crate::core::Spi {
                done_at: spi_done_at,
                byte_cycles: spi_byte_cycles,
                sent,
                sent_at,
                rx: spi_rx,
            },
            ports: IoPorts { portb_history },
            irqs_taken,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tinyos::radiostack_system;

    fn sample_core() -> AvrCore {
        let (mut core, _) = radiostack_system().unwrap();
        core.run_until_wall(400_000).unwrap();
        core.post_spi_rx(0x5a);
        core
    }

    #[test]
    fn round_trip_is_identity_and_resumes_identically() {
        let core = sample_core();
        let blob = core.export_state();
        let restored = AvrCore::restore_state(&blob).unwrap();
        assert_eq!(restored.pc(), core.pc());
        assert_eq!(restored.wall_cycles(), core.wall_cycles());
        assert_eq!(restored.spi_sent(), core.spi_sent());
        assert_eq!(restored.spi_sent_cycles(), core.spi_sent_cycles());
        // The restored core and the original evolve identically.
        let mut a = core;
        let mut b = restored;
        a.run_until_wall(900_000).unwrap();
        b.run_until_wall(900_000).unwrap();
        assert_eq!(a.export_state(), b.export_state());
    }

    #[test]
    fn truncation_and_corruption_fail_closed() {
        let blob = sample_core().export_state();
        for cut in [0, 3, 10, blob.len() / 2, blob.len() - 1] {
            assert!(AvrCore::restore_state(&blob[..cut]).is_err());
        }
        let mut extra = blob.clone();
        extra.push(0);
        assert_eq!(
            AvrCore::restore_state(&extra).err(),
            Some(AvrStateError("trailing bytes"))
        );
        let mut bad_magic = blob.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(
            AvrCore::restore_state(&bad_magic).err(),
            Some(AvrStateError("bad magic"))
        );
        let mut bad_version = blob;
        bad_version[4] = 0xee;
        assert_eq!(
            AvrCore::restore_state(&bad_version).err(),
            Some(AvrStateError("unsupported version"))
        );
    }

    #[test]
    fn every_instruction_survives_the_flash_encoding() {
        use AvrInstr as I;
        let all = vec![
            I::Ldi { rd: 16, k: 0xab },
            I::Mov { rd: 1, rr: 2 },
            I::Add { rd: 3, rr: 4 },
            I::Adc { rd: 5, rr: 6 },
            I::Sub { rd: 7, rr: 8 },
            I::Sbc { rd: 9, rr: 10 },
            I::And { rd: 11, rr: 12 },
            I::Or { rd: 13, rr: 14 },
            I::Eor { rd: 15, rr: 16 },
            I::Subi { rd: 17, k: 1 },
            I::Sbci { rd: 18, k: 2 },
            I::Andi { rd: 19, k: 3 },
            I::Ori { rd: 20, k: 4 },
            I::Inc { rd: 21 },
            I::Dec { rd: 22 },
            I::Com { rd: 23 },
            I::Neg { rd: 24 },
            I::Lsr { rd: 25 },
            I::Ror { rd: 26 },
            I::Asr { rd: 27 },
            I::Swap { rd: 28 },
            I::Cp { rd: 29, rr: 30 },
            I::Cpc { rd: 31, rr: 0 },
            I::Cpi { rd: 16, k: 9 },
            I::Br {
                cond: AvrBranch::Eq,
                target: 0x1234,
            },
            I::Br {
                cond: AvrBranch::Ge,
                target: 7,
            },
            I::Rjmp { target: 0x0fff },
            I::Ijmp,
            I::Rcall { target: 0x55 },
            I::Icall,
            I::Ret,
            I::Reti,
            I::Lds {
                rd: 2,
                addr: 0x0210,
            },
            I::Sts {
                addr: 0x0211,
                rr: 3,
            },
            I::Ld {
                rd: 4,
                ptr: Ptr::X,
                post_inc: false,
            },
            I::Ld {
                rd: 5,
                ptr: Ptr::Y,
                post_inc: true,
            },
            I::St {
                ptr: Ptr::Z,
                rr: 6,
                post_inc: true,
            },
            I::Push { rr: 7 },
            I::Pop { rd: 8 },
            I::In { rd: 9, io: 0x18 },
            I::Out { io: 0x05, rr: 10 },
            I::Adiw { pair: 24, k: 5 },
            I::Sbiw { pair: 30, k: 6 },
            I::Sei,
            I::Cli,
            I::Sleep,
            I::Nop,
            I::Break,
        ];
        let mut flash: Vec<Option<AvrInstr>> = all.iter().map(|&i| Some(i)).collect();
        flash.push(None);
        let mut core = AvrCore::new(flash.clone());
        core.sram_write(0, 0); // touch nothing; just exercise construction
        let blob = core.export_state();
        let restored = AvrCore::restore_state(&blob).unwrap();
        let blob2 = restored.export_state();
        assert_eq!(blob, blob2);
    }
}
