//! Property tests for the AVR-subset baseline: its arithmetic must
//! match a Rust reference model, or the TinyOS cycle comparisons would
//! be measuring a broken machine.

use atmega::asm::assemble_avr;
use atmega::AvrCore;
use proptest::prelude::*;

/// Run a fragment that leaves its result in r16 and stores it to 0x80.
fn run_store_r16(body: &str) -> u8 {
    let src = format!("{body}\nsts 0x80, r16\nbreak");
    let p = assemble_avr(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let mut core = AvrCore::new(p.flash.clone());
    core.run_until_break(10_000)
        .unwrap_or_else(|e| panic!("{e}\n{src}"));
    core.sram(0x80)
}

proptest! {
    /// 8-bit add/sub/logic match wrapping reference semantics.
    #[test]
    fn alu_matches_reference(a in any::<u8>(), b in any::<u8>(), op in 0usize..7) {
        let (mnemonic, expect): (&str, u8) = match op {
            0 => ("add", a.wrapping_add(b)),
            1 => ("sub", a.wrapping_sub(b)),
            2 => ("and", a & b),
            3 => ("or", a | b),
            4 => ("eor", a ^ b),
            5 => ("mov", b),
            _ => ("cp", a), // cp leaves r16 untouched
        };
        let body = format!("ldi r16, {a}\nldi r17, {b}\n{mnemonic} r16, r17");
        prop_assert_eq!(run_store_r16(&body), expect, "{} {} {}", mnemonic, a, b);
    }

    /// 16-bit add via add/adc matches u16 arithmetic (the runtime's CRC
    /// shifting depends on this).
    #[test]
    fn carry_chain_matches_u16(x in any::<u16>(), y in any::<u16>()) {
        let body = format!(
            "ldi r16, {xl}\nldi r17, {xh}\nldi r18, {yl}\nldi r19, {yh}\n\
             add r16, r18\nadc r17, r19\nsts 0x81, r17",
            xl = x & 0xff,
            xh = x >> 8,
            yl = y & 0xff,
            yh = y >> 8,
        );
        let src = format!("{body}\nsts 0x80, r16\nbreak");
        let p = assemble_avr(&src).unwrap();
        let mut core = AvrCore::new(p.flash.clone());
        core.run_until_break(10_000).unwrap();
        let got = (core.sram(0x81) as u16) << 8 | core.sram(0x80) as u16;
        prop_assert_eq!(got, x.wrapping_add(y));
    }

    /// 16-bit left shift (add/adc) and right shift (lsr/ror) pairs match
    /// the reference — these are the radio stack's CRC primitives.
    #[test]
    fn shift_pairs_match(x in any::<u16>()) {
        // Left: (lo,hi) <<= 1.
        let left = format!(
            "ldi r16, {lo}\nldi r17, {hi}\nadd r16, r16\nadc r17, r17\nsts 0x81, r17",
            lo = x & 0xff,
            hi = x >> 8,
        );
        let src = format!("{left}\nsts 0x80, r16\nbreak");
        let p = assemble_avr(&src).unwrap();
        let mut core = AvrCore::new(p.flash.clone());
        core.run_until_break(10_000).unwrap();
        let got = (core.sram(0x81) as u16) << 8 | core.sram(0x80) as u16;
        prop_assert_eq!(got, x.wrapping_shl(1));

        // Right: (hi,lo) >>= 1 through carry.
        let right = format!(
            "ldi r16, {lo}\nldi r17, {hi}\nlsr r17\nror r16\nsts 0x81, r17",
            lo = x & 0xff,
            hi = x >> 8,
        );
        let src = format!("{right}\nsts 0x80, r16\nbreak");
        let p = assemble_avr(&src).unwrap();
        let mut core = AvrCore::new(p.flash.clone());
        core.run_until_break(10_000).unwrap();
        let got = (core.sram(0x81) as u16) << 8 | core.sram(0x80) as u16;
        prop_assert_eq!(got, x >> 1);
    }

    /// Signed branches agree with `i8` comparison.
    #[test]
    fn signed_branches_match(a in any::<i8>(), b in any::<i8>()) {
        let body = format!(
            "ldi r16, {a}\nldi r17, {b}\ncp r16, r17\nbrlt yes\nldi r16, 0\nrjmp out\nyes:\nldi r16, 1\nout:",
            a = a as u8,
            b = b as u8,
        );
        prop_assert_eq!(run_store_r16(&body) == 1, a < b, "{} < {}", a, b);
    }

    /// Unsigned branches agree with `u8` comparison.
    #[test]
    fn unsigned_branches_match(a in any::<u8>(), b in any::<u8>()) {
        let body = format!(
            "ldi r16, {a}\nldi r17, {b}\ncp r16, r17\nbrcs yes\nldi r16, 0\nrjmp out\nyes:\nldi r16, 1\nout:"
        );
        prop_assert_eq!(run_store_r16(&body) == 1, a < b, "{} <u {}", a, b);
    }

    /// Push/pop round trips arbitrary register sets through the stack.
    #[test]
    fn stack_round_trip(values in prop::collection::vec(any::<u8>(), 1..8)) {
        let mut src = String::new();
        for (i, v) in values.iter().enumerate() {
            src.push_str(&format!("ldi r{}, {v}\n", 16 + i));
        }
        for i in 0..values.len() {
            src.push_str(&format!("push r{}\n", 16 + i));
        }
        // Clobber, then restore in reverse order.
        for i in 0..values.len() {
            src.push_str(&format!("ldi r{}, 0\n", 16 + i));
        }
        for i in (0..values.len()).rev() {
            src.push_str(&format!("pop r{}\n", 16 + i));
        }
        for (i, _) in values.iter().enumerate() {
            src.push_str(&format!("sts {}, r{}\n", 0x90 + i, 16 + i));
        }
        src.push_str("break");
        let p = assemble_avr(&src).unwrap();
        let mut core = AvrCore::new(p.flash.clone());
        core.run_until_break(100_000).unwrap();
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(core.sram(0x90 + i as u16), *v);
        }
    }
}
